"""Tests for the top-level convenience API."""

import pytest

from repro import api, compare_modes, partition_graph, run
from repro.algorithms import CCProgram, CCQuery, CFProgram, CFQuery, \
    SSSPProgram, SSSPQuery
from repro.core.delay import APPolicy
from repro.core.modes import MODES
from repro.errors import RuntimeConfigError
from repro.graph import analysis, generators
from repro.partition.edge_cut import BfsPartitioner
from repro.partition.fragment import PartitionedGraph
from repro.runtime.costmodel import CostModel


class TestPartitionGraph:
    def test_default_hash(self, small_grid):
        pg = partition_graph(small_grid, 4)
        assert isinstance(pg, PartitionedGraph)
        assert pg.num_fragments == 4
        assert pg.strategy_name == "hash"

    def test_custom_partitioner(self, small_grid):
        pg = partition_graph(small_grid, 3, BfsPartitioner(seed=1))
        assert pg.strategy_name == "bfs"


class TestRun:
    def test_accepts_graph(self, small_grid):
        r = run(CCProgram(), small_grid, CCQuery(), num_fragments=3)
        assert r.answer == analysis.connected_components(small_grid)

    def test_accepts_partition(self, partitioned_grid, small_grid):
        r = run(CCProgram(), partitioned_grid, CCQuery())
        assert r.answer == analysis.connected_components(small_grid)

    def test_rejects_other_types(self):
        with pytest.raises(RuntimeConfigError):
            run(CCProgram(), "not a graph", CCQuery())

    def test_policy_overrides_mode(self, small_grid):
        r = run(CCProgram(), small_grid, CCQuery(), mode="BSP",
                policy=APPolicy())
        assert r.mode == "AP"

    def test_mode_recorded(self, small_grid):
        r = run(CCProgram(), small_grid, CCQuery(), mode="SSP")
        assert r.mode == "SSP"

    def test_bounded_staleness_auto_applied(self):
        g, _, _ = generators.bipartite_ratings(30, 10, 5, seed=1)
        # CF declares needs_bounded_staleness; run() must inject the bound
        r = run(CFProgram(), g, CFQuery(epochs=3), num_fragments=3,
                mode="AAP")
        assert r.answer["rmse"] >= 0.0  # ran to completion

    def test_aap_policy_kwargs(self, small_grid):
        r = run(SSSPProgram(), small_grid, SSSPQuery(source=0),
                mode="AAP", l_bottom=2, dt_fraction=0.3)
        assert r.answer[99] == analysis.dijkstra(small_grid, 0)[99]

    def test_record_trace_flag(self, small_grid):
        r = run(CCProgram(), small_grid, CCQuery(), record_trace=False)
        assert r.trace.intervals == []


class TestCompareModes:
    def test_all_modes_by_default(self, partitioned_powerlaw):
        results = compare_modes(CCProgram, partitioned_powerlaw, CCQuery())
        assert set(results) == set(MODES)

    def test_subset_of_modes(self, partitioned_powerlaw):
        results = compare_modes(CCProgram, partitioned_powerlaw, CCQuery(),
                                modes=("BSP", "AAP"))
        assert set(results) == {"BSP", "AAP"}

    def test_accepts_raw_graph(self, small_grid):
        results = compare_modes(CCProgram, small_grid, CCQuery(),
                                num_fragments=3, modes=("AP",))
        assert results["AP"].answer == analysis.connected_components(
            small_grid)

    def test_cost_model_factory_fresh_per_mode(self, partitioned_grid):
        built = []

        def factory():
            cm = CostModel(seed=1)
            built.append(cm)
            return cm

        compare_modes(CCProgram, partitioned_grid, CCQuery(),
                      modes=("BSP", "AP"), cost_model_factory=factory)
        assert len(built) == 2
        assert built[0] is not built[1]

    def test_answers_identical_across_modes(self, partitioned_powerlaw,
                                            small_powerlaw):
        results = compare_modes(CCProgram, partitioned_powerlaw, CCQuery())
        answers = [r.answer for r in results.values()]
        assert all(a == answers[0] for a in answers)
