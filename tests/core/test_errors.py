"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.GraphError, errors.PartitionError, errors.ProgramError,
        errors.RuntimeConfigError, errors.TerminationError,
        errors.ConvergenceError, errors.SnapshotError])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise exc("boom")

    def test_catchable_from_public_root(self):
        from repro import ReproError
        with pytest.raises(ReproError):
            raise errors.GraphError("x")

    def test_distinct_types(self):
        assert not issubclass(errors.GraphError, errors.PartitionError)
