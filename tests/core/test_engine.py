"""Tests for the engine mechanics (diff shipping, message application)."""

import pytest

from repro.algorithms import CCProgram, CCQuery, SSSPProgram, SSSPQuery
from repro.core.engine import Engine
from repro.core.messages import Message
from repro.errors import ProgramError
from repro.graph.graph import Graph
from repro.partition.edge_cut import RangePartitioner


@pytest.fixture
def chain_engine():
    """Path a-b-c-d split into two fragments: {a,b} and {c,d}."""
    g = Graph(directed=False)
    g.add_edge("a", "b", 1.0)
    g.add_edge("b", "c", 1.0)
    g.add_edge("c", "d", 1.0)
    pg = RangePartitioner().partition(g, 2)
    return Engine(SSSPProgram(), pg, SSSPQuery(source="a"))


class TestPeval:
    def test_produces_border_messages(self, chain_engine):
        pg = chain_engine.pg
        src_frag = pg.fragment_of("a").fid
        out = chain_engine.run_peval(src_frag)
        assert out.round == 0
        assert out.work > 0
        assert out.messages, "source fragment must ship border distances"
        msg = out.messages[0]
        assert msg.dst != src_frag
        shipped_nodes = {v for v, _ in msg.entries}
        assert shipped_nodes <= set(
            pg.fragments[src_frag].mirrors | pg.fragments[src_frag].owned)

    def test_non_source_fragment_ships_nothing_useful(self, chain_engine):
        pg = chain_engine.pg
        other = 1 - pg.fragment_of("a").fid
        out = chain_engine.run_peval(other)
        # all distances are inf there; nothing changed, nothing to ship
        assert out.messages == []


class TestInceval:
    def test_applies_and_propagates(self, chain_engine):
        pg = chain_engine.pg
        fa = pg.fragment_of("a").fid
        fb = 1 - fa
        out_a = chain_engine.run_peval(fa)
        chain_engine.run_peval(fb)
        batches = [m for m in out_a.messages if m.dst == fb]
        out_b = chain_engine.run_inceval(fb, batches, round_no=1)
        assert out_b.activated > 0
        assert chain_engine.contexts[fb].values["d"] == 3.0

    def test_stale_messages_no_reexecution(self, chain_engine):
        pg = chain_engine.pg
        fa = pg.fragment_of("a").fid
        fb = 1 - fa
        out_a = chain_engine.run_peval(fa)
        chain_engine.run_peval(fb)
        batches = [m for m in out_a.messages if m.dst == fb]
        chain_engine.run_inceval(fb, batches, round_no=1)
        # delivering the identical (now stale) values again changes nothing
        out = chain_engine.run_inceval(fb, batches, round_no=2)
        assert out.activated == 0
        assert out.messages == []

    def test_rejects_nonlocal_node(self, chain_engine):
        bogus = Message(src=0, dst=1, round=0, entries=(("zz", 1.0),))
        with pytest.raises(ProgramError):
            chain_engine.run_inceval(1, [bogus], round_no=1)


class TestDiffShipping:
    def test_only_changed_values_ship(self, chain_engine):
        pg = chain_engine.pg
        fa = pg.fragment_of("a").fid
        out = chain_engine.run_peval(fa)
        total_entries = sum(len(m) for m in out.messages)
        # only the mirror copy of the neighbouring fragment changed
        assert total_entries <= 2

    def test_changed_cleared_after_derive(self, chain_engine):
        fa = chain_engine.pg.fragment_of("a").fid
        chain_engine.run_peval(fa)
        assert chain_engine.contexts[fa].changed == set()


class TestAssemble:
    def test_collects_partial_results(self, chain_engine):
        for wid in (0, 1):
            chain_engine.run_peval(wid)
        answer = chain_engine.assemble()
        assert set(answer) == {"a", "b", "c", "d"}


class TestShipSetValidation:
    def test_ship_set_must_have_locations(self, small_grid):
        class Broken(CCProgram):
            def ship_set(self, frag):
                return frozenset(frag.graph.nodes)  # includes interior

        pg = RangePartitioner().partition(small_grid, 2)
        with pytest.raises(ProgramError):
            Engine(Broken(), pg, CCQuery())
