"""Tests for the master's termination protocol."""

import threading

import pytest

from repro.core.master import TerminationMaster
from repro.errors import TerminationError


class TestProtocol:
    def test_no_termination_while_active(self):
        m = TerminationMaster(3)
        m.set_inactive(0)
        m.set_inactive(1)
        assert not m.try_terminate()

    def test_terminates_when_all_inactive(self):
        m = TerminationMaster(2)
        m.set_inactive(0)
        m.set_inactive(1)
        assert m.try_terminate()
        assert m.terminated

    def test_in_flight_blocks_termination(self):
        m = TerminationMaster(1)
        m.set_inactive(0)
        m.message_sent()
        assert not m.try_terminate()
        m.message_delivered()
        assert m.try_terminate()

    def test_reactivation_answers_wait(self):
        # a worker that received a message flips back to active, so the
        # master's broadcast gets a "wait" and the phase resumes
        m = TerminationMaster(2)
        m.set_inactive(0)
        m.set_inactive(1)
        m.set_active(1)
        assert not m.try_terminate()

    def test_negative_in_flight_rejected(self):
        m = TerminationMaster(1)
        with pytest.raises(TerminationError):
            m.message_delivered()

    def test_attempt_counter(self):
        m = TerminationMaster(1)
        m.try_terminate()
        m.try_terminate()
        assert m.attempts == 2

    def test_snapshot_flags(self):
        m = TerminationMaster(3)
        m.set_inactive(1)
        assert m.snapshot_flags() == [False, True, False]


class TestWaiting:
    def test_wait_returns_when_quiescent(self):
        m = TerminationMaster(2)

        def finish():
            m.set_inactive(0)
            m.set_inactive(1)

        t = threading.Timer(0.02, finish)
        t.start()
        m.wait_for_termination(timeout=5.0)
        assert m.terminated
        t.join()

    def test_wait_times_out(self):
        m = TerminationMaster(1)
        with pytest.raises(TerminationError):
            m.wait_for_termination(timeout=0.05)


class TestAbort:
    def test_abort_forces_termination(self):
        m = TerminationMaster(3)
        exc = RuntimeError("worker died")
        m.abort(exc)
        assert m.terminated
        assert m.aborted
        assert m.errors == [exc]

    def test_abort_releases_waiters_promptly(self):
        # Regression: a crashed worker used to leave the master blocked
        # until its timeout; abort must wake wait_for_termination at once.
        m = TerminationMaster(2)
        t = threading.Timer(0.02, m.abort, args=(ValueError("boom"),))
        t.start()
        m.wait_for_termination(timeout=5.0)  # must not raise / stall
        t.join()
        assert m.aborted

    def test_concurrent_errors_collected_not_overwritten(self):
        m = TerminationMaster(2)
        first, second = RuntimeError("first"), RuntimeError("second")
        m.abort(first)
        m.abort(second)
        assert m.errors[0] is first
        assert m.errors[1] is second

    def test_not_aborted_by_default(self):
        m = TerminationMaster(1)
        assert not m.aborted
        assert m.errors == []
