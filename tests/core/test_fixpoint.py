"""Tests for the scheduled fixpoint executor (equations (2)/(3))."""

import pytest

from repro.algorithms import CCProgram, CCQuery, SSSPProgram, SSSPQuery
from repro.core.engine import Engine
from repro.core.fixpoint import ScheduledExecutor, run_sequential_fixpoint
from repro.errors import TerminationError
from repro.graph import analysis, generators
from repro.partition.edge_cut import HashPartitioner


def make_engine(graph, program, query, m=4):
    pg = HashPartitioner().partition(graph, m)
    return Engine(program, pg, query)


class TestLifecycle:
    def test_step_before_start_rejected(self, small_grid):
        ex = ScheduledExecutor(make_engine(small_grid, CCProgram(), CCQuery()))
        with pytest.raises(TerminationError):
            ex.step(0)

    def test_double_start_rejected(self, small_grid):
        ex = ScheduledExecutor(make_engine(small_grid, CCProgram(), CCQuery()))
        ex.start()
        with pytest.raises(TerminationError):
            ex.start()

    def test_step_with_empty_buffer_is_noop(self, small_grid):
        ex = ScheduledExecutor(make_engine(small_grid, SSSPProgram(),
                                           SSSPQuery(source=0)))
        ex.start()
        # drain everything, then stepping is a no-op
        ex.drain()
        assert ex.step(0) is False


class TestFixpoint:
    def test_drain_reaches_reference(self, small_grid):
        engine = make_engine(small_grid, SSSPProgram(), SSSPQuery(source=0))
        answer = run_sequential_fixpoint(engine)
        ref = analysis.dijkstra(small_grid, 0)
        assert all(answer[v] == pytest.approx(ref[v]) for v in ref)

    def test_quiescent_after_drain(self, small_powerlaw):
        engine = make_engine(small_powerlaw, CCProgram(), CCQuery())
        ex = ScheduledExecutor(engine)
        ex.start()
        ex.drain()
        assert ex.quiescent

    def test_run_schedule_partial_then_drain(self, small_powerlaw):
        engine = make_engine(small_powerlaw, CCProgram(), CCQuery())
        ex = ScheduledExecutor(engine)
        answer = ex.run_schedule([0, 1, 0, 2, 3, 1], then_drain=True)
        assert answer == analysis.connected_components(small_powerlaw)

    def test_round_counters_advance(self, small_powerlaw):
        engine = make_engine(small_powerlaw, CCProgram(), CCQuery())
        ex = ScheduledExecutor(engine)
        ex.start()
        assert all(r == 1 for r in ex.rounds)
        ex.drain()
        assert any(r > 1 for r in ex.rounds)


class TestSupersteps:
    def test_strict_supersteps_reach_reference(self, small_grid):
        engine = make_engine(small_grid, SSSPProgram(), SSSPQuery(source=0))
        ex = ScheduledExecutor(engine)
        ex.start()
        count = ex.run_supersteps()
        assert count > 0
        ref = analysis.dijkstra(small_grid, 0)
        answer = ex.assemble()
        assert all(answer[v] == pytest.approx(ref[v]) for v in ref)

    def test_superstep_count_tracks_propagation_depth(self):
        # a path split into m chunks needs ~m superstep waves
        g = generators.path_graph(40, weighted=False)
        from repro.partition.edge_cut import RangePartitioner
        pg = RangePartitioner().partition(g, 8)
        engine = Engine(SSSPProgram(), pg, SSSPQuery(source=0))
        ex = ScheduledExecutor(engine)
        ex.start()
        count = ex.run_supersteps()
        assert count >= 7

    def test_superstep_false_at_fixpoint(self, small_grid):
        engine = make_engine(small_grid, CCProgram(), CCQuery())
        ex = ScheduledExecutor(engine)
        ex.start()
        ex.run_supersteps()
        assert ex.superstep() is False
