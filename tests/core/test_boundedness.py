"""Tests for the bounded-incrementality checker."""

import pytest

from repro.algorithms import CCProgram, CCQuery, SSSPProgram, SSSPQuery
from repro.core.boundedness import (BoundednessReport, Probe,
                                    measure_incrementality)
from repro.errors import ConvergenceError
from repro.graph import generators
from repro.partition.edge_cut import HashPartitioner


@pytest.fixture
def pg(small_grid):
    return HashPartitioner().partition(small_grid, 3)


class TestMeasurement:
    def test_cc_stale_redelivery_costs_nothing(self, pg):
        frag = pg.fragments[0]
        node = next(iter(frag.owned))
        # re-delivering the converged cid (or a larger one) is a no-op
        report = measure_incrementality(
            CCProgram(), pg, CCQuery(),
            perturbations=[(node, 10_000)], wid=0)
        probe = report.probes[0]
        assert probe.output_change == 0
        assert probe.work <= 1

    def test_cc_small_change_small_work(self, pg):
        """CC's IncEval is the paper's example of a *bounded* incremental
        algorithm (Fig. 3): work tracks the affected border members, not
        the fragment."""
        frag = pg.fragments[0]
        nodes = sorted(frag.owned)[:5]
        report = measure_incrementality(
            CCProgram(), pg, CCQuery(),
            perturbations=[(v, -1) for v in nodes], wid=0)
        assert report.looks_bounded(slack=8.0)
        # the first perturbation updates the affected border members;
        # later ones touch at most their own (stale) value, as the root
        # already carries cid -1
        assert report.probes[0].output_change > 0
        assert report.probes[-1].output_change <= 1
        assert report.probes[-1].work <= 3

    def test_sssp_bounded(self, pg):
        frag = pg.fragments[0]
        node = next(iter(frag.owned))
        report = measure_incrementality(
            SSSPProgram(), pg, SSSPQuery(source=0),
            perturbations=[(node, 0.001), (node, 0.0005)], wid=0)
        assert report.looks_bounded(slack=10.0)
        assert report.fragment_size > 0

    def test_unknown_node_rejected(self, pg):
        with pytest.raises(ConvergenceError):
            measure_incrementality(CCProgram(), pg, CCQuery(),
                                   perturbations=[("ghost", 1)], wid=0)


class TestReport:
    def test_empty_report_bounded(self):
        assert BoundednessReport().looks_bounded()
        assert BoundednessReport().max_work_per_change == 0.0

    def test_unbounded_detected(self):
        report = BoundednessReport(fragment_size=1000)
        report.probes.append(Probe(wid=0, input_change=1, output_change=1,
                                   work=900))
        assert not report.looks_bounded(slack=8.0)

    def test_zero_change_work(self):
        report = BoundednessReport()
        report.probes.append(Probe(wid=0, input_change=1, output_change=0,
                                   work=55))
        assert report.zero_change_work() == 55
        assert not report.looks_bounded(slack=8.0)

    def test_probe_change(self):
        assert Probe(wid=0, input_change=1, output_change=4,
                     work=10).change == 5
