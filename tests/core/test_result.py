"""Tests for RunResult."""

from repro.core.result import RunResult
from repro.runtime.metrics import RunMetrics, WorkerMetrics


def make_result():
    metrics = RunMetrics.from_workers(
        [WorkerMetrics(wid=0, rounds=3, busy_time=2.0, messages_sent=5,
                       bytes_sent=80)],
        makespan=7.5)
    return RunResult(answer={"x": 1}, mode="AAP", metrics=metrics,
                     rounds=[3])


class TestRunResult:
    def test_time_is_makespan(self):
        assert make_result().time == 7.5

    def test_communication_bytes(self):
        assert make_result().communication_bytes == 80

    def test_repr_mentions_mode_and_time(self):
        text = repr(make_result())
        assert "AAP" in text
        assert "7.5" in text

    def test_extras_default_empty(self):
        assert make_result().extras == {}
