"""Tests for designated messages and the receive buffer."""

from repro.core.messages import (ENTRY_BYTES, ENVELOPE_BYTES, Message,
                                 MessageBuffer, group_entries, make_messages)


class TestMessage:
    def test_size_accounting(self):
        m = Message(src=0, dst=1, round=2, entries=(("a", 1), ("b", 2)))
        assert m.size_bytes == ENVELOPE_BYTES + 2 * ENTRY_BYTES
        assert len(m) == 2

    def test_custom_entry_bytes(self):
        m = Message(src=0, dst=1, round=0, entries=(("a", 1),),
                    entry_bytes=64)
        assert m.size_bytes == ENVELOPE_BYTES + 64

    def test_seq_monotone(self):
        a = Message(src=0, dst=1, round=0, entries=())
        b = Message(src=0, dst=1, round=0, entries=())
        assert b.seq > a.seq


class TestMakeMessages:
    def test_one_per_destination(self):
        msgs = make_messages(0, 3, {2: [("x", 1)], 1: [("y", 2), ("z", 3)]})
        assert [m.dst for m in msgs] == [1, 2]
        assert all(m.src == 0 and m.round == 3 for m in msgs)

    def test_skips_empty_destinations(self):
        msgs = make_messages(0, 1, {1: []})
        assert msgs == []

    def test_token_attached(self):
        msgs = make_messages(0, 1, {1: [("x", 1)]}, token=42)
        assert msgs[0].token == 42


class TestBuffer:
    def test_staleness_counts_batches(self):
        buf = MessageBuffer()
        buf.push(Message(src=0, dst=1, round=0, entries=(("a", 1),)))
        buf.push(Message(src=2, dst=1, round=0, entries=(("b", 2),)))
        assert buf.staleness == 2
        assert len(buf) == 2
        assert bool(buf)

    def test_drain_atomic(self):
        buf = MessageBuffer()
        buf.push(Message(src=0, dst=1, round=0, entries=(("a", 1),)))
        taken = buf.drain()
        assert len(taken) == 1
        assert buf.staleness == 0
        assert not buf

    def test_totals_survive_drain(self):
        buf = MessageBuffer()
        m = Message(src=0, dst=1, round=0, entries=(("a", 1),))
        buf.push(m)
        buf.drain()
        assert buf.total_received == 1
        assert buf.total_bytes == m.size_bytes

    def test_distinct_senders(self):
        buf = MessageBuffer()
        for src in (0, 0, 3):
            buf.push(Message(src=src, dst=1, round=0, entries=(("a", 1),)))
        assert buf.distinct_senders() == {0, 3}

    def test_peek_does_not_consume(self):
        buf = MessageBuffer()
        a = Message(src=0, dst=1, round=0, entries=(("a", 1),))
        b = Message(src=2, dst=1, round=0, entries=(("b", 2),))
        buf.push(a)
        buf.push(b)
        assert buf.peek() == [a, b]
        assert len(buf) == 2
        assert buf.drain() == [a, b]

    def test_peek_returns_copy(self):
        buf = MessageBuffer()
        buf.push(Message(src=0, dst=1, round=0, entries=(("a", 1),)))
        view = buf.peek()
        view.clear()
        assert len(buf) == 1


class TestGroupEntries:
    def test_groups_by_node_in_order(self):
        m1 = Message(src=0, dst=1, round=0, entries=(("a", 1), ("b", 2)))
        m2 = Message(src=2, dst=1, round=0, entries=(("a", 3),))
        grouped = group_entries([m1, m2])
        assert grouped == {"a": [1, 3], "b": [2]}
