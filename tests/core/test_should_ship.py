"""Tests for the should_ship hook and held-back change semantics."""

from repro.algorithms import CCProgram, CCQuery, PageRankProgram, \
    PageRankQuery
from repro.core.engine import Engine
from repro.graph import generators
from repro.partition.edge_cut import RangePartitioner


class TestHoldBack:
    def test_held_nodes_stay_marked(self, small_grid):
        """A program that refuses to ship keeps the change marked so a
        later round can reconsider it."""

        class Stingy(CCProgram):
            def should_ship(self, frag, ctx, v):
                return False

        pg = RangePartitioner().partition(small_grid, 2)
        engine = Engine(Stingy(), pg, CCQuery())
        out = engine.run_peval(0)
        assert out.messages == []
        ctx = engine.contexts[0]
        # the shippable changes were put back
        ship = Stingy().ship_set(pg.fragments[0])
        assert ctx.changed & ship

    def test_default_ships_everything(self, small_grid):
        pg = RangePartitioner().partition(small_grid, 2)
        engine = Engine(CCProgram(), pg, CCQuery())
        out = engine.run_peval(0)
        assert out.messages
        assert not engine.contexts[0].changed & \
            CCProgram().ship_set(pg.fragments[0])

    def test_pagerank_thresholds_tiny_deltas(self):
        """PageRank's should_ship suppresses sub-threshold mirror deltas,
        reducing messages with a bounded accuracy cost."""
        g = generators.powerlaw(200, m=2, seed=9)
        from repro import api
        coarse = api.run(PageRankProgram(), g,
                         PageRankQuery(epsilon=1.0, num_nodes=200),
                         num_fragments=4, record_trace=False)
        fine = api.run(PageRankProgram(), g,
                       PageRankQuery(epsilon=1e-3, num_nodes=200),
                       num_fragments=4, record_trace=False)
        assert coarse.metrics.total_messages < fine.metrics.total_messages
