"""Tests for per-worker runtime state."""

from repro.core.messages import Message
from repro.core.worker import WorkerState, WorkerStatus


def msg(dst=0, src=1):
    return Message(src=src, dst=dst, round=0, entries=(("x", 1),))


class TestLifecycle:
    def test_initial_state(self):
        w = WorkerState(3)
        assert w.status is WorkerStatus.CREATED
        assert w.rounds == 0
        assert w.eta == 0
        assert w.pending  # created workers still owe their PEval

    def test_pending_semantics(self):
        w = WorkerState(0)
        w.status = WorkerStatus.INACTIVE
        assert not w.pending
        w.buffer.push(msg())
        assert w.pending
        w.buffer.drain()
        w.status = WorkerStatus.RUNNING
        assert w.pending

    def test_host_defaults_to_wid(self):
        assert WorkerState(5).host == 5
        assert WorkerState(5, host=2).host == 2


class TestIdleAccounting:
    def test_running_is_never_idle(self):
        w = WorkerState(0)
        w.status = WorkerStatus.RUNNING
        assert w.idle_for(100.0) == 0.0

    def test_idle_from_round_end(self):
        w = WorkerState(0)
        w.status = WorkerStatus.WAITING
        w.idle_since = 10.0
        assert w.idle_for(14.0) == 4.0

    def test_arrival_resets_idle_reference(self):
        """T_idle restarts when updates keep flowing (flux-aware guard)."""
        w = WorkerState(0)
        w.status = WorkerStatus.WAITING
        w.idle_since = 10.0
        w.last_arrival = 13.0
        assert w.idle_for(14.0) == 1.0

    def test_idle_never_negative(self):
        w = WorkerState(0)
        w.status = WorkerStatus.WAITING
        w.idle_since = 10.0
        assert w.idle_for(5.0) == 0.0


class TestWakeEpochs:
    def test_invalidate_bumps_epoch(self):
        w = WorkerState(0)
        e1 = w.invalidate_wakeups()
        e2 = w.invalidate_wakeups()
        assert e2 == e1 + 1
        assert w.wake_epoch == e2

    def test_eta_counts_batches(self):
        w = WorkerState(0)
        w.buffer.push(msg(src=1))
        w.buffer.push(msg(src=1))
        w.buffer.push(msg(src=2))
        assert w.eta == 3
