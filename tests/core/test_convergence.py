"""Tests for the T1/T2/Church-Rosser condition checkers."""

import pytest

from repro.algorithms import (CCProgram, CCQuery, PageRankProgram,
                              PageRankQuery, SSSPProgram, SSSPQuery)
from repro.core.aggregators import Max
from repro.core.convergence import (check_church_rosser, check_contracting,
                                    random_schedule_run, verify_conditions)
from repro.partition.edge_cut import HashPartitioner


@pytest.fixture
def pg(small_powerlaw):
    return HashPartitioner().partition(small_powerlaw, 4)


class TestContracting:
    def test_cc_is_contracting(self, pg):
        assert check_contracting(CCProgram(), pg, CCQuery()) == []

    def test_sssp_is_contracting(self, pg):
        assert check_contracting(SSSPProgram(), pg,
                                 SSSPQuery(source=0)) == []

    def test_accumulative_programs_skipped(self, pg):
        assert check_contracting(PageRankProgram(), pg,
                                 PageRankQuery()) == []

    def test_detects_violation(self, pg):
        class BrokenCC(CCProgram):
            """Claims a max-order while computing min-cids: not contracting."""
            aggregator = CCProgram.aggregator

            def leq(self, a, b):
                return a >= b  # wrong direction on purpose

        violations = check_contracting(BrokenCC(), pg, CCQuery())
        assert violations


class TestChurchRosser:
    def test_cc_confluent(self, pg):
        assert check_church_rosser(CCProgram(), pg, CCQuery(), runs=4) == []

    def test_sssp_confluent(self, pg):
        assert check_church_rosser(SSSPProgram(), pg, SSSPQuery(source=0),
                                   runs=4) == []

    def test_custom_equality(self, pg):
        def close(a, b):
            return all(abs(a[k] - b[k]) < 1e-2 for k in a)

        assert check_church_rosser(PageRankProgram(), pg,
                                   PageRankQuery(epsilon=1e-4),
                                   runs=3, equal=close) == []

    def test_random_schedule_run_matches_reference(self, pg,
                                                   small_powerlaw):
        from repro.graph import analysis
        answer = random_schedule_run(CCProgram(), pg, CCQuery(), seed=9)
        assert answer == analysis.connected_components(small_powerlaw)


class TestVerifyConditions:
    def test_full_report_ok(self, pg):
        report = verify_conditions(CCProgram(), pg, CCQuery(), runs=3)
        assert report.ok
        assert report.t1_finite_domain
        assert report.t2_contracting
        assert report.church_rosser
        assert report.violations == []

    def test_t1_reflects_declaration(self, pg):
        report = verify_conditions(PageRankProgram(), pg,
                                   PageRankQuery(epsilon=1e-3), runs=1,
                                   equal=lambda a, b: True)
        assert not report.t1_finite_domain
