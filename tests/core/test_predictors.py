"""Tests for the EMA-based runtime predictors."""

import pytest

from repro.core.predictors import ArrivalRatePredictor, Ema, RoundTimePredictor


class TestEma:
    def test_first_observation(self):
        e = Ema(alpha=0.5)
        e.observe(4.0)
        assert e.value == 4.0
        assert e.count == 1

    def test_smoothing(self):
        e = Ema(alpha=0.5)
        e.observe(0.0)
        e.observe(10.0)
        assert e.value == 5.0

    def test_alpha_one_tracks_last(self):
        e = Ema(alpha=1.0)
        e.observe(1.0)
        e.observe(9.0)
        assert e.value == 9.0

    def test_get_default(self):
        assert Ema().get(default=7.0) == 7.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            Ema(alpha=0.0)
        with pytest.raises(ValueError):
            Ema(alpha=1.5)


class TestRoundTimePredictor:
    def test_default_before_observations(self):
        assert RoundTimePredictor().predict(default=3.0) == 3.0

    def test_converges_to_constant(self):
        p = RoundTimePredictor(alpha=0.5)
        for _ in range(20):
            p.observe_round(6.0)
        assert p.predict() == pytest.approx(6.0)


class TestArrivalRatePredictor:
    def test_unknown_before_two_arrivals(self):
        p = ArrivalRatePredictor()
        assert p.predict() == 0.0
        p.observe_arrival(1.0)
        assert p.predict() == 0.0

    def test_steady_rate(self):
        p = ArrivalRatePredictor(alpha=0.5)
        for t in range(10):
            p.observe_arrival(float(t) * 2.0)
        assert p.predict() == pytest.approx(0.5)

    def test_simultaneous_arrivals_give_infinite_rate(self):
        p = ArrivalRatePredictor(alpha=1.0)
        p.observe_arrival(1.0)
        p.observe_arrival(1.0)
        assert p.predict() == float("inf")

    def test_rate_adapts(self):
        p = ArrivalRatePredictor(alpha=1.0)
        p.observe_arrival(0.0)
        p.observe_arrival(1.0)
        assert p.predict() == pytest.approx(1.0)
        p.observe_arrival(5.0)
        assert p.predict() == pytest.approx(0.25)
