"""Tests for the EMA-based runtime predictors."""

import math

import pytest

from repro.core.predictors import (MAX_ARRIVAL_RATE, ArrivalRatePredictor,
                                   Ema, RoundTimePredictor)


class TestEma:
    def test_first_observation(self):
        e = Ema(alpha=0.5)
        e.observe(4.0)
        assert e.value == 4.0
        assert e.count == 1

    def test_smoothing(self):
        e = Ema(alpha=0.5)
        e.observe(0.0)
        e.observe(10.0)
        assert e.value == 5.0

    def test_alpha_one_tracks_last(self):
        e = Ema(alpha=1.0)
        e.observe(1.0)
        e.observe(9.0)
        assert e.value == 9.0

    def test_get_default(self):
        assert Ema().get(default=7.0) == 7.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            Ema(alpha=0.0)
        with pytest.raises(ValueError):
            Ema(alpha=1.5)


class TestRoundTimePredictor:
    def test_default_before_observations(self):
        assert RoundTimePredictor().predict(default=3.0) == 3.0

    def test_converges_to_constant(self):
        p = RoundTimePredictor(alpha=0.5)
        for _ in range(20):
            p.observe_round(6.0)
        assert p.predict() == pytest.approx(6.0)


class TestArrivalRatePredictor:
    def test_unknown_before_two_arrivals(self):
        p = ArrivalRatePredictor()
        assert p.predict() == 0.0
        p.observe_arrival(1.0)
        assert p.predict() == 0.0

    def test_steady_rate(self):
        p = ArrivalRatePredictor(alpha=0.5)
        for t in range(10):
            p.observe_arrival(float(t) * 2.0)
        assert p.predict() == pytest.approx(0.5)

    def test_simultaneous_arrivals_clamped_to_finite_ceiling(self):
        # Regression: a zero EMA gap used to yield rate == inf, which
        # poisons Eq. 1's fleet-average rate and the DS_i computation.
        p = ArrivalRatePredictor(alpha=1.0)
        p.observe_arrival(1.0)
        p.observe_arrival(1.0)
        rate = p.predict()
        assert rate == MAX_ARRIVAL_RATE
        assert math.isfinite(rate)

    def test_ceiling_is_configurable(self):
        p = ArrivalRatePredictor(alpha=1.0, max_rate=100.0)
        p.observe_arrival(2.0)
        p.observe_arrival(2.0)
        assert p.predict() == 100.0
        with pytest.raises(ValueError):
            ArrivalRatePredictor(max_rate=0.0)

    def test_tiny_positive_gap_also_clamped(self):
        p = ArrivalRatePredictor(alpha=1.0, max_rate=1e6)
        p.observe_arrival(0.0)
        p.observe_arrival(1e-12)
        assert p.predict() == 1e6

    def test_clamped_rate_keeps_delay_policy_finite(self):
        # The clamped s_pred must flow through Eq. 1 without producing
        # NaN/inf stretches: a zero window at huge rate means "start now".
        from repro.core.delay import AAPPolicy, WorkerView

        p = ArrivalRatePredictor(alpha=1.0)
        p.observe_arrival(1.0)
        p.observe_arrival(1.0)
        view = WorkerView(wid=0, round=3, eta=4, rmin=3, rmax=5,
                          idle_time=0.0, now=2.0, t_pred=1.0,
                          s_pred=p.predict(), fleet_avg_rate=p.predict(),
                          num_workers=4, num_peers=3,
                          fleet_avg_round_time=1.0)
        ds = AAPPolicy().delay(view)
        assert math.isfinite(ds)
        assert ds >= 0.0

    def test_rate_adapts(self):
        p = ArrivalRatePredictor(alpha=1.0)
        p.observe_arrival(0.0)
        p.observe_arrival(1.0)
        assert p.predict() == pytest.approx(1.0)
        p.observe_arrival(5.0)
        assert p.predict() == pytest.approx(0.25)
