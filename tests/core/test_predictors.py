"""Tests for the EMA-based runtime predictors."""

import math

import pytest

from repro.core.predictors import (MAX_ARRIVAL_RATE, ArrivalRatePredictor,
                                   Ema, RoundTimePredictor)


class TestEma:
    def test_first_observation(self):
        e = Ema(alpha=0.5)
        e.observe(4.0)
        assert e.value == 4.0
        assert e.count == 1

    def test_smoothing(self):
        e = Ema(alpha=0.5)
        e.observe(0.0)
        e.observe(10.0)
        # raw EMA (seeded at 0): 0.5*10 = 5; bias correction divides by
        # 1 - 0.5^2 = 0.75, the weight mass actually observed so far
        assert e.value == pytest.approx(5.0 / 0.75)

    def test_alpha_one_tracks_last(self):
        e = Ema(alpha=1.0)
        e.observe(1.0)
        e.observe(9.0)
        assert e.value == 9.0

    def test_get_default(self):
        assert Ema().get(default=7.0) == 7.0

    def test_warm_up_is_bias_corrected(self):
        # The docstring's contract: a constant input yields that constant
        # from the very first observation, instead of warming up from the
        # raw EMA's zero seed.
        e = Ema(alpha=0.1)
        for i in range(1, 8):
            e.observe(6.0)
            assert e.value == pytest.approx(6.0), f"biased after {i} obs"

    def test_warm_up_converges_to_plain_ema(self):
        # Once enough mass has been observed the correction factor tends
        # to 1 and the estimate matches the uncorrected recursion.
        e = Ema(alpha=0.5)
        raw = 0.0
        for x in [3.0, 9.0, 1.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0]:
            e.observe(x)
            raw = 0.5 * x + 0.5 * raw
        assert e.value == pytest.approx(raw, rel=1e-3)

    def test_correction_weights_match_closed_form(self):
        # v_t / (1 - (1-alpha)^t) for t observations of x_1..x_t
        e = Ema(alpha=0.3)
        xs = [2.0, 8.0, 5.0]
        for x in xs:
            e.observe(x)
        raw = 0.0
        for x in xs:
            raw = 0.3 * x + 0.7 * raw
        assert e.value == pytest.approx(raw / (1 - 0.7 ** 3))

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            Ema(alpha=0.0)
        with pytest.raises(ValueError):
            Ema(alpha=1.5)


class TestRoundTimePredictor:
    def test_default_before_observations(self):
        assert RoundTimePredictor().predict(default=3.0) == 3.0

    def test_converges_to_constant(self):
        p = RoundTimePredictor(alpha=0.5)
        for _ in range(20):
            p.observe_round(6.0)
        assert p.predict() == pytest.approx(6.0)


class TestArrivalRatePredictor:
    def test_unknown_before_two_arrivals(self):
        p = ArrivalRatePredictor()
        assert p.predict() == 0.0
        p.observe_arrival(1.0)
        assert p.predict() == 0.0

    def test_steady_rate(self):
        p = ArrivalRatePredictor(alpha=0.5)
        for t in range(10):
            p.observe_arrival(float(t) * 2.0)
        assert p.predict() == pytest.approx(0.5)

    def test_simultaneous_arrivals_clamped_to_finite_ceiling(self):
        # Regression: a zero EMA gap used to yield rate == inf, which
        # poisons Eq. 1's fleet-average rate and the DS_i computation.
        p = ArrivalRatePredictor(alpha=1.0)
        p.observe_arrival(1.0)
        p.observe_arrival(1.0)
        rate = p.predict()
        assert rate == MAX_ARRIVAL_RATE
        assert math.isfinite(rate)

    def test_ceiling_is_configurable(self):
        p = ArrivalRatePredictor(alpha=1.0, max_rate=100.0)
        p.observe_arrival(2.0)
        p.observe_arrival(2.0)
        assert p.predict() == 100.0
        with pytest.raises(ValueError):
            ArrivalRatePredictor(max_rate=0.0)

    def test_tiny_positive_gap_also_clamped(self):
        p = ArrivalRatePredictor(alpha=1.0, max_rate=1e6)
        p.observe_arrival(0.0)
        p.observe_arrival(1e-12)
        assert p.predict() == 1e6

    def test_clamped_rate_keeps_delay_policy_finite(self):
        # The clamped s_pred must flow through Eq. 1 without producing
        # NaN/inf stretches: a zero window at huge rate means "start now".
        from repro.core.delay import AAPPolicy, WorkerView

        p = ArrivalRatePredictor(alpha=1.0)
        p.observe_arrival(1.0)
        p.observe_arrival(1.0)
        view = WorkerView(wid=0, round=3, eta=4, rmin=3, rmax=5,
                          idle_time=0.0, now=2.0, t_pred=1.0,
                          s_pred=p.predict(), fleet_avg_rate=p.predict(),
                          num_workers=4, num_peers=3,
                          fleet_avg_round_time=1.0)
        ds = AAPPolicy().delay(view)
        assert math.isfinite(ds)
        assert ds >= 0.0

    def test_rate_adapts(self):
        p = ArrivalRatePredictor(alpha=1.0)
        p.observe_arrival(0.0)
        p.observe_arrival(1.0)
        assert p.predict() == pytest.approx(1.0)
        p.observe_arrival(5.0)
        assert p.predict() == pytest.approx(0.25)


class TestArrivalRateDecay:
    """Regression: the docstring promises 0.0 'when arrivals stopped', but
    without the ``now`` decay the rate stayed at its mid-run value forever,
    inflating AAP wait targets in the endgame."""

    def _steady(self, gap=1.0, n=10):
        p = ArrivalRatePredictor(alpha=1.0)
        for i in range(n):
            p.observe_arrival(i * gap)
        return p

    def test_no_now_keeps_legacy_behaviour(self):
        p = self._steady()
        assert p.predict() == pytest.approx(1.0)

    def test_rate_unchanged_while_flux_continues(self):
        p = self._steady()
        # asked right at/just after the last arrival: full rate
        assert p.predict(now=9.0) == pytest.approx(1.0)
        assert p.predict(now=9.5) == pytest.approx(1.0)

    def test_rate_decays_with_silence(self):
        p = self._steady()
        r2 = p.predict(now=9.0 + 2.0)
        r4 = p.predict(now=9.0 + 4.0)
        assert r2 == pytest.approx(0.5)
        assert r4 == pytest.approx(0.25)
        assert r4 < r2 < 1.0

    def test_quiet_worker_rate_falls_to_zero(self):
        p = self._steady()
        # past stale_after (default 8) smoothed gaps: arrivals stopped
        assert p.predict(now=9.0 + 100.0) == 0.0

    def test_stale_after_configurable(self):
        p = ArrivalRatePredictor(alpha=1.0, stale_after=2.0)
        p.observe_arrival(0.0)
        p.observe_arrival(1.0)
        assert p.predict(now=2.5) > 0.0
        assert p.predict(now=3.5) == 0.0
        with pytest.raises(ValueError):
            ArrivalRatePredictor(stale_after=0.0)

    def test_simultaneous_arrivals_decay_uses_clamp_floor(self):
        # gap EMA is 0 (clamped rate); the staleness horizon must use the
        # clamp floor, not 8 * 0 = 0, or the rate would always read 0
        p = ArrivalRatePredictor(alpha=1.0, max_rate=10.0)
        p.observe_arrival(1.0)
        p.observe_arrival(1.0)
        assert p.predict(now=1.0) == 10.0
        assert p.predict(now=100.0) == 0.0
