"""Tests for the dense (vectorized) fragment state and packed messages."""

import copy
import math

import numpy as np
import pytest

from repro import api
from repro.algorithms import (CFProgram, CFQuery, SSSPProgram, SSSPQuery)
from repro.core.dense import DenseContext, supports_dense
from repro.core.engine import Engine
from repro.core.messages import (ENVELOPE_BYTES, Message, MessageBatch,
                                 entry_count, group_entries)
from repro.errors import ProgramError
from repro.graph import generators
from repro.graph.graph import Graph


@pytest.fixture
def pg(small_grid):
    return api.partition_graph(small_grid, 3)


@pytest.fixture
def dense_ctx(pg):
    program = SSSPProgram()
    return program.make_dense_context(pg.fragments[0],
                                      SSSPQuery(source=0))


class TestSupportsDense:
    def test_sssp_on_int_ids(self, pg):
        assert supports_dense(SSSPProgram(), pg)

    def test_mapping_reads_use_fragment(self, pg):
        frag = pg.fragments[0]
        ctx = SSSPProgram().make_dense_context(frag, SSSPQuery(source=0))
        assert set(ctx.values) == set(frag.graph.nodes)

    def test_cf_not_dense_capable(self, pg):
        assert not supports_dense(CFProgram(), pg)

    def test_string_ids_fall_back(self):
        g = Graph(directed=False)
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "c", 2.0)
        pg = api.partition_graph(g, 2)
        assert not supports_dense(SSSPProgram(), pg)

    def test_engine_falls_back_silently(self):
        g = Graph(directed=False)
        g.add_edge("a", "b", 1.0)
        pg = api.partition_graph(g, 1)
        eng = Engine(SSSPProgram(), pg, SSSPQuery(source="a"),
                     vectorized=True)
        assert not eng.vectorized

    def test_fallback_answer_matches_generic(self):
        g = Graph(directed=False)
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "c", 2.0)
        r_gen = api.run(SSSPProgram(), g, SSSPQuery(source="a"),
                        num_fragments=2)
        r_vec = api.run(SSSPProgram(), g, SSSPQuery(source="a"),
                        num_fragments=2, vectorized=True)
        assert r_gen.answer == r_vec.answer

    def test_cf_vectorized_flag_is_noop(self):
        g, _, _ = generators.bipartite_ratings(12, 8, 4, rank=3, seed=3)
        query = CFQuery(rank=3, epochs=2)
        r_gen = api.run(CFProgram(), g, query, num_fragments=2)
        r_vec = api.run(CFProgram(), g, query, num_fragments=2,
                        vectorized=True)
        assert r_gen.answer == r_vec.answer


class TestDenseValuesFacade:
    def test_mapping_reads(self, dense_ctx, pg):
        vals = dense_ctx.values
        nodes = set(pg.fragments[0].graph.nodes)
        assert set(vals) == nodes
        assert len(vals) == len(nodes)
        for v in nodes:
            assert isinstance(vals[v], float)

    def test_getitem_unknown_raises_keyerror(self, dense_ctx):
        with pytest.raises(KeyError):
            dense_ctx.values["ghost"]

    def test_update_loads_into_array(self, dense_ctx):
        some = next(iter(dense_ctx.values))
        dense_ctx.values.update({some: 7.5})
        assert dense_ctx.get(some) == 7.5

    def test_deepcopy_is_plain_dict(self, dense_ctx):
        snap = copy.deepcopy(dense_ctx.values)
        assert isinstance(snap, dict)
        assert snap == dict(dense_ctx.values)
        # a snapshot must not alias the live array
        some = next(iter(snap))
        dense_ctx.set(some, -123.0)
        assert snap[some] != -123.0

    def test_values_setter_replaces_state(self, dense_ctx):
        replacement = {v: 1.0 for v in dense_ctx.values}
        dense_ctx.values = replacement
        assert all(x == 1.0 for x in dense_ctx.values.values())


class TestChangedFacade:
    def test_set_marks_changed(self, dense_ctx):
        some = next(iter(dense_ctx.values))
        assert dense_ctx.set(some, 3.25)
        assert some in dense_ctx.changed
        assert not dense_ctx.set(some, 3.25)  # unchanged value

    def test_take_changed_clears_mask(self, dense_ctx):
        some = next(iter(dense_ctx.values))
        dense_ctx.set(some, 2.0)
        taken = dense_ctx.take_changed()
        assert taken == {some}
        assert len(dense_ctx.changed) == 0
        assert not dense_ctx.changed

    def test_add_discard_iter(self, dense_ctx):
        a, b = list(dense_ctx.values)[:2]
        dense_ctx.changed.add(a)
        dense_ctx.changed.add(b)
        assert set(dense_ctx.changed) == {a, b}
        dense_ctx.changed.discard(a)
        assert set(dense_ctx.changed) == {b}
        dense_ctx.changed.clear()
        assert set(dense_ctx.changed) == set()

    def test_changed_setter(self, dense_ctx):
        a = next(iter(dense_ctx.values))
        dense_ctx.changed = [a]
        assert set(dense_ctx.changed) == {a}

    def test_eq_against_set(self, dense_ctx):
        a = next(iter(dense_ctx.values))
        dense_ctx.changed.add(a)
        assert dense_ctx.changed == {a}


class TestDenseScalarAccess:
    def test_get_set_silent(self, dense_ctx):
        some = next(iter(dense_ctx.values))
        dense_ctx.set_silent(some, 9.0)
        assert dense_ctx.get(some) == 9.0
        assert some not in dense_ctx.changed  # silent: no mask bit

    def test_unknown_node_raises(self, dense_ctx):
        for op in (lambda: dense_ctx.get("ghost"),
                   lambda: dense_ctx.set("ghost", 1.0),
                   lambda: dense_ctx.set_silent("ghost", 1.0)):
            with pytest.raises(ProgramError):
                op()

    def test_init_values_seeded(self, pg):
        frag = next(f for f in pg.fragments if f.graph.has_node(0))
        ctx = SSSPProgram().make_dense_context(frag, SSSPQuery(source=0))
        assert ctx.get(0) == 0.0
        others = [v for v in frag.graph.nodes if v != 0]
        assert all(ctx.get(v) == math.inf for v in others)

    def test_is_fragment_context_subclass(self, dense_ctx):
        from repro.core.pie import FragmentContext
        assert isinstance(dense_ctx, FragmentContext)
        assert isinstance(dense_ctx, DenseContext)


class TestMessageBatch:
    def _batch(self, n=4, **kw):
        return MessageBatch(src=0, dst=1, round=2,
                            ids=np.arange(n, dtype=np.int64),
                            payloads=np.linspace(0.0, 1.0, n), **kw)

    def test_len_is_entry_count(self):
        assert len(self._batch(5)) == 5
        assert entry_count([self._batch(3), self._batch(2)]) == 5

    def test_entries_property_unpacks(self):
        b = self._batch(3)
        assert b.entries == ((0, 0.0), (1, 0.5), (2, 1.0))

    def test_size_bytes_is_packed(self):
        b = self._batch(100)
        assert b.size_bytes == ENVELOPE_BYTES + b.ids.nbytes \
            + b.payloads.nbytes
        # packing amortises the envelope vs 100 unpacked messages
        unpacked = sum(
            Message(src=0, dst=1, round=2, entries=((i, 0.0),)).size_bytes
            for i in range(100))
        assert b.size_bytes < unpacked

    def test_group_entries_accepts_batches(self):
        grouped = group_entries([self._batch(3)])
        assert grouped == {0: [0.0], 1: [0.5], 2: [1.0]}

    def test_mixed_entry_count(self):
        m = Message(src=0, dst=1, round=0, entries=((7, 1.0),))
        assert entry_count([m, self._batch(2)]) == 3
