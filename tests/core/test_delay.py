"""Tests for the delay-stretch policies: AAP's Eq. (1) and the
special cases."""

import math

import pytest

from repro.core.delay import (AAPPolicy, APPolicy, BSPPolicy, HsyncPolicy,
                              SSPPolicy, WorkerView)
from repro.errors import RuntimeConfigError

INF = math.inf


def view(**kwargs) -> WorkerView:
    defaults = dict(wid=0, round=1, eta=1, rmin=1, rmax=1, idle_time=0.0,
                    now=10.0, t_pred=2.0, s_pred=1.0, fleet_avg_rate=1.0,
                    num_workers=4, num_peers=3, fleet_avg_round_time=2.0)
    defaults.update(kwargs)
    return WorkerView(**defaults)


class TestAP:
    def test_never_waits(self):
        assert APPolicy().delay(view(eta=1)) == 0.0
        assert APPolicy().delay(view(eta=100, round=50, rmin=0)) == 0.0


class TestBSP:
    def test_at_rmin_proceeds(self):
        assert BSPPolicy().delay(view(round=3, rmin=3)) == 0.0

    def test_ahead_suspends(self):
        assert BSPPolicy().delay(view(round=4, rmin=3)) == INF

    def test_behind_proceeds(self):
        assert BSPPolicy().delay(view(round=2, rmin=3)) == 0.0


class TestSSP:
    def test_within_bound_proceeds(self):
        p = SSPPolicy(staleness_bound=2)
        assert p.delay(view(round=3, rmin=1)) == 0.0

    def test_beyond_bound_suspends(self):
        p = SSPPolicy(staleness_bound=2)
        assert p.delay(view(round=4, rmin=1)) == INF

    def test_bound_zero_is_bsp(self):
        p = SSPPolicy(staleness_bound=0)
        assert p.delay(view(round=2, rmin=1)) == INF
        assert p.delay(view(round=1, rmin=1)) == 0.0

    def test_negative_bound_rejected(self):
        with pytest.raises(RuntimeConfigError):
            SSPPolicy(staleness_bound=-1)


class TestAAP:
    def test_empty_buffer_suspends(self):
        assert AAPPolicy().delay(view(eta=0)) == INF

    def test_enough_accumulated_runs(self):
        p = AAPPolicy(l_bottom=2, l_bottom_fraction=0.0)
        assert p.delay(view(eta=2, s_pred=0.5, fleet_avg_rate=1.0)) == 0.0

    def test_below_l_bottom_waits(self):
        p = AAPPolicy(l_bottom=4, l_bottom_fraction=0.0)
        ds = p.delay(view(eta=1, s_pred=1.0, fleet_avg_rate=2.0))
        assert 0.0 < ds < INF

    def test_wait_shrinks_with_idle_time(self):
        p = AAPPolicy(l_bottom=4, l_bottom_fraction=0.0)
        d0 = p.delay(view(eta=1, s_pred=1.0, fleet_avg_rate=2.0,
                          idle_time=0.0))
        d1 = p.delay(view(eta=1, s_pred=1.0, fleet_avg_rate=2.0,
                          idle_time=d0 / 2))
        assert d1 < d0

    def test_no_arrival_estimate_runs(self):
        p = AAPPolicy(l_bottom=5, l_bottom_fraction=0.0)
        assert p.delay(view(eta=1, s_pred=0.0)) == 0.0

    def test_infinite_rate_runs(self):
        p = AAPPolicy(l_bottom=5, l_bottom_fraction=0.0)
        assert p.delay(view(eta=1, s_pred=INF, fleet_avg_rate=1.0)) == 0.0

    def test_high_influx_extends_target(self):
        # rate above fleet average: target exceeds eta, so the worker waits
        p = AAPPolicy(l_bottom=0, l_bottom_fraction=0.0, dt_fraction=0.5)
        ds = p.delay(view(eta=3, s_pred=4.0, fleet_avg_rate=1.0,
                          t_pred=2.0, fleet_avg_round_time=2.0))
        assert 0.0 < ds <= 2.0

    def test_wait_capped_by_fleet_round_time(self):
        # straggler: own round time huge, cap must follow the fleet's
        p = AAPPolicy(l_bottom=100, l_bottom_fraction=0.0,
                      wait_cap_fraction=1.0)
        ds = p.delay(view(eta=1, s_pred=0.01, fleet_avg_rate=100.0,
                          t_pred=1000.0, fleet_avg_round_time=2.0))
        assert ds <= 2.0

    def test_l_bottom_fraction_scales_with_peers(self):
        p = AAPPolicy(l_bottom_fraction=1.0)
        assert p.effective_l_bottom(num_peers=7) == 7.0
        assert p.effective_l_bottom(num_peers=0) == 1.0

    def test_staleness_bound_predicate(self):
        p = AAPPolicy(staleness_bound=2)
        # fastest worker too far ahead -> suspended
        assert p.delay(view(round=5, rmin=1, rmax=5, eta=3)) == INF
        # within bound -> proceeds normally
        assert p.delay(view(round=3, rmin=1, rmax=5, eta=10,
                            s_pred=0.1, fleet_avg_rate=1.0)) == 0.0

    def test_custom_predicate(self):
        p = AAPPolicy(predicate=lambda r, rmin, rmax: False)
        assert p.delay(view(eta=5)) == INF

    def test_invalid_config(self):
        with pytest.raises(RuntimeConfigError):
            AAPPolicy(l_bottom=-1)
        with pytest.raises(RuntimeConfigError):
            AAPPolicy(l_bottom_fraction=2.0)
        with pytest.raises(RuntimeConfigError):
            AAPPolicy(dt_fraction=-0.1)


class TestHsync:
    def test_starts_in_ap_mode(self):
        p = HsyncPolicy()
        assert p.mode == "AP"
        assert p.delay(view(round=9, rmin=0)) == 0.0

    def test_switches_to_bsp_on_staleness(self):
        p = HsyncPolicy(staleness_threshold=1.0, window=2)
        for _ in range(2):
            p.on_round_complete(view(eta=5), duration=1.0)
        assert p.mode == "BSP"
        assert p.switches == 1

    def test_switch_cost_paid_once_per_worker(self):
        p = HsyncPolicy(staleness_threshold=1.0, window=2, switch_cost=3.0)
        for _ in range(2):
            p.on_round_complete(view(eta=5), duration=1.0)
        d_first = p.delay(view(wid=1, round=1, rmin=1))
        d_second = p.delay(view(wid=1, round=1, rmin=1))
        assert d_first == 3.0
        assert d_second == 0.0

    def test_barrier_blocked_worker_still_pays_switch_cost(self):
        """Regression: _paid was recorded before the INF early-return, so a
        worker blocked at the BSP barrier was marked as having paid the
        switch cost without ever serving it."""
        p = HsyncPolicy(staleness_threshold=1.0, window=2, switch_cost=3.0)
        for _ in range(2):
            p.on_round_complete(view(eta=5), duration=1.0)
        assert p.mode == "BSP" and p.switches == 1
        # worker 2 is ahead of the barrier: suspended, and NOT marked paid
        assert p.delay(view(wid=2, round=4, rmin=3)) == INF
        assert 2 not in p._paid
        # once the barrier releases it, the switch cost is finally charged
        assert p.delay(view(wid=2, round=3, rmin=3)) == 3.0
        # and only once
        assert p.delay(view(wid=2, round=3, rmin=3)) == 0.0

    def test_switches_back_to_ap_on_straggle(self):
        p = HsyncPolicy(straggler_threshold=1.5, staleness_threshold=1.0,
                        window=2)
        for _ in range(2):
            p.on_round_complete(view(eta=5), duration=1.0)
        assert p.mode == "BSP"
        p.on_round_complete(view(eta=0), duration=1.0)
        p.on_round_complete(view(eta=0), duration=10.0)
        assert p.mode == "AP"
