"""Tests for the aggregate functions f_aggr."""

import pytest

from repro.core.aggregators import LatestByVersion, Max, Min, Sum
from repro.errors import ProgramError


class TestMin:
    def test_combine(self):
        assert Min().combine(5, [7, 3, 9]) == 3

    def test_keeps_current_when_better(self):
        assert Min().combine(1, [2, 3]) == 1

    def test_empty_incoming(self):
        assert Min().combine(4, []) == 4

    def test_order(self):
        m = Min()
        assert m.leq(1, 2)
        assert m.leq(2, 2)
        assert not m.leq(3, 2)

    def test_no_identity(self):
        with pytest.raises(ProgramError):
            Min().identity()

    def test_not_accumulative(self):
        assert not Min().accumulative


class TestMax:
    def test_combine(self):
        assert Max().combine(5, [7, 3, 9]) == 9

    def test_order(self):
        m = Max()
        assert m.leq(3, 2)
        assert not m.leq(1, 2)


class TestSum:
    def test_combine(self):
        assert Sum().combine(1.0, [2.0, 3.0]) == 6.0

    def test_identity(self):
        assert Sum().identity() == 0.0

    def test_custom_zero(self):
        assert Sum(zero=10).identity() == 10

    def test_accumulative_flag(self):
        assert Sum().accumulative


class TestLatestByVersion:
    def test_higher_version_wins(self):
        agg = LatestByVersion()
        assert agg.combine((1, "a"), [(3, "b"), (2, "c")]) == (3, "b")

    def test_tie_broken_deterministically(self):
        agg = LatestByVersion()
        r1 = agg.combine((1, "a"), [(1, "z"), (1, "m")])
        r2 = agg.combine((1, "m"), [(1, "a"), (1, "z")])
        assert r1 == r2 == (1, "z")

    def test_order(self):
        agg = LatestByVersion()
        assert agg.leq((3, None), (2, None))
        assert not agg.leq((1, None), (2, None))
