"""Tests for the PIE programming-model contracts."""

import pytest

from repro.algorithms import CCProgram, CCQuery, SSSPProgram, SSSPQuery
from repro.core.aggregators import Min
from repro.core.pie import FragmentContext, PIEProgram
from repro.errors import ProgramError
from repro.partition.edge_cut import HashPartitioner


@pytest.fixture
def frag(small_grid):
    return HashPartitioner().partition(small_grid, 3).fragments[0]


@pytest.fixture
def ctx(frag):
    init = {v: v for v in frag.graph.nodes}
    return FragmentContext(frag, Min(), init)


class TestFragmentContext:
    def test_get_set(self, ctx, frag):
        v = next(iter(frag.owned))
        assert ctx.set(v, -1)
        assert ctx.get(v) == -1
        assert v in ctx.changed

    def test_set_same_value_not_changed(self, ctx, frag):
        v = next(iter(frag.owned))
        assert not ctx.set(v, ctx.get(v))
        assert v not in ctx.changed

    def test_update_aggregates(self, ctx, frag):
        v = next(iter(frag.owned))
        current = ctx.get(v)
        assert ctx.update(v, current + 5, current - 3)
        assert ctx.get(v) == current - 3

    def test_update_no_improvement(self, ctx, frag):
        v = next(iter(frag.owned))
        assert not ctx.update(v, ctx.get(v) + 10)

    def test_unknown_node(self, ctx):
        with pytest.raises(ProgramError):
            ctx.get("missing")
        with pytest.raises(ProgramError):
            ctx.set("missing", 1)
        with pytest.raises(ProgramError):
            ctx.set_silent("missing", 1)

    def test_set_silent_untracked(self, ctx, frag):
        v = next(iter(frag.owned))
        ctx.set_silent(v, -99)
        assert ctx.get(v) == -99
        assert v not in ctx.changed

    def test_take_changed_clears(self, ctx, frag):
        v = next(iter(frag.owned))
        ctx.set(v, -1)
        taken = ctx.take_changed()
        assert taken == {v}
        assert ctx.changed == set()

    def test_work_accounting(self, ctx):
        ctx.add_work(3)
        ctx.add_work()
        assert ctx.take_work() == 4
        assert ctx.take_work() == 0


class TestProgramDeclarations:
    def test_default_candidates_are_shared(self, frag):
        prog = SSSPProgram()
        assert prog.candidates(frag) == frag.shared_nodes

    def test_ship_set_only_nodes_with_locations(self, frag):
        prog = CCProgram()
        for v in prog.ship_set(frag):
            assert frag.locations(v)

    def test_make_context_requires_full_init(self, frag):
        class Sloppy(SSSPProgram):
            def init_values(self, frag, query):
                values = super().init_values(frag, query)
                values.pop(next(iter(values)))
                return values

        with pytest.raises(ProgramError):
            Sloppy().make_context(frag, SSSPQuery(source=0))

    def test_leq_defaults_to_aggregator(self):
        prog = SSSPProgram()
        assert prog.leq(1.0, 2.0)
        assert not prog.leq(3.0, 2.0)

    def test_name(self):
        assert SSSPProgram().name == "SSSPProgram"

    def test_bounded_staleness_declarations(self):
        from repro.algorithms import CFProgram
        assert CFProgram().needs_bounded_staleness
        assert not SSSPProgram().needs_bounded_staleness
        assert not CCProgram().needs_bounded_staleness
