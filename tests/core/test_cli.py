"""Tests for the command-line interface."""

import json

import pytest

from repro import cli
from repro.errors import ReproError


class TestParseGraph:
    def test_grid(self):
        g = cli.parse_graph("grid:4x6")
        assert g.num_nodes == 24

    def test_grid_square_shorthand(self):
        assert cli.parse_graph("grid:5").num_nodes == 25

    def test_powerlaw(self):
        assert cli.parse_graph("powerlaw:100").num_nodes == 100

    def test_er_with_p(self):
        g = cli.parse_graph("er:30:0.5", seed=1)
        assert g.num_nodes == 30
        assert g.num_edges > 50

    def test_path(self):
        assert cli.parse_graph("path:7").num_edges == 6

    def test_file(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# directed: false\n1 2\n2 3\n")
        g = cli.parse_graph(f"file:{p}")
        assert g.num_edges == 2

    def test_unknown(self):
        with pytest.raises(ReproError):
            cli.parse_graph("hypercube:4")


class TestCommands:
    def run_cli(self, capsys, *argv):
        code = cli.main(list(argv))
        out = capsys.readouterr().out
        return code, out

    def test_run_cc(self, capsys):
        code, out = self.run_cli(capsys, "run", "-a", "cc",
                                 "--graph", "powerlaw:120", "-m", "3")
        assert code == 0
        doc = json.loads(out)
        assert doc["components"] == 1
        assert doc["mode"] == "AAP"

    def test_run_sssp_with_source(self, capsys):
        code, out = self.run_cli(capsys, "run", "-a", "sssp",
                                 "--graph", "grid:6x6", "--source", "0",
                                 "--mode", "BSP", "-m", "2")
        assert code == 0
        assert json.loads(out)["mode"] == "BSP"

    def test_compare(self, capsys):
        code, out = self.run_cli(capsys, "compare", "-a", "cc",
                                 "--graph", "powerlaw:100", "-m", "3")
        assert code == 0
        doc = json.loads(out)
        assert set(doc) == {"AAP", "BSP", "AP", "SSP", "Hsync"}

    def test_verify_ok(self, capsys):
        code, out = self.run_cli(capsys, "verify", "-a", "cc",
                                 "--graph", "powerlaw:80", "-m", "3",
                                 "--runs", "2")
        assert code == 0
        assert json.loads(out)["ok"] is True

    def test_info(self, capsys):
        code, out = self.run_cli(capsys, "info", "--graph", "grid:5x5",
                                 "-m", "2")
        assert code == 0
        doc = json.loads(out)
        assert doc["nodes"] == 25
        assert "partition" in doc

    def test_bench_modes_experiment(self, capsys):
        code, out = self.run_cli(capsys, "bench", "-e", "cc",
                                 "--graph", "powerlaw:100",
                                 "--straggler", "2.0")
        assert code == 0
        assert "cc vs workers" in out

    def test_error_exit_code(self, capsys):
        code = cli.main(["run", "--graph", "bogus:1"])
        assert code == 2

    def test_trace_writes_chrome_trace(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "events.jsonl"
        code, out = self.run_cli(
            capsys, "trace", "-a", "sssp", "--graph", "grid:6x6",
            "--source", "0", "-m", "2", "--straggler", "4",
            "--out", str(out_path), "--jsonl", str(jsonl_path),
            "--explain", "0", "--explain-limit", "5")
        assert code == 0
        with open(out_path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert jsonl_path.exists()
        assert "round_start" in out
        assert " P0 " in out  # the audit lines

    def test_trace_threaded_runtime(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        code, out = self.run_cli(
            capsys, "trace", "-a", "cc", "--graph", "powerlaw:60",
            "-m", "2", "--runtime", "threaded", "--out", str(out_path))
        assert code == 0
        with open(out_path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["traceEvents"]
