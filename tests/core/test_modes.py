"""Tests for mode name -> policy construction."""

import pytest

from repro.core.delay import (AAPPolicy, APPolicy, BSPPolicy, HsyncPolicy,
                              SSPPolicy)
from repro.core.modes import MODES, make_policy, policy_table
from repro.errors import RuntimeConfigError


class TestMakePolicy:
    @pytest.mark.parametrize("mode,cls", [
        ("BSP", BSPPolicy), ("AP", APPolicy), ("SSP", SSPPolicy),
        ("AAP", AAPPolicy), ("Hsync", HsyncPolicy)])
    def test_types(self, mode, cls):
        assert isinstance(make_policy(mode), cls)

    def test_case_insensitive(self):
        assert isinstance(make_policy("bsp"), BSPPolicy)
        assert isinstance(make_policy(" aap "), AAPPolicy)

    def test_ssp_default_bound(self):
        assert make_policy("SSP").staleness_bound == 1
        assert make_policy("SSP", staleness_bound=4).staleness_bound == 4

    def test_aap_kwargs_forwarded(self):
        p = make_policy("AAP", l_bottom=3, dt_fraction=0.7)
        assert p.l_bottom == 3
        assert p.dt_fraction == 0.7

    def test_aap_staleness_bound(self):
        assert make_policy("AAP", staleness_bound=2).staleness_bound == 2

    def test_unknown_mode(self):
        with pytest.raises(RuntimeConfigError):
            make_policy("WEIRD")


class TestPolicyTable:
    def test_covers_all_modes(self):
        table = policy_table()
        assert set(table) == set(MODES)

    def test_fresh_instances(self):
        a = policy_table()
        b = policy_table()
        for mode in MODES:
            assert a[mode] is not b[mode]
