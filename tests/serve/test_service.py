"""Unit tests for the resident graph service: admission, cache, epochs,
staleness accounting and observability."""

import pytest

from repro.algorithms import CCProgram, CCQuery, SSSPProgram, SSSPQuery
from repro.errors import ProgramError, ReproError
from repro.graph import analysis, generators
from repro.obs import ADMISSION_SHED, EPOCH_APPLY, INGEST, QUERY_SERVED
from repro.serve import (AdmissionController, GraphService, QueryCache,
                         verify_against_recompute)
from repro.streaming import UpdateBatch


def make_service(**kw):
    g = generators.grid2d(5, 5, weighted=True, seed=1)
    kw.setdefault("runtime", "simulated")
    return GraphService(SSSPProgram(), g, SSSPQuery(source=0),
                        num_fragments=3, **kw)


class TestIngestAndEpochs:
    def test_ingest_parks_and_query_catches_up(self):
        svc = make_service()
        r1 = svc.ingest(UpdateBatch.of((0, 100, 0.5)))
        r2 = svc.ingest(UpdateBatch.of((100, 101, 0.5)))
        assert r1.accepted and r2.accepted
        assert (svc.accepted, svc.epoch, svc.lag) == (2, 0, 2)
        loose = svc.query(0, staleness_bound=5)
        assert loose.served and loose.staleness == 2 and svc.epoch == 0
        fresh = svc.query(101, staleness_bound=0)
        assert fresh.staleness == 0 and svc.epoch == 2
        assert fresh.value == pytest.approx(1.0)

    def test_invalid_batch_rejected_atomically(self):
        svc = make_service()
        edges_before = sorted(svc.graph.edges())
        with pytest.raises(ProgramError):
            svc.ingest(UpdateBatch.of((40, 41, 1.0), (0, 1, 2.0)))
        assert sorted(svc.graph.edges()) == edges_before
        assert (svc.accepted, svc.lag) == (0, 0)

    def test_cross_batch_duplicate_rejected_while_staged(self):
        svc = make_service()
        assert svc.ingest(UpdateBatch.of((0, 100, 0.5))).accepted
        with pytest.raises(ProgramError):
            svc.ingest(UpdateBatch.of((100, 0, 0.5)))  # undirected dup
        svc.flush()
        with pytest.raises(ProgramError):  # now a graph duplicate
            svc.ingest(UpdateBatch.of((0, 100, 0.5)))

    def test_flush_drains_and_matches_recompute(self):
        svc = make_service()
        svc.ingest(UpdateBatch.of((0, 100, 0.1), (100, 24, 0.1)))
        svc.ingest(UpdateBatch.of((100, 101, 0.2)))
        assert svc.flush() == 2
        assert svc.lag == 0
        assert svc.answer == analysis.dijkstra(svc.graph, 0)

    def test_bad_runtime_name(self):
        with pytest.raises(ReproError):
            make_service(runtime="quantum")


class TestAdmission:
    def test_ingest_shed_when_queue_full(self):
        svc = make_service(
            admission=AdmissionController(max_pending_batches=2))
        assert svc.ingest(UpdateBatch.of((0, 100, 1.0))).accepted
        assert svc.ingest(UpdateBatch.of((0, 101, 1.0))).accepted
        shed = svc.ingest(UpdateBatch.of((0, 102, 1.0)))
        assert not shed.accepted and "full" in shed.reason
        assert svc.lag == 2  # the shed batch left no trace
        sheds = [e for e in svc.obs.log.events if e.type == ADMISSION_SHED]
        assert sheds and sheds[-1].payload["kind"] == "batch"
        # draining the queue re-opens admission
        svc.flush()
        assert svc.ingest(UpdateBatch.of((0, 102, 1.0))).accepted

    def test_query_shed_when_catchup_too_expensive(self):
        svc = make_service(
            admission=AdmissionController(max_pending_batches=10,
                                          max_catchup=1))
        for k in range(3):
            svc.ingest(UpdateBatch.of((0, 100 + k, 1.0)))
        shed = svc.query(0, staleness_bound=0)  # needs 3 epochs, cap is 1
        assert not shed.served and "catch-up" in shed.reason
        assert svc.epoch == 0  # shed before any work
        ok = svc.query(0, staleness_bound=2)  # needs 1 epoch: admitted
        assert ok.served and ok.staleness <= 2

    def test_negative_bound_rejected(self):
        svc = make_service()
        with pytest.raises(ProgramError):
            svc.query(0, staleness_bound=-1)


class TestQueryCache:
    def test_lru_unit(self):
        cache = QueryCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == (True, 1)
        cache.put("c", 3)  # evicts "b" (least recently used)
        assert cache.get("b") == (False, None)
        assert cache.get("a") == (True, 1)
        assert cache.invalidate(["a", "zzz"]) == 1
        assert cache.get("a") == (False, None)
        assert cache.stats()["hits"] == 2

    def test_capacity_zero_disables(self):
        cache = QueryCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") == (False, None)

    def test_service_hits_then_invalidates_on_change(self):
        svc = make_service()
        first = svc.query(24, staleness_bound=0)
        second = svc.query(24, staleness_bound=0)
        assert not first.cache_hit and second.cache_hit
        # a shortcut into the corner changes 24's distance -> invalidated
        svc.ingest(UpdateBatch.of((0, 100, 0.01), (100, 24, 0.01)))
        third = svc.query(24, staleness_bound=0)
        assert not third.cache_hit
        assert third.value == pytest.approx(0.02)
        assert svc.query(24, staleness_bound=0).cache_hit

    def test_unchanged_keys_survive_epochs(self):
        svc = make_service()
        svc.query(0, staleness_bound=0)  # the source never changes
        svc.ingest(UpdateBatch.of((24, 100, 1.0)))
        svc.flush()
        assert svc.query(0, staleness_bound=0).cache_hit


class TestSnapshotsAndObs:
    def test_snapshot_under_bound(self):
        svc = make_service()
        svc.ingest(UpdateBatch.of((0, 100, 0.5)))
        snap = svc.snapshot(staleness_bound=0)
        assert snap.staleness == 0
        assert snap.value == svc.answer
        assert 100 in snap.value

    def test_events_and_histograms_recorded(self):
        svc = make_service()
        svc.ingest(UpdateBatch.of((0, 100, 0.5)))
        svc.query(100, staleness_bound=0)
        types = [e.type for e in svc.obs.log.events]
        assert INGEST in types and EPOCH_APPLY in types \
            and QUERY_SERVED in types
        assert svc.obs.metrics.histogram("serve_query_latency").count == 1
        assert svc.obs.metrics.histogram("serve_ingest_latency").count == 1
        assert svc.obs.metrics.histogram("serve_staleness").count == 1
        assert svc.obs.metrics.counter("serve_epochs").value == 1
        epoch_events = [e for e in svc.obs.log.events
                        if e.type == EPOCH_APPLY]
        assert epoch_events[0].payload["epoch"] == 1
        assert epoch_events[0].payload["edges"] == 1

    def test_cc_service_merges_components(self):
        g = generators.path_graph(6, weighted=True, seed=0)
        g.add_edge(10, 11, 1.0)
        svc = GraphService(CCProgram(), g, CCQuery(), num_fragments=3,
                           runtime="simulated")
        assert len(set(svc.answer.values())) == 2
        svc.ingest(UpdateBatch.of((5, 10, 1.0)))
        res = svc.query(11, staleness_bound=0)
        assert res.value == svc.query(0, staleness_bound=0).value
        assert verify_against_recompute(svc)
