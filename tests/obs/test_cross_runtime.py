"""Cross-runtime schema conformance.

The acceptance criterion of the observability subsystem: the same SSSP query
run on the simulator, the threaded runtime and the multiprocess runtime
emits the *identical* event schema — same record types, same payload keys —
so one set of tooling (exporters, audits, dashboards) serves all three.
"""

import pytest

from repro import api
from repro.algorithms import SSSPProgram, SSSPQuery
from repro.core.engine import Engine
from repro.core.modes import make_policy
from repro.graph import analysis, generators
from repro.obs import Observer
from repro.obs.events import (DS_DECISION, MSG_DELIVER, MSG_SEND, ROUND_END,
                              ROUND_START, SCHEMA)
from repro.partition.edge_cut import HashPartitioner
from repro.runtime.multiprocess import MultiprocessRuntime
from repro.runtime.threaded import ThreadedRuntime

#: the record types every runtime must produce for an AAP SSSP run
CORE_TYPES = (ROUND_START, ROUND_END, MSG_SEND, MSG_DELIVER, DS_DECISION)


@pytest.fixture(scope="module")
def sssp_logs():
    """One SSSP query, three runtimes, three event logs."""
    graph = generators.grid2d(6, 6, weighted=True, seed=1)
    pg = HashPartitioner().partition(graph, 2)
    query = SSSPQuery(source=0)
    logs, answers = {}, {}

    obs = Observer()
    r = api.run(SSSPProgram(), pg, query, mode="AAP", observer=obs)
    logs["simulated"], answers["simulated"] = obs.log, r.answer

    obs = Observer()
    rt = ThreadedRuntime(Engine(SSSPProgram(), pg, query),
                         make_policy("AAP"), timeout=60.0, observer=obs)
    r = rt.run()
    logs["threaded"], answers["threaded"] = obs.log, r.answer

    obs = Observer()
    rt = MultiprocessRuntime(SSSPProgram(), pg, query, mode="AAP",
                             timeout=90.0, observer=obs)
    r = rt.run()
    logs["multiprocess"], answers["multiprocess"] = obs.log, r.answer

    reference = analysis.dijkstra(graph, 0)
    return logs, answers, reference


class TestSchemaIdentity:
    def test_answers_agree_with_reference(self, sssp_logs):
        _, answers, ref = sssp_logs
        for name, answer in answers.items():
            for v in ref:
                assert answer[v] == pytest.approx(ref[v]), name

    def test_core_types_present_everywhere(self, sssp_logs):
        logs, _, _ = sssp_logs
        for name, log in logs.items():
            missing = set(CORE_TYPES) - log.types()
            assert not missing, f"{name} never emitted {missing}"

    def test_payload_keys_match_canonical_schema(self, sssp_logs):
        logs, _, _ = sssp_logs
        for name, log in logs.items():
            observed = log.payload_keys()
            for etype in CORE_TYPES:
                extra_ok = {"l_bottom", "target", "window"}  # audit extras
                keys = observed[etype]
                canonical = set(SCHEMA[etype])
                assert canonical <= keys, \
                    f"{name}:{etype} missing {canonical - keys}"
                assert keys - canonical <= extra_ok, \
                    f"{name}:{etype} has non-schema keys " \
                    f"{keys - canonical - extra_ok}"

    def test_identical_schema_across_runtimes(self, sssp_logs):
        # the actual acceptance criterion: key sets equal pairwise
        logs, _, _ = sssp_logs
        keysets = {name: {t: frozenset(ks)
                          for t, ks in log.payload_keys().items()
                          if t in CORE_TYPES}
                   for name, log in logs.items()}
        sim = keysets["simulated"]
        for name in ("threaded", "multiprocess"):
            for etype in CORE_TYPES:
                # runtimes may omit *optional* audit extras; the canonical
                # keys must be byte-identical
                a = sim[etype] & frozenset(SCHEMA[etype])
                b = keysets[name][etype] & frozenset(SCHEMA[etype])
                assert a == b, f"{name}:{etype}: {a} != {b}"

    def test_send_deliver_counts_balance(self, sssp_logs):
        logs, _, _ = sssp_logs
        for name, log in logs.items():
            counts = log.counts()
            assert counts[MSG_SEND] == counts[MSG_DELIVER], name
            assert counts[ROUND_START] == counts[ROUND_END], name
