"""Tests for the Chrome-trace and JSONL exporters."""

import json

from repro import api
from repro.algorithms import SSSPProgram, SSSPQuery
from repro.obs import Observer
from repro.obs.events import EventLog, ObsEvent
from repro.obs.export import (read_jsonl, to_chrome_trace,
                              write_chrome_trace, write_jsonl)
from repro.runtime.costmodel import CostModel


def straggler_run(graph, observer):
    """The acceptance-criteria workload: SSSP with a 4x straggler."""
    return api.run(SSSPProgram(), graph, SSSPQuery(source=0),
                   num_fragments=4, mode="AAP",
                   cost_model=CostModel.with_straggler(0, factor=4.0),
                   observer=observer)


class TestJsonl:
    def test_round_trip(self, tmp_path):
        log = EventLog()
        log.emit("round_start", 0.0, wid=0, round=0, kind="peval", batches=0)
        log.emit("msg_send", 1.0, wid=0, round=0, dst=1, bytes=8, seq=0)
        log.emit("barrier", 2.0, step=1)
        path = str(tmp_path / "ev.jsonl")
        write_jsonl(log, path)
        back = read_jsonl(path)
        assert [e.to_dict() for e in back] == [e.to_dict() for e in log]

    def test_round_trip_full_run(self, small_grid, tmp_path):
        obs = Observer()
        straggler_run(small_grid, obs)
        path = str(tmp_path / "run.jsonl")
        write_jsonl(obs.log, path)
        back = read_jsonl(path)
        assert len(back) == len(obs.log)
        assert back.counts() == obs.log.counts()


class TestChromeTrace:
    def test_document_structure(self):
        log = EventLog()
        log.emit("round_start", 1.0, wid=0, round=0, kind="peval", batches=0)
        log.emit("round_end", 3.0, wid=0, round=0, kind="peval",
                 duration=2.0, messages=1)
        doc = to_chrome_trace(log)
        assert "traceEvents" in doc
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "M" in phases and "X" in phases
        (x,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert x["ts"] == 1.0 * 1e6
        assert x["dur"] == 2.0 * 1e6
        assert x["name"] == "peval"

    def test_unfinished_round_closed_at_last_timestamp(self):
        log = EventLog()
        log.emit("round_start", 1.0, wid=0, round=2, kind="inceval",
                 batches=1)
        log.emit("msg_deliver", 5.0, wid=1, round=0, src=0, bytes=8, seq=0,
                 depth=1)
        doc = to_chrome_trace(log)
        (x,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert x["args"]["unfinished"] is True
        assert x["ts"] == 1.0 * 1e6
        assert x["dur"] == 4.0 * 1e6

    def test_deliveries_become_counter_series(self):
        log = EventLog()
        log.emit("msg_deliver", 1.0, wid=2, round=0, src=0, bytes=8, seq=0,
                 depth=3)
        doc = to_chrome_trace(log)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters and counters[0]["name"] == "buffer_depth_w2"
        assert counters[0]["args"]["depth"] == 3

    def test_straggler_run_export_matches_gantt(self, small_grid, tmp_path):
        # Acceptance criterion: the Chrome-trace export of a straggler run
        # round-trips json.load and reproduces the ASCII-Gantt round counts
        # (one X slice per recorded round interval, per worker track).
        obs = Observer()
        result = straggler_run(small_grid, obs)
        path = str(tmp_path / "trace.json")
        write_chrome_trace(obs.log, path)
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        per_tid = {}
        for s in slices:
            per_tid[s["tid"]] = per_tid.get(s["tid"], 0) + 1
        by_worker = result.trace.by_worker()
        assert per_tid == {wid: len(ivs) for wid, ivs in by_worker.items()}
        assert {s["tid"] for s in slices} == set(range(4))
        assert per_tid == {wid: r for wid, r in enumerate(result.rounds)}
