"""Tests for the typed event log."""

import threading

from repro.obs.events import (EVENT_TYPES, MSG_DELIVER, ROUND_END,
                              ROUND_START, SCHEMA, EventLog, ObsEvent)


class TestObsEvent:
    def test_to_dict_round_trips_fields(self):
        e = ObsEvent(type=ROUND_START, t=1.5, wid=2, round=3,
                     payload={"kind": "inceval", "batches": 4})
        d = e.to_dict()
        assert d == {"type": "round_start", "t": 1.5, "wid": 2, "round": 3,
                     "payload": {"kind": "inceval", "batches": 4}}

    def test_defaults_mark_run_global(self):
        e = ObsEvent(type="barrier", t=0.0)
        assert e.wid == -1 and e.round == -1 and e.payload == {}


class TestSchema:
    def test_every_event_type_has_a_schema(self):
        assert set(SCHEMA) == set(EVENT_TYPES)
        for keys in SCHEMA.values():
            assert keys, "schema rows must name at least one payload key"


class TestEventLog:
    def test_emit_and_len(self):
        log = EventLog()
        log.emit(ROUND_START, 0.0, wid=0, round=0, kind="peval", batches=0)
        log.emit(ROUND_END, 1.0, wid=0, round=0, kind="peval",
                 duration=1.0, messages=2)
        assert len(log) == 2
        assert [e.type for e in log] == [ROUND_START, ROUND_END]

    def test_filter_by_type_and_wid(self):
        log = EventLog()
        for wid in (0, 1, 0):
            log.emit(MSG_DELIVER, 1.0, wid=wid, round=0,
                     src=9, bytes=8, seq=0, depth=1)
        log.emit(ROUND_START, 2.0, wid=0, round=1, kind="inceval", batches=1)
        assert len(log.filter(type=MSG_DELIVER)) == 3
        assert len(log.filter(type=MSG_DELIVER, wid=0)) == 2
        assert len(log.filter(wid=1)) == 1

    def test_counts_and_types(self):
        log = EventLog()
        log.emit(ROUND_START, 0.0, wid=0)
        log.emit(ROUND_START, 1.0, wid=1)
        log.emit(ROUND_END, 2.0, wid=0)
        assert log.counts() == {"round_start": 2, "round_end": 1}
        assert log.types() == {"round_start", "round_end"}

    def test_payload_keys_union(self):
        log = EventLog()
        log.emit(ROUND_START, 0.0, wid=0, kind="peval")
        log.emit(ROUND_START, 1.0, wid=1, kind="inceval", batches=3)
        assert log.payload_keys()["round_start"] == {"kind", "batches"}

    def test_sort_is_stable_on_timestamp(self):
        log = EventLog()
        log.emit("a", 2.0)
        log.emit("b", 1.0)
        log.emit("c", 1.0)
        log.sort()
        assert [(e.type, e.t) for e in log] == [("b", 1.0), ("c", 1.0),
                                                ("a", 2.0)]

    def test_extend_and_append(self):
        log = EventLog()
        log.append(ObsEvent(type="x", t=0.0))
        log.extend([ObsEvent(type="y", t=1.0), ObsEvent(type="z", t=2.0)])
        assert len(log) == 3

    def test_concurrent_emits_are_all_recorded(self):
        log = EventLog()

        def worker(wid):
            for i in range(200):
                log.emit(MSG_DELIVER, float(i), wid=wid, round=i,
                         src=0, bytes=1, seq=i, depth=1)

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(log) == 800
        assert all(len(log.filter(wid=w)) == 200 for w in range(4))
