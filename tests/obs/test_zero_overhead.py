"""Observability must never change what a run computes.

The hook is designed as zero-overhead-when-disabled and *zero-influence*
when enabled: ``DelayPolicy.decide`` returns exactly the value ``delay``
would, so attaching an observer to the deterministic simulator must leave
the run bit-for-bit identical — same answer, same simulated makespan, same
event count, same message totals.
"""

import pytest

from repro import api
from repro.algorithms import CCProgram, CCQuery, SSSPProgram, SSSPQuery
from repro.obs import Observer
from repro.runtime.costmodel import CostModel


def _run(graph, program, query, mode, observer):
    return api.run(program, graph, query, num_fragments=4, mode=mode,
                   cost_model=CostModel(latency_jitter=0.2, seed=7),
                   observer=observer)


@pytest.mark.parametrize("mode", ["AAP", "AP", "BSP", "SSP"])
class TestBitIdentical:
    def test_sssp(self, small_grid, mode):
        plain = _run(small_grid, SSSPProgram(), SSSPQuery(source=0), mode,
                     observer=None)
        observed = _run(small_grid, SSSPProgram(), SSSPQuery(source=0),
                        mode, observer=Observer())
        assert observed.answer == plain.answer
        assert observed.time == plain.time
        assert observed.rounds == plain.rounds
        assert observed.extras["events"] == plain.extras["events"]
        assert (observed.metrics.total_messages
                == plain.metrics.total_messages)
        assert observed.metrics.total_bytes == plain.metrics.total_bytes
        assert observed.metrics.total_busy == plain.metrics.total_busy

    def test_cc(self, small_powerlaw, mode):
        plain = _run(small_powerlaw, CCProgram(), CCQuery(), mode,
                     observer=None)
        observed = _run(small_powerlaw, CCProgram(), CCQuery(), mode,
                        observer=Observer())
        assert observed.answer == plain.answer
        assert observed.time == plain.time
        assert observed.extras["events"] == plain.extras["events"]


class TestObserverPopulated:
    def test_observer_surfaces_in_extras_and_report(self, small_grid):
        from repro.runtime.report import result_to_dict

        obs = Observer()
        result = _run(small_grid, SSSPProgram(), SSSPQuery(source=0), "AAP",
                      observer=obs)
        assert result.extras["obs"] is obs
        assert len(obs.log) > 0
        assert "round_duration" in obs.metrics.names()
        doc = result_to_dict(result)
        assert doc["observability"]["event_counts"] == obs.log.counts()

    def test_disabled_run_has_no_obs_extras(self, small_grid):
        result = _run(small_grid, SSSPProgram(), SSSPQuery(source=0), "AAP",
                      observer=None)
        assert "obs" not in result.extras
