"""Tests for the delay-decision audit renderer."""

from repro import api
from repro.algorithms import SSSPProgram, SSSPQuery
from repro.obs import Observer
from repro.obs.audit import explain_delays
from repro.obs.events import DS_DECISION, EventLog
from repro.runtime.costmodel import CostModel


def _log_with_decisions():
    log = EventLog()
    log.emit(DS_DECISION, 1.25, wid=0, round=2, ds=0.5,
             action="wake_scheduled", eta=3, t_pred=1.0, s_pred=2.0,
             rmin=2, rmax=5, t_idle=0.75, reason="accumulate")
    log.emit(DS_DECISION, 2.0, wid=1, round=3, ds=float("inf"),
             action="suspend", eta=1, t_pred=1.0, s_pred=0.0,
             rmin=2, rmax=5, t_idle=0.0, reason="no_arrival_estimate")
    log.emit(DS_DECISION, 3.0, wid=0, round=3, ds=0.0, action="start",
             eta=4, t_pred=1.1, s_pred=2.5, rmin=3, rmax=6, t_idle=0.0,
             reason="target_met")
    log.emit("round_start", 3.0, wid=0, round=3, kind="inceval", batches=4)
    return log


class TestExplainDelays:
    def test_one_line_per_decision(self):
        lines = explain_delays(_log_with_decisions())
        assert len(lines) == 3  # the round_start is not a decision

    def test_line_carries_eq1_inputs(self):
        lines = explain_delays(_log_with_decisions(), wid=0)
        assert lines[0] == ("t=1.25 P0 r2: wake_scheduled DS=0.5 "
                            "[accumulate] (eta=3, t_pred=1, s_pred=2, "
                            "r_min/r_max=2/5, T_idle=0.75)")

    def test_infinite_ds_rendered_as_inf(self):
        (line,) = explain_delays(_log_with_decisions(), wid=1)
        assert "suspend DS=inf" in line
        assert "[no_arrival_estimate]" in line

    def test_wid_filter_and_limit(self):
        log = _log_with_decisions()
        assert len(explain_delays(log, wid=0)) == 2
        assert len(explain_delays(log, wid=1)) == 1
        last = explain_delays(log, wid=0, limit=1)
        assert len(last) == 1 and "r3" in last[0]

    def test_real_run_produces_audit(self, small_grid):
        obs = Observer()
        api.run(SSSPProgram(), small_grid, SSSPQuery(source=0),
                num_fragments=4, mode="AAP",
                cost_model=CostModel.with_straggler(0, factor=4.0),
                observer=obs)
        lines = explain_delays(obs.log, wid=1)
        assert lines, "an AAP straggler run must consult the policy"
        assert all(line.startswith("t=") and " P1 " in line
                   for line in lines)
