"""Tests for the metrics registry and its RunMetrics integration."""

import pytest

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.runtime.metrics import (RunMetrics, WorkerMetrics,
                                   registry_from_workers)


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_gauge(self):
        g = Gauge()
        g.set(2.5)
        g.add(0.5)
        assert g.value == 3.0

    def test_histogram_summary(self):
        h = Histogram()
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["total"] == 6.0
        assert s["mean"] == pytest.approx(2.0)
        assert s["min"] == 1.0 and s["max"] == 3.0

    def test_empty_histogram_summary_is_finite(self):
        s = Histogram().summary()
        assert s == {"count": 0, "total": 0.0, "mean": 0.0,
                     "min": 0.0, "max": 0.0}


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("msgs", 0) is r.counter("msgs", 0)
        assert r.counter("msgs", 0) is not r.counter("msgs", 1)
        assert r.counter("msgs", 0) is not r.counter("msgs")

    def test_type_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("x", 0)
        with pytest.raises(TypeError):
            r.gauge("x", 0)

    def test_get_missing_returns_none(self):
        assert MetricsRegistry().get("nope", 3) is None

    def test_names_and_wids(self):
        r = MetricsRegistry()
        r.counter("rounds", 1)
        r.counter("rounds", 0)
        r.gauge("makespan")
        assert r.names() == ["makespan", "rounds"]
        assert r.wids("rounds") == [0, 1]
        assert r.wids("makespan") == []

    def test_as_dict_labels(self):
        r = MetricsRegistry()
        r.counter("rounds", 0).inc(4)
        r.gauge("makespan").set(1.5)
        r.histogram("round_duration", 0).observe(0.5)
        d = r.as_dict()
        assert d["rounds"]["0"] == 4
        assert d["makespan"]["all"] == 1.5
        assert d["round_duration"]["0"]["count"] == 1


class TestRunMetricsIntegration:
    def _workers(self):
        return [
            WorkerMetrics(wid=0, rounds=3, busy_time=2.0, idle_time=1.0,
                          suspended_time=0.5, messages_sent=7,
                          messages_received=6, bytes_sent=70,
                          bytes_received=60, work_done=11),
            WorkerMetrics(wid=1, rounds=2, busy_time=1.0, idle_time=2.5,
                          suspended_time=0.0, messages_sent=6,
                          messages_received=7, bytes_sent=60,
                          bytes_received=70, work_done=9),
        ]

    def test_from_workers_equals_from_registry(self):
        workers = self._workers()
        a = RunMetrics.from_workers(workers, makespan=3.5)
        registry = registry_from_workers(self._workers())
        b = RunMetrics.from_registry(registry, makespan=3.5)
        assert a.makespan == b.makespan == 3.5
        assert a.total_busy == b.total_busy
        assert a.total_idle == b.total_idle
        assert a.total_suspended == b.total_suspended
        assert a.total_messages == b.total_messages == 13
        assert a.total_bytes == b.total_bytes == 130
        assert a.total_rounds == b.total_rounds == 5
        assert [w.wid for w in a.workers] == [w.wid for w in b.workers]
        for wa, wb in zip(a.workers, b.workers):
            assert wa == wb

    def test_to_registry_round_trip(self):
        m = RunMetrics.from_workers(self._workers(), makespan=3.5)
        registry = m.to_registry()
        again = RunMetrics.from_registry(registry, makespan=3.5)
        assert again.total_busy == m.total_busy
        assert again.total_messages == m.total_messages
        assert registry.get("makespan").value == 3.5

    def test_from_registry_sets_makespan_gauge(self):
        registry = registry_from_workers(self._workers())
        RunMetrics.from_registry(registry, makespan=9.0)
        assert registry.get("makespan").value == 9.0
