"""Shared fixtures for the test suite.

Also provides a per-test watchdog: fault-tolerance tests exercise live
threads and processes, where a protocol bug shows up as a hang rather than
a failure.  CI installs ``pytest-timeout`` (see ``.github/workflows`` and
the ``test`` extra); when that plugin is absent we fall back to a SIGALRM
alarm per test on Unix so a deadlock still fails loudly instead of
freezing the suite.
"""

import os
import signal

import pytest

from repro import api
from repro.graph import generators

_FALLBACK_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "180"))


def _supports_sigalrm():
    return hasattr(signal, "SIGALRM") and hasattr(signal, "alarm")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    have_plugin = item.config.pluginmanager.hasplugin("timeout")
    if have_plugin or not _supports_sigalrm() or _FALLBACK_TIMEOUT <= 0:
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded fallback timeout of {_FALLBACK_TIMEOUT:.0f}s "
            f"(set REPRO_TEST_TIMEOUT to adjust)")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(int(_FALLBACK_TIMEOUT))
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def no_shm_leaks():
    """Every test must leave ``/dev/shm`` free of repro-owned segments.

    The multiprocess runtime's shared-memory data plane unlinks its slabs
    in the master's ``finally`` — on clean exits, aborts, and chaos runs
    with injected crashes alike.  A residual segment here means a leaked
    lifetime path; fail the test that introduced it rather than letting
    segments accumulate across the suite.
    """
    from repro.runtime.slab import residual_segments
    before = set(residual_segments())
    yield
    leaked = [s for s in residual_segments() if s not in before]
    assert not leaked, f"leaked shared-memory segments: {leaked}"


@pytest.fixture
def small_grid():
    """10x10 weighted grid (traffic-like), deterministic."""
    return generators.grid2d(10, 10, weighted=True, seed=1)


@pytest.fixture
def small_powerlaw():
    """300-node power-law graph (social-like), deterministic."""
    return generators.powerlaw(300, m=2, seed=3)


@pytest.fixture
def weighted_powerlaw():
    return generators.powerlaw(200, m=2, weighted=True, seed=5)


@pytest.fixture
def partitioned_grid(small_grid):
    return api.partition_graph(small_grid, 4)


@pytest.fixture
def partitioned_powerlaw(small_powerlaw):
    return api.partition_graph(small_powerlaw, 4)
