"""Shared fixtures for the test suite."""

import pytest

from repro import api
from repro.graph import generators


@pytest.fixture
def small_grid():
    """10x10 weighted grid (traffic-like), deterministic."""
    return generators.grid2d(10, 10, weighted=True, seed=1)


@pytest.fixture
def small_powerlaw():
    """300-node power-law graph (social-like), deterministic."""
    return generators.powerlaw(300, m=2, seed=3)


@pytest.fixture
def weighted_powerlaw():
    return generators.powerlaw(200, m=2, weighted=True, seed=5)


@pytest.fixture
def partitioned_grid(small_grid):
    return api.partition_graph(small_grid, 4)


@pytest.fixture
def partitioned_powerlaw(small_powerlaw):
    return api.partition_graph(small_powerlaw, 4)
