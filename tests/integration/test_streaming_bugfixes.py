"""Regression tests for the streaming-session correctness fixes.

Four bugs, four tests (plus cross-process determinism):

1. ownership used the per-process-salted builtin ``hash``;
2. ``apply()`` mutated the graph before validating the whole batch;
3. ``_rebuild_engine`` aliased program scratch across engines;
4. ``UpdateBatch`` accepted within-batch duplicate edges.
"""

import copy
import json
import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro.algorithms import CCProgram, CCQuery, SSSPProgram, SSSPQuery
from repro.errors import ProgramError
from repro.graph import analysis, generators
from repro.graph.graph import Graph
from repro.graph.stable import canonical_bytes, stable_hash, stable_owner
from repro.streaming import StreamingSession, UpdateBatch, validate_batch

SRC_DIR = str(pathlib.Path(repro.__file__).resolve().parents[1])

_PROBE = """
import json, sys
sys.path.insert(0, sys.argv[1])
from repro.graph.stable import stable_hash, stable_owner
nodes = ["alpha", "beta", "v-17", ("t", 1), 42, 3.5, None, True, b"raw"]
print(json.dumps([[repr(v), stable_hash(v), stable_owner(v, 4)]
                  for v in nodes]))
"""


def _probe_with_hashseed(seed):
    env = dict(os.environ, PYTHONHASHSEED=str(seed))
    out = subprocess.run([sys.executable, "-c", _PROBE, SRC_DIR],
                         env=env, capture_output=True, text=True, check=True)
    return json.loads(out.stdout)


class TestStableOwnership:
    def test_cross_seed_determinism(self):
        """Two interpreters with different hash salts agree on placement."""
        assert _probe_with_hashseed(1) == _probe_with_hashseed(2)

    def test_type_tagged_no_collisions(self):
        distinct = [0, 0.5, "0", b"0", (0,), ("0",), frozenset({0}),
                    None, False]
        blobs = [canonical_bytes(v) for v in distinct]
        assert len(set(blobs)) == len(blobs)

    def test_session_uses_stable_owner(self):
        g = Graph(directed=False)
        for u, v in [("a", "b"), ("b", "c"), ("c", "d")]:
            g.add_edge(u, v, 1.0)
        sess = StreamingSession(CCProgram(), g, CCQuery(), num_fragments=3)
        assert sess.owner == {v: stable_owner(v, 3) for v in g.nodes}
        sess.apply(UpdateBatch.of(("d", "e")))
        assert sess.owner["e"] == stable_owner("e", 3)


class TestAtomicApply:
    def test_failed_batch_leaves_session_untouched(self):
        g = generators.path_graph(8, weighted=True, seed=0)
        sess = StreamingSession(SSSPProgram(), g, SSSPQuery(source=0),
                                num_fragments=3)
        before_edges = sorted(sess.graph.edges())
        before_owner = dict(sess.owner)
        before_answer = dict(sess.answer)
        engine_before = sess.engine
        # the first insertion is fine, the second duplicates an existing
        # edge: nothing from the batch may stick
        bad = UpdateBatch.of((20, 21, 1.0), (0, 1, 9.9))
        with pytest.raises(ProgramError):
            sess.apply(bad)
        assert sorted(sess.graph.edges()) == before_edges
        assert sess.owner == before_owner
        assert sess.engine is engine_before
        assert sess.batches_applied == 0
        assert dict(sess.answer) == before_answer
        # the session is still live: a valid batch converges to the
        # full-recompute answer on the grown graph
        sess.apply(UpdateBatch.of((7, 30, 0.5), (30, 0, 0.25)))
        ref = analysis.dijkstra(sess.graph, 0)
        assert sess.answer == ref

    def test_self_loop_rejected_atomically(self):
        g = generators.path_graph(5, weighted=True, seed=0)
        sess = StreamingSession(CCProgram(), g, CCQuery(), num_fragments=2)
        batch = UpdateBatch.of((0, 9, 1.0))
        object.__setattr__(batch, "insertions", ((0, 9, 1.0), (3, 3, 1.0)))
        with pytest.raises(ProgramError):
            sess.apply(batch)
        assert not sess.graph.has_node(9)

    def test_validate_batch_sees_staged_edges(self):
        g = generators.path_graph(4, weighted=True, seed=0)
        staged = set()
        validate_batch(g, UpdateBatch.of((0, 9)), staged=staged)
        staged.add(frozenset((0, 9)))
        with pytest.raises(ProgramError):
            validate_batch(g, UpdateBatch.of((0, 9)), staged=staged)


class TestScratchIsolation:
    def test_old_engine_scratch_not_mutated_by_later_batches(self):
        g = generators.path_graph(6, weighted=True, seed=0)
        g.add_edge(10, 11, 1.0)  # a second component to merge later
        sess = StreamingSession(CCProgram(), g, CCQuery(), num_fragments=3)
        old_engine = sess.engine
        snap = copy.deepcopy([ctx.scratch for ctx in old_engine.contexts])
        sess.apply(UpdateBatch.of((5, 10, 1.0)))
        assert sess.engine is not old_engine
        assert [ctx.scratch for ctx in old_engine.contexts] == snap
        for old_ctx, new_ctx in zip(old_engine.contexts,
                                    sess.engine.contexts):
            assert new_ctx.scratch is not old_ctx.scratch


class TestDuplicateInsertions:
    def test_within_batch_duplicate_rejected(self):
        with pytest.raises(ProgramError):
            UpdateBatch.of((1, 2), (1, 2, 3.0))

    def test_self_loop_rejected(self):
        with pytest.raises(ProgramError):
            UpdateBatch.of((4, 4))

    def test_distinct_edges_accepted(self):
        batch = UpdateBatch.of((1, 2), (2, 3), (2, 1))
        assert len(batch) == 3
