"""Integration: every parallel model computes the same (correct) answers.

This is the operational content of Theorem 2: BSP, AP, SSP, AAP and Hsync
runs of a monotone PIE program all converge to the reference result,
regardless of cost model, partitioner, or straggler placement.
"""

import pytest

from repro import api
from repro.algorithms import (CCProgram, CCQuery, PageRankProgram,
                              PageRankQuery, SSSPProgram, SSSPQuery)
from repro.core.modes import MODES
from repro.graph import analysis, generators
from repro.partition.edge_cut import (BfsPartitioner, GreedyLdgPartitioner,
                                      HashPartitioner)
from repro.runtime.costmodel import CostModel


class TestModeAgreement:
    def test_sssp_all_modes_all_partitioners(self, weighted_powerlaw):
        ref = analysis.dijkstra(weighted_powerlaw, 0)
        for partitioner in (HashPartitioner(), BfsPartitioner(seed=1),
                            GreedyLdgPartitioner(seed=1)):
            pg = partitioner.partition(weighted_powerlaw, 5)
            results = api.compare_modes(SSSPProgram, pg,
                                        SSSPQuery(source=0))
            for mode, r in results.items():
                for v in ref:
                    assert r.answer[v] == pytest.approx(ref[v]), \
                        f"{mode}/{partitioner.name}: node {v}"

    def test_cc_with_stragglers_and_jitter(self, small_powerlaw):
        ref = analysis.connected_components(small_powerlaw)
        pg = HashPartitioner().partition(small_powerlaw, 6)
        results = api.compare_modes(
            CCProgram, pg, CCQuery(),
            cost_model_factory=lambda: CostModel.with_straggler(
                2, factor=6.0, latency_jitter=0.3, seed=4))
        for mode, r in results.items():
            assert r.answer == ref, mode

    def test_pagerank_modes_agree_within_tolerance(self, small_powerlaw):
        pg = HashPartitioner().partition(small_powerlaw, 4)
        results = api.compare_modes(PageRankProgram, pg,
                                    PageRankQuery(epsilon=1e-5))
        ref = analysis.pagerank(small_powerlaw, epsilon=1e-12)
        for mode, r in results.items():
            for v in ref:
                assert r.answer[v] == pytest.approx(ref[v], abs=1e-3), mode


class TestModeCharacter:
    """Behavioural signatures of each model (not exact timings)."""

    def test_bsp_rounds_synchronized(self, small_grid):
        r = api.run(SSSPProgram(), small_grid, SSSPQuery(source=0),
                    num_fragments=4, mode="BSP",
                    cost_model=CostModel.with_straggler(0, factor=4.0))
        assert max(r.rounds) - min(r.rounds) <= 1

    def test_ap_rounds_diverge(self, small_grid):
        r = api.run(SSSPProgram(), small_grid, SSSPQuery(source=0),
                    num_fragments=4, mode="AP",
                    cost_model=CostModel.with_straggler(0, factor=8.0))
        assert max(r.rounds) - min(r.rounds) > 1

    def test_ssp_bounded_divergence_vs_ap(self, small_grid):
        def spread(mode, c=None):
            r = api.run(SSSPProgram(), small_grid, SSSPQuery(source=0),
                        num_fragments=4, mode=mode, staleness_bound=c,
                        cost_model=CostModel.with_straggler(0, factor=8.0))
            return max(r.rounds) - min(r.rounds)

        assert spread("SSP", c=1) <= spread("AP")

    def test_bsp_idles_more_than_aap_with_straggler(self, small_powerlaw):
        pg = HashPartitioner().partition(small_powerlaw, 6)
        results = api.compare_modes(
            CCProgram, pg, CCQuery(), modes=("BSP", "AAP"),
            cost_model_factory=lambda: CostModel.with_straggler(
                0, factor=8.0, alpha=1.0))
        bsp = results["BSP"].metrics
        aap = results["AAP"].metrics
        bsp_wait = bsp.total_idle + bsp.total_suspended
        aap_wait = aap.total_idle + aap.total_suspended
        assert aap_wait <= bsp_wait
