"""Tests for streaming updates (incremental continuation runs)."""

import random

import pytest

from repro.algorithms import (CCProgram, CCQuery, PageRankProgram,
                              PageRankQuery, SSSPProgram, SSSPQuery)
from repro.errors import ProgramError
from repro.graph import analysis, generators
from repro.streaming import StreamingSession, UpdateBatch


class TestUpdateBatch:
    def test_of_normalises(self):
        batch = UpdateBatch.of((1, 2), (3, 4, 2.5))
        assert batch.insertions == ((1, 2, 1.0), (3, 4, 2.5))
        assert batch.touched_nodes == frozenset({1, 2, 3, 4})
        assert len(batch) == 2

    def test_empty_rejected(self):
        with pytest.raises(ProgramError):
            UpdateBatch(insertions=())

    def test_bad_shape_rejected(self):
        with pytest.raises(ProgramError):
            UpdateBatch.of((1,))


class TestStreamingCC:
    def test_bridge_merges_components(self):
        g = generators.path_graph(6)
        g.add_edge(10, 11)  # a second component
        sess = StreamingSession(CCProgram(), g, CCQuery(), num_fragments=3)
        assert len(set(sess.answer.values())) == 2
        sess.apply(UpdateBatch.of((5, 10)))
        assert set(sess.answer.values()) == {0}

    def test_new_nodes_join(self, small_powerlaw):
        sess = StreamingSession(CCProgram(), small_powerlaw, CCQuery(),
                                num_fragments=4)
        sess.apply(UpdateBatch.of((7777, 0), (7778, 7777)))
        assert sess.answer[7777] == sess.answer[0]
        assert sess.answer[7778] == sess.answer[0]

    def test_many_random_batches_match_reference(self, small_powerlaw):
        rng = random.Random(5)
        g = small_powerlaw.copy()
        sess = StreamingSession(CCProgram(), g, CCQuery(), num_fragments=4)
        reference_graph = g.copy()
        next_id = 10_000
        for _ in range(5):
            edges = []
            for _ in range(4):
                if rng.random() < 0.5:
                    u, v = next_id, rng.randrange(300)
                    next_id += 1
                else:
                    u, v = rng.sample(range(300), 2)
                    if reference_graph.has_edge(u, v):
                        continue
                edges.append((u, v))
            if not edges:
                continue
            batch = UpdateBatch.of(*edges)
            sess.apply(batch)
            for u, v, w in batch.insertions:
                reference_graph.add_edge(u, v, w)
            assert sess.answer == analysis.connected_components(
                reference_graph)

    def test_continuation_cheaper_than_rerun(self, small_powerlaw):
        sess = StreamingSession(CCProgram(), small_powerlaw, CCQuery(),
                                num_fragments=4)
        initial_work = sess.initial_result.metrics.total_work
        cont = sess.apply(UpdateBatch.of((8888, 3)))
        assert cont.metrics.total_work < initial_work / 2


class TestStreamingSSSP:
    def test_shortcut_lowers_distances(self):
        g = generators.path_graph(30, weighted=False)
        sess = StreamingSession(SSSPProgram(), g, SSSPQuery(source=0),
                                num_fragments=3)
        assert sess.answer[29] == 29.0
        sess.apply(UpdateBatch.of((0, 29, 2.0)))
        assert sess.answer[29] == 2.0
        assert sess.answer[28] == 3.0

    def test_random_insertions_match_dijkstra(self, small_grid):
        rng = random.Random(11)
        g = small_grid.copy()
        sess = StreamingSession(SSSPProgram(), g, SSSPQuery(source=0),
                                num_fragments=4)
        reference_graph = g.copy()
        for _ in range(4):
            u, v = rng.sample(range(100), 2)
            if reference_graph.has_edge(u, v):
                continue
            w = rng.uniform(0.1, 3.0)
            sess.apply(UpdateBatch.of((u, v, w)))
            reference_graph.add_edge(u, v, w)
            ref = analysis.dijkstra(reference_graph, 0)
            for node in ref:
                assert sess.answer[node] == pytest.approx(ref[node])


class TestStreamingLimits:
    def test_duplicate_edge_rejected(self, small_grid):
        sess = StreamingSession(CCProgram(), small_grid, CCQuery(),
                                num_fragments=2)
        with pytest.raises(ProgramError):
            sess.apply(UpdateBatch.of((0, 1)))

    def test_non_streamable_program_rejected(self, small_powerlaw):
        sess = StreamingSession(
            PageRankProgram(), small_powerlaw,
            PageRankQuery(epsilon=1e-2, num_nodes=300), num_fragments=3)
        with pytest.raises(ProgramError):
            sess.apply(UpdateBatch.of((9999, 0)))
