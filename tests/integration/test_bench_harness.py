"""Tests for the experiment harness (workloads, reporting, runners)."""

import pytest

from repro.bench import experiments, reporting, workloads
from repro.graph import analysis


class TestWorkloads:
    def test_friendster_standin_is_skewed(self):
        g = workloads.friendster()
        assert analysis.degree_skew(g) > 3.0

    def test_traffic_standin_has_large_diameter(self):
        g = workloads.traffic()
        assert analysis.diameter_estimate(g) > 30

    def test_ukweb_directed(self):
        assert workloads.ukweb(scale=0.5).directed

    def test_scale_grows_graphs(self):
        small = workloads.friendster(scale=0.5)
        big = workloads.friendster(scale=1.5)
        assert big.num_nodes > small.num_nodes

    def test_bipartite_standins(self):
        g, uf, pf = workloads.movielens()
        assert g.num_edges > 0
        assert len(uf) > len(pf)

    def test_fig1_graph_structure(self):
        g = workloads.fig1_graph()
        assert g.num_nodes == 24
        # the chain makes it a single component with min id 0
        comp = analysis.connected_components(g)
        assert set(comp.values()) == {0}

    def test_fig1_partition_layout(self):
        pg = workloads.fig1_partition()
        assert pg.num_fragments == 3
        # F3 owns components 0 and 7
        f3 = pg.fragments[2]
        assert {0, 1, 2, 70, 71, 72} <= f3.owned

    def test_fig1_cost_model_timing(self):
        cm = workloads.fig1_cost_model()
        assert cm.round_time(0, 10_000) == 3.0
        assert cm.round_time(2, 1) == 6.0
        assert cm.transfer_time(100) == 1.0

    def test_partition_skew_knob(self):
        from repro.partition.skew import skew_ratio
        g = workloads.friendster(scale=0.5)
        pg = workloads.partition(g, 4, skew=3.0)
        assert skew_ratio(pg) >= 3.0

    def test_partition_locality_knob(self):
        from repro.partition.quality import edge_cut_ratio
        g = workloads.traffic(scale=0.5)
        hash_pg = workloads.partition(g, 4)
        local_pg = workloads.partition(g, 4, locality=True)
        assert edge_cut_ratio(local_pg) < edge_cut_ratio(hash_pg)


class TestReporting:
    def test_format_table(self):
        text = reporting.format_table("T", ["a", "b"], [[1, 2.5], ["x", 3]])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = reporting.format_series("S", "n", [1, 2],
                                       {"AAP": [0.5, 0.25]})
        assert "AAP" in text
        assert "0.250" in text

    def test_speedups(self):
        sp = reporting.speedups({"BSP": 10.0, "AAP": 5.0}, baseline="BSP")
        assert sp["AAP"] == 2.0
        assert sp["BSP"] == 1.0

    def test_human_bytes(self):
        assert reporting.human_bytes(512) == "512.0B"
        assert reporting.human_bytes(2048) == "2.0KB"
        assert reporting.human_bytes(3 * 1024 ** 3) == "3.0GB"

    def test_large_numbers_formatted(self):
        text = reporting.format_table("T", ["x"], [[123456.7]])
        assert "123,457" in text


class TestExperimentRunners:
    """Small-scale smoke runs of each experiment function."""

    def test_modes_experiment_shape(self):
        g = workloads.traffic(scale=0.3)
        series = experiments.run_modes_experiment(
            "cc", g, workers=(2, 3), straggler_factor=2.0)
        assert set(series) == set(experiments.FIG6_MODES)
        assert all(len(v) == 2 for v in series.values())
        assert all(t > 0 for v in series.values() for t in v)

    def test_table1_rows(self):
        rows = experiments.run_table1(num_workers=4, scale=0.3)
        systems = {r["system"] for r in rows}
        assert "GRAPE+" in systems
        assert len(systems) == 7
        assert all(r["sssp_time"] > 0 for r in rows)

    def test_scaleup_ratios(self):
        data = experiments.run_scaleup("cc", workers=(2, 4),
                                       base_scale=0.2)
        assert data["ratio"][0] == 1.0
        assert len(data["time"]) == 2

    def test_communication_rows(self):
        rows = experiments.run_communication(algorithms=("cc",),
                                             num_workers=4)
        assert {r["mode"] for r in rows} == set(experiments.FIG6_MODES)
        assert all(r["bytes"] > 0 for r in rows)

    def test_fig7_casestudy_keys(self):
        out = experiments.run_fig7_casestudy(num_workers=4)
        assert set(out) == {"BSP", "AP", "SSP", "AAP"}
        for d in out.values():
            assert d["time"] > 0
            assert d["straggler_rounds"] >= 1

    def test_cf_casestudy_rows(self):
        rows = experiments.run_cf_casestudy(num_workers=3, epochs=2,
                                            bounds=(1, 2))
        modes = {r["mode"] for r in rows}
        assert modes == {"BSP", "AP", "SSP", "AAP"}
        assert all(0 <= r["rmse"] < 2.0 for r in rows)
