"""Integration: the paper's Example 1 / Example 4 (Fig. 1) scenario.

Three workers run CC over the chained-component graph of Fig. 1(b); P1 and
P2 take 3 time units per round, P3 takes 6, messages take 1 unit.  The tests
check the qualitative claims of Example 1: BSP is gated by the straggler,
AAP converges and the straggler needs fewer rounds than under BSP.
"""

import pytest

from repro import api
from repro.algorithms import CCProgram, CCQuery
from repro.bench.workloads import fig1_cost_model, fig1_graph, fig1_partition
from repro.core.modes import MODES


@pytest.fixture(scope="module")
def runs():
    pg = fig1_partition()
    out = {}
    for mode in MODES:
        out[mode] = api.run(CCProgram(), pg, CCQuery(), mode=mode,
                            cost_model=fig1_cost_model(),
                            staleness_bound=1 if mode == "SSP" else None)
    return out


class TestFig1:
    def test_all_modes_converge_to_cid_zero(self, runs):
        g = fig1_graph()
        for mode, r in runs.items():
            assert set(r.answer.values()) == {0}, mode
            assert set(r.answer) == set(g.nodes)

    def test_bsp_supersteps_cost_six_units(self, runs):
        bsp = runs["BSP"]
        # each BSP superstep is gated by P3's 6 time units (+1 latency)
        rounds = max(bsp.rounds)
        assert bsp.time >= 6 * (rounds - 1)

    def test_straggler_rounds_aap_at_most_bsp(self, runs):
        assert runs["AAP"].rounds[2] <= runs["BSP"].rounds[2]

    def test_aap_not_slower_than_bsp(self, runs):
        assert runs["AAP"].time <= runs["BSP"].time + 1e-9

    def test_fast_workers_not_blocked_under_aap(self, runs):
        aap = runs["AAP"].metrics
        p1_wait = aap.workers[0].idle_time + aap.workers[0].suspended_time
        bsp = runs["BSP"].metrics
        p1_wait_bsp = (bsp.workers[0].idle_time
                       + bsp.workers[0].suspended_time)
        assert p1_wait <= p1_wait_bsp + 1e-9

    def test_trace_shows_straggler_longer_rounds(self, runs):
        trace = runs["AAP"].trace
        per = trace.by_worker()
        p3_round = per[2][0].duration
        p1_round = per[0][0].duration
        assert p3_round == pytest.approx(6.0)
        assert p1_round == pytest.approx(3.0)
