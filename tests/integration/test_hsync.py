"""Integration tests for the Hsync (PowerSwitch) policy on real workloads."""

from repro import api
from repro.algorithms import CCProgram, CCQuery, PageRankProgram, \
    PageRankQuery
from repro.core.delay import HsyncPolicy
from repro.graph import analysis
from repro.partition.edge_cut import HashPartitioner
from repro.runtime.costmodel import CostModel


class TestHsyncOnWorkloads:
    def test_switches_during_pagerank(self, small_powerlaw):
        """With heavy message accumulation, Hsync leaves AP for BSP at
        least once during a PageRank run."""
        policy = HsyncPolicy(staleness_threshold=1.5, window=4)
        pg = HashPartitioner().partition(small_powerlaw, 6)
        r = api.run(PageRankProgram(), pg,
                    PageRankQuery(epsilon=1e-3, num_nodes=300),
                    policy=policy,
                    cost_model=CostModel.with_straggler(0, factor=4.0))
        assert policy.switches >= 1
        ref = analysis.pagerank(small_powerlaw, epsilon=1e-10)
        for v in ref:
            assert abs(r.answer[v] - ref[v]) < 5e-3

    def test_correct_answers_with_aggressive_switching(self,
                                                       small_powerlaw):
        policy = HsyncPolicy(straggler_threshold=1.1,
                             staleness_threshold=0.5, window=2,
                             switch_cost=2.0)
        r = api.run(CCProgram(), small_powerlaw, CCQuery(),
                    num_fragments=5, policy=policy)
        assert r.answer == analysis.connected_components(small_powerlaw)

    def test_switch_cost_visible_in_makespan(self, small_powerlaw):
        pg = HashPartitioner().partition(small_powerlaw, 5)

        def run(cost):
            policy = HsyncPolicy(staleness_threshold=0.5, window=2,
                                 switch_cost=cost)
            return api.run(CCProgram(), pg, CCQuery(), policy=policy,
                           cost_model=CostModel(seed=3)), policy

        cheap, cheap_policy = run(0.0)
        costly, costly_policy = run(25.0)
        if cheap_policy.switches and costly_policy.switches:
            assert costly.time > cheap.time
