"""Tests for the MapReduce-on-PIE simulation — Theorem 4."""

import pytest

from repro.compat.mapreduce import (LocalMapReduce, MapReduceJob,
                                    MapReduceOnPIE, Subroutine,
                                    identity_mapper, identity_reducer,
                                    make_worker_graph, run_mapreduce)
from repro.errors import ProgramError


def wc_map(key, line):
    for word in line.split():
        yield word, 1


def wc_reduce(key, values):
    yield key, sum(values)


def swap_map(key, value):
    yield value, key


def max_reduce(key, values):
    yield key, max(values)


DOCS = [(i, text) for i, text in enumerate(
    ["the quick brown fox", "the lazy dog", "the fox", "dog dog dog"])]


class TestLocalReference:
    def test_wordcount(self):
        job = MapReduceJob((Subroutine(wc_map, wc_reduce),))
        out = dict(LocalMapReduce(job).run(DOCS))
        assert out["the"] == 3
        assert out["dog"] == 4
        assert out["fox"] == 2

    def test_identity_job(self):
        job = MapReduceJob((Subroutine(identity_mapper, identity_reducer),))
        out = LocalMapReduce(job).run([("a", 1), ("b", 2)])
        assert sorted(out) == [("a", 1), ("b", 2)]

    def test_empty_job_rejected(self):
        with pytest.raises(ProgramError):
            MapReduceJob(())


class TestSimulation:
    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    def test_wordcount_matches_local(self, n):
        job = MapReduceJob((Subroutine(wc_map, wc_reduce),))
        local = LocalMapReduce(job).run(DOCS)
        simulated = run_mapreduce(job, DOCS, n=n)
        assert sorted(local) == sorted(simulated)

    def test_two_stage_pipeline(self):
        job = MapReduceJob((Subroutine(wc_map, wc_reduce),
                            Subroutine(swap_map, max_reduce)))
        local = LocalMapReduce(job).run(DOCS)
        simulated = run_mapreduce(job, DOCS, n=3)
        assert sorted(local) == sorted(simulated)

    def test_three_stages(self):
        job = MapReduceJob((
            Subroutine(wc_map, wc_reduce),
            Subroutine(identity_mapper, identity_reducer),
            Subroutine(swap_map, max_reduce)))
        local = LocalMapReduce(job).run(DOCS)
        simulated = run_mapreduce(job, DOCS, n=4)
        assert sorted(local) == sorted(simulated)

    def test_empty_input(self):
        job = MapReduceJob((Subroutine(wc_map, wc_reduce),))
        assert run_mapreduce(job, [], n=3) == []

    def test_skewed_keys_single_reducer(self):
        # all map outputs share one key: one worker reduces everything
        job = MapReduceJob((Subroutine(lambda k, v: [("all", v)],
                                       lambda k, vals: [(k, sum(vals))]),))
        out = run_mapreduce(job, [(i, i) for i in range(20)], n=4)
        assert out == [("all", sum(range(20)))]


class TestWorkerGraph:
    def test_clique_structure(self):
        pg = make_worker_graph(4)
        assert pg.num_fragments == 4
        for frag in pg:
            assert len(frag.owned) == 1
            # every worker node sees all others (clique)
            assert len(frag.mirrors) == 3
            assert frag.peer_fragments() == frozenset(
                set(range(4)) - {frag.fid})
