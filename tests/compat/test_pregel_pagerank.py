"""A fixed-iteration Pregel PageRank through the adapter."""

import pytest

from repro import api
from repro.compat.pregel import PregelAdapter, PregelVertexProgram
from repro.graph import analysis


class PregelPageRank(PregelVertexProgram):
    """Classic Pregel PageRank: fixed number of score exchanges.

    Works under the BSP policy (superstep-aligned); asynchronous policies
    would mix iterations, which is exactly why the paper's PageRank uses
    the delta formulation instead.
    """

    def __init__(self, damping: float = 0.85, iterations: int = 40):
        self.damping = damping
        self.iterations = iterations

    def initial_value(self, vid, graph):
        return 1.0 - self.damping

    def compute(self, ctx, messages, superstep):
        if superstep > 0 and messages:
            ctx.value = (1.0 - self.damping) + self.damping * sum(messages)
        if superstep < self.iterations:
            deg = len(ctx.out_edges())
            if deg:
                share = ctx.value / deg
                for u, _ in ctx.out_edges():
                    ctx.send(u, share)
        ctx.vote_to_halt()

    def combine(self, a, b):
        return a + b


class TestPregelPageRank:
    def test_matches_reference_under_bsp(self, small_powerlaw):
        r = api.run(PregelAdapter(PregelPageRank(iterations=60)),
                    small_powerlaw, None, num_fragments=1, mode="BSP")
        ref = analysis.pagerank(small_powerlaw, epsilon=1e-12)
        for v in ref:
            assert r.answer[v] == pytest.approx(ref[v], abs=1e-2)

    def test_single_fragment_runs_locally(self, small_grid):
        r = api.run(PregelAdapter(PregelPageRank(iterations=30)),
                    small_grid, None, num_fragments=1, mode="BSP")
        assert r.rounds == [1]  # all supersteps inside one PIE round
        assert all(score > 0 for score in r.answer.values())
