"""Tests for the Pregel (vertex-centric) adapter — Proposition 3."""

import math

import pytest

from repro import api
from repro.compat.pregel import (PregelAdapter, PregelVertexProgram,
                                 VertexContext)
from repro.errors import ProgramError
from repro.graph import analysis, generators


class PregelSSSP(PregelVertexProgram):
    def __init__(self, source):
        self.source = source

    def initial_value(self, vid, graph):
        return 0.0 if vid == self.source else math.inf

    def compute(self, ctx, messages, superstep):
        best = min([ctx.value] + list(messages))
        if best < ctx.value or (superstep == 0 and ctx.vid == self.source):
            ctx.value = best
            for u, w in ctx.out_edges():
                ctx.send(u, best + w)
        ctx.vote_to_halt()

    def combine(self, a, b):
        return min(a, b)


class PregelMinLabel(PregelVertexProgram):
    """HashMin connected components as a Pregel program."""

    def initial_value(self, vid, graph):
        return vid

    def compute(self, ctx, messages, superstep):
        best = min([ctx.value] + list(messages))
        if best < ctx.value or superstep == 0:
            ctx.value = best
            ctx.send_to_neighbors(best)
        ctx.vote_to_halt()

    def combine(self, a, b):
        return min(a, b)


@pytest.mark.parametrize("mode", ["BSP", "AP", "AAP"])
class TestPregelSSSP:
    def test_matches_dijkstra(self, small_grid, mode):
        r = api.run(PregelAdapter(PregelSSSP(0)), small_grid, None,
                    num_fragments=4, mode=mode)
        ref = analysis.dijkstra(small_grid, 0)
        assert all(r.answer[v] == pytest.approx(ref[v]) for v in ref)


class TestPregelCC:
    def test_matches_reference(self, small_powerlaw):
        r = api.run(PregelAdapter(PregelMinLabel()), small_powerlaw, None,
                    num_fragments=4, mode="AAP")
        assert r.answer == analysis.connected_components(small_powerlaw)


class TestAdapterMechanics:
    def test_local_messages_consumed_in_loop(self):
        """A path inside one fragment converges in a single PIE round."""
        g = generators.path_graph(10, weighted=False)
        r = api.run(PregelAdapter(PregelSSSP(0)), g, None, num_fragments=1)
        assert r.rounds == [1]
        assert r.answer[9] == 9.0

    def test_send_to_non_adjacent_remote_rejected(self, small_grid):
        class Rogue(PregelSSSP):
            def compute(self, ctx, messages, superstep):
                ctx.send("not-a-node", 1.0)

        with pytest.raises(ProgramError):
            api.run(PregelAdapter(Rogue(0)), small_grid, None,
                    num_fragments=2)

    def test_superstep_budget_guard(self, small_grid):
        class Forever(PregelVertexProgram):
            def initial_value(self, vid, graph):
                return 0

            def compute(self, ctx, messages, superstep):
                ctx.send(ctx.vid and next(iter([n for n, _ in
                                                ctx.out_edges()])) or
                         next(iter([n for n, _ in ctx.out_edges()])), 1)

            def combine(self, a, b):
                return a + b

        adapter = PregelAdapter(Forever(), max_local_supersteps=10)
        with pytest.raises(ProgramError):
            api.run(adapter, small_grid, None, num_fragments=1)

    def test_vertex_context_api(self, small_grid):
        values = {0: 5}
        outbox = []
        ctx = VertexContext(0, values, small_grid, outbox)
        assert ctx.value == 5
        ctx.value = 7
        assert values[0] == 7
        ctx.send(1, "m")
        assert outbox == [(1, "m")]
        ctx.vote_to_halt()
        assert ctx.halted
