"""Unit tests for the property graph structure."""

import pytest

from repro.errors import GraphError
from repro.graph.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert len(g) == 0

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node(1)
        g.add_node(1)
        assert g.num_nodes == 1

    def test_add_edge_adds_endpoints(self):
        g = Graph()
        g.add_edge(1, 2, 3.5)
        assert g.has_node(1) and g.has_node(2)
        assert g.num_edges == 1
        assert g.weight(1, 2) == 3.5

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_parallel_edge_collapsed(self):
        g = Graph()
        g.add_edge(1, 2, 1.0)
        g.add_edge(1, 2, 9.0)
        assert g.num_edges == 1
        assert g.weight(1, 2) == 9.0
        # adjacency weight rewritten too
        assert dict(g.out_edges(1))[2] == 9.0

    def test_node_labels(self):
        g = Graph()
        g.add_node("a", label={"kind": "user"})
        assert g.node_label("a") == {"kind": "user"}
        assert g.node_label("a", default=None) is not None
        g.set_node_label("a", "x")
        assert g.node_label("a") == "x"

    def test_set_label_unknown_node(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.set_node_label("nope", 1)

    def test_edge_labels(self):
        g = Graph(directed=True)
        g.add_edge(1, 2, label="road")
        assert g.edge_label(1, 2) == "road"
        assert g.edge_label(2, 1, default="none") == "none"


class TestDirectedness:
    def test_directed_adjacency(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        assert [u for u, _ in g.out_edges(1)] == [2]
        assert g.out_edges(2) == []
        assert [u for u, _ in g.in_edges(2)] == [1]

    def test_undirected_adjacency_mirrored(self):
        g = Graph(directed=False)
        g.add_edge(1, 2)
        assert [u for u, _ in g.out_edges(2)] == [1]
        assert g.out_degree(1) == g.in_degree(1) == 1

    def test_undirected_edge_key_symmetric(self):
        g = Graph(directed=False)
        g.add_edge(2, 1, 4.0)
        assert g.has_edge(1, 2)
        assert g.weight(1, 2) == 4.0
        assert g.num_edges == 1

    def test_edges_iterates_once(self):
        g = Graph(directed=False)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        assert len(list(g.edges())) == 2


class TestAccessErrors:
    def test_unknown_node_out_edges(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.out_edges(42)

    def test_unknown_edge_weight(self):
        g = Graph()
        g.add_node(1)
        g.add_node(2)
        with pytest.raises(GraphError):
            g.weight(1, 2)


class TestDerived:
    def test_subgraph_preserves_properties(self):
        g = Graph(directed=True)
        g.add_node(1, label="a")
        g.add_edge(1, 2, 2.0, label="e")
        g.add_edge(2, 3, 1.0)
        sub = g.subgraph([1, 2])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1
        assert sub.node_label(1) == "a"
        assert sub.edge_label(1, 2) == "e"

    def test_subgraph_unknown_node(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.subgraph([99])

    def test_reverse(self):
        g = Graph(directed=True)
        g.add_edge(1, 2, 5.0)
        rev = g.reverse()
        assert rev.has_edge(2, 1)
        assert not rev.has_edge(1, 2)
        assert rev.weight(2, 1) == 5.0

    def test_reverse_undirected_is_copy(self):
        g = Graph(directed=False)
        g.add_edge(1, 2)
        assert g.reverse() == g

    def test_as_undirected(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        und = g.as_undirected()
        assert und.num_edges == 1
        assert not und.directed

    def test_copy_independent(self):
        g = Graph()
        g.add_edge(1, 2)
        dup = g.copy()
        dup.add_edge(2, 3)
        assert g.num_edges == 1
        assert dup.num_edges == 2

    def test_equality(self):
        a = Graph(directed=False)
        a.add_edge(1, 2, 3.0)
        b = Graph(directed=False)
        b.add_edge(2, 1, 3.0)
        assert a == b
        c = Graph(directed=True)
        c.add_edge(1, 2, 3.0)
        assert a != c
