"""Tests for graph serialisation."""

import pytest

from repro.errors import GraphError
from repro.graph import generators, io
from repro.graph.graph import Graph


class TestEdgeList:
    def test_roundtrip_directed(self, tmp_path):
        g = generators.rmat(5, edge_factor=3, seed=1)
        path = tmp_path / "g.txt"
        io.write_edge_list(g, path)
        back = io.read_edge_list(path)
        assert back == g

    def test_roundtrip_undirected_weighted(self, tmp_path):
        g = generators.grid2d(4, 4, weighted=True, seed=2)
        path = tmp_path / "g.txt"
        io.write_edge_list(g, path)
        back = io.read_edge_list(path)
        assert back == g
        assert not back.directed

    def test_directed_override(self, tmp_path):
        g = Graph(directed=False)
        g.add_edge(1, 2)
        path = tmp_path / "g.txt"
        io.write_edge_list(g, path)
        forced = io.read_edge_list(path, directed=True)
        assert forced.directed

    def test_bad_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3 4 5\n")
        with pytest.raises(GraphError):
            io.read_edge_list(path)

    def test_string_nodes(self, tmp_path):
        path = tmp_path / "s.txt"
        path.write_text("# directed: true\nalice bob 2.0\n")
        g = io.read_edge_list(path)
        assert g.has_edge("alice", "bob")

    def test_blank_lines_and_comments(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# directed: false\n\n# comment\n1 2\n")
        g = io.read_edge_list(path)
        assert g.num_edges == 1


class TestJson:
    def test_roundtrip_with_labels(self, tmp_path):
        g = Graph(directed=True)
        g.add_node(1, label="source")
        g.add_edge(1, 2, 4.0, label="road")
        path = tmp_path / "g.json"
        io.write_json(g, path)
        back = io.read_json(path)
        assert back == g
        assert back.node_label(1) == "source"
        assert back.edge_label(1, 2) == "road"

    def test_tuple_node_ids_roundtrip(self, tmp_path):
        g, _, _ = generators.bipartite_ratings(5, 4, 2, seed=1)
        path = tmp_path / "b.json"
        io.write_json(g, path)
        back = io.read_json(path)
        assert back == g
        assert any(isinstance(v, tuple) for v in back.nodes)
