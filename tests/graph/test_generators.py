"""Tests for the synthetic graph generators."""

import pytest

from repro.errors import GraphError
from repro.graph import analysis, generators


class TestErdosRenyi:
    def test_node_count(self):
        g = generators.erdos_renyi(50, 0.1, seed=1)
        assert g.num_nodes == 50

    def test_determinism(self):
        a = generators.erdos_renyi(40, 0.2, seed=7)
        b = generators.erdos_renyi(40, 0.2, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = generators.erdos_renyi(40, 0.2, seed=7)
        b = generators.erdos_renyi(40, 0.2, seed=8)
        assert a != b

    def test_p_zero_no_edges(self):
        assert generators.erdos_renyi(20, 0.0, seed=1).num_edges == 0

    def test_p_one_complete(self):
        g = generators.erdos_renyi(10, 1.0, seed=1)
        assert g.num_edges == 45

    def test_invalid_p(self):
        with pytest.raises(GraphError):
            generators.erdos_renyi(10, 1.5)

    def test_weighted(self):
        g = generators.erdos_renyi(20, 0.5, weighted=True, seed=3)
        weights = {w for _, _, w in g.edges()}
        assert all(1.0 <= w <= 10.0 for w in weights)
        assert len(weights) > 1


class TestPowerlaw:
    def test_size(self):
        g = generators.powerlaw(200, m=3, seed=2)
        assert g.num_nodes == 200

    def test_degree_skew(self):
        g = generators.powerlaw(500, m=3, seed=2)
        assert analysis.degree_skew(g) > 3.0

    def test_connected(self):
        g = generators.powerlaw(300, m=2, seed=4)
        comps = analysis.components_as_sets(g)
        assert len(comps) == 1

    def test_rejects_small_n(self):
        with pytest.raises(GraphError):
            generators.powerlaw(3, m=3)

    def test_determinism(self):
        assert generators.powerlaw(100, seed=5) == generators.powerlaw(
            100, seed=5)


class TestRmat:
    def test_node_count_power_of_two(self):
        g = generators.rmat(7, edge_factor=4, seed=1)
        assert g.num_nodes == 128

    def test_directed(self):
        g = generators.rmat(6, seed=1)
        assert g.directed

    def test_invalid_quadrants(self):
        with pytest.raises(GraphError):
            generators.rmat(5, a=0.5, b=0.3, c=0.3)

    def test_skewed_degrees(self):
        g = generators.rmat(9, edge_factor=8, seed=2)
        assert analysis.degree_skew(g) > 3.0


class TestSmallWorld:
    def test_size_and_degree(self):
        g = generators.small_world(60, k=4, beta=0.0, seed=1)
        assert g.num_nodes == 60
        # pure ring lattice: every node has degree k
        assert all(g.out_degree(v) == 4 for v in g.nodes)

    def test_rewiring_changes_graph(self):
        a = generators.small_world(60, k=4, beta=0.0, seed=1)
        b = generators.small_world(60, k=4, beta=0.9, seed=1)
        assert a != b

    def test_invalid_k(self):
        with pytest.raises(GraphError):
            generators.small_world(10, k=3)


class TestGrid:
    def test_size(self):
        g = generators.grid2d(5, 7)
        assert g.num_nodes == 35
        assert g.num_edges == 5 * 6 + 4 * 7

    def test_large_diameter(self):
        g = generators.grid2d(15, 15, weighted=False)
        assert analysis.diameter_estimate(g) >= 28

    def test_invalid_dims(self):
        with pytest.raises(GraphError):
            generators.grid2d(0, 5)

    def test_corner_degrees(self):
        g = generators.grid2d(4, 4)
        assert g.out_degree(0) == 2
        assert g.out_degree(5) == 4


class TestBipartite:
    def test_shape(self):
        g, uf, pf = generators.bipartite_ratings(20, 10, 5, rank=3, seed=1)
        users = [v for v in g.nodes if v[0] == "u"]
        items = [v for v in g.nodes if v[0] == "p"]
        assert len(users) == 20 and len(items) == 10
        assert g.num_edges == 100
        assert len(uf) == 20 and len(uf[0]) == 3

    def test_ratings_near_planted(self):
        g, uf, pf = generators.bipartite_ratings(10, 8, 4, rank=2,
                                                 noise=0.0, seed=2)
        for u, p, r in g.edges():
            if u[0] == "p":
                u, p = p, u
            planted = sum(a * b for a, b in zip(uf[u[1]], pf[p[1]]))
            assert abs(r - planted) < 1e-9

    def test_too_many_ratings(self):
        with pytest.raises(GraphError):
            generators.bipartite_ratings(5, 3, 4)


class TestSimpleShapes:
    def test_path(self):
        g = generators.path_graph(10)
        assert g.num_edges == 9
        assert analysis.diameter_estimate(g) == 9

    def test_star(self):
        g = generators.star_graph(11)
        assert g.out_degree(0) == 10
        assert g.num_edges == 10

    def test_complete(self):
        g = generators.complete_graph(6)
        assert g.num_edges == 15
        gd = generators.complete_graph(4, directed=True)
        assert gd.num_edges == 12
