"""Tests for the sequential reference algorithms."""

import math

import pytest

from repro.errors import GraphError
from repro.graph import analysis, generators
from repro.graph.graph import Graph


class TestDijkstra:
    def test_path_graph(self):
        g = generators.path_graph(5, weighted=False)
        dist = analysis.dijkstra(g, 0)
        assert dist == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}

    def test_weighted_shortcut(self):
        g = Graph(directed=True)
        g.add_edge(0, 1, 10.0)
        g.add_edge(0, 2, 1.0)
        g.add_edge(2, 1, 2.0)
        assert analysis.dijkstra(g, 0)[1] == 3.0

    def test_unreachable_is_inf(self):
        g = Graph(directed=True)
        g.add_edge(0, 1)
        g.add_node(9)
        assert analysis.dijkstra(g, 0)[9] == math.inf

    def test_direction_respected(self):
        g = Graph(directed=True)
        g.add_edge(0, 1, 1.0)
        assert analysis.dijkstra(g, 1)[0] == math.inf

    def test_unknown_source(self):
        g = Graph()
        with pytest.raises(GraphError):
            analysis.dijkstra(g, 0)

    def test_negative_weight_rejected(self):
        g = Graph(directed=True)
        g.add_edge(0, 1, -1.0)
        with pytest.raises(GraphError):
            analysis.dijkstra(g, 0)


class TestComponents:
    def test_two_components(self):
        g = Graph(directed=False)
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        comp = analysis.connected_components(g)
        assert comp == {1: 1, 2: 1, 3: 3, 4: 3}

    def test_weak_connectivity_on_directed(self):
        g = Graph(directed=True)
        g.add_edge(2, 1)  # only reachable 2->1
        comp = analysis.connected_components(g)
        assert comp[1] == comp[2] == 1

    def test_components_as_sets_sorted(self):
        g = Graph(directed=False)
        g.add_edge(5, 6)
        g.add_edge(1, 2)
        sets = analysis.components_as_sets(g)
        assert sets == [{1, 2}, {5, 6}]

    def test_isolated_nodes(self):
        g = Graph()
        g.add_node("a")
        g.add_node("b")
        assert len(analysis.components_as_sets(g)) == 2


class TestPageRank:
    def test_sums_match_formula_on_cycle(self):
        # symmetric cycle: all scores equal (1-d)/(1-d) = 1
        g = Graph(directed=True)
        for i in range(4):
            g.add_edge(i, (i + 1) % 4)
        scores = analysis.pagerank(g, damping=0.85, epsilon=1e-12)
        for v in g.nodes:
            assert scores[v] == pytest.approx(1.0, rel=1e-6)

    def test_hub_scores_higher(self):
        g = Graph(directed=True)
        for leaf in range(1, 6):
            g.add_edge(leaf, 0)
        scores = analysis.pagerank(g)
        assert scores[0] > scores[1]

    def test_dangling_leaks_mass(self):
        g = Graph(directed=True)
        g.add_edge(0, 1)  # 1 is dangling
        scores = analysis.pagerank(g, damping=0.5, epsilon=1e-12)
        assert scores[0] == pytest.approx(0.5)
        assert scores[1] == pytest.approx(0.5 + 0.25)


class TestMisc:
    def test_bfs_levels(self):
        g = generators.grid2d(3, 3, weighted=False)
        levels = analysis.bfs_levels(g, 0)
        assert levels[0] == 0
        assert levels[8] == 4

    def test_bfs_unknown_source(self):
        with pytest.raises(GraphError):
            analysis.bfs_levels(Graph(), 0)

    def test_degree_histogram(self):
        g = generators.star_graph(5)
        hist = analysis.degree_histogram(g)
        assert hist == {4: 1, 1: 4}

    def test_degree_skew_uniform(self):
        g = generators.grid2d(5, 5)
        assert analysis.degree_skew(g) <= 2.0

    def test_diameter_estimate_path(self):
        g = generators.path_graph(20)
        assert analysis.diameter_estimate(g, samples=3) == 19

    def test_rmse(self):
        predicted = {(1, 2): 3.0, (1, 3): 5.0}
        actual = [(1, 2, 3.0), (1, 3, 4.0), (9, 9, 1.0)]
        assert analysis.rmse(predicted, actual) == pytest.approx(
            (1.0 / 2) ** 0.5)

    def test_rmse_empty(self):
        assert analysis.rmse({}, []) == 0.0
