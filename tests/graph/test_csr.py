"""Tests for the CSR compact graph backend."""

import math

import pytest

from repro.errors import GraphError
from repro.graph import analysis, generators
from repro.graph.csr import CompactGraph
from repro.graph.graph import Graph


@pytest.fixture
def small_compact(small_grid):
    return CompactGraph.from_graph(small_grid)


class TestConstruction:
    def test_from_graph_roundtrip(self, small_grid):
        cg = CompactGraph.from_graph(small_grid)
        assert cg.num_nodes == small_grid.num_nodes
        assert cg.num_edges == small_grid.num_edges
        assert cg.to_graph() == small_grid

    def test_from_edges_directed(self):
        cg = CompactGraph.from_edges(3, [(0, 1, 2.0), (1, 2, 3.0)],
                                     directed=True)
        assert cg.out_edges(0) == [(1, 2.0)]
        assert cg.out_edges(2) == []
        assert cg.in_edges(2) == [(1, 3.0)]

    def test_from_edges_undirected_mirrors(self):
        cg = CompactGraph.from_edges(2, [(0, 1, 5.0)], directed=False)
        assert cg.out_edges(1) == [(0, 5.0)]
        assert cg.num_edges == 1

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            CompactGraph.from_edges(2, [(0, 5, 1.0)])

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            CompactGraph.from_edges(2, [(1, 1, 1.0)])

    def test_rejects_noncontiguous_ids(self):
        g = Graph()
        g.add_edge("a", "b")
        with pytest.raises(GraphError):
            CompactGraph.from_graph(g)


class TestReadApi:
    def test_adjacency_matches_dict_graph(self, small_grid, small_compact):
        for v in small_grid.nodes:
            assert sorted(small_compact.out_edges(v)) == \
                sorted(small_grid.out_edges(v))
            assert small_compact.out_degree(v) == small_grid.out_degree(v)
            assert small_compact.in_degree(v) == small_grid.in_degree(v)

    def test_edges_iterate_once(self, small_grid, small_compact):
        mine = {(u, v) for u, v, _ in small_compact.edges()}
        theirs = {(min(u, v), max(u, v))
                  for u, v, _ in small_grid.edges()}
        assert {(min(u, v), max(u, v)) for u, v in mine} == theirs

    def test_has_edge_and_weight(self, small_grid, small_compact):
        u, v, w = next(iter(small_grid.edges()))
        assert small_compact.has_edge(u, v)
        assert small_compact.weight(u, v) == w
        assert not small_compact.has_edge(0, 99)

    def test_unknown_access(self, small_compact):
        with pytest.raises(GraphError):
            small_compact.out_edges(-1)
        with pytest.raises(GraphError):
            small_compact.weight(0, 2)
        assert "ghost" not in small_compact

    def test_len_and_repr(self, small_compact):
        assert len(small_compact) == 100
        assert "CompactGraph" in repr(small_compact)


class TestAlgorithmsRunOnCsr:
    def test_dijkstra(self, small_grid, small_compact):
        ref = analysis.dijkstra(small_grid, 0)
        got = analysis.dijkstra(small_compact, 0)
        assert all(got[v] == pytest.approx(ref[v]) for v in ref)

    def test_components(self, small_powerlaw):
        cg = CompactGraph.from_graph(small_powerlaw)
        assert analysis.connected_components(cg) == \
            analysis.connected_components(small_powerlaw)

    def test_pagerank(self, small_powerlaw):
        cg = CompactGraph.from_graph(small_powerlaw)
        ref = analysis.pagerank(small_powerlaw, epsilon=1e-9)
        got = analysis.pagerank(cg, epsilon=1e-9)
        for v in ref:
            assert got[v] == pytest.approx(ref[v], abs=1e-6)

    def test_bfs_and_diameter(self, small_grid, small_compact):
        assert analysis.bfs_levels(small_compact, 0) == \
            analysis.bfs_levels(small_grid, 0)
        assert analysis.diameter_estimate(small_compact) == \
            analysis.diameter_estimate(small_grid)


class TestEndToEndOnCsr:
    def test_partition_and_run_from_csr(self, small_powerlaw):
        """A CompactGraph feeds the partitioner/engine unchanged."""
        from repro import api
        from repro.algorithms import CCProgram, CCQuery
        cg = CompactGraph.from_graph(small_powerlaw)
        pg = api.partition_graph(cg, 4)
        r = api.run(CCProgram(), pg, CCQuery())
        assert r.answer == analysis.connected_components(small_powerlaw)


class TestArrayAccessors:
    def test_out_arrays_zero_copy(self, small_compact):
        import numpy as np
        nbrs, wts = small_compact.out_arrays(3)
        assert np.shares_memory(nbrs, small_compact.out_indices)
        assert np.shares_memory(wts, small_compact.out_weights)

    def test_out_arrays_match_out_edges(self, small_compact):
        for v in small_compact.nodes:
            nbrs, wts = small_compact.out_arrays(v)
            assert list(zip(nbrs.tolist(), wts.tolist())) \
                == small_compact.out_edges(v)

    def test_in_arrays_match_in_edges(self):
        cg = CompactGraph.from_edges(
            4, [(0, 1, 2.0), (2, 1, 3.0), (3, 1, 4.0)], directed=True)
        nbrs, wts = cg.in_arrays(1)
        assert sorted(zip(nbrs.tolist(), wts.tolist())) \
            == sorted(cg.in_edges(1))

    def test_indptr_degrees(self, small_grid, small_compact):
        import numpy as np
        degs = np.diff(small_compact.out_indptr)
        for v in small_compact.nodes:
            assert degs[v] == small_grid.out_degree(v)


class TestExpandRanges:
    def test_matches_naive_expansion(self):
        import numpy as np
        from repro.graph.csr import expand_ranges
        starts = np.array([5, 0, 9], dtype=np.int64)
        counts = np.array([3, 0, 2], dtype=np.int64)
        expect = [5, 6, 7, 9, 10]
        assert expand_ranges(starts, counts).tolist() == expect

    def test_empty(self):
        import numpy as np
        from repro.graph.csr import expand_ranges
        out = expand_ranges(np.empty(0, dtype=np.int64),
                            np.empty(0, dtype=np.int64))
        assert out.size == 0
