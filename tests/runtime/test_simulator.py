"""Tests for the discrete-event runtime."""

import pytest

from repro import api
from repro.algorithms import (CCProgram, CCQuery, SSSPProgram, SSSPQuery)
from repro.core.delay import DelayPolicy
from repro.core.engine import Engine
from repro.core.modes import make_policy
from repro.errors import RuntimeConfigError, TerminationError
from repro.graph import analysis, generators
from repro.partition.edge_cut import HashPartitioner
from repro.runtime.costmodel import CostModel
from repro.runtime.simulator import SimulatedRuntime


def build(graph, program, query, mode="AAP", m=4, **kwargs):
    pg = HashPartitioner().partition(graph, m)
    return SimulatedRuntime(Engine(program, pg, query), make_policy(mode),
                            **kwargs)


class TestDeterminism:
    def test_identical_runs(self, small_grid):
        results = []
        for _ in range(2):
            rt = build(small_grid, SSSPProgram(), SSSPQuery(source=0),
                       mode="AAP",
                       cost_model=CostModel(latency_jitter=0.1, seed=3))
            results.append(rt.run())
        a, b = results
        assert a.answer == b.answer
        assert a.time == b.time
        assert a.rounds == b.rounds
        assert a.metrics.total_messages == b.metrics.total_messages

    def test_jitter_seed_changes_timing_not_answer(self, small_grid):
        def run(seed):
            rt = build(small_grid, SSSPProgram(), SSSPQuery(source=0),
                       cost_model=CostModel(latency_jitter=0.5, seed=seed))
            return rt.run()

        a, b = run(1), run(2)
        assert a.answer == b.answer
        assert a.time != b.time


class TestLifecycle:
    def test_cannot_run_twice(self, small_grid):
        rt = build(small_grid, CCProgram(), CCQuery())
        rt.run()
        with pytest.raises(TerminationError):
            rt.run()

    def test_max_events_guard(self, small_grid):
        rt = build(small_grid, SSSPProgram(), SSSPQuery(source=0),
                   max_events=5)
        with pytest.raises(TerminationError):
            rt.run()

    def test_bad_hosts_length(self, small_grid):
        pg = HashPartitioner().partition(small_grid, 4)
        engine = Engine(CCProgram(), pg, CCQuery())
        with pytest.raises(RuntimeConfigError):
            SimulatedRuntime(engine, make_policy("AP"), hosts=[0, 1])

    def test_livelock_policy_detected(self, small_grid):
        class Stuck(DelayPolicy):
            name = "stuck"

            def delay(self, view):
                return float("inf")

        pg = HashPartitioner().partition(small_grid, 4)
        rt = SimulatedRuntime(Engine(SSSPProgram(), pg,
                                     SSSPQuery(source=0)), Stuck())
        with pytest.raises(TerminationError):
            rt.run()


class TestMetricsAndTrace:
    def test_metrics_consistency(self, small_powerlaw):
        rt = build(small_powerlaw, CCProgram(), CCQuery(), mode="AP")
        result = rt.run()
        m = result.metrics
        assert m.makespan > 0
        assert m.total_messages == sum(w.messages_sent for w in m.workers)
        sent = sum(w.messages_sent for w in m.workers)
        received = sum(w.messages_received for w in m.workers)
        assert sent == received, "all sent messages must be delivered"
        assert m.total_rounds == sum(result.rounds)
        assert m.total_busy <= m.makespan * len(m.workers) + 1e-9

    def test_trace_recorded(self, small_grid):
        rt = build(small_grid, SSSPProgram(), SSSPQuery(source=0))
        result = rt.run()
        assert result.trace.intervals
        assert result.trace.makespan() <= result.time + 1e-9
        # every worker has exactly one peval interval
        for wid in range(4):
            kinds = [iv.kind for iv in result.trace.by_worker()[wid]]
            assert kinds.count("peval") == 1

    def test_trace_disabled(self, small_grid):
        rt = build(small_grid, CCProgram(), CCQuery(), record_trace=False)
        result = rt.run()
        assert result.trace.intervals == []


class TestSharedHosts:
    def test_virtual_workers_share_host_serialize(self, small_grid):
        # 4 virtual workers on 2 hosts: rounds on the same host serialise,
        # so the makespan grows vs dedicated hosts
        pg = HashPartitioner().partition(small_grid, 4)

        def run(hosts):
            rt = SimulatedRuntime(
                Engine(SSSPProgram(), pg, SSSPQuery(source=0)),
                make_policy("AP"), cost_model=CostModel(seed=1),
                hosts=hosts)
            return rt.run()

        dedicated = run(None)
        shared = run([0, 0, 1, 1])
        assert shared.answer == dedicated.answer
        assert shared.time > dedicated.time

    def test_all_on_one_host(self, small_grid):
        pg = HashPartitioner().partition(small_grid, 3)
        rt = SimulatedRuntime(Engine(CCProgram(), pg, CCQuery()),
                              make_policy("AAP"), hosts=[0, 0, 0])
        result = rt.run()
        assert result.answer == analysis.connected_components(small_grid)


class TestStragglers:
    def test_straggler_dominates_makespan(self, small_powerlaw):
        pg = HashPartitioner().partition(small_powerlaw, 4)

        def run(factor):
            rt = SimulatedRuntime(
                Engine(CCProgram(), pg, CCQuery()), make_policy("BSP"),
                cost_model=CostModel.with_straggler(0, factor=factor))
            return rt.run()

        slow = run(8.0)
        fast = run(1.0)
        assert slow.time > fast.time

    def test_single_fragment_degenerate(self, small_grid):
        pg = HashPartitioner().partition(small_grid, 1)
        rt = SimulatedRuntime(Engine(SSSPProgram(), pg, SSSPQuery(source=0)),
                              make_policy("AAP"))
        result = rt.run()
        ref = analysis.dijkstra(small_grid, 0)
        assert all(result.answer[v] == pytest.approx(ref[v]) for v in ref)
        assert result.rounds == [1]  # PEval alone suffices


class TestTailAccounting:
    """Regression: _collect_metrics must split the trailing non-RUNNING
    segment into suspended vs. idle exactly as _start_round does."""

    def _runtime(self, graph):
        pg = HashPartitioner().partition(graph, 2)
        return SimulatedRuntime(Engine(CCProgram(), pg, CCQuery()),
                                make_policy("AAP"))

    def test_waiting_tail_counts_as_suspended(self, small_grid):
        from repro.core.worker import WorkerStatus

        rt = self._runtime(small_grid)
        rt.now = 10.0
        w = rt.workers[0]
        w.status = WorkerStatus.WAITING
        w.idle_since = 2.0   # finished its last round at t=2
        w.wait_started = 6.0  # under a delay stretch since t=6
        metrics = rt._collect_metrics()
        wm = metrics.workers[0]
        assert wm.suspended_time == pytest.approx(4.0)
        assert wm.idle_time == pytest.approx(4.0)

    def test_inactive_tail_is_pure_idle(self, small_grid):
        from repro.core.worker import WorkerStatus

        rt = self._runtime(small_grid)
        rt.now = 10.0
        w = rt.workers[0]
        w.status = WorkerStatus.INACTIVE
        w.idle_since = 3.0
        w.wait_started = None
        metrics = rt._collect_metrics()
        wm = metrics.workers[0]
        assert wm.suspended_time == pytest.approx(0.0)
        assert wm.idle_time == pytest.approx(7.0)

    def test_running_worker_gets_no_tail(self, small_grid):
        from repro.core.worker import WorkerStatus

        rt = self._runtime(small_grid)
        rt.now = 10.0
        w = rt.workers[0]
        w.status = WorkerStatus.RUNNING
        w.idle_since = 0.0
        metrics = rt._collect_metrics()
        wm = metrics.workers[0]
        assert wm.suspended_time == 0.0
        assert wm.idle_time == 0.0

    def test_wait_never_exceeds_gap(self, small_grid):
        # wait_started before idle_since (stale marker) must not produce
        # suspended time larger than the whole gap
        from repro.core.worker import WorkerStatus

        rt = self._runtime(small_grid)
        rt.now = 10.0
        w = rt.workers[0]
        w.status = WorkerStatus.WAITING
        w.idle_since = 8.0
        w.wait_started = 1.0
        metrics = rt._collect_metrics()
        wm = metrics.workers[0]
        assert wm.suspended_time == pytest.approx(2.0)
        assert wm.idle_time == pytest.approx(0.0)

    def test_full_run_time_budget_balances(self, small_grid):
        # after the fix, busy + idle + suspended ~= makespan per worker
        pg = HashPartitioner().partition(small_grid, 4)
        rt = SimulatedRuntime(Engine(SSSPProgram(), pg, SSSPQuery(source=0)),
                              make_policy("AAP"),
                              cost_model=CostModel.with_straggler(0,
                                                                  factor=4.0))
        result = rt.run()
        for w in result.metrics.workers:
            total = w.busy_time + w.idle_time + w.suspended_time
            assert total == pytest.approx(result.metrics.makespan, rel=1e-6)
