"""Tests for the multiprocessing runtime (true cross-process execution)."""

import pytest

from repro import api
from repro.algorithms import (CCProgram, CCQuery, PageRankProgram,
                              PageRankQuery, SSSPProgram, SSSPQuery)
from repro.errors import RuntimeConfigError
from repro.graph import analysis, generators
from repro.runtime.multiprocess import MultiprocessRuntime


@pytest.fixture(scope="module")
def graph():
    return generators.powerlaw(300, m=2, weighted=True, seed=3)


@pytest.fixture(scope="module")
def pg(graph):
    return api.partition_graph(graph, 4)


@pytest.mark.parametrize("mode", ["AP", "AAP", "BSP"])
class TestCorrectness:
    def test_cc(self, graph, pg, mode):
        r = MultiprocessRuntime(CCProgram(), pg, CCQuery(), mode=mode,
                                timeout=90).run()
        assert r.answer == analysis.connected_components(graph)
        assert r.mode == f"{mode}-multiprocess"

    def test_sssp(self, graph, pg, mode):
        r = MultiprocessRuntime(SSSPProgram(), pg, SSSPQuery(source=0),
                                mode=mode, timeout=90).run()
        ref = analysis.dijkstra(graph, 0)
        assert all(r.answer[v] == pytest.approx(ref[v]) for v in ref)


class TestPageRankMp:
    def test_pagerank_ap(self, graph, pg):
        r = MultiprocessRuntime(
            PageRankProgram(), pg,
            PageRankQuery(epsilon=1e-3, num_nodes=graph.num_nodes),
            mode="AP", timeout=90).run()
        ref = analysis.pagerank(graph, epsilon=1e-10)
        for v in ref:
            assert r.answer[v] == pytest.approx(ref[v], abs=5e-3)


class TestMechanics:
    def test_unknown_mode(self, pg):
        with pytest.raises(RuntimeConfigError):
            MultiprocessRuntime(CCProgram(), pg, CCQuery(), mode="nope")

    def test_metrics_reported(self, graph, pg):
        r = MultiprocessRuntime(CCProgram(), pg, CCQuery(), mode="AP",
                                timeout=90).run()
        assert r.metrics.total_messages > 0
        assert r.metrics.total_bytes > 0
        assert all(rounds >= 1 for rounds in r.rounds)
        assert r.metrics.makespan > 0
