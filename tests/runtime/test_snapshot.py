"""Tests for Chandy-Lamport snapshots and checkpoint recovery."""

import pytest

from repro.algorithms import (CCProgram, CCQuery, PageRankProgram,
                              PageRankQuery, SSSPProgram, SSSPQuery)
from repro.core.engine import Engine
from repro.core.modes import make_policy
from repro.errors import SnapshotError
from repro.graph import analysis
from repro.partition.edge_cut import HashPartitioner
from repro.runtime.costmodel import CostModel
from repro.runtime.faults import (recover_from_snapshot, run_with_checkpoint,
                                  run_with_failure)
from repro.runtime.simulator import SimulatedRuntime
from repro.runtime.snapshot import ChandyLamportCoordinator, GlobalSnapshot


@pytest.fixture
def pg(small_powerlaw):
    return HashPartitioner().partition(small_powerlaw, 4)


class TestSnapshotMechanics:
    def test_all_workers_recorded(self, pg):
        report = run_with_checkpoint(
            lambda: Engine(CCProgram(), pg, CCQuery()),
            lambda: make_policy("AP"), checkpoint_time=1.0)
        assert report.snapshot.num_workers_recorded == 4
        assert report.snapshot.complete

    def test_snapshot_does_not_change_answer(self, pg, small_powerlaw):
        report = run_with_checkpoint(
            lambda: Engine(CCProgram(), pg, CCQuery()),
            lambda: make_policy("AAP"), checkpoint_time=2.0)
        assert report.result.answer == analysis.connected_components(
            small_powerlaw)

    def test_finalize_without_initiation(self):
        with pytest.raises(SnapshotError):
            ChandyLamportCoordinator().finalize()

    def test_token_stamping(self, pg):
        coord = ChandyLamportCoordinator(token=7)
        engine = Engine(SSSPProgram(), pg, SSSPQuery(source=0))
        runtime = SimulatedRuntime(engine, make_policy("AP"),
                                   snapshot_coordinator=coord)
        coord.request_at(runtime, time=0.5)
        runtime.run()
        snap = coord.finalize()
        # every message recorded in channel state lacks the token
        for msgs in snap.channel_messages.values():
            assert all(m.token != 7 for m in msgs)


class TestRecovery:
    @pytest.mark.parametrize("checkpoint_time", [0.5, 2.0, 10.0])
    def test_cc_recovers_to_same_answer(self, pg, small_powerlaw,
                                        checkpoint_time):
        report = run_with_failure(
            lambda: Engine(CCProgram(), pg, CCQuery()),
            lambda: make_policy("AAP"), checkpoint_time=checkpoint_time)
        assert report.failed
        assert report.result.answer == analysis.connected_components(
            small_powerlaw)

    def test_sssp_recovers(self, pg, small_powerlaw):
        ref = analysis.dijkstra(small_powerlaw, 0)
        report = run_with_failure(
            lambda: Engine(SSSPProgram(), pg, SSSPQuery(source=0)),
            lambda: make_policy("AP"), checkpoint_time=1.0,
            cost_model_factory=lambda: CostModel(seed=2))
        assert all(report.result.answer[v] == pytest.approx(ref[v])
                   for v in ref)

    def test_pagerank_recovers_within_tolerance(self, pg, small_powerlaw):
        ref = analysis.pagerank(small_powerlaw, epsilon=1e-10)
        report = run_with_failure(
            lambda: Engine(PageRankProgram(), pg,
                           PageRankQuery(epsilon=1e-4)),
            lambda: make_policy("AAP"), checkpoint_time=3.0)
        for v in ref:
            assert report.result.answer[v] == pytest.approx(ref[v],
                                                            abs=2e-3)

    def test_recover_from_empty_snapshot_rejected(self, pg):
        with pytest.raises(SnapshotError):
            recover_from_snapshot(
                lambda: Engine(CCProgram(), pg, CCQuery()),
                lambda: make_policy("AAP"), GlobalSnapshot(token=1))

    def test_late_checkpoint_snapshots_fixpoint(self, pg, small_powerlaw):
        # checkpoint far after convergence: recovery starts quiescent and
        # still assembles the right answer
        report = run_with_failure(
            lambda: Engine(CCProgram(), pg, CCQuery()),
            lambda: make_policy("BSP"), checkpoint_time=10_000.0)
        assert report.result.answer == analysis.connected_components(
            small_powerlaw)

    def test_request_past_drain_yields_empty_complete_snapshot(self, pg):
        # request_at lands after the event queue has fully drained: every
        # worker records at quiescence, so the cut has all worker states,
        # no in-channel messages, and is still marked complete
        report = run_with_checkpoint(
            lambda: Engine(CCProgram(), pg, CCQuery()),
            lambda: make_policy("AAP"), checkpoint_time=50_000.0)
        snap = report.snapshot
        assert snap.complete
        assert snap.num_workers_recorded == 4
        assert snap.num_channel_messages == 0
        assert all(not msgs for msgs in snap.channel_messages.values())

    def test_recover_from_snapshot_under_aap(self, pg, small_powerlaw):
        # direct recover_from_snapshot with the adaptive policy: seed a
        # fresh runtime from a mid-run AAP cut and run to fixpoint
        report = run_with_checkpoint(
            lambda: Engine(CCProgram(), pg, CCQuery()),
            lambda: make_policy("AAP"), checkpoint_time=1.0)
        result = recover_from_snapshot(
            lambda: Engine(CCProgram(), pg, CCQuery()),
            lambda: make_policy("AAP"), report.snapshot)
        assert result.answer == analysis.connected_components(
            small_powerlaw)
