"""End-to-end fault tolerance: injection, detection, live recovery.

Covers the live runtimes (threaded and multiprocess): a seeded crash is
detected via heartbeats, the run rolls back to the last Chandy-Lamport
checkpoint, and for monotone programs the recovered answer equals the
fault-free one (Theorem 2).  Exhausted retry budgets must surface a
structured :class:`WorkerFailureError` instead of hanging.
"""

import pytest

from repro.algorithms import CCProgram, CCQuery, SSSPProgram, SSSPQuery
from repro.core.delay import AAPPolicy
from repro.core.engine import Engine
from repro.errors import TerminationError, WorkerFailureError
from repro.graph import analysis, generators
from repro.partition.edge_cut import HashPartitioner
from repro.runtime.faultplan import (CrashFault, DelayFault, DropFault,
                                     DuplicateFault, FaultPlan,
                                     StragglerFault)
from repro.runtime.recovery import RetryPolicy, run_chaos
from repro.runtime.threaded import ThreadedRuntime


@pytest.fixture
def grid():
    return generators.grid2d(12, 12)


@pytest.fixture
def pg(grid):
    return HashPartitioner().partition(grid, 4)


def chaos(pg, plan, *, algorithm="sssp", graph=None, **kw):
    if algorithm == "sssp":
        program, query = SSSPProgram(), SSSPQuery(source=0)
    else:
        program, query = CCProgram(), CCQuery()
    kw.setdefault("checkpoint_interval", 0.01)
    kw.setdefault("heartbeat_interval", 0.005)
    kw.setdefault("heartbeat_timeout", 0.25)
    return run_chaos(program, pg, query, plan, **kw)


class TestThreadedRecovery:
    def test_crash_detected_and_recovered(self, pg):
        plan = FaultPlan(seed=1, faults=(CrashFault(wid=1, at_round=3),))
        report = chaos(pg, plan, runtime="threaded")
        assert report["ok"]
        assert report["answer_matches_reference"]
        assert report["recoveries"] == 1
        assert report["failures"][0]["kind"] == "worker_dead"
        assert report["failures"][0]["wid"] == 1

    def test_detection_beats_global_timeout(self, pg):
        # heartbeat detection must fire in O(heartbeat timeout), far below
        # the runtime's global timeout
        plan = FaultPlan(seed=1, faults=(CrashFault(wid=0, at_round=2),))
        report = chaos(pg, plan, runtime="threaded", timeout=60.0)
        assert report["ok"]
        assert report["detection_latencies"]
        assert all(lat < 5.0 for lat in report["detection_latencies"])

    def test_resumes_from_checkpoint(self, pg):
        # crash late enough that a periodic checkpoint completed first
        plan = FaultPlan(seed=2, faults=(
            CrashFault(wid=2, at_round=8),
            StragglerFault(wid=1, factor=2.0)))
        report = chaos(pg, plan, runtime="threaded",
                       checkpoint_interval=0.005)
        assert report["ok"] and report["answer_matches_reference"]

    def test_message_faults_preserve_answer(self, pg):
        # duplicates and delays are safe for idempotent monotone programs;
        # termination still holds because accounting stays balanced
        plan = FaultPlan(seed=3, faults=(
            DuplicateFault(rate=0.2), DelayFault(rate=0.2, delay=0.005)))
        report = chaos(pg, plan, runtime="threaded", algorithm="cc")
        assert report["ok"]
        assert report["answer_matches_reference"]
        assert report["recoveries"] == 0

    def test_drops_do_not_hang_termination(self, pg):
        # dropped messages never enter the in-flight ledger, so the
        # termination protocol still reaches unanimity (the answer may be
        # stale -- drops violate the paper's reliable-channel assumption)
        plan = FaultPlan(seed=4, faults=(DropFault(rate=0.15),))
        report = chaos(pg, plan, runtime="threaded", timeout=30.0)
        assert report["ok"]

    def test_retries_exhausted_raises_structured_error(self, pg):
        program, query = SSSPProgram(), SSSPQuery(source=0)
        plan = FaultPlan(seed=5, faults=(CrashFault(wid=0, at_round=2),))

        def factory(snapshot, attempt):
            engine = Engine(program, pg, query)
            rt = ThreadedRuntime(
                engine, AAPPolicy(), timeout=30.0, fault_plan=plan,
                checkpoint_interval=0.01, heartbeat_interval=0.005,
                heartbeat_timeout=0.25)
            if snapshot is not None:
                rt.seed_from_snapshot(snapshot)
            return rt

        from repro.runtime.recovery import run_with_recovery
        with pytest.raises(WorkerFailureError) as exc_info:
            run_with_recovery(factory,
                              retry=RetryPolicy(max_retries=1, backoff=0.0))
        err = exc_info.value
        assert err.attempts == 2
        assert err.failures  # the failure log rides on the exception
        assert all(f.wid == 0 for f in err.failures)

    def test_chaos_reports_exhaustion(self, pg):
        # run_chaos keeps every crash live (no without_crashes) by feeding
        # retries the same plan via retry budget 0
        plan = FaultPlan(seed=6, faults=(CrashFault(wid=1, at_round=2),))
        report = chaos(pg, plan, runtime="threaded",
                       retry=RetryPolicy(max_retries=0))
        assert not report["ok"]
        assert report["attempts"] == 1
        assert report["failures"]

    def test_no_fault_plan_unchanged(self, pg):
        plan = FaultPlan(seed=0, faults=())
        report = chaos(pg, plan, runtime="threaded")
        assert report["ok"] and report["answer_matches_reference"]
        assert report["recoveries"] == 0
        assert not report["resumed_from_checkpoint"]


class TestMultiprocessRecovery:
    def test_crash_detected_and_recovered(self, pg, grid):
        plan = FaultPlan(seed=1, faults=(CrashFault(wid=0, at_round=4),))
        report = chaos(pg, plan, runtime="multiprocess",
                       heartbeat_timeout=0.5, timeout=60.0)
        assert report["ok"]
        assert report["answer_matches_reference"]
        assert report["recoveries"] >= 1
        assert report["detection_latencies"]
        assert all(lat < 10.0 for lat in report["detection_latencies"])

    def test_worker_traceback_surfaced(self, grid):
        # a Python exception in IncEval is a program bug, not a failure:
        # the worker ships its formatted traceback in the error control
        # message and the master embeds it in the raised TerminationError
        class Exploding(SSSPProgram):
            def inceval(self, frag, ctx, activated, query):
                raise ValueError("kaboom in inceval")

        pg = HashPartitioner().partition(grid, 2)
        from repro.runtime.multiprocess import MultiprocessRuntime
        rt = MultiprocessRuntime(Exploding(), pg, SSSPQuery(source=0),
                                 timeout=30.0)
        with pytest.raises(TerminationError) as exc_info:
            rt.run()
        text = str(exc_info.value)
        assert "worker traceback" in text
        assert "kaboom in inceval" in text


class TestDeterministicInjection:
    def test_same_seed_same_fault_log(self, pg):
        plan = FaultPlan(seed=9, faults=(CrashFault(wid=1, at_round=3),))
        a = chaos(pg, plan, runtime="threaded")
        b = chaos(pg, plan, runtime="threaded")
        assert [f["kind"] for f in a["failures"]] == \
               [f["kind"] for f in b["failures"]]
        assert [f["wid"] for f in a["failures"]] == \
               [f["wid"] for f in b["failures"]]
        assert a["answer_matches_reference"] and \
            b["answer_matches_reference"]


class TestRetryPolicy:
    def test_backoff_is_bounded_exponential(self):
        rp = RetryPolicy(max_retries=5, backoff=0.1, factor=2.0,
                         max_backoff=0.3)
        assert rp.delay(1) == pytest.approx(0.1)
        assert rp.delay(2) == pytest.approx(0.2)
        assert rp.delay(3) == pytest.approx(0.3)  # capped
        assert rp.delay(10) == pytest.approx(0.3)

    def test_invalid_parameters_rejected(self):
        from repro.errors import RuntimeConfigError
        with pytest.raises(RuntimeConfigError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(RuntimeConfigError):
            RetryPolicy(factor=0.5)


class TestRecoveryResultAnswer:
    def test_sssp_answer_equals_dijkstra(self, pg, grid):
        ref = analysis.dijkstra(grid, 0)
        plan = FaultPlan(seed=11, faults=(CrashFault(wid=3, at_round=3),))
        program, query = SSSPProgram(), SSSPQuery(source=0)
        report = run_chaos(program, pg, query, plan, runtime="threaded",
                           checkpoint_interval=0.01,
                           heartbeat_interval=0.005,
                           heartbeat_timeout=0.25,
                           reference=ref)
        assert report["ok"]
        assert report["answer_matches_reference"]
