"""Tests for the deterministic event queue."""

import pytest

from repro.runtime.events import (Custom, Deliver, Event, EventQueue,
                                  HostFree, RoundEnd, WakeUp)


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(RoundEnd(time=5.0, wid=1))
        q.push(RoundEnd(time=2.0, wid=2))
        q.push(RoundEnd(time=8.0, wid=3))
        assert [q.pop().wid for _ in range(3)] == [2, 1, 3]

    def test_fifo_on_ties(self):
        q = EventQueue()
        for wid in (7, 3, 9):
            q.push(RoundEnd(time=1.0, wid=wid))
        assert [q.pop().wid for _ in range(3)] == [7, 3, 9]

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(WakeUp(time=4.0, wid=0, epoch=1))
        assert q.peek_time() == 4.0

    def test_processed_counter(self):
        q = EventQueue()
        q.push(Custom(time=0.0, tag="x"))
        q.pop()
        assert q.processed == 1

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(RoundEnd(time=-1.0, wid=0))

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(HostFree(time=0.0, host=0))
        assert len(q) == 1
        assert q


class TestEventKinds:
    def test_event_payloads(self):
        e = WakeUp(time=1.0, wid=3, epoch=7)
        assert e.wid == 3 and e.epoch == 7
        c = Custom(time=2.0, tag="snapshot", payload={"x": 1})
        assert c.tag == "snapshot"

    def test_events_frozen(self):
        e = RoundEnd(time=1.0, wid=0)
        with pytest.raises(AttributeError):
            e.time = 5.0
