"""Host-contention coverage: more virtual workers than physical hosts.

Exercises ``_try_start`` / ``_drain_host_queue``: queued workers must never
be queued twice, a worker is only started when it still wants the host
(CREATED, or WAITING with a non-empty buffer), and a queued worker whose
buffer drained in the meantime is skipped in favour of the next in line.
"""

import pytest

from repro.algorithms import CCProgram, CCQuery, SSSPProgram, SSSPQuery
from repro.core.engine import Engine
from repro.core.modes import make_policy
from repro.core.worker import WorkerStatus
from repro.graph import analysis
from repro.partition.edge_cut import HashPartitioner
from repro.runtime.costmodel import CostModel
from repro.runtime.simulator import SimulatedRuntime


class _InvariantRuntime(SimulatedRuntime):
    """Simulator that checks host-queue invariants on every transition."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.starts = 0
        self.queue_high_water = 0

    def _check_invariants(self):
        for host, q in enumerate(self._host_queue):
            assert len(q) == len(set(q)), \
                f"worker queued twice on host {host}: {q}"
            occupant = self._host_occupant[host]
            assert occupant not in q, \
                f"occupant {occupant} of host {host} is also queued"
        running = [w.wid for w in self.workers
                   if w.status is WorkerStatus.RUNNING]
        per_host = {}
        for wid in running:
            host = self.workers[wid].host
            per_host.setdefault(host, []).append(wid)
        for host, wids in per_host.items():
            assert len(wids) == 1, \
                f"host {host} runs {wids} concurrently"
            assert self._host_occupant[host] == wids[0]

    def _try_start(self, wid):
        started = super()._try_start(wid)
        self.queue_high_water = max(
            self.queue_high_water,
            max((len(q) for q in self._host_queue), default=0))
        self._check_invariants()
        return started

    def _start_round(self, wid):
        w = self.workers[wid]
        assert (w.status is WorkerStatus.CREATED
                or (w.status is WorkerStatus.WAITING and w.buffer)), \
            f"started worker {wid} in status {w.status} " \
            f"(buffer={bool(w.buffer)})"
        self.starts += 1
        super()._start_round(wid)
        self._check_invariants()

    def _drain_host_queue(self, host):
        super()._drain_host_queue(host)
        self._check_invariants()


def _run_checked(graph, program, query, mode, hosts, m=4):
    pg = HashPartitioner().partition(graph, m)
    rt = _InvariantRuntime(Engine(program, pg, query), make_policy(mode),
                           cost_model=CostModel(seed=2), hosts=hosts)
    return rt, rt.run()


class TestContention:
    @pytest.mark.parametrize("mode", ["AAP", "AP", "BSP"])
    def test_two_workers_per_host(self, small_grid, mode):
        rt, result = _run_checked(small_grid, SSSPProgram(),
                                  SSSPQuery(source=0), mode,
                                  hosts=[0, 0, 1, 1])
        ref = analysis.dijkstra(small_grid, 0)
        assert all(result.answer[v] == pytest.approx(ref[v]) for v in ref)
        assert rt.starts == sum(result.rounds)
        assert rt.queue_high_water >= 1, \
            "2 workers per host must contend at least once (PEval)"

    def test_all_workers_on_one_host(self, small_powerlaw):
        rt, result = _run_checked(small_powerlaw, CCProgram(), CCQuery(),
                                  "AAP", hosts=[0, 0, 0, 0])
        assert result.answer == analysis.connected_components(small_powerlaw)
        assert rt.queue_high_water >= 3, \
            "four CREATED workers on one host queue three deep at t=0"

    def test_contended_matches_dedicated_answer(self, small_grid):
        _, contended = _run_checked(small_grid, CCProgram(), CCQuery(),
                                    "AAP", hosts=[0, 1, 0, 1])
        _, dedicated = _run_checked(small_grid, CCProgram(), CCQuery(),
                                    "AAP", hosts=None)
        assert contended.answer == dedicated.answer


class TestDrainSkipsStaleWaiters:
    def _runtime(self, graph):
        pg = HashPartitioner().partition(graph, 3)
        return SimulatedRuntime(Engine(CCProgram(), pg, CCQuery()),
                                make_policy("AAP"), hosts=[0, 0, 0])

    def test_drained_buffer_worker_is_skipped(self, small_grid):
        rt = self._runtime(small_grid)
        # worker 1 queued while WAITING, but its buffer drained before the
        # host freed; worker 2 still wants the host (CREATED)
        rt.workers[0].status = WorkerStatus.INACTIVE
        rt.workers[1].status = WorkerStatus.WAITING  # empty buffer
        rt._host_queue[0] = [1, 2]
        rt._host_occupant[0] = None
        rt._drain_host_queue(0)
        assert rt._host_occupant[0] == 2, \
            "the drained-buffer worker must be skipped, not started"
        assert rt.workers[2].status is WorkerStatus.RUNNING
        assert rt.workers[1].status is WorkerStatus.WAITING
        assert rt._host_queue[0] == []

    def test_drain_stops_when_host_taken(self, small_grid):
        rt = self._runtime(small_grid)
        rt._host_queue[0] = [1, 2]
        rt._host_occupant[0] = 0  # someone still owns the host
        rt._drain_host_queue(0)
        assert rt._host_queue[0] == [1, 2], \
            "an occupied host must leave its queue untouched"

    def test_drain_empty_queue_noop(self, small_grid):
        rt = self._runtime(small_grid)
        rt._drain_host_queue(0)
        assert rt._host_occupant[0] is None
