"""Tests for trace recording and the ASCII Gantt rendering."""

from repro.runtime.trace import Interval, TraceRecorder, ascii_gantt


class TestRecorder:
    def test_records_intervals(self):
        tr = TraceRecorder()
        tr.record(0, 0.0, 2.0, "peval", 0)
        tr.record(0, 3.0, 4.0, "inceval", 1)
        assert len(tr.intervals) == 2
        assert tr.makespan() == 4.0
        assert tr.busy_time(0) == 3.0
        assert tr.rounds(0) == 2

    def test_zero_length_skipped(self):
        tr = TraceRecorder()
        tr.record(0, 1.0, 1.0, "inceval", 0)
        assert tr.intervals == []

    def test_disabled(self):
        tr = TraceRecorder(enabled=False)
        tr.record(0, 0.0, 1.0, "peval", 0)
        assert tr.intervals == []

    def test_by_worker_sorted(self):
        tr = TraceRecorder()
        tr.record(1, 5.0, 6.0, "inceval", 2)
        tr.record(1, 0.0, 1.0, "peval", 0)
        per = tr.by_worker()
        assert [iv.start for iv in per[1]] == [0.0, 5.0]

    def test_suspended_not_busy(self):
        tr = TraceRecorder()
        tr.record(2, 0.0, 1.0, "suspended", 0)
        assert tr.busy_time(2) == 0.0
        assert tr.rounds(2) == 0


class TestGantt:
    def test_renders_all_workers(self):
        tr = TraceRecorder()
        tr.record(0, 0.0, 5.0, "peval", 0)
        tr.record(1, 0.0, 10.0, "inceval", 0)
        art = ascii_gantt(tr, width=40, label="demo")
        lines = art.splitlines()
        assert lines[0].startswith("demo")
        assert lines[1].startswith("P0")
        assert lines[2].startswith("P1")
        assert "P" in lines[1]
        assert "#" in lines[2]

    def test_empty_trace(self):
        assert "(empty trace)" in ascii_gantt(TraceRecorder(), label="x")

    def test_width_respected(self):
        tr = TraceRecorder()
        tr.record(0, 0.0, 1.0, "peval", 0)
        art = ascii_gantt(tr, width=30)
        row = art.splitlines()[-1]
        assert len(row) == len("P0  |") + 30 + 1

    def test_interval_duration(self):
        iv = Interval(0, 1.0, 3.5, "inceval", 2)
        assert iv.duration == 2.5
