"""Tests for the cost model."""

import pytest

from repro.errors import RuntimeConfigError
from repro.runtime.costmodel import CostModel


class TestRoundTime:
    def test_linear_in_work(self):
        cm = CostModel(alpha=1.0, beta=0.5, msg_cost=0.0, send_cost=0.0)
        assert cm.round_time(0, 0) == 1.0
        assert cm.round_time(0, 10) == 6.0

    def test_speed_factor(self):
        cm = CostModel(alpha=1.0, beta=0.0, speed={2: 4.0})
        assert cm.round_time(2, 0) == 4.0
        assert cm.round_time(1, 0) == 1.0

    def test_speed_as_sequence_and_callable(self):
        cm = CostModel(alpha=1.0, beta=0.0, speed=[1.0, 3.0])
        assert cm.round_time(1, 0) == 3.0
        assert cm.round_time(9, 0) == 1.0  # out of range -> nominal
        cm2 = CostModel(alpha=1.0, beta=0.0, speed=lambda wid: wid + 1.0)
        assert cm2.round_time(2, 0) == 3.0

    def test_message_handling_costs(self):
        cm = CostModel(alpha=0.0, beta=0.0, msg_cost=0.5, send_cost=0.25,
                       min_round_time=0.0)
        assert cm.round_time(0, 0, batches_consumed=4,
                             messages_sent=2) == 2.5

    def test_fixed_round_time_overrides(self):
        cm = CostModel(alpha=9.0, beta=9.0, fixed_round_time={1: 3.0})
        assert cm.round_time(1, 1000) == 3.0
        assert cm.round_time(0, 0) == 9.0

    def test_min_round_time(self):
        cm = CostModel(alpha=0.0, beta=0.0, min_round_time=0.5)
        assert cm.round_time(0, 0) == 0.5


class TestTransfer:
    def test_latency_only(self):
        cm = CostModel(latency=0.1, bandwidth=None)
        assert cm.transfer_time(10_000) == 0.1

    def test_bandwidth(self):
        cm = CostModel(latency=0.1, bandwidth=100.0)
        assert cm.transfer_time(50) == pytest.approx(0.6)

    def test_jitter_deterministic(self):
        a = CostModel(latency=0.1, latency_jitter=0.2, seed=5)
        b = CostModel(latency=0.1, latency_jitter=0.2, seed=5)
        assert [a.transfer_time(1) for _ in range(5)] == \
               [b.transfer_time(1) for _ in range(5)]

    def test_jitter_bounded(self):
        cm = CostModel(latency=0.1, latency_jitter=0.2, seed=1)
        for _ in range(50):
            assert 0.1 <= cm.transfer_time(1) <= 0.3 + 1e-12


class TestValidation:
    def test_negative_params(self):
        with pytest.raises(RuntimeConfigError):
            CostModel(alpha=-1)
        with pytest.raises(RuntimeConfigError):
            CostModel(msg_cost=-0.1)
        with pytest.raises(RuntimeConfigError):
            CostModel(bandwidth=0)

    def test_with_straggler_constructor(self):
        cm = CostModel.with_straggler(3, factor=5.0)
        assert cm.speed(3) == 5.0
        assert cm.speed(0) == 1.0
        with pytest.raises(RuntimeConfigError):
            CostModel.with_straggler(0, factor=0.0)

    def test_uniform_constructor(self):
        cm = CostModel.uniform(alpha=2.0)
        assert cm.speed(0) == 1.0
        assert cm.alpha == 2.0
