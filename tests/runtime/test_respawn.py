"""Surgical worker recovery: in-place respawn, fragment takeover, ladder.

Covers the rung-1 respawn path of both live runtimes (the master respawns
a dead worker in place instead of restarting the whole run), the
supporting machinery (incarnation-keyed failure detection, surgical fault
re-arming, ring generations, per-fragment snapshot extraction) and the
degradation ladder wiring in :mod:`repro.runtime.recovery`.
"""

from __future__ import annotations

import math
import types

import numpy as np
import pytest

from repro.algorithms import PageRankProgram, PageRankQuery, SSSPProgram, \
    SSSPQuery
from repro.core.messages import MessageBatch
from repro.errors import RuntimeConfigError, SnapshotError, TransportError, \
    WorkerCrashedError, WorkerFailureError
from repro.graph import generators
from repro.obs import Observer
from repro.obs import events as obs_events
from repro.partition.edge_cut import HashPartitioner
from repro.runtime import slab
from repro.runtime.detection import FailureDetector
from repro.runtime.faultplan import CrashFault, DropFault, FaultPlan
from repro.runtime.recovery import RetryPolicy, answers_within, \
    infer_tolerance, run_chaos, run_with_recovery
from repro.runtime.slab import SlabArena, SlabRing, channel_name, new_run_id
from repro.runtime.snapshot import GlobalSnapshot, LiveCheckpointer, \
    WorkerSnapshot


@pytest.fixture(scope="module")
def grid():
    return generators.grid2d(12, 12)


@pytest.fixture(scope="module")
def pg(grid):
    return HashPartitioner().partition(grid, 4)


def chaos(pg, plan, **kw):
    kw.setdefault("checkpoint_interval", 0.01)
    kw.setdefault("heartbeat_interval", 0.005)
    kw.setdefault("heartbeat_timeout", 0.25)
    kw.setdefault("timeout", 60.0)
    source = 0
    return run_chaos(SSSPProgram(), pg, SSSPQuery(source=source), plan, **kw)


# ----------------------------------------------------------------------
# rung 1: multiprocess in-place respawn
# ----------------------------------------------------------------------

class TestMultiprocessRespawn:
    def test_aap_crash_respawns_without_restart(self, pg):
        # the acceptance scenario: one mid-run crash, shm transport, AAP;
        # the run completes via a single in-place respawn, no rollback
        observer = Observer()
        plan = FaultPlan(seed=7, faults=(CrashFault(wid=1, at_round=2),))
        report = chaos(pg, plan, runtime="multiprocess", mode="AAP",
                       respawn_budget=1, observer=observer)
        assert report["ok"] and report["answer_matches_reference"]
        assert report["respawns"] == 1
        assert report["takeovers"] == 1
        assert report["recoveries"] == 0
        assert report["attempts"] == 1
        assert report["rung"] == 1
        entry = report["respawn_log"][0]
        assert entry["wid"] == 1 and entry["incarnation"] == 1

        types = observer.log.types()
        assert obs_events.WORKER_RESPAWN in types
        assert obs_events.FRAGMENT_TAKEOVER in types
        assert obs_events.DEGRADE not in types

    def test_survivors_never_stop(self, pg):
        # surviving workers' obs streams show no IncEval gap: every round
        # index is present — nobody was paused or restarted mid-sequence
        observer = Observer()
        plan = FaultPlan(seed=7, faults=(CrashFault(wid=1, at_round=2),))
        report = chaos(pg, plan, runtime="multiprocess", mode="AAP",
                       respawn_budget=1, observer=observer)
        assert report["ok"] and report["respawns"] == 1
        for survivor in (0, 2, 3):
            rounds = sorted(e.round for e in observer.log.filter(
                type=obs_events.ROUND_END, wid=survivor))
            assert rounds, f"worker {survivor} emitted no rounds"
            assert rounds == list(range(rounds[0], rounds[0] + len(rounds)))

    def test_bsp_respawn(self, pg):
        plan = FaultPlan(seed=3, faults=(CrashFault(wid=2, at_round=2),))
        report = chaos(pg, plan, runtime="multiprocess", mode="BSP",
                       respawn_budget=1)
        assert report["ok"] and report["answer_matches_reference"]
        assert report["respawns"] == 1 and report["recoveries"] == 0

    def test_two_crashes_two_respawns(self, pg):
        plan = FaultPlan(seed=5, faults=(CrashFault(wid=1, at_round=2),
                                         CrashFault(wid=3, at_round=3)))
        report = chaos(pg, plan, runtime="multiprocess", mode="AAP",
                       respawn_budget=1)
        assert report["ok"] and report["answer_matches_reference"]
        assert report["respawns"] == 2 and report["recoveries"] == 0
        assert sorted(r["wid"] for r in report["respawn_log"]) == [1, 3]

    def test_cascading_crash_during_takeover(self, pg):
        # adjacent-round crashes on neighbouring workers: the second
        # death frequently fires *while* the first takeover is pumping
        # for quarantine acks.  The dead survivor can never ack, so the
        # master must drop it from the expected set and give it its own
        # takeover — not time out and degrade to rollback.
        plan = FaultPlan(seed=7, faults=(CrashFault(wid=1, at_round=2),
                                         CrashFault(wid=2, at_round=3)))
        report = chaos(pg, plan, runtime="multiprocess", mode="AAP",
                       respawn_budget=1)
        assert report["ok"] and report["answer_matches_reference"]
        assert report["respawns"] == 2 and report["recoveries"] == 0
        assert report["rung"] == 1
        assert sorted(r["wid"] for r in report["respawn_log"]) == [1, 2]

    def test_queue_transport_respawn(self, grid, pg):
        # the takeover protocol must work without the shm data plane
        from repro.graph import analysis
        from repro.runtime.multiprocess import MultiprocessRuntime
        plan = FaultPlan(seed=2, faults=(CrashFault(wid=1, at_round=2),))
        rt = MultiprocessRuntime(
            SSSPProgram(), pg, SSSPQuery(source=0), mode="AAP",
            transport="queue", fault_plan=plan, respawn_budget=1,
            checkpoint_interval=0.01, heartbeat_interval=0.005,
            heartbeat_timeout=0.25, timeout=60.0)
        result = rt.run()
        assert len(rt.respawns) == 1
        assert result.answer == analysis.dijkstra(grid, 0)

    def test_budget_zero_rolls_back(self, pg):
        # rung 2 still fires when rung 1 is disarmed
        plan = FaultPlan(seed=7, faults=(CrashFault(wid=1, at_round=2),))
        report = chaos(pg, plan, runtime="multiprocess", mode="AAP",
                       respawn_budget=0)
        assert report["ok"] and report["answer_matches_reference"]
        assert report["respawns"] == 0
        assert report["recoveries"] == 1
        assert report["rung"] == 2

    def test_accumulative_program_degrades(self, grid, pg):
        # Sum aggregation is not idempotent under border re-ship, so the
        # runtime refuses the takeover and the supervisor rolls back
        observer = Observer()
        n = grid.num_nodes
        plan = FaultPlan(seed=4, faults=(CrashFault(wid=1, at_round=2),))
        report = run_chaos(
            PageRankProgram(), pg, PageRankQuery(epsilon=5e-4 * n,
                                                 num_nodes=n),
            plan, runtime="multiprocess", mode="AAP", respawn_budget=1,
            observer=observer, checkpoint_interval=0.01,
            heartbeat_interval=0.005, heartbeat_timeout=0.25, timeout=60.0)
        assert report["ok"] and report["answer_matches_reference"]
        assert report["respawns"] == 0 and report["recoveries"] == 1
        assert report["tolerance"] > 0.0
        degrades = observer.log.filter(type=obs_events.DEGRADE)
        assert degrades
        assert degrades[0].payload["frm"] == "respawn"
        assert degrades[0].payload["to"] == "rollback"


# ----------------------------------------------------------------------
# rung 1: threaded in-place respawn
# ----------------------------------------------------------------------

class TestThreadedRespawn:
    def test_crash_resumes_in_place(self, pg):
        observer = Observer()
        plan = FaultPlan(seed=7, faults=(CrashFault(wid=1, at_round=2),))
        report = chaos(pg, plan, runtime="threaded", mode="AAP",
                       respawn_budget=1, observer=observer)
        assert report["ok"] and report["answer_matches_reference"]
        assert report["respawns"] == 1 and report["recoveries"] == 0
        # threads share the address space: the replacement resumes the
        # surviving fragment, it does not rebuild it -> not a takeover
        assert report["takeovers"] == 0
        assert report["rung"] == 1
        assert obs_events.WORKER_RESPAWN in observer.log.types()

    def test_pre_peval_crash(self, pg):
        # death before the first heartbeat/round: the replacement must
        # run PEval itself instead of resuming a round that never ran
        plan = FaultPlan(seed=1, faults=(CrashFault(wid=1, at_round=0),))
        report = chaos(pg, plan, runtime="threaded", mode="AAP",
                       respawn_budget=1)
        assert report["ok"] and report["answer_matches_reference"]
        assert report["respawns"] == 1 and report["recoveries"] == 0

    def test_bsp_respawn(self, pg):
        plan = FaultPlan(seed=3, faults=(CrashFault(wid=2, at_round=2),))
        report = chaos(pg, plan, runtime="threaded", mode="BSP",
                       respawn_budget=1)
        assert report["ok"] and report["answer_matches_reference"]
        assert report["respawns"] == 1 and report["recoveries"] == 0

    def test_ladder_bottoms_out_structured(self, pg):
        # rung 3: no respawn budget, no retries -> WorkerFailureError,
        # surfaced as a structured failure report
        plan = FaultPlan(seed=6, faults=(CrashFault(wid=1, at_round=2),))
        report = chaos(pg, plan, runtime="threaded", respawn_budget=0,
                       retry=RetryPolicy(max_retries=0))
        assert not report["ok"]
        assert report["rung"] == 3
        assert report["failures"]


# ----------------------------------------------------------------------
# failure-detector edge cases (incarnation-keyed heartbeats)
# ----------------------------------------------------------------------

class TestFailureDetectorEdgeCases:
    def test_death_before_first_heartbeat(self):
        # a worker that dies before ever beating is detected from its
        # construction timestamp, not silently trusted forever
        det = FailureDetector(2, interval=0.01, timeout=0.05, now=0.0)
        verdicts = det.check(0.06)
        assert {s.wid for s in verdicts} == {0, 1}
        assert all(s.fatal and s.kind == "heartbeat_timeout"
                   for s in verdicts)

    def test_dead_process_beats_timeout(self):
        # process death fails immediately even with a fresh heartbeat
        det = FailureDetector(2, interval=0.01, timeout=1.0, now=0.0)
        det.beat(0, 0.01)
        (s,) = det.check(0.02, alive=lambda w: w != 0)
        assert s.wid == 0 and s.kind == "worker_dead" and s.fatal

    def test_resurrection_beat_ignored(self):
        # a late beat from a worker already declared dead cannot undo the
        # declaration (the master may already be mid-takeover)
        det = FailureDetector(1, interval=0.01, timeout=0.05, now=0.0)
        (s,) = det.check(0.1)
        assert s.fatal and det.is_failed(0)
        det.beat(0, 0.11)
        assert det.is_failed(0)
        assert det.last_beat(0) == 0.0
        assert det.check(0.2) == []  # declared once, not re-reported

    def test_incarnation_keyed_beats_across_respawn(self):
        det = FailureDetector(1, interval=0.01, timeout=0.05, now=0.0)
        det.check(0.1)
        gen = det.respawn(0, 0.1)
        assert gen == 1 and not det.is_failed(0)
        # the dead incarnation's backlog drains after the respawn: its
        # beats carry incarnation 0 and must not vouch for the new worker
        det.beat(0, 0.12, incarnation=0)
        assert det.last_beat(0) == 0.1
        det.beat(0, 0.13, incarnation=1)
        assert det.last_beat(0) == 0.13
        # without genuine beats the replacement is re-declared dead
        (s,) = det.check(0.3)
        assert s.fatal
        assert det.respawn(0, 0.3) == 2

    def test_respawn_clears_miss_throttle(self):
        det = FailureDetector(1, interval=0.01, timeout=1.0, now=0.0)
        (miss,) = det.check(0.05)
        assert not miss.fatal and miss.kind == "heartbeat_miss"
        det.respawn(0, 0.05)
        assert det.check(0.055) == []  # fresh incarnation, fresh clock


# ----------------------------------------------------------------------
# satellite: surgical fault-plan re-arm
# ----------------------------------------------------------------------

class TestFaultPlanSurgical:
    def test_without_crash_removes_only_the_fired_one(self):
        plan = FaultPlan(seed=0, faults=(
            CrashFault(wid=1, at_round=2), CrashFault(wid=1, at_round=5),
            CrashFault(wid=2, at_round=3), DropFault(rate=0.1)))
        pruned = plan.without_crash(1)
        assert CrashFault(wid=1, at_round=2) not in pruned.faults
        assert CrashFault(wid=1, at_round=5) in pruned.faults
        assert CrashFault(wid=2, at_round=3) in pruned.faults
        assert any(isinstance(f, DropFault) for f in pruned.faults)

    def test_without_crash_by_round(self):
        plan = FaultPlan(seed=0, faults=(
            CrashFault(wid=1, at_round=2), CrashFault(wid=1, at_round=5)))
        pruned = plan.without_crash(1, at_round=5)
        assert pruned.crash_faults == (CrashFault(wid=1, at_round=2),)

    def test_without_crash_no_match_is_identity(self):
        plan = FaultPlan(seed=0, faults=(CrashFault(wid=1, at_round=2),))
        assert plan.without_crash(9) is plan

    def test_without_crashes_still_blunt(self):
        plan = FaultPlan(seed=0, faults=(
            CrashFault(wid=1, at_round=2), CrashFault(wid=2, at_round=9)))
        assert plan.without_crashes().crash_faults == ()

    def test_injector_reset_rearms_next_scheduled_crash(self):
        plan = FaultPlan(seed=0, faults=(
            CrashFault(wid=1, at_round=2), CrashFault(wid=1, at_round=5)))
        inj = plan.injector()
        assert not inj.crash_due(1, 1)
        assert inj.crash_due(1, 2)
        # latched dead: the second scheduled crash cannot fire yet
        assert not inj.crash_due(1, 5)
        inj.reset_worker(1)
        assert not inj.crash_due(1, 4)
        assert inj.crash_due(1, 5)
        inj.reset_worker(1)
        assert not inj.crash_due(1, 99)  # schedule exhausted


# ----------------------------------------------------------------------
# satellite: retry deadline + seeded jitter
# ----------------------------------------------------------------------

def _crash(wid=0, t=0.0):
    return WorkerCrashedError(wid=wid, reason="worker_dead", detected_at=t)


class TestRetryPolicyDeadlineJitter:
    def test_deadline_degrades_to_structured_failure(self):
        # backoff 1.0 overruns the 0.5s budget: no second attempt is made
        calls = []

        def factory(snapshot, attempt):
            calls.append(attempt)
            return types.SimpleNamespace(
                run=lambda: (_ for _ in ()).throw(_crash()))

        clock_t = [0.0]
        with pytest.raises(WorkerFailureError) as exc_info:
            run_with_recovery(
                factory,
                retry=RetryPolicy(max_retries=10, backoff=1.0,
                                  deadline=0.5),
                sleep=lambda s: None, clock=lambda: clock_t[0])
        assert calls == [0]
        assert exc_info.value.attempts == 1

    def test_deadline_allows_retries_that_fit(self):
        attempts = []

        def factory(snapshot, attempt):
            attempts.append(attempt)
            if attempt < 2:
                return types.SimpleNamespace(
                    run=lambda: (_ for _ in ()).throw(_crash()))
            return types.SimpleNamespace(
                run=lambda: types.SimpleNamespace(extras={}, respawns=[]))

        result = run_with_recovery(
            factory, retry=RetryPolicy(max_retries=5, backoff=0.01,
                                       deadline=30.0),
            sleep=lambda s: None)
        assert attempts == [0, 1, 2]
        assert result.extras["recovery"]["rung"] == 2

    def test_jitter_is_seeded_and_bounded(self):
        a = RetryPolicy(backoff=0.1, factor=1.0, jitter=0.5, seed=3)
        b = RetryPolicy(backoff=0.1, factor=1.0, jitter=0.5, seed=3)
        c = RetryPolicy(backoff=0.1, factor=1.0, jitter=0.5, seed=4)
        delays_a = [a.delay(i) for i in range(1, 9)]
        assert delays_a == [b.delay(i) for i in range(1, 9)]
        assert delays_a != [c.delay(i) for i in range(1, 9)]
        assert all(0.05 <= d <= 0.15 for d in delays_a)
        assert len(set(delays_a)) > 1  # actually jittered

    def test_zero_jitter_is_exact(self):
        rp = RetryPolicy(backoff=0.1, factor=2.0, max_backoff=0.3)
        assert [rp.delay(i) for i in (1, 2, 3, 4)] == \
               pytest.approx([0.1, 0.2, 0.3, 0.3])

    def test_invalid_deadline_and_jitter_rejected(self):
        with pytest.raises(RuntimeConfigError):
            RetryPolicy(deadline=0.0)
        with pytest.raises(RuntimeConfigError):
            RetryPolicy(jitter=1.5)

    def test_factory_receives_the_crash(self):
        seen = []

        def factory(snapshot, attempt, crash):
            seen.append(crash)
            if attempt == 0:
                return types.SimpleNamespace(
                    run=lambda: (_ for _ in ()).throw(_crash(wid=7)))
            return types.SimpleNamespace(
                run=lambda: types.SimpleNamespace(extras={}, respawns=[]))

        run_with_recovery(factory, retry=RetryPolicy(backoff=0.0),
                          sleep=lambda s: None)
        assert seen[0] is None
        assert isinstance(seen[1], WorkerCrashedError)
        assert seen[1].wid == 7


# ----------------------------------------------------------------------
# satellite: tolerance-based reference comparison
# ----------------------------------------------------------------------

class TestAnswerComparison:
    def test_exact_mode(self):
        assert answers_within({"a": 1.0}, {"a": 1.0}, 0.0) == (True, 0.0)
        ok, diff = answers_within({"a": 1.0}, {"a": 1.0001}, 0.0)
        assert not ok

    def test_infinities_match_exactly(self):
        inf = math.inf
        ok, diff = answers_within({"a": inf}, {"a": inf}, 0.0)
        assert ok and diff == 0.0

    def test_within_and_outside_tolerance(self):
        ok, diff = answers_within({"a": 1.0, "b": 2.0},
                                  {"a": 1.0005, "b": 2.0}, 1e-3)
        assert ok and diff == pytest.approx(5e-4)
        ok, _ = answers_within({"a": 1.0}, {"a": 1.01}, 1e-3)
        assert not ok

    def test_key_mismatch_never_matches(self):
        ok, diff = answers_within({"a": 1.0}, {"b": 1.0}, 10.0)
        assert not ok and diff == math.inf

    def test_non_numeric_values(self):
        assert answers_within({"a": "x"}, {"a": "x"}, 0.5)[0]
        assert not answers_within({"a": "x"}, {"a": "y"}, 0.5)[0]

    def test_inferred_tolerance_idempotent_is_exact(self, pg):
        assert infer_tolerance(SSSPProgram(), pg,
                               SSSPQuery(source=0)) == 0.0

    def test_inferred_tolerance_accumulative_is_positive(self, grid, pg):
        n = grid.num_nodes
        tol = infer_tolerance(PageRankProgram(), pg,
                              PageRankQuery(epsilon=5e-4 * n, num_nodes=n))
        # 2 * eps_node * (1 + max_indeg): positive but still tight
        assert 0.0 < tol < 0.1


# ----------------------------------------------------------------------
# ring generations (transport side of the takeover handshake)
# ----------------------------------------------------------------------

pytestmark_shm = pytest.mark.skipif(
    slab._shm_mod is None, reason="multiprocessing.shared_memory missing")


def _batch(n, src=0, dst=1):
    return MessageBatch(src=src, dst=dst, round=1,
                        ids=np.arange(n, dtype=np.int64),
                        payloads=(np.arange(n) * 0.5))


@pytestmark_shm
class TestRingGenerations:
    @pytest.fixture
    def ring_pair(self):
        name = channel_name(new_run_id(), 0, 1)
        producer = SlabRing(name, capacity=4096, create=True)
        consumer = SlabRing(name)
        yield producer, consumer
        consumer.close()
        producer.close()
        seg = slab._shm_mod.SharedMemory(name=name)
        seg.close()
        seg.unlink()

    def test_reset_bumps_generation_and_stales_peers(self, ring_pair):
        producer, consumer = ring_pair
        assert producer.try_write(_batch(3))
        assert len(consumer.poll(0, 1)) == 1
        gen = producer.reset()
        assert gen == 1
        # the consumer's cursors predate the reset: writing or parsing
        # through them would corrupt the replacement's window
        assert consumer.stale
        with pytest.raises(TransportError):
            consumer.poll(0, 1)

    def test_stale_producer_falls_back_instead_of_writing(self, ring_pair):
        producer, consumer = ring_pair
        consumer.reset()
        assert producer.stale
        assert not producer.try_write(_batch(2))

    def test_rebind_resumes_cleanly(self, ring_pair):
        producer, consumer = ring_pair
        assert producer.try_write(_batch(3))
        producer.reset()
        consumer.rebind()
        producer.rebind()
        assert not consumer.stale and not producer.stale
        assert producer.try_write(_batch(5))
        (got,) = consumer.poll(0, 1)
        assert len(got) == 5

    def test_arena_reset_worker_touches_only_its_channels(self):
        arena = SlabArena(3, 1 << 16)
        try:
            gen = arena.reset_worker(1)
            assert gen == 1
            for src in range(3):
                for dst in range(3):
                    if src == dst:
                        continue
                    expected = 1 if 1 in (src, dst) else 0
                    assert arena.ring(src, dst).generation == expected
        finally:
            arena.unlink_all()


# ----------------------------------------------------------------------
# per-fragment snapshot extraction + epoch abort
# ----------------------------------------------------------------------

class TestSnapshotSurgical:
    def test_fragment_state_extraction(self):
        snap = GlobalSnapshot(token=3, worker_states={
            0: WorkerSnapshot(wid=0, values={1: 2.0}, scratch={})})
        state = snap.fragment_state(0)
        assert state.values == {1: 2.0}

    def test_fragment_state_missing_worker_raises(self):
        snap = GlobalSnapshot(token=3, worker_states={
            0: WorkerSnapshot(wid=0, values={}, scratch={})})
        with pytest.raises(SnapshotError, match="no state for worker 2"):
            snap.fragment_state(2)

    def test_abort_current_drops_open_epoch(self):
        ckpt = LiveCheckpointer(interval=0.01, num_workers=2)
        assert not ckpt.abort_current(0.0)  # nothing open yet
        coord = ckpt.maybe_start(1.0)
        assert coord is not None
        assert ckpt.abort_current(1.5)
        assert ckpt.current is None
        # the epoch clock restarted: no new epoch before a full interval
        assert ckpt.maybe_start(1.505) is None
        assert ckpt.maybe_start(1.52) is not None
