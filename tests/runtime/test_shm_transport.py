"""Tests for the zero-copy shared-memory data plane (repro.runtime.slab).

Three layers: ring-level unit tests (wire format, wrap/PAD handling,
torn-read hardening, release discipline), pool/arena lifecycle (fallback
accounting, shutdown hygiene), and end-to-end equivalence — the shm and
queue transports must produce identical answers across every parallel
model, under chaos, and through crash/checkpoint recovery.
"""

import pickle

import numpy as np
import pytest

from repro import api
from repro.algorithms import SSSPProgram, SSSPQuery
from repro.core.messages import Message, MessageBatch
from repro.errors import RuntimeConfigError, TransportError
from repro.graph import generators
from repro.partition.edge_cut import HashPartitioner
from repro.runtime import slab
from repro.runtime.faultplan import (CrashFault, DelayFault, DuplicateFault,
                                     FaultPlan)
from repro.runtime.multiprocess import MultiprocessRuntime
from repro.runtime.slab import (SlabArena, SlabPool, SlabRing,
                                ShmMessageBatch, channel_name, new_run_id,
                                residual_segments)

pytestmark = pytest.mark.skipif(
    slab._shm_mod is None, reason="multiprocessing.shared_memory missing")


def make_batch(n, src=0, dst=1, round_no=3, token=None, dtype=np.float64):
    return MessageBatch(src=src, dst=dst, round=round_no,
                        ids=np.arange(n, dtype=np.int64),
                        payloads=(np.arange(n) * 0.5).astype(dtype),
                        token=token)


@pytest.fixture
def ring_pair():
    """One channel: producer and consumer endpoints over a small slab."""
    run_id = new_run_id()
    name = channel_name(run_id, 0, 1)
    producer = SlabRing(name, capacity=4096, create=True)
    consumer = SlabRing(name)
    yield producer, consumer
    consumer.close()
    producer.close()
    seg = slab._shm_mod.SharedMemory(name=name)
    seg.close()
    seg.unlink()


class TestRingWireFormat:
    def test_roundtrip_preserves_everything(self, ring_pair):
        producer, consumer = ring_pair
        msg = make_batch(10, token=4)
        assert producer.try_write(msg)
        (got,) = consumer.poll(0, 1)
        assert isinstance(got, ShmMessageBatch)
        np.testing.assert_array_equal(got.ids, msg.ids)
        np.testing.assert_array_equal(got.payloads, msg.payloads)
        assert got.payloads.dtype == msg.payloads.dtype
        assert (got.src, got.dst, got.round) == (0, 1, 3)
        assert got.seq == msg.seq
        assert got.token == 4
        assert got.entry_bytes == msg.entry_bytes

    def test_none_token_roundtrips_as_none(self, ring_pair):
        producer, consumer = ring_pair
        assert producer.try_write(make_batch(3, token=None))
        (got,) = consumer.poll(0, 1)
        assert got.token is None

    def test_fifo_across_multiple_records(self, ring_pair):
        producer, consumer = ring_pair
        for n in (2, 5, 9):
            assert producer.try_write(make_batch(n))
        got = consumer.poll(0, 1)
        assert [len(b) for b in got] == [2, 5, 9]
        assert consumer.drained

    def test_empty_batch_is_writable(self, ring_pair):
        producer, consumer = ring_pair
        assert producer.try_write(make_batch(0))
        (got,) = consumer.poll(0, 1)
        assert len(got) == 0

    @pytest.mark.parametrize("dtype", ["float32", "int64", "int32",
                                       "bool", "uint8"])
    def test_supported_payload_dtypes(self, ring_pair, dtype):
        producer, consumer = ring_pair
        msg = MessageBatch(src=0, dst=1, round=1,
                           ids=np.arange(4, dtype=np.int64),
                           payloads=np.ones(4, dtype=np.dtype(dtype)))
        assert producer.try_write(msg)
        (got,) = consumer.poll(0, 1)
        assert got.payloads.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(got.payloads, msg.payloads)

    def test_wrap_inserts_pad_and_preserves_data(self, ring_pair):
        """Records never straddle the ring end: a PAD skips the slack."""
        producer, consumer = ring_pair
        seen = 0
        for i in range(50):  # 50 x ~320B records through a 4KiB ring
            msg = make_batch(16, round_no=i)
            assert producer.try_write(msg), f"ring full at record {i}"
            (got,) = consumer.poll(0, 1)
            assert got.round == i
            np.testing.assert_array_equal(got.ids, msg.ids)
            np.testing.assert_array_equal(got.payloads, msg.payloads)
            consumer.release(got.release_end)
            seen += 1
        assert seen == 50
        assert producer.head > producer.capacity  # really wrapped


class TestRingFallbacks:
    def test_full_ring_returns_false_not_blocks(self, ring_pair):
        producer, _ = ring_pair
        wrote = 0
        while producer.try_write(make_batch(16)):
            wrote += 1
            assert wrote < 100  # 4 KiB ring must fill well before this
        assert wrote > 0
        assert not producer.try_write(make_batch(16))

    def test_oversized_batch_returns_false(self, ring_pair):
        producer, _ = ring_pair
        assert not producer.try_write(make_batch(4096))

    def test_exotic_dtype_returns_false(self, ring_pair):
        producer, _ = ring_pair
        msg = MessageBatch(src=0, dst=1, round=1,
                           ids=np.arange(3, dtype=np.int64),
                           payloads=np.ones(3, dtype=np.complex128))
        assert not producer.try_write(msg)

    def test_non_integer_token_returns_false(self, ring_pair):
        producer, _ = ring_pair
        assert not producer.try_write(make_batch(3, token="snap-1"))

    def test_rejected_write_leaves_ring_intact(self, ring_pair):
        producer, consumer = ring_pair
        head_before = producer.head
        assert not producer.try_write(make_batch(3, token="snap-1"))
        assert producer.head == head_before
        assert consumer.poll(0, 1) == []


class TestTornReadHardening:
    def test_released_position_raises_typed_error(self, ring_pair):
        """A stale descriptor pointing below the tail must not produce a
        garbage view — the regression this hardening exists for."""
        producer, consumer = ring_pair
        producer.try_write(make_batch(8))
        (got,) = consumer.poll(0, 1)
        consumer.release(got.release_end)
        with pytest.raises(TransportError, match="stale slab descriptor"):
            consumer.open(0, 0, 1)

    def test_position_past_head_raises(self, ring_pair):
        _, consumer = ring_pair
        with pytest.raises(TransportError, match="stale slab descriptor"):
            consumer.open(0, 0, 1)

    def test_corrupt_record_magic_raises(self, ring_pair):
        producer, consumer = ring_pair
        producer.try_write(make_batch(4))
        # stomp the record's kind word as a crashed writer might
        hdr = np.frombuffer(producer._shm.buf, dtype=np.uint64, count=8,
                            offset=slab.HEADER_BYTES)
        hdr[0] = 0xDEAD
        with pytest.raises(TransportError, match="record magic"):
            consumer.poll(0, 1)

    def test_unknown_dtype_code_raises(self, ring_pair):
        producer, consumer = ring_pair
        producer.try_write(make_batch(4))
        hdr = np.frombuffer(producer._shm.buf, dtype=np.uint64, count=8,
                            offset=slab.HEADER_BYTES)
        hdr[6] = 250  # dtype_code field: no such encoding
        with pytest.raises(TransportError, match="dtype code"):
            consumer.poll(0, 1)

    def test_record_generation_mismatch_raises(self, ring_pair):
        producer, consumer = ring_pair
        producer.try_write(make_batch(4))
        with pytest.raises(TransportError, match="generation mismatch"):
            consumer.open(0, 0, 1, rec_seq=7)

    def test_attach_to_uninitialised_segment_raises(self):
        seg = slab._shm_mod.SharedMemory(
            name=f"reproshm_test_{new_run_id()}", create=True, size=1024)
        try:
            with pytest.raises(TransportError, match="bad magic"):
                SlabRing(seg.name)
        finally:
            seg.close()
            seg.unlink()


class TestReleaseDiscipline:
    def test_release_beyond_cursor_raises(self, ring_pair):
        producer, consumer = ring_pair
        producer.try_write(make_batch(4))
        with pytest.raises(TransportError, match="beyond read cursor"):
            consumer.release(producer.head)

    def test_stale_release_does_not_rewind_tail(self, ring_pair):
        producer, consumer = ring_pair
        for _ in range(2):
            producer.try_write(make_batch(4))
        first, second = consumer.poll(0, 1)
        consumer.release(second.release_end)
        tail = consumer.tail
        consumer.release(first.release_end)  # stale: must be a no-op
        assert consumer.tail == tail


class TestShmBatchSemantics:
    def test_pickle_materialises_owned_plain_batch(self, ring_pair):
        """Checkpoint state shipped to the master must not dangle into a
        slab the master never mapped."""
        producer, consumer = ring_pair
        producer.try_write(make_batch(6, token=2))
        (got,) = consumer.poll(0, 1)
        clone = pickle.loads(pickle.dumps(got))
        assert type(clone) is MessageBatch  # not the shm subclass
        np.testing.assert_array_equal(clone.ids, got.ids)
        np.testing.assert_array_equal(clone.payloads, got.payloads)
        assert clone.token == 2 and clone.seq == got.seq
        # the clone owns its arrays: releasing the ring can't corrupt it
        before = clone.ids.copy()
        consumer.release(got.release_end)
        producer.try_write(make_batch(6, round_no=99))
        np.testing.assert_array_equal(clone.ids, before)

    def test_len_counts_logical_entries(self, ring_pair):
        producer, consumer = ring_pair
        producer.try_write(make_batch(7))
        (got,) = consumer.poll(0, 1)
        assert len(got) == 7  # the termination ledger's currency
        assert got.entries == make_batch(7).entries


class TestPoolAndArena:
    def test_generic_message_falls_back_to_queue_plane(self):
        arena = SlabArena(2, 1 << 16)
        try:
            pool = SlabPool(arena.run_id, 0, 2)
            msg = Message(src=0, dst=1, round=1, entries=((5, 1.0),))
            assert not pool.try_send(msg)
            assert pool.fallbacks == 1
            assert pool.sent_batches == 0
        finally:
            arena.unlink_all()

    def test_pool_counters_track_sent_traffic(self):
        arena = SlabArena(2, 1 << 16)
        try:
            sender = SlabPool(arena.run_id, 0, 2)
            receiver = SlabPool(arena.run_id, 1, 2)
            msg = make_batch(5)
            assert sender.try_send(msg)
            assert sender.sent_batches == 1
            assert sender.sent_bytes == msg.size_bytes
            (got,) = receiver.poll()
            assert len(got) == 5
            assert receiver.drained
            receiver.release([got])
        finally:
            arena.unlink_all()

    def test_unlink_all_sweeps_every_segment(self):
        arena = SlabArena(4, 1 << 16)
        assert len(residual_segments(arena.run_id)) == 12  # 4x3 mesh
        removed = arena.unlink_all()
        assert removed == 12
        assert residual_segments(arena.run_id) == []

    def test_unlink_all_is_idempotent(self):
        arena = SlabArena(2, 1 << 16)
        assert arena.unlink_all() == 2
        assert arena.unlink_all() == 0


class TestTransportConfig:
    def test_unknown_transport_rejected(self, partitioned_grid):
        with pytest.raises(RuntimeConfigError, match="transport"):
            MultiprocessRuntime(SSSPProgram(), partitioned_grid,
                                SSSPQuery(source=0), transport="carrier")

    def test_env_override_selects_queue(self, partitioned_grid,
                                        monkeypatch):
        monkeypatch.setenv("REPRO_MP_TRANSPORT", "queue")
        rt = MultiprocessRuntime(SSSPProgram(), partitioned_grid,
                                 SSSPQuery(source=0))
        assert rt.transport == "queue"

    def test_queue_transport_reports_zero_shm_traffic(self):
        g = generators.grid2d(8, 8, weighted=True, seed=2)
        pg = HashPartitioner().partition(g, 2)
        result = MultiprocessRuntime(SSSPProgram(), pg,
                                     SSSPQuery(source=0), mode="AP",
                                     vectorized=True,
                                     transport="queue").run()
        t = result.extras["transport"]
        assert t["kind"] == "queue"
        assert t["shm_batches"] == 0 and t["shm_bytes"] == 0

    def test_shm_transport_carries_the_vectorized_traffic(self):
        g = generators.powerlaw(200, m=2, weighted=True, seed=6)
        pg = HashPartitioner().partition(g, 4)
        result = MultiprocessRuntime(SSSPProgram(), pg,
                                     SSSPQuery(source=0), mode="AP",
                                     vectorized=True,
                                     transport="shm").run()
        t = result.extras["transport"]
        assert t["kind"] == "shm"
        assert t["shm_batches"] > 0
        assert t["shm_bytes"] > 0


class TestTransportEquivalence:
    """Same answer on both planes, across every parallel model."""

    @pytest.fixture(scope="class")
    def workload(self):
        g = generators.powerlaw(200, m=2, weighted=True, seed=6)
        pg = HashPartitioner().partition(g, 4)
        ref = api.run(SSSPProgram(), pg, SSSPQuery(source=0),
                      mode="AP", record_trace=False).answer
        return pg, ref

    @pytest.mark.parametrize("mode", ["BSP", "AP", "SSP", "AAP", "Hsync"])
    def test_shm_matches_queue_answer(self, workload, mode):
        pg, ref = workload
        for transport in ("shm", "queue"):
            result = MultiprocessRuntime(
                SSSPProgram(), pg, SSSPQuery(source=0), mode=mode,
                vectorized=True, transport=transport, timeout=60.0).run()
            assert result.answer == ref, (mode, transport)

    def test_generic_path_rides_queue_plane_unchanged(self, workload):
        pg, ref = workload
        result = MultiprocessRuntime(
            SSSPProgram(), pg, SSSPQuery(source=0), mode="AP",
            vectorized=False, transport="shm", timeout=60.0).run()
        assert result.answer == ref


class TestShmChaos:
    """Chaos + recovery parity: the fault-injection seam sits above both
    planes, so a chaos plan injects the same events either way."""

    PLAN = dict(seed=11, faults=(DuplicateFault(rate=0.3),
                                 DelayFault(rate=0.2, delay=0.01)))

    def _workload(self):
        g = generators.powerlaw(200, m=2, weighted=True, seed=6)
        pg = HashPartitioner().partition(g, 4)
        ref = api.run(SSSPProgram(), pg, SSSPQuery(source=0),
                      mode="AP", record_trace=False).answer
        return pg, ref

    def test_message_chaos_preserves_answer_on_shm(self):
        pg, ref = self._workload()
        result = MultiprocessRuntime(
            SSSPProgram(), pg, SSSPQuery(source=0), mode="AP",
            vectorized=True, transport="shm",
            fault_plan=FaultPlan(**self.PLAN), timeout=60.0).run()
        assert result.answer == ref

    def test_crash_recovery_under_shm_leaves_no_segments(self):
        from repro.runtime.recovery import run_chaos
        g = generators.grid2d(12, 12)
        pg = HashPartitioner().partition(g, 4)
        plan = FaultPlan(seed=1, faults=(CrashFault(wid=0, at_round=4),))
        report = run_chaos(SSSPProgram(), pg, SSSPQuery(source=0), plan,
                           runtime="multiprocess",
                           checkpoint_interval=0.01,
                           heartbeat_interval=0.005,
                           heartbeat_timeout=0.5, timeout=60.0)
        assert report["ok"]
        assert report["answer_matches_reference"]
        assert report["recoveries"] >= 1
        # the crashed attempt's arena must have been swept too
        assert residual_segments() == []


class TestStatsAudit:
    """Each logical entry is counted exactly once on the send side,
    whichever plane carried it, and send events match deliver events."""

    def test_send_deliver_counts_match_under_shm(self):
        from repro.obs import Observer
        from repro.obs import events as obs_events
        g = generators.powerlaw(200, m=2, weighted=True, seed=6)
        pg = HashPartitioner().partition(g, 4)
        obs = Observer()
        MultiprocessRuntime(SSSPProgram(), pg, SSSPQuery(source=0),
                            mode="AP", vectorized=True, transport="shm",
                            observer=obs, timeout=60.0).run()
        records = obs.log.events
        sends = [r for r in records if r.type == obs_events.MSG_SEND]
        delivers = [r for r in records
                    if r.type == obs_events.MSG_DELIVER]
        assert len(sends) > 0
        assert len(sends) == len(delivers)
        sent_bytes = sum(r.payload["bytes"] for r in sends)
        dlv_bytes = sum(r.payload["bytes"] for r in delivers)
        assert sent_bytes == dlv_bytes

    def test_duplicate_fates_increment_sent_entries(self):
        from repro.obs import Observer
        from repro.obs import events as obs_events
        g = generators.powerlaw(200, m=2, weighted=True, seed=6)
        pg = HashPartitioner().partition(g, 4)
        plain = MultiprocessRuntime(
            SSSPProgram(), pg, SSSPQuery(source=0), mode="AP",
            vectorized=True, transport="shm", timeout=60.0).run()
        obs = Observer()
        dup = MultiprocessRuntime(
            SSSPProgram(), pg, SSSPQuery(source=0), mode="AP",
            vectorized=True, transport="shm", observer=obs,
            fault_plan=FaultPlan(seed=3,
                                 faults=(DuplicateFault(rate=1.0),)),
            timeout=60.0).run()
        # rate=1.0 duplicates every logical wire message exactly once:
        # one fault_injected event and two MSG_SEND events per logical
        # message, however many rounds this particular schedule took
        # (cross-run traffic totals are schedule-dependent; this 2:1
        # relationship is not)
        records = obs.log.events
        dups = [r for r in records
                if r.type == obs_events.FAULT_INJECTED
                and r.payload["fault"] == "duplicate"]
        sends = [r for r in records if r.type == obs_events.MSG_SEND]
        assert len(dups) > 0
        assert len(sends) == 2 * len(dups)
        assert dup.answer == plain.answer
