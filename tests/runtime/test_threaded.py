"""Tests for the real threaded runtime (correctness under real races)."""

import pytest

from repro.algorithms import (CCProgram, CCQuery, PageRankProgram,
                              PageRankQuery, SSSPProgram, SSSPQuery)
from repro.core.engine import Engine
from repro.core.modes import make_policy
from repro.graph import analysis, generators
from repro.partition.edge_cut import HashPartitioner
from repro.runtime.threaded import ThreadedRuntime


def run_threaded(graph, program, query, mode, m=4):
    pg = HashPartitioner().partition(graph, m)
    rt = ThreadedRuntime(Engine(program, pg, query), make_policy(mode),
                         timeout=60.0)
    return rt.run()


@pytest.mark.parametrize("mode", ["AP", "BSP", "AAP", "SSP"])
class TestCorrectnessUnderRaces:
    def test_cc(self, small_powerlaw, mode):
        result = run_threaded(small_powerlaw, CCProgram(), CCQuery(), mode)
        assert result.answer == analysis.connected_components(small_powerlaw)

    def test_sssp(self, small_grid, mode):
        result = run_threaded(small_grid, SSSPProgram(),
                              SSSPQuery(source=0), mode)
        ref = analysis.dijkstra(small_grid, 0)
        assert all(result.answer[v] == pytest.approx(ref[v]) for v in ref)


class TestPageRankThreaded:
    def test_pagerank_within_tolerance(self, small_powerlaw):
        result = run_threaded(small_powerlaw, PageRankProgram(),
                              PageRankQuery(epsilon=1e-4), "AP")
        ref = analysis.pagerank(small_powerlaw, epsilon=1e-10)
        for v in ref:
            assert result.answer[v] == pytest.approx(ref[v], abs=2e-3)


class TestThreadedMetrics:
    def test_metrics_populated(self, small_powerlaw):
        result = run_threaded(small_powerlaw, CCProgram(), CCQuery(), "AP")
        assert result.metrics.makespan > 0
        assert result.metrics.total_messages > 0
        assert result.mode.endswith("-threaded")
        assert all(r >= 1 for r in result.rounds)

    def test_repeated_runs_agree(self, small_powerlaw):
        # Church-Rosser under genuinely different interleavings
        ref = analysis.connected_components(small_powerlaw)
        for _ in range(3):
            result = run_threaded(small_powerlaw, CCProgram(), CCQuery(),
                                  "AAP")
            assert result.answer == ref


class _ExplodingCC(CCProgram):
    """CC program whose IncEval raises on one worker."""

    def __init__(self, bad_wid=0):
        super().__init__()
        self.bad_wid = bad_wid

    def inceval(self, frag, ctx, messages, query):
        if frag.fid == self.bad_wid:
            raise RuntimeError(f"inceval exploded on {frag.fid}")
        return super().inceval(frag, ctx, messages, query)


class _AllExplodeCC(CCProgram):
    """CC program that raises in PEval on every worker."""

    def peval(self, frag, ctx, query):
        raise RuntimeError(f"peval exploded on {frag.fid}")


class TestFailurePropagation:
    def test_worker_error_surfaces_promptly(self, small_powerlaw):
        # Regression: a raising worker used to hang the run until the
        # master timeout, then surface as TerminationError instead of
        # the original exception.
        import time

        pg = HashPartitioner().partition(small_powerlaw, 4)
        rt = ThreadedRuntime(Engine(_ExplodingCC(bad_wid=0), pg, CCQuery()),
                             make_policy("AP"), timeout=30.0)
        started = time.monotonic()
        with pytest.raises(RuntimeError, match="inceval exploded"):
            rt.run()
        assert time.monotonic() - started < 10.0, \
            "failure must abort the run, not wait out the master timeout"

    def test_concurrent_failures_keep_first_error(self, small_grid):
        pg = HashPartitioner().partition(small_grid, 4)
        rt = ThreadedRuntime(Engine(_AllExplodeCC(), pg, CCQuery()),
                             make_policy("AP"), timeout=30.0)
        with pytest.raises(RuntimeError, match="peval exploded"):
            rt.run()
        # every raising worker is on record; none overwrote the first
        assert len(rt.master.errors) >= 1
        assert all(isinstance(e, RuntimeError) for e in rt.master.errors)

    def test_abort_releases_other_workers(self, small_powerlaw):
        # the non-failing workers must exit their loops, not linger
        pg = HashPartitioner().partition(small_powerlaw, 4)
        rt = ThreadedRuntime(Engine(_ExplodingCC(bad_wid=1), pg, CCQuery()),
                             make_policy("AAP"), timeout=30.0)
        with pytest.raises(RuntimeError):
            rt.run()
        import threading as _threading
        lingering = [t.name for t in _threading.enumerate()
                     if t.name.startswith("grape-worker-")]
        assert not lingering


class TestInactiveStatusReset:
    def test_note_if_inactive_resets_status_atomically(self, small_grid):
        # Regression: the empty-buffer wait path reported inactive to the
        # master but left the worker's status at WAITING/RUNNING, so
        # status-based views lied about the fleet.
        from repro.core.worker import WorkerStatus

        pg = HashPartitioner().partition(small_grid, 2)
        rt = ThreadedRuntime(Engine(CCProgram(), pg, CCQuery()),
                             make_policy("AP"))
        w = rt.workers[0]
        w.status = WorkerStatus.WAITING
        assert rt._note_if_inactive(0) is True
        assert w.status is WorkerStatus.INACTIVE
        assert rt.master.snapshot_flags()[0] is True

    def test_note_if_inactive_skips_nonempty_buffer(self, small_grid):
        from repro.core.messages import Message
        from repro.core.worker import WorkerStatus

        pg = HashPartitioner().partition(small_grid, 2)
        rt = ThreadedRuntime(Engine(CCProgram(), pg, CCQuery()),
                             make_policy("AP"))
        w = rt.workers[0]
        w.status = WorkerStatus.WAITING
        w.buffer.push(Message(src=1, dst=0, round=0,
                      entries=((0, 1.0),)))
        assert rt._note_if_inactive(0) is False
        assert w.status is WorkerStatus.WAITING
        assert rt.master.snapshot_flags()[0] is False
