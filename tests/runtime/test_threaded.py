"""Tests for the real threaded runtime (correctness under real races)."""

import pytest

from repro.algorithms import (CCProgram, CCQuery, PageRankProgram,
                              PageRankQuery, SSSPProgram, SSSPQuery)
from repro.core.engine import Engine
from repro.core.modes import make_policy
from repro.graph import analysis, generators
from repro.partition.edge_cut import HashPartitioner
from repro.runtime.threaded import ThreadedRuntime


def run_threaded(graph, program, query, mode, m=4):
    pg = HashPartitioner().partition(graph, m)
    rt = ThreadedRuntime(Engine(program, pg, query), make_policy(mode),
                         timeout=60.0)
    return rt.run()


@pytest.mark.parametrize("mode", ["AP", "BSP", "AAP", "SSP"])
class TestCorrectnessUnderRaces:
    def test_cc(self, small_powerlaw, mode):
        result = run_threaded(small_powerlaw, CCProgram(), CCQuery(), mode)
        assert result.answer == analysis.connected_components(small_powerlaw)

    def test_sssp(self, small_grid, mode):
        result = run_threaded(small_grid, SSSPProgram(),
                              SSSPQuery(source=0), mode)
        ref = analysis.dijkstra(small_grid, 0)
        assert all(result.answer[v] == pytest.approx(ref[v]) for v in ref)


class TestPageRankThreaded:
    def test_pagerank_within_tolerance(self, small_powerlaw):
        result = run_threaded(small_powerlaw, PageRankProgram(),
                              PageRankQuery(epsilon=1e-4), "AP")
        ref = analysis.pagerank(small_powerlaw, epsilon=1e-10)
        for v in ref:
            assert result.answer[v] == pytest.approx(ref[v], abs=2e-3)


class TestThreadedMetrics:
    def test_metrics_populated(self, small_powerlaw):
        result = run_threaded(small_powerlaw, CCProgram(), CCQuery(), "AP")
        assert result.metrics.makespan > 0
        assert result.metrics.total_messages > 0
        assert result.mode.endswith("-threaded")
        assert all(r >= 1 for r in result.rounds)

    def test_repeated_runs_agree(self, small_powerlaw):
        # Church-Rosser under genuinely different interleavings
        ref = analysis.connected_components(small_powerlaw)
        for _ in range(3):
            result = run_threaded(small_powerlaw, CCProgram(), CCQuery(),
                                  "AAP")
            assert result.answer == ref
