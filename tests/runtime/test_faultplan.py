"""Tests for seeded deterministic fault plans."""

import pytest

from repro.core.messages import Message
from repro.errors import RuntimeConfigError
from repro.runtime.faultplan import (CrashFault, DelayFault, DropFault,
                                     DuplicateFault, FaultPlan,
                                     StragglerFault)


def msg(src=0, dst=1, round=0):
    return Message(src=src, dst=dst, round=round, entries=(("x", 1),))


def verdicts(plan, n=200):
    """One injector pass over ``n`` messages -> list of (count, delays)."""
    inj = plan.injector()
    out = []
    for i in range(n):
        deliveries = inj.on_send(msg(src=i % 3, dst=(i + 1) % 3))
        out.append((len(deliveries), tuple(d for _, d in deliveries)))
    return out


class TestDeterminism:
    def test_same_seed_same_verdicts(self):
        plan = FaultPlan(seed=7, faults=(
            DropFault(rate=0.2), DuplicateFault(rate=0.2),
            DelayFault(rate=0.3, delay=0.01)))
        assert verdicts(plan) == verdicts(plan)

    def test_different_seed_different_verdicts(self):
        a = FaultPlan(seed=1, faults=(DropFault(rate=0.5),))
        b = FaultPlan(seed=2, faults=(DropFault(rate=0.5),))
        assert verdicts(a) != verdicts(b)

    def test_verdict_depends_on_channel_not_shared_state(self):
        # the decision for (src, dst, index) is a pure hash: interleaving
        # sends on other channels must not perturb it
        plan = FaultPlan(seed=3, faults=(DropFault(rate=0.5),))
        solo = plan.injector()
        alone = [len(solo.on_send(msg(src=0, dst=1))) for _ in range(50)]
        mixed_inj = plan.injector()
        mixed = []
        for _ in range(50):
            mixed_inj.on_send(msg(src=2, dst=0))  # unrelated traffic
            mixed.append(len(mixed_inj.on_send(msg(src=0, dst=1))))
        assert alone == mixed


class TestActions:
    def test_drop_removes_message(self):
        inj = FaultPlan(seed=0, faults=(DropFault(rate=1.0),)).injector()
        assert inj.on_send(msg()) == []

    def test_duplicate_doubles_message(self):
        inj = FaultPlan(seed=0,
                        faults=(DuplicateFault(rate=1.0),)).injector()
        deliveries = inj.on_send(msg())
        assert len(deliveries) == 2

    def test_delay_attaches_positive_delay(self):
        inj = FaultPlan(seed=0, faults=(
            DelayFault(rate=1.0, delay=0.25),)).injector()
        [(m, delay)] = inj.on_send(msg())
        assert delay == pytest.approx(0.25)

    def test_no_faults_passthrough(self):
        inj = FaultPlan(seed=0, faults=()).injector()
        m = msg()
        assert inj.on_send(m) == [(m, 0.0)]

    def test_crash_due_fires_once(self):
        inj = FaultPlan(seed=0, faults=(
            CrashFault(wid=1, at_round=3),)).injector()
        assert not inj.crash_due(1, 2)
        assert inj.crash_due(1, 3)
        assert not inj.crash_due(1, 3)  # once-semantics
        assert not inj.crash_due(0, 3)  # other workers unaffected

    def test_straggler_slowdown(self):
        inj = FaultPlan(seed=0, faults=(
            StragglerFault(wid=2, factor=3.0),)).injector()
        assert inj.round_slowdown(2, 0.1) == pytest.approx(0.2)
        assert inj.round_slowdown(0, 0.1) == 0.0


class TestValidation:
    @pytest.mark.parametrize("fault", [
        lambda: DropFault(rate=1.5),
        lambda: DuplicateFault(rate=-0.1),
        lambda: DelayFault(rate=0.5, delay=-1.0),
        lambda: StragglerFault(wid=0, factor=0.5),
        lambda: CrashFault(wid=-1, at_round=1),
    ])
    def test_bad_parameters_rejected(self, fault):
        with pytest.raises(RuntimeConfigError):
            FaultPlan(seed=0, faults=(fault(),))

    def test_without_crashes_strips_only_crashes(self):
        plan = FaultPlan(seed=5, faults=(
            CrashFault(wid=0, at_round=1), DropFault(rate=0.1),
            StragglerFault(wid=1, factor=2.0)))
        stripped = plan.without_crashes()
        assert plan.has_crashes and not stripped.has_crashes
        assert len(stripped.faults) == 2
        assert stripped.seed == plan.seed
