"""Tests for batched wire transport under fault injection.

The contract: packing entries into a :class:`MessageBatch` must not change
what a chaos plan injects.  Each batch entry consumes one channel index
and receives the same drop/duplicate/delay verdict as the equivalent
unpacked :class:`Message` stream, and the live runtimes terminate cleanly
because the ledger counts logical entries on both sides.
"""

import numpy as np
import pytest

from repro.algorithms import SSSPProgram, SSSPQuery
from repro.core.messages import Message, MessageBatch, entry_count
from repro.graph import generators
from repro.partition.edge_cut import HashPartitioner
from repro.runtime.faultplan import (DelayFault, DropFault, DuplicateFault,
                                     FaultPlan)


def make_batch(n, src=0, dst=1, round_no=3):
    return MessageBatch(src=src, dst=dst, round=round_no,
                        ids=np.arange(n, dtype=np.int64),
                        payloads=np.arange(n, dtype=np.float64) * 0.5)


def delivered_entries(deliveries):
    """Flatten injector output to sorted (id, payload, delay) triples."""
    out = []
    for msg, delay in deliveries:
        for node, value in msg.entries:
            out.append((node, value, delay))
    return sorted(out)


class TestInjectorBatchUnits:
    def test_no_message_faults_passthrough(self):
        inj = FaultPlan(seed=1).injector()
        batch = make_batch(5)
        assert inj.on_send(batch) == [(batch, 0.0)]

    def test_drop_all(self):
        inj = FaultPlan(seed=1, faults=(DropFault(rate=1.0),)).injector()
        assert inj.on_send(make_batch(6)) == []
        assert sum(1 for r in inj.records if r.kind == "drop") == 6

    def test_partial_drop_preserves_entry_accounting(self):
        inj = FaultPlan(seed=7, faults=(DropFault(rate=0.4),)).injector()
        batch = make_batch(50)
        survived = entry_count(m for m, _ in inj.on_send(batch))
        dropped = sum(1 for r in inj.records if r.kind == "drop")
        assert survived + dropped == 50
        assert 0 < dropped < 50  # statistically certain at rate 0.4, n=50

    def test_duplicate_all_makes_two_wire_batches(self):
        inj = FaultPlan(seed=2,
                        faults=(DuplicateFault(rate=1.0),)).injector()
        out = inj.on_send(make_batch(4))
        assert len(out) == 2
        assert all(len(m) == 4 for m, _ in out)
        assert out[0][0].entries == out[1][0].entries

    def test_delay_groups_by_extra_delay(self):
        inj = FaultPlan(seed=3, faults=(
            DelayFault(rate=0.5, delay=0.05),)).injector()
        out = inj.on_send(make_batch(40))
        delays = sorted({d for _, d in out})
        assert delays == [0.0, 0.05]
        assert entry_count(m for m, _ in out) == 40

    def test_empty_batch_passthrough(self):
        inj = FaultPlan(seed=1, faults=(DropFault(rate=1.0),)).injector()
        batch = make_batch(0)
        assert inj.on_send(batch) == [(batch, 0.0)]

    def test_subbatches_keep_token_and_entry_bytes(self):
        inj = FaultPlan(seed=5, faults=(DropFault(rate=0.5),)).injector()
        batch = MessageBatch(src=0, dst=1, round=1,
                             ids=np.arange(20, dtype=np.int64),
                             payloads=np.zeros(20), token="snap-1",
                             entry_bytes=24)
        for msg, _ in inj.on_send(batch):
            assert msg.token == "snap-1"
            assert msg.entry_bytes == 24
            assert msg.src == 0 and msg.dst == 1 and msg.round == 1


class TestBatchScalarParity:
    """A packed batch gets the identical per-entry verdicts as the same
    entries sent as individual messages on the same channel."""

    PLAN = dict(seed=11, faults=(DropFault(rate=0.3),
                                 DuplicateFault(rate=0.3),
                                 DelayFault(rate=0.3, delay=0.02)))

    def test_entry_fates_match_scalar_path(self):
        n = 60
        batch_out = FaultPlan(**self.PLAN).injector().on_send(
            make_batch(n))
        scalar_inj = FaultPlan(**self.PLAN).injector()
        scalar_out = []
        for node, value in make_batch(n).entries:
            scalar_out.extend(scalar_inj.on_send(
                Message(src=0, dst=1, round=3,
                        entries=((node, value),))))
        assert delivered_entries(batch_out) \
            == delivered_entries(scalar_out)

    def test_same_plan_is_deterministic(self):
        a = FaultPlan(**self.PLAN).injector()
        b = FaultPlan(**self.PLAN).injector()
        assert delivered_entries(a.on_send(make_batch(30))) \
            == delivered_entries(b.on_send(make_batch(30)))
        assert a.records == b.records

    def test_channel_counter_advances_across_batches(self):
        inj = FaultPlan(seed=4, faults=(DropFault(rate=0.5),)).injector()
        first = delivered_entries(inj.on_send(make_batch(20)))
        second = delivered_entries(inj.on_send(make_batch(20)))
        # same ids, different channel indices -> different verdicts
        assert first != second


class TestLiveRuntimeChaos:
    """Vectorized e2e under message chaos: same answer, clean shutdown."""

    PLAN = dict(seed=11, faults=(DuplicateFault(rate=0.3),
                                 DelayFault(rate=0.2, delay=0.01)))

    def _workload(self):
        g = generators.powerlaw(200, m=2, weighted=True, seed=6)
        pg = HashPartitioner().partition(g, 4)
        return g, pg

    def _clean_answer(self, pg):
        from repro import api
        return api.run(SSSPProgram(), pg, SSSPQuery(source=0),
                       mode="AP", record_trace=False).answer

    def test_threaded_vectorized_chaos(self):
        from repro.core.engine import Engine
        from repro.core.modes import make_policy
        from repro.runtime.threaded import ThreadedRuntime
        _, pg = self._workload()
        eng = Engine(SSSPProgram(), pg, SSSPQuery(source=0),
                     vectorized=True)
        assert eng.vectorized
        result = ThreadedRuntime(eng, make_policy("AP"),
                                 fault_plan=FaultPlan(**self.PLAN)).run()
        assert result.answer == self._clean_answer(pg)

    def test_multiprocess_vectorized_chaos(self):
        from repro.runtime.multiprocess import MultiprocessRuntime
        _, pg = self._workload()
        rt = MultiprocessRuntime(SSSPProgram(), pg, SSSPQuery(source=0),
                                 mode="AP", vectorized=True,
                                 fault_plan=FaultPlan(**self.PLAN))
        result = rt.run()
        assert result.answer == self._clean_answer(pg)

    def test_multiprocess_stats_count_batches_and_entries(self):
        from repro.runtime.multiprocess import MultiprocessRuntime
        _, pg = self._workload()
        result = MultiprocessRuntime(SSSPProgram(), pg,
                                     SSSPQuery(source=0), mode="AP",
                                     vectorized=True).run()
        # batching: fewer physical messages than logical entries shipped
        assert result.metrics.total_messages > 0
        assert result.metrics.total_bytes > 0


@pytest.mark.parametrize("vectorized", [False, True])
def test_bytes_accounting_is_positive(vectorized):
    """stats['bytes'] stays accurate whichever transport shape is used."""
    from repro.runtime.multiprocess import MultiprocessRuntime
    g = generators.grid2d(8, 8, weighted=True, seed=2)
    pg = HashPartitioner().partition(g, 2)
    result = MultiprocessRuntime(SSSPProgram(), pg, SSSPQuery(source=0),
                                 mode="BSP",
                                 vectorized=vectorized).run()
    assert result.metrics.total_bytes > 0
    assert result.metrics.total_messages > 0
