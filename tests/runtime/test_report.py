"""Tests for JSON run reports."""

import json

from repro import api
from repro.algorithms import CCProgram, CCQuery
from repro.runtime.report import result_to_dict, write_report


class TestResultToDict:
    def test_core_fields(self, small_powerlaw):
        r = api.run(CCProgram(), small_powerlaw, CCQuery(), num_fragments=3)
        doc = result_to_dict(r)
        assert doc["mode"] == "AAP"
        assert doc["time"] == r.time
        assert doc["metrics"]["total_messages"] == r.metrics.total_messages
        assert len(doc["metrics"]["workers"]) == 3
        assert "trace" not in doc
        assert "answer" not in doc

    def test_trace_included(self, small_powerlaw):
        r = api.run(CCProgram(), small_powerlaw, CCQuery(), num_fragments=3)
        doc = result_to_dict(r, include_trace=True)
        assert doc["trace"]
        iv = doc["trace"][0]
        assert set(iv) == {"wid", "start", "end", "kind", "round"}

    def test_answer_included(self, small_grid):
        r = api.run(CCProgram(), small_grid, CCQuery(), num_fragments=2)
        doc = result_to_dict(r, include_answer=True)
        assert doc["answer"]["0"] == 0

    def test_json_serialisable(self, small_powerlaw):
        r = api.run(CCProgram(), small_powerlaw, CCQuery(), num_fragments=3)
        text = json.dumps(result_to_dict(r, include_trace=True,
                                         include_answer=True))
        assert "metrics" in text


class TestWriteReport:
    def test_roundtrip(self, small_grid, tmp_path):
        r = api.run(CCProgram(), small_grid, CCQuery(), num_fragments=2)
        path = tmp_path / "report.json"
        write_report(r, str(path), extra={"note": "test"})
        doc = json.loads(path.read_text())
        assert doc["context"]["note"] == "test"
        assert doc["metrics"]["makespan"] > 0


class TestCliReport:
    def test_run_with_report(self, tmp_path, capsys):
        from repro import cli
        path = tmp_path / "out.json"
        code = cli.main(["run", "-a", "cc", "--graph", "powerlaw:80",
                         "-m", "2", "--report", str(path)])
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["context"]["algorithm"] == "cc"
        assert doc["trace"]
