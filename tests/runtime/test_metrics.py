"""Tests for run metrics aggregation."""

import pytest

from repro.runtime.metrics import RunMetrics, WorkerMetrics


def worker(wid, **kwargs):
    defaults = dict(rounds=2, busy_time=1.0, idle_time=0.5,
                    suspended_time=0.25, messages_sent=3, bytes_sent=100,
                    work_done=10)
    defaults.update(kwargs)
    return WorkerMetrics(wid=wid, **defaults)


class TestAggregation:
    def test_totals(self):
        m = RunMetrics.from_workers([worker(0), worker(1)], makespan=5.0)
        assert m.makespan == 5.0
        assert m.total_busy == 2.0
        assert m.total_idle == 1.0
        assert m.total_suspended == 0.5
        assert m.total_messages == 6
        assert m.total_bytes == 200
        assert m.total_work == 20
        assert m.total_rounds == 4

    def test_max_rounds(self):
        m = RunMetrics.from_workers([worker(0, rounds=2),
                                     worker(1, rounds=9)], makespan=1.0)
        assert m.max_rounds == 9

    def test_empty(self):
        m = RunMetrics.from_workers([], makespan=0.0)
        assert m.max_rounds == 0
        assert m.idle_ratio == 0.0
        assert m.straggler_rounds() == 0

    def test_idle_ratio(self):
        m = RunMetrics.from_workers(
            [worker(0, busy_time=3.0, idle_time=1.0, suspended_time=0.0)],
            makespan=4.0)
        assert m.idle_ratio == pytest.approx(0.25)

    def test_straggler_rounds(self):
        m = RunMetrics.from_workers(
            [worker(0, busy_time=10.0, rounds=4),
             worker(1, busy_time=1.0, rounds=40)], makespan=10.0)
        assert m.straggler_rounds() == 4

    def test_summary_keys(self):
        m = RunMetrics.from_workers([worker(0)], makespan=2.0)
        s = m.summary()
        for key in ("makespan", "total_busy", "total_idle", "idle_ratio",
                    "total_messages", "total_bytes", "total_work",
                    "total_rounds", "max_rounds"):
            assert key in s
