"""Tests for partition quality metrics."""

import pytest

from repro.graph import generators
from repro.partition.edge_cut import BfsPartitioner, HashPartitioner
from repro.partition.quality import (balance, edge_cut_ratio,
                                     replication_factor, summary)
from repro.partition.vertex_cut import GreedyVertexCutPartitioner


class TestEdgeCutRatio:
    def test_single_fragment_zero(self, small_grid):
        pg = HashPartitioner().partition(small_grid, 1)
        assert edge_cut_ratio(pg) == 0.0

    def test_bounded_by_one(self, small_powerlaw):
        pg = HashPartitioner().partition(small_powerlaw, 6)
        assert 0.0 <= edge_cut_ratio(pg) <= 1.0

    def test_counts_cut_edges_exactly(self):
        g = generators.path_graph(4)
        from repro.partition.builder import build_edge_cut
        pg = build_edge_cut(g, {0: 0, 1: 0, 2: 1, 3: 1}, 2)
        # one of three edges is cut
        assert edge_cut_ratio(pg) == pytest.approx(1 / 3)


class TestReplication:
    def test_single_fragment_one(self, small_grid):
        pg = HashPartitioner().partition(small_grid, 1)
        assert replication_factor(pg) == 1.0

    def test_vertex_cut_replicates(self, small_powerlaw):
        pg = GreedyVertexCutPartitioner(seed=1).partition(small_powerlaw, 4)
        assert replication_factor(pg) > 1.0


class TestSummary:
    def test_all_keys(self, small_grid):
        pg = BfsPartitioner(seed=0).partition(small_grid, 3)
        s = summary(pg)
        assert set(s) == {"fragments", "edge_cut_ratio",
                          "replication_factor", "balance", "skew_ratio"}
        assert s["fragments"] == 3.0
        assert s["balance"] >= 1.0
        assert s["skew_ratio"] >= 1.0

    def test_balance_definition(self, small_powerlaw):
        pg = HashPartitioner().partition(small_powerlaw, 4)
        sizes = pg.sizes()
        assert balance(pg) == pytest.approx(
            max(sizes) / (sum(sizes) / len(sizes)))
