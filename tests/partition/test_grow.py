"""In-place partition growth must equal a from-scratch rebuild."""

import random

import pytest

from repro.errors import PartitionError
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.stable import stable_owner
from repro.partition.builder import build_edge_cut
from repro.partition.grow import grow_edge_cut


def stable_pg(graph, m):
    owner = {v: stable_owner(v, m) for v in graph.nodes}
    return build_edge_cut(graph, owner, m, "test")


def edge_set(graph):
    return sorted(((repr(u), repr(v), w) for u, v, w in graph.edges()))


def assert_partitions_equal(got, want):
    assert got.num_fragments == want.num_fragments
    assert got.owner == want.owner
    assert got.placement == want.placement
    for fg, fw in zip(got.fragments, want.fragments):
        assert fg.owned == fw.owned
        assert fg.mirrors == fw.mirrors
        assert fg.in_border == fw.in_border
        assert fg.out_border == fw.out_border
        assert fg.out_copies == fw.out_copies
        assert fg.in_copies == fw.in_copies
        assert fg._routing == fw._routing
        assert set(fg.graph.nodes) == set(fw.graph.nodes)
        assert edge_set(fg.graph) == edge_set(fw.graph)


def random_insertions(graph, rng, n, next_id):
    """``n`` novel edges: half attach brand-new nodes, half join
    existing pairs."""
    nodes = sorted(graph.nodes)
    existing = {frozenset((u, v)) for u, v, _ in graph.edges()}
    out = []
    while len(out) < n:
        if rng.random() < 0.5:
            u = rng.choice(nodes)
            v = next_id
            next_id += 1
            nodes.append(v)
        else:
            u, v = rng.sample(nodes, 2)
        key = frozenset((u, v))
        if u == v or key in existing:
            continue
        existing.add(key)
        out.append((u, v, round(rng.uniform(0.5, 2.0), 3)))
    return out, next_id


@pytest.mark.parametrize("m", [1, 3, 4])
@pytest.mark.parametrize("make", [
    lambda: generators.grid2d(6, 6, weighted=True, seed=2),
    lambda: generators.powerlaw(120, m=2, weighted=True, seed=5),
])
def test_grow_equals_rebuild(make, m):
    graph = make()
    pg = stable_pg(graph, m)
    rng = random.Random(m * 101)
    next_id = max(graph.nodes) + 1
    for _ in range(4):  # several consecutive growth steps
        insertions, next_id = random_insertions(graph, rng, 6, next_id)
        report = grow_edge_cut(pg, insertions)
        for u, v, w in insertions:
            graph.add_edge(u, v, w)
        rebuilt = build_edge_cut(graph, dict(pg.owner), m, "test")
        assert_partitions_equal(pg, rebuilt)
        assert report.new_nodes <= set(pg.owner)


def test_grow_directed_graph():
    g = Graph(directed=True)
    for u, v in [(0, 1), (1, 2), (2, 3), (3, 0)]:
        g.add_edge(u, v, 1.0)
    pg = stable_pg(g, 3)
    report = grow_edge_cut(pg, [(1, 4, 1.0), (4, 2, 1.0), (0, 2, 1.0)])
    for u, v, w in [(1, 4, 1.0), (4, 2, 1.0), (0, 2, 1.0)]:
        g.add_edge(u, v, w)
    rebuilt = build_edge_cut(g, dict(pg.owner), 3, "test")
    assert_partitions_equal(pg, rebuilt)
    assert 4 in report.new_nodes


def test_grow_rejects_vertex_cut():
    g = generators.grid2d(3, 3, weighted=True, seed=0)
    pg = stable_pg(g, 2)
    pg.cut = "vertex"
    with pytest.raises(PartitionError):
        grow_edge_cut(pg, [(0, 99, 1.0)])


def test_grow_invalidates_fragment_caches():
    g = generators.grid2d(4, 4, weighted=True, seed=1)
    pg = stable_pg(g, 2)
    frag = pg.fragments[0]
    before = frag.compact()
    frag.memo("probe", lambda: "stale")
    anchor = sorted(frag.owned)[0]
    grow_edge_cut(pg, [(anchor, 500, 1.0)])
    assert frag._memo is None or "probe" not in frag._memo
    after = frag.compact()
    assert after is not before
    assert 500 in after.lid_of  # the rebuilt view sees the new node
