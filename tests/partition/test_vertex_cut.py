"""Tests for vertex-cut strategies."""

import pytest

from repro.errors import PartitionError
from repro.graph import generators
from repro.graph.graph import Graph
from repro.partition.quality import replication_factor
from repro.partition.vertex_cut import (GreedyVertexCutPartitioner,
                                        HashEdgePartitioner)

PARTITIONERS = [HashEdgePartitioner(), GreedyVertexCutPartitioner(seed=1)]


@pytest.mark.parametrize("partitioner", PARTITIONERS, ids=lambda p: p.name)
class TestVertexCut:
    def test_every_edge_assigned_once(self, partitioner, small_powerlaw):
        pg = partitioner.partition(small_powerlaw, 4)
        total = sum(f.graph.num_edges for f in pg)
        assert total == small_powerlaw.num_edges

    def test_every_node_has_owner(self, partitioner, small_powerlaw):
        pg = partitioner.partition(small_powerlaw, 4)
        assert set(pg.owner) == set(small_powerlaw.nodes)

    def test_owner_holds_node(self, partitioner, small_powerlaw):
        pg = partitioner.partition(small_powerlaw, 4)
        for v, fid in pg.owner.items():
            assert v in pg.fragments[fid].owned

    def test_replicated_nodes_are_border(self, partitioner, small_powerlaw):
        pg = partitioner.partition(small_powerlaw, 4)
        for frag in pg:
            for v in frag.owned:
                if frag.locations(v):
                    assert v in frag.border_nodes

    def test_cut_kind(self, partitioner, small_powerlaw):
        pg = partitioner.partition(small_powerlaw, 4)
        assert pg.cut == "vertex"

    def test_isolated_nodes_placed(self, partitioner):
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(99)
        pg = partitioner.partition(g, 2)
        assert 99 in pg.owner


class TestGreedyQuality:
    def test_greedy_replicates_less_than_hash(self):
        g = generators.powerlaw(400, m=3, seed=2)
        hash_pg = HashEdgePartitioner().partition(g, 6)
        greedy_pg = GreedyVertexCutPartitioner(seed=0).partition(g, 6)
        assert (replication_factor(greedy_pg)
                < replication_factor(hash_pg))

    def test_greedy_balances_load(self):
        g = generators.powerlaw(400, m=3, seed=2)
        pg = GreedyVertexCutPartitioner(seed=0).partition(g, 4)
        loads = [f.graph.num_edges for f in pg]
        assert max(loads) <= 2 * (sum(loads) / len(loads))

    def test_invalid_count(self):
        with pytest.raises(PartitionError):
            HashEdgePartitioner().partition(generators.path_graph(4), 0)
