"""Tests for skew measurement and the reshuffling knob (Exp-4)."""

import pytest

from repro.errors import PartitionError
from repro.graph import generators
from repro.partition.edge_cut import HashPartitioner
from repro.partition.skew import reshuffle_to_skew, skew_ratio


class TestSkewRatio:
    def test_balanced_near_one(self, small_grid):
        pg = HashPartitioner().partition(small_grid, 4)
        assert skew_ratio(pg) < 1.6

    def test_single_fragment(self, small_grid):
        pg = HashPartitioner().partition(small_grid, 1)
        assert skew_ratio(pg) == 1.0


class TestReshuffle:
    def test_reaches_target(self, small_powerlaw):
        assignment = HashPartitioner().assign(small_powerlaw, 4)
        pg = reshuffle_to_skew(small_powerlaw, assignment, 4,
                               target_ratio=3.0, seed=1)
        assert skew_ratio(pg) >= 3.0

    def test_heavy_fragment_is_largest(self, small_powerlaw):
        assignment = HashPartitioner().assign(small_powerlaw, 4)
        pg = reshuffle_to_skew(small_powerlaw, assignment, 4,
                               target_ratio=4.0, heavy_fragment=2, seed=1)
        sizes = pg.sizes()
        assert sizes[2] == max(sizes)

    def test_preserves_node_coverage(self, small_powerlaw):
        assignment = HashPartitioner().assign(small_powerlaw, 4)
        pg = reshuffle_to_skew(small_powerlaw, assignment, 4,
                               target_ratio=3.0, seed=1)
        owned = set()
        for frag in pg:
            owned |= frag.owned
        assert owned == set(small_powerlaw.nodes)

    def test_target_one_is_noop_level(self, small_powerlaw):
        assignment = HashPartitioner().assign(small_powerlaw, 4)
        pg = reshuffle_to_skew(small_powerlaw, assignment, 4,
                               target_ratio=1.0, seed=1)
        base = HashPartitioner().partition(small_powerlaw, 4)
        assert pg.sizes() == base.sizes()

    def test_invalid_target(self, small_powerlaw):
        assignment = HashPartitioner().assign(small_powerlaw, 4)
        with pytest.raises(PartitionError):
            reshuffle_to_skew(small_powerlaw, assignment, 4,
                              target_ratio=0.5)

    def test_invalid_heavy_fragment(self, small_powerlaw):
        assignment = HashPartitioner().assign(small_powerlaw, 4)
        with pytest.raises(PartitionError):
            reshuffle_to_skew(small_powerlaw, assignment, 4,
                              target_ratio=2.0, heavy_fragment=9)

    def test_deterministic(self, small_powerlaw):
        assignment = HashPartitioner().assign(small_powerlaw, 4)
        a = reshuffle_to_skew(small_powerlaw, assignment, 4, 3.0, seed=7)
        b = reshuffle_to_skew(small_powerlaw, assignment, 4, 3.0, seed=7)
        assert a.sizes() == b.sizes()
