"""Tests for edge-cut partition strategies and fragment construction."""

import pytest

from repro.errors import PartitionError
from repro.graph import generators
from repro.graph.graph import Graph
from repro.partition.edge_cut import (BfsPartitioner, GreedyLdgPartitioner,
                                      HashPartitioner, RangePartitioner)
from repro.partition.quality import (balance, edge_cut_ratio,
                                     replication_factor)

PARTITIONERS = [HashPartitioner(), RangePartitioner(), BfsPartitioner(seed=1),
                GreedyLdgPartitioner(seed=1)]


@pytest.mark.parametrize("partitioner", PARTITIONERS,
                         ids=lambda p: p.name)
class TestAllPartitioners:
    def test_total_assignment(self, partitioner, small_powerlaw):
        assignment = partitioner.assign(small_powerlaw, 4)
        assert set(assignment) == set(small_powerlaw.nodes)
        assert all(0 <= fid < 4 for fid in assignment.values())

    def test_partition_covers_all_nodes(self, partitioner, small_powerlaw):
        pg = partitioner.partition(small_powerlaw, 4)
        owned = set()
        for frag in pg:
            assert not (owned & frag.owned), "owned sets must be disjoint"
            owned |= frag.owned
        assert owned == set(small_powerlaw.nodes)

    def test_partition_covers_all_edges(self, partitioner, small_grid):
        pg = partitioner.partition(small_grid, 4)
        seen = set()
        for frag in pg:
            for u, v, _ in frag.graph.edges():
                seen.add((min(u, v), max(u, v)))
        expected = {(min(u, v), max(u, v)) for u, v, _ in small_grid.edges()}
        assert seen == expected

    def test_single_fragment(self, partitioner, small_grid):
        pg = partitioner.partition(small_grid, 1)
        frag = pg.fragments[0]
        assert frag.owned == set(small_grid.nodes)
        assert not frag.mirrors
        assert not frag.border_nodes

    def test_invalid_fragment_count(self, partitioner, small_grid):
        with pytest.raises(PartitionError):
            partitioner.partition(small_grid, 0)


class TestBorderSemantics:
    def test_cut_edge_copied_both_sides(self):
        g = Graph(directed=True)
        g.add_edge("a", "b", 2.0)
        pg = RangePartitioner().partition(g, 2)
        fa, fb = pg.fragment_of("a"), pg.fragment_of("b")
        assert fa.graph.has_edge("a", "b")
        assert fb.graph.has_edge("a", "b")
        assert fa is not fb

    def test_directed_border_sets(self):
        g = Graph(directed=True)
        g.add_edge("a", "b")
        pg = RangePartitioner().partition(g, 2)
        fa, fb = pg.fragment_of("a"), pg.fragment_of("b")
        # a -> b crosses from fa to fb
        assert "a" in fa.out_border          # F.O'
        assert "b" in fa.out_copies          # F.O
        assert "b" in fb.in_border           # F.I
        assert "a" in fb.in_copies           # F.I'
        assert "a" not in fa.in_border
        assert "b" not in fb.out_border

    def test_undirected_border_symmetric(self):
        g = Graph(directed=False)
        g.add_edge("a", "b")
        pg = RangePartitioner().partition(g, 2)
        fa = pg.fragment_of("a")
        assert "a" in fa.in_border and "a" in fa.out_border
        assert "b" in fa.in_copies and "b" in fa.out_copies

    def test_routing_index(self, small_grid):
        pg = HashPartitioner().partition(small_grid, 4)
        for frag in pg:
            for v in frag.border_nodes | frag.mirrors:
                locs = frag.locations(v)
                assert frag.fid not in locs
                assert locs, f"shared node {v} must reside elsewhere"
                for j in locs:
                    other = pg.fragments[j]
                    assert (v in other.owned) or (v in other.mirrors)

    def test_interior_nodes_have_no_locations(self, small_grid):
        pg = BfsPartitioner(seed=0).partition(small_grid, 4)
        for frag in pg:
            interior = frag.owned - frag.border_nodes
            for v in interior:
                assert frag.locations(v) == ()

    def test_peer_fragments(self, small_grid):
        pg = HashPartitioner().partition(small_grid, 4)
        for frag in pg:
            peers = frag.peer_fragments()
            assert frag.fid not in peers


class TestQualityMetrics:
    def test_bfs_cuts_fewer_edges_than_hash(self, small_grid):
        hash_pg = HashPartitioner().partition(small_grid, 4)
        bfs_pg = BfsPartitioner(seed=0).partition(small_grid, 4)
        assert edge_cut_ratio(bfs_pg) < edge_cut_ratio(hash_pg)

    def test_ldg_cuts_fewer_edges_than_hash(self, small_grid):
        hash_pg = HashPartitioner().partition(small_grid, 4)
        ldg_pg = GreedyLdgPartitioner(seed=0).partition(small_grid, 4)
        assert edge_cut_ratio(ldg_pg) < edge_cut_ratio(hash_pg)

    def test_range_is_balanced(self, small_powerlaw):
        pg = RangePartitioner().partition(small_powerlaw, 4)
        counts = [len(f.owned) for f in pg]
        assert max(counts) - min(counts) <= 1

    def test_replication_at_least_one(self, small_powerlaw):
        pg = HashPartitioner().partition(small_powerlaw, 4)
        assert replication_factor(pg) >= 1.0

    def test_balance_one_fragment(self, small_grid):
        pg = HashPartitioner().partition(small_grid, 1)
        assert balance(pg) == 1.0

    def test_hash_salt_changes_assignment(self, small_powerlaw):
        a = HashPartitioner(salt=0).assign(small_powerlaw, 4)
        b = HashPartitioner(salt=1).assign(small_powerlaw, 4)
        assert a != b


class TestPartitionedGraph:
    def test_fragment_of(self, partitioned_grid):
        for v in range(100):
            frag = partitioned_grid.fragment_of(v)
            assert v in frag.owned

    def test_fragment_of_unknown(self, partitioned_grid):
        with pytest.raises(PartitionError):
            partitioned_grid.fragment_of("nope")

    def test_iteration_and_len(self, partitioned_grid):
        assert len(partitioned_grid) == 4
        assert [f.fid for f in partitioned_grid] == [0, 1, 2, 3]

    def test_cut_kind(self, partitioned_grid):
        assert partitioned_grid.cut == "edge"
        assert all(f.cut == "edge" for f in partitioned_grid)
