"""Property-based tests for the model-simulation layers.

Proposition 3 / Theorem 4, empirically: Pregel programs on the AAP engine
agree with the dedicated superstep engine; MapReduce-on-PIE agrees with
the local reference executor for random jobs and inputs.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import api
from repro.baselines.vertex_centric import (BellmanFordSSSP,
                                            SuperstepVertexEngine)
from repro.compat.mapreduce import (LocalMapReduce, MapReduceJob, Subroutine,
                                    run_mapreduce)
from repro.compat.pregel import PregelAdapter, PregelVertexProgram
from repro.graph import generators

SETTINGS = dict(max_examples=15, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


class _PregelSSSP(PregelVertexProgram):
    def __init__(self, source):
        self.source = source

    def initial_value(self, vid, graph):
        return 0.0 if vid == self.source else math.inf

    def compute(self, ctx, messages, superstep):
        best = min([ctx.value] + list(messages))
        if best < ctx.value or (superstep == 0 and ctx.vid == self.source):
            ctx.value = best
            for u, w in ctx.out_edges():
                ctx.send(u, best + w)
        ctx.vote_to_halt()

    def combine(self, a, b):
        return min(a, b)


class TestPregelEquivalence:
    @given(n=st.integers(8, 60), seed=st.integers(0, 200),
           m=st.integers(1, 5),
           mode=st.sampled_from(["BSP", "AP", "AAP"]))
    @settings(**SETTINGS)
    def test_adapter_matches_superstep_engine(self, n, seed, m, mode):
        g = generators.powerlaw(n, m=2, weighted=True, seed=seed)
        source = next(iter(g.nodes))
        adapter = api.run(PregelAdapter(_PregelSSSP(source)), g, None,
                          num_fragments=m, mode=mode, record_trace=False)
        engine = SuperstepVertexEngine(g, max(m, 1))
        reference = engine.run(BellmanFordSSSP(source))
        for v in reference.answer:
            assert adapter.answer[v] == pytest.approx(reference.answer[v])


# a small pool of deterministic mapper/reducer building blocks
def _tokenize(key, value):
    for token in str(value).split():
        yield token, 1


def _emit_length(key, value):
    yield len(str(value)) % 5, value


def _identity_m(key, value):
    yield key, value


def _count(key, values):
    yield key, len(values)


def _concat_sorted(key, values):
    yield key, "|".join(sorted(str(v) for v in values))


def _maximum(key, values):
    yield key, max(str(v) for v in values)


MAPPERS = [_tokenize, _emit_length, _identity_m]
REDUCERS = [_count, _concat_sorted, _maximum]


class TestMapReduceEquivalence:
    @given(stage_picks=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 2)),
        min_size=1, max_size=3),
        words=st.lists(st.text(
            alphabet="abc ", min_size=1, max_size=12),
            min_size=0, max_size=10),
        n=st.integers(1, 5))
    @settings(**SETTINGS)
    def test_random_jobs_match_local(self, stage_picks, words, n):
        job = MapReduceJob(tuple(
            Subroutine(MAPPERS[mi], REDUCERS[ri])
            for mi, ri in stage_picks))
        pairs = list(enumerate(words))
        local = LocalMapReduce(job).run(pairs)
        simulated = run_mapreduce(job, pairs, n=n)
        assert sorted(map(repr, local)) == sorted(map(repr, simulated))
