"""Property-based Church-Rosser tests (Theorem 2, empirically).

Hypothesis generates random graphs, partition counts, schedules and cost
models; every asynchronous run of the monotone PIE programs must agree with
the sequential reference.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import api
from repro.algorithms import CCProgram, CCQuery, SSSPProgram, SSSPQuery
from repro.core.convergence import random_schedule_run
from repro.core.engine import Engine
from repro.graph import analysis, generators
from repro.partition.edge_cut import HashPartitioner
from repro.runtime.costmodel import CostModel

SETTINGS = dict(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@st.composite
def random_graph(draw):
    kind = draw(st.sampled_from(["er", "powerlaw", "grid", "path"]))
    seed = draw(st.integers(0, 1000))
    if kind == "er":
        n = draw(st.integers(5, 60))
        return generators.erdos_renyi(n, 0.15, weighted=True, seed=seed)
    if kind == "powerlaw":
        n = draw(st.integers(10, 80))
        return generators.powerlaw(n, m=2, weighted=True, seed=seed)
    if kind == "grid":
        r = draw(st.integers(2, 7))
        c = draw(st.integers(2, 7))
        return generators.grid2d(r, c, weighted=True, seed=seed)
    n = draw(st.integers(3, 40))
    return generators.path_graph(n, weighted=True, seed=seed)


class TestChurchRosserCC:
    @given(graph=random_graph(), m=st.integers(1, 6),
           schedule_seed=st.integers(0, 10_000))
    @settings(**SETTINGS)
    def test_random_schedules_confluent(self, graph, m, schedule_seed):
        pg = HashPartitioner().partition(graph, m)
        answer = random_schedule_run(CCProgram(), pg, CCQuery(),
                                     seed=schedule_seed)
        assert answer == analysis.connected_components(graph)


class TestChurchRosserSSSP:
    @given(graph=random_graph(), m=st.integers(1, 6),
           schedule_seed=st.integers(0, 10_000))
    @settings(**SETTINGS)
    def test_random_schedules_confluent(self, graph, m, schedule_seed):
        source = next(iter(graph.nodes))
        pg = HashPartitioner().partition(graph, m)
        answer = random_schedule_run(SSSPProgram(), pg,
                                     SSSPQuery(source=source),
                                     seed=schedule_seed)
        ref = analysis.dijkstra(graph, source)
        for v in ref:
            assert answer[v] == pytest.approx(ref[v])


class TestTimedRunsConfluent:
    @given(graph=random_graph(),
           m=st.integers(2, 5),
           mode=st.sampled_from(["BSP", "AP", "SSP", "AAP", "Hsync"]),
           straggler_factor=st.floats(1.0, 8.0),
           jitter=st.floats(0.0, 0.5),
           seed=st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_simulated_runs_confluent(self, graph, m, mode,
                                      straggler_factor, jitter, seed):
        source = next(iter(graph.nodes))
        cm = CostModel(speed={0: straggler_factor}, latency_jitter=jitter,
                       seed=seed)
        r = api.run(SSSPProgram(), graph, SSSPQuery(source=source),
                    num_fragments=m, mode=mode, cost_model=cm,
                    record_trace=False)
        ref = analysis.dijkstra(graph, source)
        for v in ref:
            assert r.answer[v] == pytest.approx(ref[v])
