"""Property tests: the vectorized fast path equals the generic path.

For every supported algorithm, random graph, partition cut, and parallel
model, a vectorized run must assemble the same answer as a generic run.
SSSP and CC are compared with exact equality (the dense kernels perform
the identical float operations); PageRank within the shipping tolerance
(accumulation order differs between the two paths).
"""

import random

import pytest

from repro import api
from repro.algorithms import (CCProgram, CCQuery, PageRankProgram,
                              PageRankQuery, SSSPProgram, SSSPQuery)
from repro.graph import generators
from repro.graph.graph import Graph
from repro.partition.edge_cut import HashPartitioner
from repro.partition.vertex_cut import HashEdgePartitioner

MODES = ("AAP", "BSP", "AP", "SSP")
CUTS = {
    "edge": HashPartitioner,
    "vertex": HashEdgePartitioner,
}


def random_graph(seed: int, n: int) -> Graph:
    rng = random.Random(seed)
    kind = rng.choice(["powerlaw", "er", "grid"])
    if kind == "powerlaw":
        return generators.powerlaw(n, m=2, weighted=True, seed=seed)
    if kind == "er":
        return generators.erdos_renyi(n, 4.0 / n, weighted=True,
                                      directed=rng.random() < 0.5,
                                      seed=seed)
    side = max(2, int(n ** 0.5))
    return generators.grid2d(side, side, weighted=True, seed=seed)


def run_pair(program_cls, pg, query, mode):
    gen = api.run(program_cls(), pg, query, mode=mode, record_trace=False)
    vec = api.run(program_cls(), pg, query, mode=mode, record_trace=False,
                  vectorized=True)
    return gen.answer, vec.answer


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("cut", sorted(CUTS))
@pytest.mark.parametrize("seed,n", [(1, 60), (2, 120), (3, 250)])
class TestExactEquality:
    def test_sssp(self, mode, cut, seed, n):
        g = random_graph(seed, n)
        pg = CUTS[cut]().partition(g, 4)
        source = next(iter(g.nodes))
        gen, vec = run_pair(SSSPProgram, pg, SSSPQuery(source=source),
                            mode)
        assert gen == vec  # bit-exact, floats included

    def test_cc(self, mode, cut, seed, n):
        g = random_graph(seed, n)
        pg = CUTS[cut]().partition(g, 4)
        gen, vec = run_pair(CCProgram, pg, CCQuery(), mode)
        assert gen == vec


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("seed,n", [(4, 80), (5, 200)])
class TestPageRankTolerance:
    def test_pagerank(self, mode, seed, n):
        g = random_graph(seed, n)
        pg = HashPartitioner().partition(g, 4)
        query = PageRankQuery(epsilon=5e-4 * n, num_nodes=n)
        gen, vec = run_pair(PageRankProgram, pg, query, mode)
        assert set(gen) == set(vec)
        # both paths stop shipping below eps_node; residuals scale with
        # in-degree (see bench.kernels._make_workload)
        eps_node = query.epsilon / n
        max_indeg = max(g.in_degree(v) for v in g.nodes)
        tol = 2.0 * eps_node * (1 + max_indeg)
        worst = max(abs(gen[v] - vec[v]) for v in gen)
        assert worst <= tol


class TestLiveRuntimes:
    """Spot checks on the wall-clock runtimes (slower, so fewer cases)."""

    def _graph(self):
        return generators.powerlaw(150, m=2, weighted=True, seed=9)

    def test_threaded_sssp_exact(self):
        from repro.core.engine import Engine
        from repro.core.modes import make_policy
        from repro.runtime.threaded import ThreadedRuntime
        g = self._graph()
        pg = HashPartitioner().partition(g, 4)
        answers = []
        for vectorized in (False, True):
            eng = Engine(SSSPProgram(), pg, SSSPQuery(source=0),
                         vectorized=vectorized)
            answers.append(ThreadedRuntime(eng, make_policy("AP")).run()
                           .answer)
        assert answers[0] == answers[1]

    def test_multiprocess_cc_exact(self):
        from repro.runtime.multiprocess import MultiprocessRuntime
        g = self._graph()
        pg = HashPartitioner().partition(g, 3)
        answers = []
        for vectorized in (False, True):
            rt = MultiprocessRuntime(CCProgram(), pg, CCQuery(),
                                     mode="AP", vectorized=vectorized)
            answers.append(rt.run().answer)
        assert answers[0] == answers[1]

    def test_multiprocess_vertex_cut_sssp_exact(self):
        from repro.runtime.multiprocess import MultiprocessRuntime
        g = self._graph()
        pg = HashEdgePartitioner().partition(g, 3)
        answers = []
        for vectorized in (False, True):
            rt = MultiprocessRuntime(SSSPProgram(), pg,
                                     SSSPQuery(source=0),
                                     mode="AAP", vectorized=vectorized)
            answers.append(rt.run().answer)
        assert answers[0] == answers[1]
