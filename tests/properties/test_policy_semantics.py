"""Property: BSP/SSP(c) simulator runs respect their staleness semantics.

At every ``ds_decision`` event the bounds invariant must hold — a BSP run
may only start a round at the global frontier ``r_min`` (barrier
semantics), an SSP(c) run at most ``c`` rounds ahead of it (bounded
staleness).  The check is the :class:`repro.fuzz.BoundsOracle` attached
online via :class:`repro.fuzz.CheckingLog`, i.e. exactly what the fuzzer
uses, applied across hypothesis-drawn graphs, fleets and cost models.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import SSSPProgram, SSSPQuery
from repro.core.engine import Engine
from repro.core.modes import make_policy
from repro.fuzz import BoundsOracle, CheckingLog, OracleSuite
from repro.graph import generators
from repro.obs import Observer
from repro.obs import events as obs
from repro.partition.edge_cut import HashPartitioner
from repro.runtime.costmodel import CostModel
from repro.runtime.simulator import SimulatedRuntime

SETTINGS = dict(max_examples=15, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@st.composite
def scenario(draw):
    graph = generators.powerlaw(draw(st.integers(10, 40)), m=2,
                                weighted=True,
                                seed=draw(st.integers(0, 200)))
    fragments = draw(st.integers(2, 5))
    cm = CostModel(alpha=1.0,
                   beta=draw(st.floats(0.0, 0.05)),
                   latency=draw(st.floats(0.0, 1.0)),
                   speed={0: draw(st.floats(1.0, 6.0))},
                   latency_jitter=draw(st.floats(0.0, 0.3)),
                   seed=draw(st.integers(0, 50)))
    return graph, fragments, cm


def _run_with_oracle(graph, fragments, cm, mode, staleness_bound=None):
    pg = HashPartitioner().partition(graph, fragments)
    suite = OracleSuite([BoundsOracle(mode, staleness_bound)])
    log = CheckingLog(suite)
    policy = make_policy(mode, staleness_bound=staleness_bound) \
        if mode == "SSP" else make_policy(mode)
    runtime = SimulatedRuntime(
        Engine(SSSPProgram(), pg, SSSPQuery(source=next(iter(graph.nodes)))),
        policy, cost_model=cm, observer=Observer(log=log),
        record_trace=False)
    runtime.run()
    suite.finish()
    decisions = log.filter(type=obs.DS_DECISION)
    assert decisions, "run produced no ds_decision events"
    return suite, decisions


class TestBarrierSemantics:
    @given(s=scenario())
    @settings(**SETTINGS)
    def test_bsp_starts_only_at_the_frontier(self, s):
        graph, fragments, cm = s
        suite, decisions = _run_with_oracle(graph, fragments, cm, "BSP")
        assert suite.ok, [v.message for v in suite.violations]
        for e in decisions:
            if e.payload["action"] == "start":
                assert e.round == e.payload["rmin"]


class TestStalenessSemantics:
    @given(s=scenario(), c=st.integers(0, 3))
    @settings(**SETTINGS)
    def test_ssp_never_starts_beyond_rmin_plus_c(self, s, c):
        graph, fragments, cm = s
        suite, decisions = _run_with_oracle(graph, fragments, cm, "SSP",
                                            staleness_bound=c)
        assert suite.ok, [v.message for v in suite.violations]
        for e in decisions:
            if e.payload["action"] == "start":
                assert e.round <= e.payload["rmin"] + c
