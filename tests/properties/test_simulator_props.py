"""Property-based simulator invariants: determinism, conservation, sanity."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import api
from repro.algorithms import CCProgram, CCQuery
from repro.core.engine import Engine
from repro.core.modes import make_policy
from repro.graph import generators
from repro.partition.edge_cut import HashPartitioner
from repro.runtime.costmodel import CostModel
from repro.runtime.simulator import SimulatedRuntime

SETTINGS = dict(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@st.composite
def scenario(draw):
    g = generators.powerlaw(draw(st.integers(10, 60)), m=2,
                            seed=draw(st.integers(0, 300)))
    m = draw(st.integers(1, 5))
    mode = draw(st.sampled_from(["BSP", "AP", "SSP", "AAP", "Hsync"]))
    cm = CostModel(
        alpha=draw(st.floats(0.01, 2.0)),
        beta=draw(st.floats(0.0, 0.05)),
        latency=draw(st.floats(0.0, 1.0)),
        msg_cost=draw(st.floats(0.0, 0.1)),
        speed={0: draw(st.floats(1.0, 8.0))},
        latency_jitter=draw(st.floats(0.0, 0.3)),
        seed=draw(st.integers(0, 100)))
    return g, m, mode, cm


class TestSimulatorInvariants:
    @given(s=scenario())
    @settings(**SETTINGS)
    def test_message_conservation_and_sanity(self, s):
        g, m, mode, cm = s
        pg = HashPartitioner().partition(g, m)
        rt = SimulatedRuntime(Engine(CCProgram(), pg, CCQuery()),
                              make_policy(mode), cost_model=cm)
        result = rt.run()
        metrics = result.metrics
        sent = sum(w.messages_sent for w in metrics.workers)
        received = sum(w.messages_received for w in metrics.workers)
        assert sent == received
        assert metrics.makespan >= 0
        assert all(w.busy_time >= 0 and w.idle_time >= -1e-9
                   and w.suspended_time >= -1e-9 for w in metrics.workers)
        # busy time can never exceed the makespan per worker
        for w in metrics.workers:
            assert w.busy_time <= metrics.makespan + 1e-9
        # every worker ran PEval at least once
        assert all(r >= 1 for r in result.rounds)

    @given(s=scenario())
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_bitwise_determinism(self, s):
        g, m, mode, cm_template = s
        pg = HashPartitioner().partition(g, m)

        def once():
            cm = CostModel(alpha=cm_template.alpha, beta=cm_template.beta,
                           latency=cm_template.latency,
                           msg_cost=cm_template.msg_cost,
                           speed={0: cm_template.speed(0)},
                           latency_jitter=cm_template.latency_jitter,
                           seed=17)
            rt = SimulatedRuntime(Engine(CCProgram(), pg, CCQuery()),
                                  make_policy(mode), cost_model=cm)
            return rt.run()

        a, b = once(), once()
        assert a.answer == b.answer
        assert a.time == b.time
        assert a.rounds == b.rounds
        assert a.metrics.total_bytes == b.metrics.total_bytes

    @given(s=scenario())
    @settings(**SETTINGS)
    def test_trace_consistent_with_metrics(self, s):
        g, m, mode, cm = s
        pg = HashPartitioner().partition(g, m)
        rt = SimulatedRuntime(Engine(CCProgram(), pg, CCQuery()),
                              make_policy(mode), cost_model=cm)
        result = rt.run()
        trace = result.trace
        assert trace.makespan() <= result.time + 1e-9
        for w in result.metrics.workers:
            assert trace.rounds(w.wid) == w.rounds
            assert trace.busy_time(w.wid) == pytest.approx(w.busy_time)
