"""Property-based aggregator laws.

Lattice aggregators must be idempotent, commutative and associative, and
their ``combine`` must be a lower bound under ``leq`` — these are what make
IncEval contracting (T2) and monotonic (T3) for min/max programs.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.aggregators import LatestByVersion, Max, Min, Sum

values = st.integers(-1000, 1000)
value_lists = st.lists(values, max_size=8)


class TestMinLaws:
    @given(a=values, xs=value_lists)
    def test_result_is_lower_bound(self, a, xs):
        r = Min().combine(a, xs)
        assert Min().leq(r, a)
        assert all(Min().leq(r, x) for x in xs)

    @given(a=values, xs=value_lists)
    def test_idempotent(self, a, xs):
        m = Min()
        once = m.combine(a, xs)
        assert m.combine(once, xs) == once

    @given(a=values, xs=value_lists)
    def test_order_invariant(self, a, xs):
        m = Min()
        assert m.combine(a, xs) == m.combine(a, list(reversed(xs)))

    @given(a=values, xs=value_lists, ys=value_lists)
    def test_associative_split(self, a, xs, ys):
        m = Min()
        assert m.combine(a, xs + ys) == m.combine(m.combine(a, xs), ys)

    @given(a=values, b=values, c=values)
    def test_leq_partial_order(self, a, b, c):
        m = Min()
        assert m.leq(a, a)
        if m.leq(a, b) and m.leq(b, a):
            assert a == b
        if m.leq(a, b) and m.leq(b, c):
            assert m.leq(a, c)


class TestMaxLaws:
    @given(a=values, xs=value_lists)
    def test_result_is_upper_bound(self, a, xs):
        r = Max().combine(a, xs)
        assert Max().leq(r, a)
        assert all(Max().leq(r, x) for x in xs)

    @given(a=values, xs=value_lists, ys=value_lists)
    def test_associative_split(self, a, xs, ys):
        m = Max()
        assert m.combine(a, xs + ys) == m.combine(m.combine(a, xs), ys)


class TestSumLaws:
    @given(a=values, xs=value_lists)
    def test_total_preserved(self, a, xs):
        assert Sum().combine(a, xs) == a + sum(xs)

    @given(a=values, xs=value_lists, ys=value_lists)
    def test_split_delivery_equivalent(self, a, xs, ys):
        """Delivering deltas in any batching yields the same total —
        why ship-and-reset messaging tolerates arbitrary schedules."""
        s = Sum()
        assert s.combine(a, xs + ys) == s.combine(s.combine(a, xs), ys)

    @given(a=values)
    def test_identity(self, a):
        assert Sum().combine(a, [Sum().identity()]) == a


class TestLatestLaws:
    versioned = st.tuples(st.integers(0, 100), st.text(max_size=4))

    @given(a=versioned, xs=st.lists(versioned, max_size=6))
    def test_result_has_max_version(self, a, xs):
        r = LatestByVersion().combine(a, xs)
        assert r[0] == max([a[0]] + [x[0] for x in xs])

    @given(a=versioned, xs=st.lists(versioned, max_size=6))
    def test_order_invariant(self, a, xs):
        agg = LatestByVersion()
        assert agg.combine(a, xs) == agg.combine(a, list(reversed(xs)))
