"""Property-based streaming tests: any insertion sequence, applied
incrementally, must agree with recomputing on the final graph."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import CCProgram, CCQuery, SSSPProgram, SSSPQuery
from repro.graph import analysis, generators
from repro.streaming import StreamingSession, UpdateBatch

SETTINGS = dict(max_examples=12, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@st.composite
def insertion_plan(draw):
    """A base graph plus batches of novel edge insertions."""
    n = draw(st.integers(8, 40))
    seed = draw(st.integers(0, 100))
    base = generators.powerlaw(n, m=2, weighted=True, seed=seed)
    batches = []
    next_new = 10_000
    existing = {frozenset((u, v)) for u, v, _ in base.edges()}
    for _ in range(draw(st.integers(1, 3))):
        edges = []
        for _ in range(draw(st.integers(1, 4))):
            if draw(st.booleans()):
                u, v = next_new, draw(st.integers(0, n - 1))
                next_new += 1
            else:
                u = draw(st.integers(0, n - 1))
                v = draw(st.integers(0, n - 1))
                if u == v or frozenset((u, v)) in existing:
                    continue
            existing.add(frozenset((u, v)))
            edges.append((u, v, draw(st.floats(0.1, 5.0))))
        if edges:
            batches.append(UpdateBatch.of(*edges))
    return base, batches


class TestStreamingConfluence:
    @given(plan=insertion_plan(), m=st.integers(1, 4))
    @settings(**SETTINGS)
    def test_cc_matches_recompute(self, plan, m):
        base, batches = plan
        session = StreamingSession(CCProgram(), base, CCQuery(),
                                   num_fragments=m)
        reference = base.copy()
        for batch in batches:
            session.apply(batch)
            for u, v, w in batch.insertions:
                reference.add_edge(u, v, w)
            assert session.answer == analysis.connected_components(
                reference)

    @given(plan=insertion_plan(), m=st.integers(1, 4))
    @settings(**SETTINGS)
    def test_sssp_matches_recompute(self, plan, m):
        base, batches = plan
        source = next(iter(base.nodes))
        session = StreamingSession(SSSPProgram(), base,
                                   SSSPQuery(source=source),
                                   num_fragments=m)
        reference = base.copy()
        for batch in batches:
            session.apply(batch)
            for u, v, w in batch.insertions:
                reference.add_edge(u, v, w)
            ref = analysis.dijkstra(reference, source)
            for node in ref:
                assert session.answer[node] == pytest.approx(ref[node])
