"""Property-based partition invariants.

For every generated graph, partitioner and fragment count, the partition
must satisfy the structural invariants of Section 2: owned sets partition V,
every edge is materialised, border sets are consistent with the routing
index, and fragments are genuine subgraphs of G.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import generators
from repro.partition.edge_cut import (BfsPartitioner, GreedyLdgPartitioner,
                                      HashPartitioner, RangePartitioner)
from repro.partition.vertex_cut import (GreedyVertexCutPartitioner,
                                        HashEdgePartitioner)

SETTINGS = dict(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@st.composite
def graph_and_m(draw):
    seed = draw(st.integers(0, 500))
    kind = draw(st.sampled_from(["er", "grid", "powerlaw"]))
    if kind == "er":
        g = generators.erdos_renyi(draw(st.integers(4, 50)), 0.2,
                                   directed=draw(st.booleans()), seed=seed)
    elif kind == "grid":
        g = generators.grid2d(draw(st.integers(2, 6)),
                              draw(st.integers(2, 6)), seed=seed)
    else:
        g = generators.powerlaw(draw(st.integers(8, 50)), m=2, seed=seed)
    m = draw(st.integers(1, 6))
    return g, m


EDGE_CUTS = st.sampled_from([HashPartitioner(), RangePartitioner(),
                             BfsPartitioner(seed=3),
                             GreedyLdgPartitioner(seed=3)])
VERTEX_CUTS = st.sampled_from([HashEdgePartitioner(),
                               GreedyVertexCutPartitioner(seed=3)])


def edge_key(g, u, v):
    if g.directed:
        return (u, v)
    return (u, v) if repr(u) <= repr(v) else (v, u)


class TestEdgeCutInvariants:
    @given(gm=graph_and_m(), partitioner=EDGE_CUTS)
    @settings(**SETTINGS)
    def test_invariants(self, gm, partitioner):
        g, m = gm
        pg = partitioner.partition(g, m)
        # owned sets partition V
        owned = [f.owned for f in pg]
        assert set().union(*owned) == set(g.nodes)
        for i in range(len(owned)):
            for j in range(i + 1, len(owned)):
                assert not owned[i] & owned[j]
        # every edge present, weights preserved (subgraph property)
        seen = set()
        for f in pg:
            for u, v, w in f.graph.edges():
                assert g.weight(u, v) == w
                seen.add(edge_key(g, u, v))
        assert seen == {edge_key(g, u, v) for u, v, _ in g.edges()}
        # routing symmetric with placement
        for f in pg:
            for v in f.owned | f.mirrors:
                locs = f.locations(v)
                assert f.fid not in locs
                for j in locs:
                    other = pg.fragments[j]
                    assert v in other.owned or v in other.mirrors
                    assert f.fid in other.locations(v)

    @given(gm=graph_and_m(), partitioner=EDGE_CUTS)
    @settings(**SETTINGS)
    def test_border_sets_match_cut_edges(self, gm, partitioner):
        g, m = gm
        pg = partitioner.partition(g, m)
        for u, v, _ in g.edges():
            fu, fv = pg.owner[u], pg.owner[v]
            if fu == fv:
                continue
            a, b = pg.fragments[fu], pg.fragments[fv]
            assert u in a.out_border
            assert v in a.out_copies
            assert v in b.in_border
            assert u in b.in_copies


class TestVertexCutInvariants:
    @given(gm=graph_and_m(), partitioner=VERTEX_CUTS)
    @settings(**SETTINGS)
    def test_invariants(self, gm, partitioner):
        g, m = gm
        pg = partitioner.partition(g, m)
        # every edge in exactly one fragment
        total = sum(f.graph.num_edges for f in pg)
        assert total == g.num_edges
        # owners exist and hold their nodes
        for v in g.nodes:
            fid = pg.owner[v]
            assert v in pg.fragments[fid].owned
        # replicas consistent with placement
        for v, fids in pg.placement.items():
            for fid in fids:
                f = pg.fragments[fid]
                assert v in f.owned or v in f.mirrors
