"""Service-level properties: incremental serving equals full recomputation
(``Q(G ⊕ ∆G)``) and the staleness contract is never violated.

The equivalence matrix covers {SSSP, CC} x {BSP, AAP} x
{simulated, threaded} — the service must be correct under any parallel
model on either runtime, per Theorem 2.
"""

import random

import pytest

from repro.algorithms import CCProgram, CCQuery, SSSPProgram, SSSPQuery
from repro.graph import generators
from repro.serve import (AdmissionController, GraphService, LoadGenerator,
                         verify_against_recompute)
from repro.streaming import StreamingSession, UpdateBatch

ALGOS = {
    "sssp": lambda: (SSSPProgram(), SSSPQuery(source=0)),
    "cc": lambda: (CCProgram(), CCQuery()),
}


def fresh_edges(graph, rng, n, next_id):
    existing = {frozenset((u, v)) for u, v, _ in graph.edges()}
    nodes = sorted(graph.nodes)
    out = []
    while len(out) < n:
        if rng.random() < 0.4:
            u, v = rng.choice(nodes), next_id
            next_id += 1
            nodes.append(v)
        else:
            u, v = rng.sample(nodes, 2)
        key = frozenset((u, v))
        if u == v or key in existing:
            continue
        existing.add(key)
        out.append((u, v, round(rng.uniform(0.5, 2.0), 2)))
    return out, next_id


@pytest.mark.parametrize("algo", sorted(ALGOS))
@pytest.mark.parametrize("mode", ["BSP", "AAP"])
@pytest.mark.parametrize("runtime", ["simulated", "threaded"])
def test_served_stream_equals_recompute(algo, mode, runtime):
    program, query = ALGOS[algo]()
    g = generators.grid2d(5, 5, weighted=True, seed=2)
    svc = GraphService(program, g, query, num_fragments=3, mode=mode,
                       runtime=runtime)
    rng = random.Random(f"{algo}-{mode}-{runtime}")
    next_id = max(g.nodes) + 1
    for step in range(5):
        edges, next_id = fresh_edges(svc.graph, rng, 4, next_id)
        svc.ingest(UpdateBatch(insertions=tuple(edges)))
        if step % 2:  # alternate lazy queries with forced catch-up
            svc.query(rng.choice(sorted(svc.graph.nodes)),
                      staleness_bound=3)
        else:
            svc.query(0, staleness_bound=0)
    assert verify_against_recompute(svc)


@pytest.mark.parametrize("algo", sorted(ALGOS))
def test_every_epoch_matches_recompute(algo):
    """Stronger per-epoch property on the reference runtime: after each
    forced catch-up the snapshot equals a scratch run on the grown
    graph."""
    program, query = ALGOS[algo]()
    g = generators.grid2d(4, 4, weighted=True, seed=3)
    svc = GraphService(program, g, query, num_fragments=3, mode="AAP",
                       runtime="simulated")
    rng = random.Random(17)
    next_id = max(g.nodes) + 1
    for _ in range(6):
        edges, next_id = fresh_edges(svc.graph, rng, 3, next_id)
        svc.ingest(UpdateBatch(insertions=tuple(edges)))
        svc.query(0, staleness_bound=0)
        assert verify_against_recompute(svc)


@pytest.mark.parametrize("runtime", ["simulated", "threaded"])
def test_staleness_contract_never_violated(runtime):
    """A query with bound k is answered from a snapshot at most k applied
    epochs behind the accepted frontier."""
    g = generators.grid2d(5, 5, weighted=True, seed=4)
    svc = GraphService(SSSPProgram(), g, SSSPQuery(source=0),
                       num_fragments=3, runtime=runtime,
                       admission=AdmissionController(
                           max_pending_batches=100, max_catchup=None))
    rng = random.Random(23)
    next_id = max(g.nodes) + 1
    for _ in range(30):
        if rng.random() < 0.4:
            edges, next_id = fresh_edges(svc.graph, rng, 2, next_id)
            svc.ingest(UpdateBatch(insertions=tuple(edges)))
            continue
        bound = rng.choice([0, 1, 2, 4])
        lag_before = svc.lag
        res = svc.query(rng.choice(sorted(svc.graph.nodes)),
                        staleness_bound=bound)
        assert res.served
        assert res.staleness <= bound
        assert res.staleness <= lag_before  # catch-up never adds lag
        # the served snapshot is the applied frontier: accepted - applied
        # equals the reported staleness
        assert svc.accepted - svc.epoch == res.staleness


def test_loadgen_mixed_workload_contract():
    g = generators.powerlaw(150, m=2, weighted=True, seed=3)
    svc = GraphService(SSSPProgram(), g, SSSPQuery(source=min(g.nodes)),
                       num_fragments=4, runtime="threaded")
    gen = LoadGenerator(svc, seed=11, num_queries=120, num_batches=8,
                        batch_size=5)
    report = gen.run()
    assert report["staleness"]["violations"] == 0
    assert report["queries"]["served"] + report["queries"]["shed"] == 120
    assert report["updates"]["epochs"] == report["updates"]["batches_applied"]
    assert report["queries"]["latency"]["count"] == \
        report["queries"]["served"]
    assert verify_against_recompute(svc)


def test_loadgen_is_deterministic():
    def run_once():
        g = generators.grid2d(5, 5, weighted=True, seed=2)
        svc = GraphService(CCProgram(), g, CCQuery(), num_fragments=3,
                           runtime="simulated")
        gen = LoadGenerator(svc, seed=5, num_queries=60, num_batches=6,
                            batch_size=4)
        report = gen.run()
        return report["staleness"], svc.answer

    first, second = run_once(), run_once()
    assert first == second


def test_service_agrees_with_streaming_session():
    """Same batches through the service and the session end identically
    (they share the stable owner map, so fragments line up too)."""
    g = generators.grid2d(5, 5, weighted=True, seed=6)
    batches = [UpdateBatch.of((0, 100, 0.3), (100, 12, 0.4)),
               UpdateBatch.of((100, 101, 0.2), (3, 17, 0.9))]
    svc = GraphService(SSSPProgram(), g, SSSPQuery(source=0),
                       num_fragments=3, runtime="simulated")
    sess = StreamingSession(SSSPProgram(), g, SSSPQuery(source=0),
                            num_fragments=3)
    for b in batches:
        svc.ingest(b)
        sess.apply(b)
    svc.flush()
    assert svc.answer == sess.answer
    assert svc.pg.owner == sess.owner
