"""Property-based tests for the sequential reference algorithms."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import analysis, generators

SETTINGS = dict(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@st.composite
def random_graph(draw, weighted=True):
    kind = draw(st.sampled_from(["er", "powerlaw", "grid"]))
    seed = draw(st.integers(0, 400))
    if kind == "er":
        return generators.erdos_renyi(draw(st.integers(4, 50)), 0.15,
                                      directed=draw(st.booleans()),
                                      weighted=weighted, seed=seed)
    if kind == "powerlaw":
        return generators.powerlaw(draw(st.integers(8, 60)), m=2,
                                   weighted=weighted, seed=seed)
    return generators.grid2d(draw(st.integers(2, 7)),
                             draw(st.integers(2, 7)),
                             weighted=weighted, seed=seed)


class TestDijkstraProperties:
    @given(g=random_graph())
    @settings(**SETTINGS)
    def test_triangle_inequality_over_edges(self, g):
        source = next(iter(g.nodes))
        dist = analysis.dijkstra(g, source)
        for u, v, w in g.edges():
            if dist[u] < math.inf:
                assert dist[v] <= dist[u] + w + 1e-9
            if not g.directed and dist[v] < math.inf:
                assert dist[u] <= dist[v] + w + 1e-9

    @given(g=random_graph())
    @settings(**SETTINGS)
    def test_source_zero_everything_nonnegative(self, g):
        source = next(iter(g.nodes))
        dist = analysis.dijkstra(g, source)
        assert dist[source] == 0.0
        assert all(d >= 0 for d in dist.values())

    @given(g=random_graph(weighted=False))
    @settings(**SETTINGS)
    def test_unit_weights_equal_bfs_levels(self, g):
        source = next(iter(g.nodes))
        dist = analysis.dijkstra(g, source)
        levels = analysis.bfs_levels(g, source)
        for v, lvl in levels.items():
            assert dist[v] == float(lvl)
        unreachable = set(dist) - set(levels)
        assert all(dist[v] == math.inf for v in unreachable)


class TestComponentProperties:
    @given(g=random_graph())
    @settings(**SETTINGS)
    def test_cid_is_min_member(self, g):
        comp = analysis.connected_components(g)
        groups = {}
        for v, cid in comp.items():
            groups.setdefault(cid, set()).add(v)
        for cid, members in groups.items():
            assert cid == min(members)
            assert cid in members

    @given(g=random_graph())
    @settings(**SETTINGS)
    def test_edges_stay_within_components(self, g):
        comp = analysis.connected_components(g)
        for u, v, _ in g.edges():
            assert comp[u] == comp[v]


class TestPageRankProperties:
    @given(g=random_graph())
    @settings(**SETTINGS)
    def test_scores_bounded_below_by_teleport(self, g):
        scores = analysis.pagerank(g, damping=0.85, epsilon=1e-9)
        for v in g.nodes:
            assert scores[v] >= (1.0 - 0.85) - 1e-9

    @given(g=random_graph())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_mass_conserved_without_dangling(self, g):
        # add a self-cycle-ish fix: connect dangling nodes to the first node
        first = next(iter(g.nodes))
        for v in list(g.nodes):
            if g.out_degree(v) == 0 and v != first:
                g.add_edge(v, first)
        if g.out_degree(first) == 0:
            return  # single isolated node: nothing to check
        scores = analysis.pagerank(g, damping=0.85, epsilon=1e-10)
        assert sum(scores.values()) == pytest.approx(g.num_nodes, rel=1e-3)
