"""Tests for the Petuum-style parameter server baseline."""

import pytest

from repro.baselines.parameter_server import ParameterServerCF
from repro.errors import RuntimeConfigError
from repro.graph import generators


@pytest.fixture(scope="module")
def ratings():
    g, _, _ = generators.bipartite_ratings(100, 30, 10, rank=3, noise=0.02,
                                           seed=17)
    return g


class TestLearning:
    def test_rmse_improves_with_epochs(self, ratings):
        short = ParameterServerCF(ratings, 4, rank=3, epochs=1,
                                  learning_rate=0.05, seed=1).run()
        long = ParameterServerCF(ratings, 4, rank=3, epochs=10,
                                 learning_rate=0.05, seed=1).run()
        assert long.rmse < short.rmse

    def test_reasonable_fit(self, ratings):
        result = ParameterServerCF(ratings, 4, rank=3, epochs=12,
                                   learning_rate=0.05, seed=1).run()
        assert result.rmse < 0.35

    def test_deterministic(self, ratings):
        a = ParameterServerCF(ratings, 3, epochs=4, seed=2).run()
        b = ParameterServerCF(ratings, 3, epochs=4, seed=2).run()
        assert a.rmse == b.rmse
        assert a.time == b.time


class TestSSPProtocol:
    def test_tighter_staleness_stalls_more(self, ratings):
        def stalls(c):
            return ParameterServerCF(ratings, 4, epochs=8, staleness=c,
                                     speed={0: 4.0}, seed=1).run().stall_time

        assert stalls(0) > stalls(2) > stalls(8)

    def test_loose_staleness_no_stalls(self, ratings):
        r = ParameterServerCF(ratings, 4, epochs=4, staleness=10,
                              speed={0: 4.0}, seed=1).run()
        assert r.stall_time == 0.0

    def test_straggler_dominates_makespan(self, ratings):
        slow = ParameterServerCF(ratings, 4, epochs=4, speed={0: 4.0},
                                 seed=1).run()
        fast = ParameterServerCF(ratings, 4, epochs=4, seed=1).run()
        assert slow.time > fast.time


class TestAccounting:
    def test_pulls_every_clock(self, ratings):
        r = ParameterServerCF(ratings, 4, epochs=5, seed=1).run()
        assert r.pulls == r.pushes
        assert r.pulls > 0
        assert r.comm_bytes == (r.pulls + r.pushes) * 8 * 4
        assert r.clocks == 5

    def test_invalid_config(self, ratings):
        with pytest.raises(RuntimeConfigError):
            ParameterServerCF(ratings, 0)
        with pytest.raises(RuntimeConfigError):
            ParameterServerCF(ratings, 2, staleness=-1)
