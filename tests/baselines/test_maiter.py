"""Tests for the Maiter-style delta engine."""

import pytest

from repro.baselines.maiter import (DeltaEngine, DeltaPageRank, DeltaSSSP)
from repro.errors import RuntimeConfigError
from repro.graph import analysis, generators


class TestDeltaPageRank:
    def test_matches_reference(self, small_powerlaw):
        engine = DeltaEngine(small_powerlaw, 4)
        result = engine.run(DeltaPageRank(tolerance=1e-8))
        ref = analysis.pagerank(small_powerlaw, epsilon=1e-12)
        for v in ref:
            assert result.answer[v] == pytest.approx(ref[v], abs=1e-3)

    def test_priority_processes_fewer_updates(self, small_powerlaw):
        prio = DeltaEngine(small_powerlaw, 4, priority=True).run(
            DeltaPageRank(tolerance=1e-5))
        fifo = DeltaEngine(small_powerlaw, 4, priority=False).run(
            DeltaPageRank(tolerance=1e-5))
        # prioritised execution converges with no more vertex updates
        assert prio.processed <= fifo.processed * 1.2
        for v in fifo.answer:
            assert prio.answer[v] == pytest.approx(fifo.answer[v],
                                                   abs=1e-3)


class TestDeltaSSSP:
    def test_matches_dijkstra(self, small_grid):
        engine = DeltaEngine(small_grid, 3)
        result = engine.run(DeltaSSSP(source=0))
        ref = analysis.dijkstra(small_grid, 0)
        assert all(result.answer[v] == pytest.approx(ref[v]) for v in ref)

    def test_weighted_directed(self):
        g = generators.rmat(7, edge_factor=4, weighted=True, seed=3)
        result = DeltaEngine(g, 4).run(DeltaSSSP(source=0))
        ref = analysis.dijkstra(g, 0)
        assert all(result.answer[v] == pytest.approx(ref[v]) for v in ref)

    def test_priority_mimics_dijkstra_order(self, small_grid):
        """Min-priority processing should settle vertices with few updates,
        like Dijkstra; FIFO label-correcting does more."""
        prio = DeltaEngine(small_grid, 1, priority=True,
                           batch_fraction=0.1).run(DeltaSSSP(source=0))
        fifo = DeltaEngine(small_grid, 1, priority=False).run(
            DeltaSSSP(source=0))
        assert prio.processed <= fifo.processed


class TestEngineMechanics:
    def test_accounting(self, small_powerlaw):
        result = DeltaEngine(small_powerlaw, 4).run(
            DeltaPageRank(tolerance=1e-4))
        assert result.time > 0
        assert 0 < result.cross_messages <= result.total_messages
        assert result.rounds >= 1

    def test_straggler_slows_run(self, small_powerlaw):
        slow = DeltaEngine(small_powerlaw, 4, speed={0: 8.0}).run(
            DeltaPageRank(tolerance=1e-4))
        fast = DeltaEngine(small_powerlaw, 4).run(
            DeltaPageRank(tolerance=1e-4))
        assert slow.time > fast.time

    def test_invalid_config(self, small_grid):
        with pytest.raises(RuntimeConfigError):
            DeltaEngine(small_grid, 0)
        with pytest.raises(RuntimeConfigError):
            DeltaEngine(small_grid, 2, batch_fraction=0.0)
