"""Tests for the vertex-centric baseline engine."""

import math

import pytest

from repro.baselines.vertex_centric import (BellmanFordSSSP, HashMinCC,
                                            IterativePageRank,
                                            SuperstepVertexEngine)
from repro.errors import RuntimeConfigError
from repro.graph import analysis, generators


class TestBellmanFord:
    def test_matches_dijkstra(self, small_grid):
        engine = SuperstepVertexEngine(small_grid, 4)
        result = engine.run(BellmanFordSSSP(0))
        ref = analysis.dijkstra(small_grid, 0)
        assert all(result.answer[v] == pytest.approx(ref[v]) for v in ref)

    def test_unreachable_inf(self):
        g = generators.path_graph(4)
        g.add_node(99)
        result = SuperstepVertexEngine(g, 2).run(BellmanFordSSSP(0))
        assert result.answer[99] == math.inf

    def test_supersteps_track_depth(self):
        g = generators.path_graph(20, weighted=False)
        result = SuperstepVertexEngine(g, 2).run(BellmanFordSSSP(0))
        assert result.supersteps >= 20


class TestHashMin:
    def test_matches_reference(self, small_powerlaw):
        result = SuperstepVertexEngine(small_powerlaw, 4).run(HashMinCC())
        assert result.answer == analysis.connected_components(small_powerlaw)

    def test_directed_weak_components(self):
        g = generators.rmat(6, edge_factor=2, seed=4)
        result = SuperstepVertexEngine(g, 4).run(HashMinCC())
        assert result.answer == analysis.connected_components(g)


class TestIterativePageRank:
    def test_close_to_reference(self, small_powerlaw):
        result = SuperstepVertexEngine(small_powerlaw, 4).run(
            IterativePageRank(iterations=60))
        ref = analysis.pagerank(small_powerlaw, epsilon=1e-12)
        for v in ref:
            assert result.answer[v] == pytest.approx(ref[v], abs=1e-2)

    def test_fixed_iterations(self, small_powerlaw):
        result = SuperstepVertexEngine(small_powerlaw, 4).run(
            IterativePageRank(iterations=5))
        assert result.supersteps == 6  # 5 sending steps + tail delivery


class TestCostAccounting:
    def test_straggler_slows_sync(self, small_powerlaw):
        fast = SuperstepVertexEngine(small_powerlaw, 4).run(HashMinCC())
        slow = SuperstepVertexEngine(small_powerlaw, 4,
                                     speed={0: 8.0}).run(HashMinCC())
        assert slow.time > fast.time
        assert slow.answer == fast.answer

    def test_async_mode_skips_barriers(self, small_powerlaw):
        sync = SuperstepVertexEngine(small_powerlaw, 4, barrier_cost=10.0)
        async_e = SuperstepVertexEngine(small_powerlaw, 4,
                                        barrier_cost=10.0, async_mode=True)
        assert async_e.run(HashMinCC()).time < sync.run(HashMinCC()).time

    def test_uncombined_messages_cost_more(self, small_powerlaw):
        combined = SuperstepVertexEngine(small_powerlaw, 4).run(
            IterativePageRank(iterations=3))
        uncombined = SuperstepVertexEngine(
            small_powerlaw, 4, use_combiner=False).run(
            IterativePageRank(iterations=3))
        assert uncombined.answer == pytest.approx(combined.answer)

    def test_cross_messages_subset_of_total(self, small_powerlaw):
        r = SuperstepVertexEngine(small_powerlaw, 4).run(HashMinCC())
        assert 0 < r.cross_messages <= r.total_messages
        assert r.comm_bytes == r.cross_messages * 16

    def test_invalid_workers(self, small_grid):
        with pytest.raises(RuntimeConfigError):
            SuperstepVertexEngine(small_grid, 0)
