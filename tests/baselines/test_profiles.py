"""Tests for the Table-1 system profiles."""

import pytest

from repro.baselines.profiles import PROFILES, run_baseline
from repro.errors import RuntimeConfigError
from repro.graph import analysis


class TestProfiles:
    def test_expected_systems_present(self):
        assert {"Giraph", "GraphLab-sync", "GraphLab-async", "GiraphUC",
                "Maiter", "PowerSwitch"} == set(PROFILES)

    @pytest.mark.parametrize("system", sorted(PROFILES))
    def test_all_systems_correct_sssp(self, system, small_grid):
        r = run_baseline(system, "sssp", small_grid, 4, source=0)
        ref = analysis.dijkstra(small_grid, 0)
        assert all(r.answer[v] == pytest.approx(ref[v]) for v in ref)

    def test_giraph_slowest_sync_system(self, small_powerlaw):
        times = {s: run_baseline(s, "pagerank", small_powerlaw, 4,
                                 pagerank_iterations=5).time
                 for s in ("Giraph", "GraphLab-sync", "PowerSwitch")}
        assert times["Giraph"] > times["GraphLab-sync"]
        assert times["Giraph"] > times["PowerSwitch"]

    def test_graphlab_async_slower_than_sync_pagerank(self, small_powerlaw):
        """The paper measures async GraphLab slower than sync for PageRank."""
        sync = run_baseline("GraphLab-sync", "pagerank", small_powerlaw, 4,
                            pagerank_iterations=5)
        async_ = run_baseline("GraphLab-async", "pagerank", small_powerlaw,
                              4, pagerank_iterations=5)
        assert async_.time > sync.time

    def test_unknown_system(self, small_grid):
        with pytest.raises(RuntimeConfigError):
            run_baseline("SparkleDB", "sssp", small_grid, 2, source=0)

    def test_unknown_algorithm(self, small_grid):
        with pytest.raises(RuntimeConfigError):
            run_baseline("Giraph", "bfs", small_grid, 2)

    def test_straggler_passthrough(self, small_powerlaw):
        slow = run_baseline("Giraph", "cc", small_powerlaw, 4,
                            speed={0: 10.0})
        fast = run_baseline("Giraph", "cc", small_powerlaw, 4)
        assert slow.time > fast.time
