"""Tests for the collaborative-filtering PIE program."""

import pytest

from repro import api
from repro.algorithms import CFProgram, CFQuery
from repro.graph import generators


@pytest.fixture(scope="module")
def ratings():
    return generators.bipartite_ratings(60, 20, 8, rank=3, noise=0.02,
                                        seed=11)


def run_cf(graph, mode="AAP", epochs=8, m=4, **kwargs):
    return api.run(CFProgram(rank=3), graph,
                   CFQuery(rank=3, epochs=epochs, learning_rate=0.05,
                           seed=1),
                   num_fragments=m, mode=mode, **kwargs)


class TestTraining:
    def test_rmse_below_untrained(self, ratings):
        g, _, _ = ratings
        trained = run_cf(g, epochs=8)
        untrained = run_cf(g, epochs=1)
        assert trained.answer["rmse"] < untrained.answer["rmse"]

    def test_rmse_reasonable(self, ratings):
        g, _, _ = ratings
        r = run_cf(g, epochs=10)
        assert r.answer["rmse"] < 0.35

    def test_all_factors_present(self, ratings):
        g, _, _ = ratings
        r = run_cf(g, epochs=2)
        users = {v for v in g.nodes if v[0] == "u"}
        items = {v for v in g.nodes if v[0] == "p"}
        assert set(r.answer["user_factors"]) == users
        assert set(r.answer["item_factors"]) == items
        assert r.answer["ratings"] == g.num_edges

    def test_loss_includes_regularization(self, ratings):
        g, _, _ = ratings
        r = run_cf(g, epochs=4)
        assert r.answer["loss"] > r.answer["rmse"] ** 2 * r.answer["ratings"]


@pytest.mark.parametrize("mode", ["BSP", "SSP", "AAP"])
class TestModes:
    def test_trains_under_mode(self, ratings, mode):
        g, _, _ = ratings
        r = run_cf(g, mode=mode, epochs=6)
        assert r.answer["rmse"] < 0.5
        # epochs bound the number of SGD rounds per worker
        assert max(r.rounds) >= 2


class TestBoundedStaleness:
    def test_default_bound_applied(self, ratings):
        g, _, _ = ratings
        # CF declares needs_bounded_staleness; api.run must honour it:
        # under AAP the fastest worker cannot run away unboundedly
        r = run_cf(g, mode="AAP", epochs=6)
        bound = CFProgram().default_staleness_bound
        assert max(r.rounds) - min(r.rounds) <= 6 + bound

    def test_explicit_bound(self, ratings):
        g, _, _ = ratings
        r = run_cf(g, mode="SSP", epochs=6, staleness_bound=1)
        assert r.answer["rmse"] < 0.5

    def test_robust_to_bound_choice(self, ratings):
        """Appendix B: AAP's quality is insensitive to c."""
        g, _, _ = ratings
        rmses = [run_cf(g, mode="AAP", epochs=6,
                        staleness_bound=c).answer["rmse"]
                 for c in (1, 4, 16)]
        assert max(rmses) - min(rmses) < 0.15


class TestValueSize:
    def test_vector_messages_larger(self):
        assert CFProgram(rank=8).value_size_bytes(None) == 64
