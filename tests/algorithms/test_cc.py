"""Tests for the CC PIE program (the paper's running example)."""

import pytest

from repro import api
from repro.algorithms import CCProgram, CCQuery, components_from_answer
from repro.core.modes import MODES
from repro.graph import analysis, generators
from repro.graph.graph import Graph
from repro.partition.vertex_cut import HashEdgePartitioner


@pytest.mark.parametrize("mode", MODES)
class TestAllModes:
    def test_powerlaw(self, small_powerlaw, mode):
        r = api.run(CCProgram(), small_powerlaw, CCQuery(),
                    num_fragments=4, mode=mode)
        assert r.answer == analysis.connected_components(small_powerlaw)

    def test_many_components(self, mode):
        g = Graph(directed=False)
        for k in range(12):
            g.add_edge(10 * k, 10 * k + 1)
            g.add_edge(10 * k + 1, 10 * k + 2)
        r = api.run(CCProgram(), g, CCQuery(), num_fragments=5, mode=mode)
        comps = components_from_answer(r.answer)
        assert len(comps) == 12


class TestTopologies:
    def test_single_component_grid(self, small_grid):
        r = api.run(CCProgram(), small_grid, CCQuery(), num_fragments=6)
        assert len(components_from_answer(r.answer)) == 1
        assert set(r.answer.values()) == {0}

    def test_directed_weak_components(self):
        g = generators.rmat(7, edge_factor=2, seed=9)
        r = api.run(CCProgram(), g, CCQuery(), num_fragments=4)
        assert r.answer == analysis.connected_components(g)

    def test_isolated_nodes(self):
        g = Graph(directed=False)
        g.add_edge(5, 6)
        g.add_node(1)
        g.add_node(2)
        r = api.run(CCProgram(), g, CCQuery(), num_fragments=2)
        assert r.answer[1] == 1
        assert r.answer[2] == 2
        assert r.answer[5] == r.answer[6] == 5

    def test_vertex_cut(self, small_powerlaw):
        pg = HashEdgePartitioner().partition(small_powerlaw, 4)
        r = api.run(CCProgram(), pg, CCQuery())
        assert r.answer == analysis.connected_components(small_powerlaw)

    def test_fig1_graph(self):
        """Example 4: the chained-components graph converges to cid 0."""
        from repro.bench.workloads import fig1_graph, fig1_partition
        pg = fig1_partition()
        r = api.run(CCProgram(), pg, CCQuery())
        g = fig1_graph()
        assert set(r.answer.values()) == {0}
        assert set(r.answer) == set(g.nodes)


class TestComponentsFromAnswer:
    def test_grouping(self):
        answer = {1: 1, 2: 1, 7: 7, 8: 7}
        assert components_from_answer(answer) == [{1, 2}, {7, 8}]


class TestIncrementalMerging:
    def test_root_linking_propagates_in_one_step(self):
        """Fig. 3: a changed border cid reaches all linked candidates via
        the component root, in one IncEval invocation."""
        from repro.core.engine import Engine
        from repro.partition.edge_cut import RangePartitioner
        g = Graph(directed=False)
        # fragment-0 chain a-b-c, fragment-1 chain x-y-z, cut edge c-x
        for u, v in (("a", "b"), ("b", "c"), ("x", "y"), ("y", "z")):
            g.add_edge(u, v)
        g.add_edge("c", "x")
        pg = RangePartitioner().partition(g, 2)
        engine = Engine(CCProgram(), pg, CCQuery())
        outs = [engine.run_peval(w) for w in (0, 1)]
        fx = pg.fragment_of("x").fid
        batch = [m for out in outs for m in out.messages if m.dst == fx]
        engine.run_inceval(fx, batch, round_no=1)
        ctx = engine.contexts[fx]
        # the component root adopted the global minimum "a" (interior
        # values are resolved through the root at Assemble time)
        for v in ("x", "y", "z"):
            root = ctx.scratch["root_of"][v]
            assert ctx.scratch["comp_cid"][root] == "a"
        # border members were updated eagerly for shipping
        assert ctx.values["x"] == "a"
