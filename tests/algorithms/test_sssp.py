"""Tests for the SSSP PIE program."""

import math

import pytest

from repro import api
from repro.algorithms import SSSPProgram, SSSPQuery
from repro.core.modes import MODES
from repro.graph import analysis, generators
from repro.graph.graph import Graph
from repro.partition.edge_cut import BfsPartitioner, HashPartitioner
from repro.partition.vertex_cut import GreedyVertexCutPartitioner


def assert_matches_dijkstra(graph, answer, source):
    ref = analysis.dijkstra(graph, source)
    assert set(answer) == set(ref)
    for v in ref:
        assert answer[v] == pytest.approx(ref[v]), f"node {v}"


@pytest.mark.parametrize("mode", MODES)
class TestAllModes:
    def test_grid(self, small_grid, mode):
        r = api.run(SSSPProgram(), small_grid, SSSPQuery(source=0),
                    num_fragments=4, mode=mode)
        assert_matches_dijkstra(small_grid, r.answer, 0)

    def test_powerlaw_weighted(self, weighted_powerlaw, mode):
        r = api.run(SSSPProgram(), weighted_powerlaw, SSSPQuery(source=0),
                    num_fragments=5, mode=mode)
        assert_matches_dijkstra(weighted_powerlaw, r.answer, 0)


class TestTopologies:
    def test_directed_graph(self):
        g = generators.rmat(7, edge_factor=4, weighted=True, seed=2)
        r = api.run(SSSPProgram(), g, SSSPQuery(source=0), num_fragments=4)
        assert_matches_dijkstra(g, r.answer, 0)

    def test_disconnected_nodes_inf(self):
        g = Graph(directed=False)
        g.add_edge(0, 1, 2.0)
        g.add_edge(2, 3, 1.0)
        r = api.run(SSSPProgram(), g, SSSPQuery(source=0), num_fragments=2)
        assert r.answer[1] == 2.0
        assert r.answer[2] == math.inf

    def test_source_not_in_graph(self, small_grid):
        r = api.run(SSSPProgram(), small_grid, SSSPQuery(source="ghost"),
                    num_fragments=3)
        assert all(d == math.inf for d in r.answer.values())

    def test_path_across_many_fragments(self):
        g = generators.path_graph(64, weighted=True, seed=4)
        from repro.partition.edge_cut import RangePartitioner
        pg = RangePartitioner().partition(g, 8)
        r = api.run(SSSPProgram(), pg, SSSPQuery(source=0))
        assert_matches_dijkstra(g, r.answer, 0)

    def test_vertex_cut_partition(self, weighted_powerlaw):
        pg = GreedyVertexCutPartitioner(seed=1).partition(
            weighted_powerlaw, 4)
        r = api.run(SSSPProgram(), pg, SSSPQuery(source=0))
        assert_matches_dijkstra(weighted_powerlaw, r.answer, 0)

    def test_locality_partition(self, small_grid):
        pg = BfsPartitioner(seed=0).partition(small_grid, 4)
        r = api.run(SSSPProgram(), pg, SSSPQuery(source=0))
        assert_matches_dijkstra(small_grid, r.answer, 0)


class TestIncrementality:
    def test_inceval_work_bounded_by_change(self, small_grid):
        """A stale re-delivery triggers no work (bounded IncEval)."""
        from repro.core.engine import Engine
        pg = HashPartitioner().partition(small_grid, 2)
        engine = Engine(SSSPProgram(), pg, SSSPQuery(source=0))
        src = pg.fragment_of(0).fid
        other = 1 - src
        out_src = engine.run_peval(src)
        engine.run_peval(other)
        batch = [m for m in out_src.messages if m.dst == other]
        first = engine.run_inceval(other, batch, round_no=1)
        again = engine.run_inceval(other, batch, round_no=2)
        assert first.work > 0
        assert again.activated == 0

    def test_work_accounted(self, small_grid):
        r = api.run(SSSPProgram(), small_grid, SSSPQuery(source=0),
                    num_fragments=4)
        assert r.metrics.total_work > small_grid.num_edges


class TestSeedOrderDeterminism:
    """IncEval's multi-source Dijkstra is seed-order independent.

    The seeds no longer get sorted before heapify: the fixpoint is a min
    over path sums, so any seed iteration order must produce the same
    distances and the same changed set.
    """

    def test_dijkstra_seed_order_irrelevant(self, small_grid):
        program = SSSPProgram()
        pg = HashPartitioner().partition(small_grid, 1)
        frag = pg.fragments[0]
        query = SSSPQuery(source=0)
        start = {0: 0.0, 11: 1.0, 44: 2.0, 77: 3.0}
        results = []
        orders = [list(start), list(reversed(list(start)))]
        for order in orders:
            ctx = program.make_context(frag, query)
            for v, d in start.items():
                ctx.set_silent(v, d)
            program._dijkstra(frag, ctx, seeds=order)
            results.append((dict(ctx.values), set(ctx.changed)))
        assert results[0] == results[1]

    def test_run_is_reproducible(self, weighted_powerlaw):
        answers = [api.run(SSSPProgram(), weighted_powerlaw,
                           SSSPQuery(source=0), num_fragments=5,
                           mode="AAP").answer for _ in range(2)]
        assert answers[0] == answers[1]
