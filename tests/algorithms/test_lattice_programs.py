"""Tests for the extra lattice PIE programs (reachability, widest paths)."""

import math

import pytest

from repro import api
from repro.algorithms import (ReachabilityProgram, ReachQuery,
                              WidestPathProgram, WidestPathQuery,
                              reference_widest_paths)
from repro.core.convergence import verify_conditions
from repro.core.modes import MODES
from repro.graph import analysis, generators
from repro.graph.graph import Graph
from repro.partition.edge_cut import HashPartitioner
from repro.partition.vertex_cut import GreedyVertexCutPartitioner


class TestReachability:
    @pytest.mark.parametrize("mode", MODES)
    def test_matches_bfs(self, small_grid, mode):
        r = api.run(ReachabilityProgram(), small_grid, ReachQuery(source=0),
                    num_fragments=4, mode=mode)
        assert r.answer == set(analysis.bfs_levels(small_grid, 0))

    def test_directed_respects_direction(self):
        g = Graph(directed=True)
        g.add_edge(0, 1)
        g.add_edge(2, 0)
        r = api.run(ReachabilityProgram(), g, ReachQuery(source=0),
                    num_fragments=2)
        assert r.answer == {0, 1}

    def test_disconnected(self):
        g = generators.path_graph(6)
        g.add_edge(100, 101)
        r = api.run(ReachabilityProgram(), g, ReachQuery(source=0),
                    num_fragments=3)
        assert 100 not in r.answer
        assert r.answer == set(range(6))

    def test_vertex_cut(self, small_powerlaw):
        pg = GreedyVertexCutPartitioner(seed=1).partition(small_powerlaw, 4)
        r = api.run(ReachabilityProgram(), pg, ReachQuery(source=0))
        assert r.answer == set(analysis.bfs_levels(small_powerlaw, 0))

    def test_conditions_hold(self, small_powerlaw):
        pg = HashPartitioner().partition(small_powerlaw, 4)
        report = verify_conditions(ReachabilityProgram(), pg,
                                   ReachQuery(source=0), runs=3)
        assert report.ok


class TestWidestPath:
    @pytest.mark.parametrize("mode", MODES)
    def test_matches_reference(self, weighted_powerlaw, mode):
        r = api.run(WidestPathProgram(), weighted_powerlaw,
                    WidestPathQuery(source=0), num_fragments=4, mode=mode)
        ref = reference_widest_paths(weighted_powerlaw, 0)
        for v in ref:
            assert r.answer[v] == pytest.approx(ref[v]), f"node {v}"

    def test_source_infinite_width(self, weighted_powerlaw):
        r = api.run(WidestPathProgram(), weighted_powerlaw,
                    WidestPathQuery(source=0), num_fragments=3)
        assert r.answer[0] == math.inf

    def test_bottleneck_semantics(self):
        g = Graph(directed=True)
        g.add_edge(0, 1, 10.0)
        g.add_edge(1, 2, 3.0)   # bottleneck on the top route
        g.add_edge(0, 3, 5.0)
        g.add_edge(3, 2, 5.0)   # wider bottom route
        r = api.run(WidestPathProgram(), g, WidestPathQuery(source=0),
                    num_fragments=2)
        assert r.answer[2] == 5.0

    def test_unreachable_zero(self):
        g = generators.path_graph(4, weighted=True, seed=1)
        g.add_node(99)
        r = api.run(WidestPathProgram(), g, WidestPathQuery(source=0),
                    num_fragments=2)
        assert r.answer[99] == 0.0

    def test_conditions_hold(self, weighted_powerlaw):
        pg = HashPartitioner().partition(weighted_powerlaw, 4)
        report = verify_conditions(WidestPathProgram(), pg,
                                   WidestPathQuery(source=0), runs=3)
        assert report.ok

    def test_vertex_cut(self, weighted_powerlaw):
        pg = GreedyVertexCutPartitioner(seed=2).partition(
            weighted_powerlaw, 3)
        r = api.run(WidestPathProgram(), pg, WidestPathQuery(source=0))
        ref = reference_widest_paths(weighted_powerlaw, 0)
        for v in ref:
            assert r.answer[v] == pytest.approx(ref[v])
