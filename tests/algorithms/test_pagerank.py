"""Tests for the delta-accumulative PageRank PIE program."""

import pytest

from repro import api
from repro.algorithms import PageRankProgram, PageRankQuery
from repro.core.modes import MODES
from repro.errors import ProgramError
from repro.graph import analysis, generators
from repro.graph.graph import Graph
from repro.partition.vertex_cut import HashEdgePartitioner


def assert_close(answer, graph, tol=2e-3, damping=0.85):
    ref = analysis.pagerank(graph, damping=damping, epsilon=1e-12)
    for v in ref:
        assert answer[v] == pytest.approx(ref[v], abs=tol), f"node {v}"


@pytest.mark.parametrize("mode", MODES)
class TestAllModes:
    def test_powerlaw(self, small_powerlaw, mode):
        r = api.run(PageRankProgram(), small_powerlaw,
                    PageRankQuery(epsilon=1e-4), num_fragments=4, mode=mode)
        assert_close(r.answer, small_powerlaw)


class TestSemantics:
    def test_directed_web_graph(self):
        g = generators.rmat(7, edge_factor=4, seed=6)
        r = api.run(PageRankProgram(), g, PageRankQuery(epsilon=1e-4),
                    num_fragments=4)
        assert_close(r.answer, g)

    def test_dangling_nodes(self):
        g = Graph(directed=True)
        g.add_edge(0, 1)
        g.add_edge(2, 1)  # 1 is dangling
        r = api.run(PageRankProgram(), g, PageRankQuery(epsilon=1e-8),
                    num_fragments=2)
        assert_close(r.answer, g, tol=1e-5)

    def test_custom_damping(self, small_powerlaw):
        r = api.run(PageRankProgram(), small_powerlaw,
                    PageRankQuery(damping=0.5, epsilon=1e-5),
                    num_fragments=3)
        assert_close(r.answer, small_powerlaw, damping=0.5, tol=1e-3)

    def test_tighter_epsilon_more_accurate(self, small_powerlaw):
        ref = analysis.pagerank(small_powerlaw, epsilon=1e-12)

        def max_err(eps):
            r = api.run(PageRankProgram(), small_powerlaw,
                        PageRankQuery(epsilon=eps), num_fragments=4)
            return max(abs(r.answer[v] - ref[v]) for v in ref)

        assert max_err(1e-6) < max_err(1e-2)

    def test_scores_positive_and_bounded(self, small_powerlaw):
        r = api.run(PageRankProgram(), small_powerlaw,
                    PageRankQuery(epsilon=1e-4), num_fragments=4)
        n = small_powerlaw.num_nodes
        total = sum(r.answer.values())
        assert all(s > 0 for s in r.answer.values())
        # without dangling leakage total mass would be n; allow slack
        assert 0.5 * n <= total <= 1.5 * n

    def test_vertex_cut_rejected(self, small_powerlaw):
        pg = HashEdgePartitioner().partition(small_powerlaw, 3)
        with pytest.raises(ProgramError):
            api.run(PageRankProgram(), pg, PageRankQuery())

    def test_deltas_consumed_exactly_once(self, small_powerlaw):
        """Total mass conservation: sum of scores equals the closed form
        for a graph with no dangling nodes."""
        g = Graph(directed=True)
        for i in range(10):
            g.add_edge(i, (i + 1) % 10)
            g.add_edge(i, (i + 3) % 10)
        r = api.run(PageRankProgram(), g, PageRankQuery(epsilon=1e-10),
                    num_fragments=3)
        # regular graph: each score is exactly 1
        for v in g.nodes:
            assert r.answer[v] == pytest.approx(1.0, abs=1e-6)
