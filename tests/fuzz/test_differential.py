"""Differential conformance: the full grid agrees with the fixpoint.

This is the acceptance grid from the issue: {BSP, AP, SSP, AAP, Hsync} x
{simulator, threaded, multiprocess} x {generic, vectorized} on SSSP, CC
and PageRank, every assembled answer identical (within the accumulative
tolerance) to the sequential fixpoint.
"""

from repro.bench.kernels import ALGORITHMS, RUNTIMES
from repro.core.modes import MODES
from repro.fuzz import format_report, run_differential
from repro.fuzz.differential import PATHS
from repro.graph import generators


class TestFullGrid:
    def test_every_cell_matches_reference(self):
        graph = generators.grid2d(4, 4, weighted=True, seed=1)
        report = run_differential(graph, fragments=2)
        assert report.ok, format_report(report)
        expected = (len(ALGORITHMS) * len(MODES) * len(RUNTIMES)
                    * len(PATHS))
        assert len(report.cells) == expected
        assert {c.algorithm for c in report.cells} >= \
            {"sssp", "cc", "pagerank"}
        assert {c.mode for c in report.cells} == set(MODES)
        assert {c.runtime for c in report.cells} == set(RUNTIMES)
        assert {c.vectorized for c in report.cells} == {False, True}


class TestReportShape:
    def test_failure_cells_surface_first(self):
        graph = generators.path_graph(6, weighted=True, seed=2)
        report = run_differential(
            graph, fragments=2, algorithms=("sssp",), modes=("AP",),
            runtimes=("simulated",), paths=(False,))
        assert len(report.cells) == 1
        assert report.cells[0].label == "sssp/AP/simulated/generic"
        text = format_report(report)
        assert "1/1 cells match" in text
        assert report.to_dict()["ok"] is True
