"""Fuzz driver: seeded case generation, determinism, clean verdicts."""

import pytest

from repro.errors import ReproError
from repro.fuzz import (FUZZ_ALGORITHMS, FuzzCase, build_graph,
                        case_from_seed, run_case)

SMOKE_SEEDS = list(range(8))


class TestCaseGeneration:
    def test_deterministic(self):
        for seed in SMOKE_SEEDS:
            assert case_from_seed(seed) == case_from_seed(seed)

    def test_roundtrip(self):
        for seed in SMOKE_SEEDS:
            case = case_from_seed(seed, smoke=True)
            assert FuzzCase.from_dict(case.to_dict()) == case

    def test_smoke_changes_only_size(self):
        big = case_from_seed(4)
        small = case_from_seed(4, smoke=True)
        assert big.algorithm == small.algorithm
        assert big.mode == small.mode
        assert big.graph_kind == small.graph_kind
        assert big.perturb == small.perturb

    def test_seeds_cover_the_space(self):
        cases = [case_from_seed(s, smoke=True) for s in range(60)]
        assert {c.algorithm for c in cases} == set(FUZZ_ALGORITHMS)
        assert len({c.mode for c in cases}) >= 4

    def test_build_graph_rejects_unknown_kind(self):
        case = case_from_seed(0, smoke=True)
        bad = FuzzCase.from_dict({**case.to_dict(), "graph_kind": "nope"})
        with pytest.raises(ReproError):
            build_graph(bad)


class TestRunCase:
    @pytest.mark.parametrize("seed", SMOKE_SEEDS)
    def test_smoke_seeds_pass(self, seed):
        result = run_case(case_from_seed(seed, smoke=True))
        assert result.ok, result.summary()
        assert result.answer is not None
        assert len(result.signature) > 0

    def test_same_seed_same_schedule(self):
        case = case_from_seed(2, smoke=True)
        r1 = run_case(case)
        r2 = run_case(case)
        assert r1.signature == r2.signature
        assert r1.answer == r2.answer

    def test_different_seeds_differ(self):
        sigs = {run_case(case_from_seed(s, smoke=True)).signature
                for s in SMOKE_SEEDS[:4]}
        assert len(sigs) == 4
