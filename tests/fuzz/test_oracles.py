"""Each oracle catches its seeded synthetic violation; clean streams pass."""

import math

from repro.fuzz import (BoundsOracle, CheckingLog, LedgerOracle,
                        OracleSuite, WakeGateOracle)
from repro.obs import events as obs


def _decision(wid, rnd, *, t=1.0, action="start", ds=0.0, eta=0,
              rmin=0, rmax=0):
    return obs.ObsEvent(
        type=obs.DS_DECISION, t=t, wid=wid, round=rnd,
        payload={"ds": ds, "action": action, "eta": eta, "t_pred": 1.0,
                 "s_pred": 1.0, "rmin": rmin, "rmax": rmax, "t_idle": 0.0,
                 "reason": "test"})


def _send(wid, dst, seq, *, t=1.0):
    return obs.ObsEvent(type=obs.MSG_SEND, t=t, wid=wid, round=0,
                        payload={"dst": dst, "bytes": 8, "seq": seq,
                                 "entries": 1})


def _deliver(wid, src, seq, depth, *, t=2.0):
    return obs.ObsEvent(type=obs.MSG_DELIVER, t=t, wid=wid, round=0,
                        payload={"src": src, "bytes": 8, "seq": seq,
                                 "depth": depth})


def _round_start(wid, rnd, batches, *, t=3.0, kind="inceval"):
    return obs.ObsEvent(type=obs.ROUND_START, t=t, wid=wid, round=rnd,
                        payload={"kind": kind, "batches": batches})


class TestBoundsOracle:
    def test_round_outside_bounds(self):
        o = BoundsOracle("AAP")
        o.on_event(_decision(0, 5, rmin=1, rmax=3))
        assert len(o.violations) == 1
        assert "outside" in o.violations[0].message

    def test_clean_decision_passes(self):
        o = BoundsOracle("AAP")
        o.on_event(_decision(0, 2, rmin=1, rmax=3))
        o.finish()
        assert not o.violations

    def test_bsp_span_exceeded(self):
        o = BoundsOracle("BSP")
        o.on_event(_decision(0, 2, rmin=0, rmax=2))
        assert any("span" in v.message for v in o.violations)

    def test_ssp_start_gating(self):
        o = BoundsOracle("SSP", staleness_bound=1)
        # starting at rmin + c is legal, rmin + c + 1 is not
        o.on_event(_decision(0, 1, rmin=0, rmax=2, action="start"))
        assert not [v for v in o.violations if "started" in v.message]
        o.on_event(_decision(0, 2, rmin=0, rmax=2, action="start"))
        assert [v for v in o.violations if "started" in v.message]

    def test_span_suppressed_after_late_reentry(self):
        o = BoundsOracle("SSP", staleness_bound=0)
        o.on_event(_decision(0, 4, rmin=4, rmax=4))
        # an inactive worker re-enters below the frontier: rmin collapses
        o.on_event(obs.ObsEvent(
            type=obs.STATUS_CHANGE, t=5.0, wid=1, round=1,
            payload={"frm": "inactive", "to": "waiting"}))
        o.on_event(_decision(0, 4, rmin=1, rmax=4, action="wake_scheduled",
                             ds=0.5))
        assert not [v for v in o.violations if "span" in v.message]


class TestLedgerOracle:
    def test_clean_exchange(self):
        o = LedgerOracle()
        o.on_event(_send(0, 1, seq=1))
        o.on_event(_deliver(1, 0, seq=1, depth=1))
        o.on_event(_decision(1, 0, eta=1))
        o.on_event(_round_start(1, 1, batches=1))
        o.finish()
        assert not o.violations

    def test_duplicate_send(self):
        o = LedgerOracle()
        o.on_event(_send(0, 1, seq=1))
        o.on_event(_send(0, 1, seq=1))
        assert any("duplicate send" in v.message for v in o.violations)

    def test_delivery_never_sent(self):
        o = LedgerOracle()
        o.on_event(_deliver(1, 0, seq=99, depth=1))
        assert any("never sent" in v.message for v in o.violations)

    def test_route_mismatch(self):
        o = LedgerOracle()
        o.on_event(_send(0, 1, seq=1))
        o.on_event(_deliver(2, 0, seq=1, depth=1))
        assert any("delivered" in v.message for v in o.violations)

    def test_depth_mismatch(self):
        o = LedgerOracle()
        o.on_event(_send(0, 1, seq=1))
        o.on_event(_deliver(1, 0, seq=1, depth=7))
        assert any("depth" in v.message for v in o.violations)

    def test_eta_mismatch(self):
        o = LedgerOracle()
        o.on_event(_send(0, 1, seq=1))
        o.on_event(_deliver(1, 0, seq=1, depth=1))
        o.on_event(_decision(1, 0, eta=0))
        assert any("eta" in v.message for v in o.violations)

    def test_in_flight_at_termination(self):
        o = LedgerOracle()
        o.on_event(_send(0, 1, seq=1))
        o.finish()
        assert any("in flight" in v.message for v in o.violations)
        assert any("sent 1 != delivered 0" in v.message
                   for v in o.violations)


class TestWakeGateOracle:
    def test_released_start_is_clean(self):
        o = WakeGateOracle()
        o.on_event(_decision(0, 1, action="start", ds=0.0))
        o.on_event(_round_start(0, 1, batches=1))
        assert not o.violations

    def test_start_without_decision(self):
        o = WakeGateOracle()
        o.on_event(_round_start(0, 1, batches=1))
        assert any("no policy decision" in v.message for v in o.violations)

    def test_start_while_suspended(self):
        o = WakeGateOracle()
        o.on_event(_decision(0, 1, action="suspend", ds=math.inf))
        o.on_event(_round_start(0, 1, batches=1))
        assert any("suspend" in v.message for v in o.violations)

    def test_release_is_consumed(self):
        o = WakeGateOracle()
        o.on_event(_decision(0, 1, action="start", ds=0.0))
        o.on_event(_round_start(0, 1, batches=1))
        o.on_event(_round_start(0, 2, batches=1))
        assert len(o.violations) == 1

    def test_decision_self_consistency(self):
        o = WakeGateOracle()
        o.on_event(_decision(0, 1, action="start", ds=3.0))
        o.on_event(_decision(0, 1, action="suspend", ds=2.0))
        o.on_event(_decision(0, 1, action="wake_scheduled", ds=0.0))
        assert len(o.violations) == 3


class TestSuitePlumbing:
    def test_checking_log_feeds_suite_online(self):
        suite = OracleSuite.for_run("AAP")
        log = CheckingLog(suite)
        log.emit(obs.ROUND_START, 1.0, wid=0, round=1,
                 kind="inceval", batches=0)
        assert not suite.ok  # wake-gate fired during emit, not at finish
        assert len(log.events) == 1

    def test_for_run_wires_mode(self):
        suite = OracleSuite.for_run("SSP", staleness_bound=2)
        bounds = suite.oracles[0]
        assert bounds.mode == "SSP" and bounds.c == 2

    def test_extra_violations_counted(self):
        from repro.fuzz import OracleViolation
        suite = OracleSuite.for_run("AAP")
        suite.extra.append(OracleViolation(oracle="contraction",
                                           message="x"))
        assert not suite.ok
        assert suite.violations[0].oracle == "contraction"
