"""SchedulePerturber: determinism, feature independence, hook contracts."""

from repro.fuzz import PerturberConfig, SchedulePerturber


class _Msg:
    def __init__(self, src, dst):
        self.src = src
        self.dst = dst


class TestPerturberConfig:
    def test_roundtrip(self):
        cfg = PerturberConfig.from_seed(42)
        assert PerturberConfig.from_dict(cfg.to_dict()) == cfg

    def test_from_seed_deterministic(self):
        assert PerturberConfig.from_seed(7) == PerturberConfig.from_seed(7)
        assert PerturberConfig.from_seed(7) != PerturberConfig.from_seed(8)

    def test_seed_is_preserved(self):
        assert PerturberConfig.from_seed(123).seed == 123


class TestDeterminism:
    def test_tiebreak_stream_repeats(self):
        a = SchedulePerturber(PerturberConfig(seed=5))
        b = SchedulePerturber(PerturberConfig(seed=5))
        assert [a.tiebreak() for _ in range(50)] == \
               [b.tiebreak() for _ in range(50)]

    def test_tiebreak_disabled_is_stable_zero(self):
        p = SchedulePerturber(PerturberConfig(seed=5, tie_shuffle=False))
        assert all(p.tiebreak() == 0.0 for _ in range(10))

    def test_edge_multiplier_stable_across_call_order(self):
        a = SchedulePerturber(PerturberConfig(seed=9))
        b = SchedulePerturber(PerturberConfig(seed=9))
        pairs = [(0, 1), (1, 0), (2, 3), (0, 1)]
        fwd = [a._edge_multiplier(s, d) for s, d in pairs]
        rev = [b._edge_multiplier(s, d) for s, d in reversed(pairs)]
        assert fwd == list(reversed(rev))
        assert fwd[0] == fwd[3]  # cached and stable


class TestFeatureIndependence:
    """Disabling one feature must not re-randomize the others.

    This is what makes the shrinker's feature-flipping a strict
    simplification instead of a jump to an unrelated schedule.
    """

    def test_tie_shuffle_off_keeps_edge_profile(self):
        on = SchedulePerturber(PerturberConfig(seed=3))
        off = SchedulePerturber(PerturberConfig(seed=3, tie_shuffle=False))
        for s, d in [(0, 1), (1, 2), (2, 0)]:
            assert on._edge_multiplier(s, d) == off._edge_multiplier(s, d)

    def test_latency_off_keeps_tiebreak_stream(self):
        on = SchedulePerturber(PerturberConfig(seed=3))
        off = SchedulePerturber(
            PerturberConfig(seed=3, latency_profile=False))
        assert [on.tiebreak() for _ in range(20)] == \
               [off.tiebreak() for _ in range(20)]

    def test_pokes_off_keeps_phase_table(self):
        on = SchedulePerturber(PerturberConfig(seed=3))
        off = SchedulePerturber(PerturberConfig(seed=3, pokes=False))
        for idx in range(8):
            now = idx * on.config.phase_length + 0.1
            assert on._phase(now) == off._phase(now)


class TestHookContracts:
    def test_deliver_time_never_before_now(self):
        p = SchedulePerturber(PerturberConfig(seed=1, latency_stretch=16.0))
        for now in (0.0, 1.5, 9.25):
            out = p.deliver_time(_Msg(0, 1), now + 0.3, now)
            assert out >= now

    def test_deliver_time_identity_when_disabled(self):
        p = SchedulePerturber(PerturberConfig(
            seed=1, latency_profile=False, phases=False))
        assert p.deliver_time(_Msg(0, 1), 2.5, 2.0) == 2.5

    def test_round_duration_stretches_only_straggler_victim(self):
        cfg = PerturberConfig(seed=4, phases=True, phase_length=2.0,
                              straggler_factor=6.0)
        p = SchedulePerturber(cfg)
        p._num_workers_hint(3)  # fleet of 4
        stretched = 0
        for idx in range(20):
            now = idx * cfg.phase_length + 0.1
            kind, victim = p._phase(now)
            for wid in range(4):
                d = p.round_duration(wid, 1.0, now)
                if kind == "straggler" and victim % 4 == wid:
                    assert d == 6.0
                    stretched += 1
                else:
                    assert d == 1.0
        assert stretched > 0  # at least one straggler window in 20 draws

    def test_poke_times_disabled(self):
        p = SchedulePerturber(PerturberConfig(seed=1, pokes=False))
        assert p.poke_times(0, 1.0, 2.0) == ()

    def test_poke_times_within_round(self):
        p = SchedulePerturber(PerturberConfig(seed=1, pokes=True,
                                              poke_probability=1.0))
        for _ in range(10):
            times = p.poke_times(0, 5.0, 2.0)
            assert len(times) == 1
            assert 5.0 <= times[0] <= 7.0
