"""The pinned corpus stays green and its artifacts stay fixed.

``tests/corpus/pinned-seeds.json`` holds seeds that must pass forever;
``tests/corpus/artifacts/*.json`` holds minimized failures from bugs
that were since fixed — replaying them must NOT reproduce (they are
regression probes, see tests/corpus/README.md).
"""

import glob
import json
import os

import pytest

from repro.fuzz import case_from_seed, replay_artifact, run_case

CORPUS = os.path.join(os.path.dirname(__file__), os.pardir, "corpus")


def _pinned():
    with open(os.path.join(CORPUS, "pinned-seeds.json")) as fh:
        data = json.load(fh)
    assert data["kind"] == "repro-fuzz-corpus"
    return data


_DATA = _pinned()
_ARTIFACTS = sorted(glob.glob(os.path.join(CORPUS, "artifacts", "*.json")))


class TestPinnedSeeds:
    @pytest.mark.parametrize("seed", _DATA["seeds"])
    def test_seed_green(self, seed):
        result = run_case(case_from_seed(seed, smoke=_DATA["smoke"]))
        assert result.ok, f"seed {seed}: {result.summary()}"

    def test_corpus_is_nontrivial(self):
        assert len(_DATA["seeds"]) >= 20

    def test_first_seed_deterministic(self):
        seed = _DATA["seeds"][0]
        case = case_from_seed(seed, smoke=_DATA["smoke"])
        assert run_case(case).signature == run_case(case).signature


class TestFixedArtifacts:
    def test_artifacts_exist(self):
        assert _ARTIFACTS

    @pytest.mark.parametrize(
        "path", _ARTIFACTS, ids=[os.path.basename(p) for p in _ARTIFACTS])
    def test_artifact_no_longer_reproduces(self, path):
        result, reproduced = replay_artifact(path)
        assert not reproduced, (
            f"{os.path.basename(path)} reproduces again: "
            f"{result.summary()}")
