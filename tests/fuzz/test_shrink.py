"""Injected-bug pipeline: oracle catches it, shrinker minimizes it,
artifact replays it.

The acceptance scenario from the issue: a deliberately non-monotonic
IncEval (violating condition T2) must be caught by the contraction
oracle, shrunk to a smaller failing case, and saved as a replayable
artifact that reproduces the failure under the broken program and passes
once the program is fixed.
"""

import pytest

from repro.algorithms.sssp import SSSPProgram
from repro.errors import ReproError
from repro.fuzz import (FuzzCase, PerturberConfig, load_artifact,
                        replay_artifact, run_case, save_artifact, shrink)
from repro.fuzz.shrink import _variants


class InflatingSSSP(SSSPProgram):
    """Deliberately breaks T2: inflates one finite distance per IncEval."""

    def inceval(self, frag, ctx, activated, query):
        out = super().inceval(frag, ctx, activated, query)
        for v in sorted(ctx.values, key=repr):
            d = ctx.values[v]
            if d not in (float("inf"), 0.0):
                ctx.set(v, d + 0.5)
                break
        return out


def _broken_case(mode="AAP"):
    return FuzzCase(seed=11, algorithm="sssp", graph_kind="grid2d",
                    graph_params={"rows": 4, "cols": 4, "seed": 7},
                    fragments=3, mode=mode,
                    perturb=PerturberConfig.from_seed(11).to_dict())


class TestInjectedBug:
    def test_contraction_oracle_catches_it(self):
        result = run_case(_broken_case(), program_cls=InflatingSSSP)
        assert not result.ok
        assert "contraction" in {v.oracle for v in result.violations}

    def test_fixed_program_passes_same_case(self):
        result = run_case(_broken_case(), program_cls=SSSPProgram)
        assert result.ok, result.summary()


class TestShrinker:
    def test_refuses_passing_case(self):
        with pytest.raises(ReproError):
            shrink(_broken_case())  # default (correct) program passes

    def test_minimizes_and_keeps_failure_kind(self):
        case = _broken_case()
        shrunk = shrink(case, program_cls=InflatingSSSP, max_attempts=32)
        assert not shrunk.result.ok
        assert "contraction" in {v.oracle
                                 for v in shrunk.result.violations}
        # strictly simpler than where it started
        assert shrunk.trail
        assert shrunk.attempts >= len(shrunk.trail)
        gp, orig = shrunk.case.graph_params, case.graph_params
        simpler = (shrunk.case.fragments < case.fragments
                   or gp != orig
                   or sum(bool(v) for v in shrunk.case.perturb.values())
                   < sum(bool(v) for v in case.perturb.values()))
        assert simpler

    def test_variants_never_yield_noops(self):
        case = FuzzCase(seed=0, algorithm="sssp", graph_kind="powerlaw",
                       graph_params={"n": 5, "m": 2, "seed": 1},
                       fragments=2,
                       perturb=PerturberConfig(
                           seed=0, tie_shuffle=False, latency_profile=False,
                           phases=False, pokes=False).to_dict())
        assert list(_variants(case)) == []


class TestArtifacts:
    def test_save_replay_roundtrip(self, tmp_path):
        path = str(tmp_path / "artifact.json")
        shrunk = shrink(_broken_case(), program_cls=InflatingSSSP,
                        max_attempts=16)
        data = save_artifact(shrunk, path)
        assert data == load_artifact(path)
        assert data["kind"] == "repro-fuzz-failure"

        result, reproduced = replay_artifact(path,
                                             program_cls=InflatingSSSP)
        assert reproduced
        assert not result.ok

        # the artifact's purpose: after the fix it stops reproducing
        result, reproduced = replay_artifact(path)
        assert not reproduced
        assert result.ok

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "something-else", "version": 1}')
        with pytest.raises(ReproError):
            load_artifact(str(path))
