"""The multiprocessing runtime: real OS processes, real message queues.

Each virtual worker runs in its own process; designated messages travel
over ``multiprocessing`` queues and the master process runs the paper's
probe/ack termination protocol.  This is the runtime for compute-heavy
workloads where Python's GIL would serialise threads.

At example scale the fork/pickle/queue overheads are comparable to the
compute itself, so the point here is *correctness under real distribution*
— identical answers from 1, 2 and 4 processes under both AP and BSP — with
honest wall-clock numbers.  Speed-ups appear once per-fragment compute
reaches tens of seconds (far beyond what an example should burn).

Run:  python examples/multiprocess_runtime.py
"""

import time

from repro.algorithms import CCProgram, CCQuery
from repro.graph import analysis, generators
from repro.partition.edge_cut import BfsPartitioner
from repro.runtime.multiprocess import MultiprocessRuntime


def main() -> None:
    graph = generators.powerlaw(8000, m=3, seed=5)
    print(f"graph: {graph}")
    reference = analysis.connected_components(graph)

    for mode in ("AP", "BSP"):
        print(f"\nmode = {mode}")
        for workers in (1, 2, 4):
            pg = BfsPartitioner(seed=0).partition(graph, workers)
            runtime = MultiprocessRuntime(CCProgram(), pg, CCQuery(),
                                          mode=mode, timeout=300)
            started = time.monotonic()
            result = runtime.run()
            elapsed = time.monotonic() - started
            ok = result.answer == reference
            print(f"  {workers} process(es): {elapsed:6.2f}s wall, "
                  f"correct={ok}, rounds={result.rounds}, "
                  f"msgs={result.metrics.total_messages}")
            assert ok


if __name__ == "__main__":
    main()
