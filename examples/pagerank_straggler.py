"""PageRank with a straggling worker: the Appendix-B case study.

One of eight workers is four times slower.  The script runs delta-based
PageRank under BSP/AP/SSP/AAP, prints the timing diagram of each run and
the straggler's round counts — the paper's Fig. 7 story: under AAP the
straggler is held to accumulate updates and converges in fewer rounds,
while the fast workers group into an implicit BSP cohort.

Run:  python examples/pagerank_straggler.py
"""

from repro import api
from repro.algorithms import PageRankProgram, PageRankQuery
from repro.bench import workloads
from repro.graph import analysis
from repro.runtime.trace import ascii_gantt


def main() -> None:
    graph = workloads.friendster(scale=0.6, seed=3)
    pg = workloads.partition(graph, 8, seed=3)
    query = PageRankQuery(epsilon=5e-4 * graph.num_nodes,
                          num_nodes=graph.num_nodes)
    reference = analysis.pagerank(graph, epsilon=1e-12)
    print(f"web graph: {graph}; worker 0 is the 4x straggler\n")

    for mode in ("BSP", "AP", "SSP", "AAP"):
        result = api.run(
            PageRankProgram(), pg, query, mode=mode,
            cost_model=workloads.default_cost(straggler=0, factor=4.0,
                                              seed=3),
            staleness_bound=5 if mode == "SSP" else None)
        err = max(abs(result.answer[v] - reference[v]) for v in reference)
        print(f"--- {mode}: t={result.time:9.1f}  "
              f"straggler rounds={result.rounds[0]:3d}  "
              f"idle={result.metrics.total_idle:9.1f}  max err={err:.2e}")
        print(ascii_gantt(result.trace, width=76))
        print()


if __name__ == "__main__":
    main()
