"""Fault tolerance: Chandy-Lamport checkpoints and recovery (Section 6).

A CC computation is checkpointed mid-run with the token-based snapshot
protocol; the run then "crashes" and a fresh runtime is restored from the
consistent checkpoint (worker states + in-channel messages).  Theorem 2
guarantees the recovered run converges to the same answer.

Run:  python examples/fault_tolerance.py
"""

from repro.algorithms import CCProgram, CCQuery
from repro.bench import workloads
from repro.core.engine import Engine
from repro.core.modes import make_policy
from repro.graph import analysis
from repro.runtime.faults import run_with_checkpoint, run_with_failure


def main() -> None:
    graph = workloads.friendster(scale=0.8, seed=9)
    pg = workloads.partition(graph, 6, seed=9)
    reference = analysis.connected_components(graph)
    print(f"graph: {graph}, 6 workers, AAP\n")

    engine_factory = lambda: Engine(CCProgram(), pg, CCQuery())
    policy_factory = lambda: make_policy("AAP")

    report = run_with_checkpoint(engine_factory, policy_factory,
                                 checkpoint_time=2.0)
    snap = report.snapshot
    in_channel = sum(len(v) for v in snap.channel_messages.values())
    print(f"checkpoint at t=2.0: {snap.num_workers_recorded} worker states, "
          f"{in_channel} in-channel messages recorded")
    print(f"uninterrupted run finished at t={report.result.time:.2f}, "
          f"answer correct: {report.result.answer == reference}")

    recovered = run_with_failure(engine_factory, policy_factory,
                                 checkpoint_time=2.0)
    print(f"\ncrash after checkpoint -> rollback -> resume:")
    print(f"recovered run finished at t={recovered.result.time:.2f} "
          f"(relative to the restored state)")
    print(f"recovered answer correct: "
          f"{recovered.result.answer == reference}")


if __name__ == "__main__":
    main()
