"""Walkthrough of the paper's Fig. 1 / Examples 1 and 4.

Three workers compute connected components over the chained-component graph
of Fig. 1(b).  P1 and P2 take 3 time units per round, P3 takes 6 (the
straggler), messages take 1 unit.  The script renders the timing diagram of
each parallel model, reproducing the qualitative picture of Fig. 1(a):
BSP is gated by P3; AP churns; SSP stalls on the staleness bound; AAP lets
fast workers proceed while the straggler accumulates updates.

Run:  python examples/fig1_walkthrough.py
"""

from repro import api
from repro.algorithms import CCProgram, CCQuery
from repro.bench.workloads import fig1_cost_model, fig1_partition
from repro.runtime.trace import ascii_gantt


def main() -> None:
    pg = fig1_partition()
    print("Fig 1(b) graph: 8 three-node components chained 0-1-...-7;")
    print("F1 holds components {1,3,5}, F2 {2,4,6}, F3 {0,7}\n")

    for mode in ("BSP", "AP", "SSP", "AAP"):
        result = api.run(CCProgram(), pg, CCQuery(), mode=mode,
                         cost_model=fig1_cost_model(),
                         staleness_bound=1 if mode == "SSP" else None)
        assert set(result.answer.values()) == {0}
        print(f"--- {mode}: finished at t={result.time:.1f}, "
              f"rounds={result.rounds} "
              f"(P3 did {result.rounds[2]} rounds)")
        print(ascii_gantt(result.trace, width=76))
        print()


if __name__ == "__main__":
    main()
