"""Quickstart: parallelise a sequential graph algorithm with AAP.

Computes connected components of a social-style graph by running the CC PIE
program (sequential traversal + incremental min-cid merging) across eight
simulated workers under the AAP model, and checks the result against a
single-machine reference.

Run:  python examples/quickstart.py
"""

from repro import api
from repro.algorithms import CCProgram, CCQuery, components_from_answer
from repro.graph import analysis, generators


def main() -> None:
    # 1. a graph (any repro.graph.Graph; here a power-law social network)
    graph = generators.powerlaw(5000, m=3, seed=42)
    print(f"graph: {graph}")

    # 2. run the PIE program under AAP on 8 fragments
    result = api.run(CCProgram(), graph, CCQuery(),
                     num_fragments=8, mode="AAP")

    components = components_from_answer(result.answer)
    print(f"found {len(components)} connected component(s)")
    print(f"simulated response time: {result.time:.2f} time units")
    print(f"rounds per worker:       {result.rounds}")
    print(f"messages exchanged:      {result.metrics.total_messages} "
          f"({result.metrics.total_bytes} bytes)")

    # 3. verify against the sequential reference (Church-Rosser: every
    #    asynchronous run converges to this answer)
    reference = analysis.connected_components(graph)
    assert result.answer == reference, "parallel run diverged!"
    print("matches the single-machine reference: OK")

    # 4. the same workload under the other parallel models
    print("\nmode comparison (identical engine, different delay policy):")
    results = api.compare_modes(CCProgram, graph, CCQuery(),
                                num_fragments=8)
    for mode, r in results.items():
        print(f"  {mode:6s} time={r.time:8.2f}  "
              f"rounds={sum(r.rounds):4d}  msgs={r.metrics.total_messages}")


if __name__ == "__main__":
    main()
