"""Collaborative filtering: train a recommender with parallel SGD.

A bipartite rating graph with planted latent factors stands in for the
paper's movieLens/Netflix datasets.  The CF PIE program runs mini-batched
SGD per fragment and exchanges accumulated item-gradient deltas; CF is the
one computation in the paper that needs *bounded staleness*, which AAP
enforces through its predicate S.

Run:  python examples/cf_recommender.py
"""

from repro import api
from repro.algorithms import CFProgram, CFQuery
from repro.bench import workloads
from repro.graph import generators


def main() -> None:
    graph, user_f, item_f = generators.bipartite_ratings(
        200, 50, ratings_per_user=12, rank=4, noise=0.05, seed=21)
    print(f"rating graph: {graph.num_edges} ratings, "
          f"{len(user_f)} users x {len(item_f)} items")

    query = CFQuery(rank=4, learning_rate=0.05, regularization=0.02,
                    epochs=10, seed=1)

    print("\ntraining under each model (6 workers, one 3x straggler):")
    for mode in ("BSP", "AP", "SSP", "AAP"):
        result = api.run(
            CFProgram(rank=4), graph, query, num_fragments=6, mode=mode,
            cost_model=workloads.default_cost(straggler=0, factor=3.0))
        print(f"  {mode:5s} time={result.time:9.1f}  "
              f"rounds={max(result.rounds):3d}  "
              f"train RMSE={result.answer['rmse']:.4f}")

    print("\nAAP robustness to the staleness bound c (Appendix B):")
    for c in (1, 2, 4, 8, 16):
        result = api.run(
            CFProgram(rank=4), graph, query, num_fragments=6, mode="AAP",
            staleness_bound=c,
            cost_model=workloads.default_cost(straggler=0, factor=3.0))
        print(f"  c={c:2d}: time={result.time:9.1f}  "
              f"RMSE={result.answer['rmse']:.4f}")

    print("\n(the paper had to run SSP 50 times to find its optimal c;")
    print(" AAP's dynamic adjustment makes the choice nearly irrelevant)")


if __name__ == "__main__":
    main()
