"""Streaming updates: keep a computation live while the graph grows.

The paper's conclusion proposes handling streaming updates "by capitalizing
on the capability of incremental IncEval".  This example keeps a CC and an
SSSP computation converged across batches of edge insertions: each batch is
integrated through the programs' incremental update hooks and a short
continuation run — no PEval, no recomputation from scratch.

Run:  python examples/streaming_updates.py
"""

import random

from repro.algorithms import CCProgram, CCQuery, SSSPProgram, SSSPQuery
from repro.graph import analysis, generators
from repro.streaming import StreamingSession, UpdateBatch


def main() -> None:
    rng = random.Random(7)

    print("connected components over a growing social graph")
    graph = generators.powerlaw(2000, m=2, seed=7)
    session = StreamingSession(CCProgram(), graph, CCQuery(),
                               num_fragments=6)
    initial_work = session.initial_result.metrics.total_work
    print(f"  initial run: {initial_work} work units, "
          f"{len(set(session.answer.values()))} component(s)")

    reference = graph.copy()
    next_id = 100_000
    for step in range(5):
        edges = []
        for _ in range(8):
            if rng.random() < 0.4:      # a brand-new node joins
                u, v = next_id, rng.randrange(2000)
                next_id += 1
            else:                        # a new friendship edge
                u, v = rng.sample(range(2000), 2)
                if reference.has_edge(u, v):
                    continue
            edges.append((u, v))
        if not edges:
            continue
        batch = UpdateBatch.of(*edges)
        result = session.apply(batch)
        for u, v, w in batch.insertions:
            reference.add_edge(u, v, w)
        assert session.answer == analysis.connected_components(reference)
        print(f"  batch {step + 1}: +{len(batch)} edges, continuation did "
              f"{result.metrics.total_work} work units "
              f"({100 * result.metrics.total_work / initial_work:.1f}% of "
              f"the initial run)")

    print("\nshortest paths while roads are being built")
    roads = generators.grid2d(25, 25, weighted=True, seed=3)
    sssp = StreamingSession(SSSPProgram(), roads, SSSPQuery(source=0),
                            num_fragments=4)
    far_corner = 624
    print(f"  dist(0 -> {far_corner}) = {sssp.answer[far_corner]:.2f}")
    # a motorway from the source to the middle of the grid
    sssp.apply(UpdateBatch.of((0, 312, 1.0)))
    print(f"  after motorway 0->312:   {sssp.answer[far_corner]:.2f}")
    ref_graph = roads.copy()
    ref_graph.add_edge(0, 312, 1.0)
    expect = analysis.dijkstra(ref_graph, 0)[far_corner]
    assert abs(sssp.answer[far_corner] - expect) < 1e-9
    print("  matches Dijkstra on the updated graph: OK")


if __name__ == "__main__":
    main()
