"""SSSP on a road network with a skewed partition (Exp-4 scenario).

A weighted 2-D grid stands in for the paper's *traffic* dataset; the
partition is deliberately skewed (r = 5) as in Fig. 6(k).  The script runs
SSSP under every parallel model, reports who wins, and shows how AAP's
advantage over BSP grows with the skew ratio.

Run:  python examples/sssp_road_network.py
"""

from repro import api
from repro.algorithms import SSSPProgram, SSSPQuery
from repro.bench import workloads
from repro.graph import analysis, generators
from repro.partition.edge_cut import HashPartitioner
from repro.partition.skew import reshuffle_to_skew, skew_ratio


def main() -> None:
    graph = generators.grid2d(42, 42, weighted=True, seed=13)
    source = 0
    reference = analysis.dijkstra(graph, source)
    print(f"road network: {graph}, source={source}")

    print("\nskewed partition (r = 5), all parallel models:")
    assignment = HashPartitioner().assign(graph, 8)
    pg = reshuffle_to_skew(graph, assignment, 8, target_ratio=5.0, seed=2)
    print(f"  actual skew ratio r = {skew_ratio(pg):.2f}")
    results = api.compare_modes(
        SSSPProgram, pg, SSSPQuery(source=source),
        cost_model_factory=lambda: workloads.default_cost(seed=1))
    for mode, r in results.items():
        ok = all(abs(r.answer[v] - reference[v]) < 1e-9 for v in reference)
        print(f"  {mode:6s} time={r.time:8.1f}  correct={ok}  "
              f"heavy-fragment rounds={r.rounds[0]}")

    print("\nAAP vs BSP as the skew ratio grows (Fig. 6(k) shape):")
    for target in (1.0, 3.0, 5.0, 7.0):
        if target <= 1.0:
            pg = HashPartitioner().partition(graph, 8)
        else:
            pg = reshuffle_to_skew(graph, assignment, 8,
                                   target_ratio=target, seed=2)
        res = api.compare_modes(
            SSSPProgram, pg, SSSPQuery(source=source),
            modes=("AAP", "BSP"),
            cost_model_factory=lambda: workloads.default_cost(seed=1))
        gain = res["BSP"].time / res["AAP"].time
        print(f"  r={skew_ratio(pg):4.1f}: AAP={res['AAP'].time:8.1f} "
              f"BSP={res['BSP'].time:8.1f}  AAP gain = {gain:.2f}x")


if __name__ == "__main__":
    main()
