"""Simulating other parallel models on AAP (Prop. 3 and Theorem 4).

1. A Pregel vertex program (compute() + combiner) runs unchanged on the AAP
   engine through the vertex-centric adapter.
2. A two-stage MapReduce job (word count -> max count) runs through the
   Theorem-4 construction: tuples move between workers only as designated
   messages over a clique worker graph.

Run:  python examples/model_simulation.py
"""

import math

from repro import api
from repro.compat.mapreduce import (LocalMapReduce, MapReduceJob, Subroutine,
                                    run_mapreduce)
from repro.compat.pregel import PregelAdapter, PregelVertexProgram
from repro.graph import analysis, generators


class PregelSSSP(PregelVertexProgram):
    """Classic Pregel SSSP: relax on message, send improvements, halt."""

    def __init__(self, source):
        self.source = source

    def initial_value(self, vid, graph):
        return 0.0 if vid == self.source else math.inf

    def compute(self, ctx, messages, superstep):
        best = min([ctx.value] + list(messages))
        if best < ctx.value or (superstep == 0 and ctx.vid == self.source):
            ctx.value = best
            for u, w in ctx.out_edges():
                ctx.send(u, best + w)
        ctx.vote_to_halt()

    def combine(self, a, b):
        return min(a, b)


def word_count_job() -> MapReduceJob:
    def wc_map(key, line):
        for word in line.split():
            yield word, 1

    def wc_reduce(key, values):
        yield key, sum(values)

    def swap_map(key, value):
        yield "most_frequent", (value, key)

    def max_reduce(key, values):
        yield key, max(values)

    return MapReduceJob((Subroutine(wc_map, wc_reduce),
                         Subroutine(swap_map, max_reduce)))


def main() -> None:
    print("(1) Pregel program on the AAP engine")
    graph = generators.grid2d(15, 15, weighted=True, seed=5)
    result = api.run(PregelAdapter(PregelSSSP(0)), graph, None,
                     num_fragments=4, mode="AAP")
    reference = analysis.dijkstra(graph, 0)
    ok = all(abs(result.answer[v] - reference[v]) < 1e-9 for v in reference)
    print(f"    Pregel SSSP on 4 fragments: correct={ok}, "
          f"rounds={result.rounds}")

    print("\n(2) MapReduce on GRAPE with designated messages (Theorem 4)")
    docs = [(i, text) for i, text in enumerate([
        "adaptive asynchronous parallel graph processing",
        "asynchronous model beats synchronous model",
        "graph systems love graph partitions",
        "adaptive adaptive adaptive"])]
    job = word_count_job()
    local = LocalMapReduce(job).run(docs)
    simulated = run_mapreduce(job, docs, n=4)
    print(f"    local executor : {local}")
    print(f"    PIE simulation : {simulated}")
    assert sorted(local) == sorted(simulated)
    print("    identical output: OK")


if __name__ == "__main__":
    main()
