"""Streaming sessions: keep a converged computation live across updates.

A :class:`StreamingSession` runs a PIE program to its fixpoint once, then
accepts batches of edge insertions.  Each batch is integrated *incrementally*:
the partition grows (same owners, new nodes hashed), the converged status
variables carry over, each affected fragment integrates its local insertions
through :meth:`PIEProgram.inc_update` + one IncEval, and the continuation
run starts from the resulting designated messages — no PEval, no global
recomputation.  For monotone programs Theorem 2 applies from any
intermediate state, so the continuation converges to ``Q(G ⊕ ∆G)``.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Hashable, List, Optional

from repro.core.engine import Engine
from repro.core.modes import make_policy
from repro.core.pie import PIEProgram
from repro.core.result import RunResult
from repro.graph.graph import Graph
from repro.graph.stable import stable_owner
from repro.partition.builder import build_edge_cut
from repro.runtime.costmodel import CostModel
from repro.runtime.simulator import SimulatedRuntime
from repro.streaming.updates import UpdateBatch, validate_batch

Node = Hashable


class StreamingSession:
    """A live computation over a growing graph."""

    def __init__(self, program: PIEProgram, graph: Graph, query: Any,
                 num_fragments: int = 4, mode: str = "AAP",
                 cost_model_factory: Optional[Callable[[], CostModel]]
                 = None,
                 staleness_bound: Optional[int] = None):
        self.program = program
        self.graph = graph.copy()
        self.query = query
        self.m = num_fragments
        self.mode = mode
        self.cost_model_factory = cost_model_factory
        if staleness_bound is None and program.needs_bounded_staleness:
            staleness_bound = program.default_staleness_bound
        self.staleness_bound = staleness_bound
        # placement must be a pure function of the node id: builtin hash
        # is salted per process (PYTHONHASHSEED), so two processes — or a
        # session and the service it warms — would disagree on ownership
        self.owner: Dict[Node, int] = {
            v: stable_owner(v, num_fragments) for v in self.graph.nodes}
        self.pg = build_edge_cut(self.graph, self.owner, self.m, "streaming")
        self.engine = Engine(program, self.pg, query)
        self.batches_applied = 0
        self.initial_result = self._run_full()

    # ------------------------------------------------------------------
    def _policy(self):
        return make_policy(self.mode, staleness_bound=self.staleness_bound)

    def _cost(self) -> Optional[CostModel]:
        if self.cost_model_factory is None:
            return None
        return self.cost_model_factory()

    def _run_full(self) -> RunResult:
        runtime = SimulatedRuntime(self.engine, self._policy(),
                                   cost_model=self._cost(),
                                   record_trace=False)
        return runtime.run()

    # ------------------------------------------------------------------
    @property
    def answer(self) -> Any:
        """The current fixpoint's assembled answer."""
        return self.engine.assemble()

    def apply(self, batch: UpdateBatch) -> RunResult:
        """Integrate one batch of edge insertions and re-converge.

        Atomic: the whole batch is validated against the current graph
        before anything mutates, so a rejected batch (duplicate edge,
        self-loop) leaves graph, engine and owner map exactly as they
        were and the session stays usable.
        """
        validate_batch(self.graph, batch)
        self._grow_graph(batch)
        new_engine = self._rebuild_engine()
        messages = self._integrate_locally(new_engine, batch)
        runtime = SimulatedRuntime(new_engine, self._policy(),
                                   cost_model=self._cost(),
                                   record_trace=False)
        runtime.seed_resume(messages)
        result = runtime.run()
        self.engine = new_engine
        self.batches_applied += 1
        return result

    # ------------------------------------------------------------------
    def _grow_graph(self, batch: UpdateBatch) -> None:
        """Materialise a *validated* batch (see :meth:`apply`)."""
        for u, v, w in batch.insertions:
            self.graph.add_edge(u, v, w)
        for v in batch.touched_nodes:
            if v not in self.owner:
                self.owner[v] = stable_owner(v, self.m)

    def _rebuild_engine(self) -> Engine:
        """Rebuild fragments for the grown graph, carrying the state over."""
        self.pg = build_edge_cut(self.graph, self.owner, self.m, "streaming")
        new_engine = Engine(self.program, self.pg, self.query)
        old_contexts = self.engine.contexts
        for wid, new_ctx in enumerate(new_engine.contexts):
            old_ctx = old_contexts[wid]
            for v in new_ctx.values:
                if v in old_ctx.values:
                    # same fragment knew this node: carry its value
                    new_ctx.values[v] = old_ctx.values[v]
                else:
                    owner = self.owner.get(v)
                    if owner is not None and \
                            v in old_contexts[owner].values:
                        # fresh mirror of a pre-existing node: adopt the
                        # owner's converged value
                        new_ctx.values[v] = old_contexts[owner].values[v]
            # program scratch (e.g. CC's component index) carries over;
            # inc_update extends it for new nodes.  Deep-copied, not
            # aliased: a caller retaining the old engine (or a result
            # built from it) must not observe mutations from later batches
            new_ctx.scratch = copy.deepcopy(old_ctx.scratch)
            new_ctx.changed = set()
        return new_engine

    def _integrate_locally(self, engine: Engine,
                           batch: UpdateBatch) -> List:
        """Run inc_update + IncEval per affected fragment; collect the
        designated messages for the continuation run."""
        messages = []
        for wid, frag in enumerate(engine.pg):
            local = [(u, v, w) for u, v, w in batch.insertions
                     if frag.graph.has_node(u) and frag.graph.has_node(v)
                     and frag.graph.has_edge(u, v)]
            if not local:
                continue
            ctx = engine.contexts[wid]
            seeds = self.program.inc_update(frag, ctx, local, self.query)
            if seeds:
                self.program.inceval(frag, ctx, set(seeds), self.query)
            messages.extend(engine.derive_messages(wid, round_no=1))
        return messages
