"""Streaming graph updates.

The paper's conclusion names *"handling streaming updates by capitalizing
on the capability of incremental IncEval"* as future work; this package
implements it for the monotone programs.  An update batch is a set of edge
insertions (plus implicit node additions).  Insertions keep CC and SSSP
monotone — cids and distances can only decrease — so Theorem 2 still
applies to the continuation runs.

Deletions would break monotonicity (a removed edge can *increase*
distances), which is why :class:`UpdateBatch` rejects them; handling
deletions needs the paper's bounded-incremental machinery with resets and
is out of scope here (documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

from repro.errors import ProgramError
from repro.graph.graph import Graph

Node = Hashable
EdgeInsertion = Tuple[Node, Node, float]


@dataclass(frozen=True)
class UpdateBatch:
    """A batch of edge insertions ``(u, v, weight)``.

    A batch is the atomic unit of ingestion: it is validated as a whole
    and applied as a whole.  Within-batch duplicate edges are rejected at
    construction — a duplicate would slip past a receiver's
    ``has_edge``-against-the-current-graph check and double-insert.
    """

    insertions: Tuple[EdgeInsertion, ...]

    def __post_init__(self):
        if not self.insertions:
            raise ProgramError("an update batch must contain insertions")
        seen: Set[Tuple[Node, Node]] = set()
        for u, v, _ in self.insertions:
            if u == v:
                raise ProgramError(
                    f"self-loop insertion ({u!r}, {v!r}) is not supported")
            if (u, v) in seen:
                raise ProgramError(
                    f"duplicate edge ({u!r}, {v!r}) within one batch")
            seen.add((u, v))

    @classmethod
    def of(cls, *edges: Iterable) -> "UpdateBatch":
        normalised: List[EdgeInsertion] = []
        for e in edges:
            if len(e) == 2:
                normalised.append((e[0], e[1], 1.0))
            elif len(e) == 3:
                normalised.append((e[0], e[1], float(e[2])))
            else:
                raise ProgramError(f"bad edge insertion: {e!r}")
        return cls(insertions=tuple(normalised))

    @property
    def touched_nodes(self) -> FrozenSet[Node]:
        out = set()
        for u, v, _ in self.insertions:
            out.add(u)
            out.add(v)
        return frozenset(out)

    def __len__(self) -> int:
        return len(self.insertions)


def validate_batch(graph: Graph, batch: UpdateBatch,
                   staged: Optional[Set[frozenset]] = None) -> None:
    """Check a whole batch against ``graph`` before anything mutates.

    Raises :class:`~repro.errors.ProgramError` if any insertion duplicates
    an existing edge (including reversed duplicates on undirected graphs,
    which ``UpdateBatch`` itself cannot see — it does not know the graph's
    directedness) or an edge in ``staged`` (edges of batches accepted but
    not yet applied, so a queued service validates against the graph it
    *will* have).  Validating up front is what makes ``apply`` atomic: a
    rejected batch leaves graph, engine and owner map untouched.
    """
    seen: Set[frozenset] = set()
    for u, v, _ in batch.insertions:
        if u == v:
            # re-checked here (not just at batch construction) so a
            # hand-built batch still cannot break apply's atomicity
            raise ProgramError(
                f"self-loop insertion ({u!r}, {v!r}) is not supported")
        key = edge_key(graph, u, v)
        if key in seen:
            raise ProgramError(
                f"duplicate edge ({u!r}, {v!r}) within one batch")
        seen.add(key)
        if staged is not None and key in staged:
            raise ProgramError(
                f"edge ({u!r}, {v!r}) already staged by a pending batch")
        if graph.has_edge(u, v):
            raise ProgramError(
                f"edge ({u!r}, {v!r}) already exists; weight changes "
                f"are not monotone-safe")


def edge_key(graph: Graph, u: Node, v: Node) -> frozenset:
    """The identity of edge ``(u, v)`` under ``graph``'s directedness."""
    if graph.directed:
        return frozenset((("s", u), ("d", v)))
    return frozenset((u, v))
