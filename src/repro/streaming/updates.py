"""Streaming graph updates.

The paper's conclusion names *"handling streaming updates by capitalizing
on the capability of incremental IncEval"* as future work; this package
implements it for the monotone programs.  An update batch is a set of edge
insertions (plus implicit node additions).  Insertions keep CC and SSSP
monotone — cids and distances can only decrease — so Theorem 2 still
applies to the continuation runs.

Deletions would break monotonicity (a removed edge can *increase*
distances), which is why :class:`UpdateBatch` rejects them; handling
deletions needs the paper's bounded-incremental machinery with resets and
is out of scope here (documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, Iterable, List, Tuple

from repro.errors import ProgramError

Node = Hashable
EdgeInsertion = Tuple[Node, Node, float]


@dataclass(frozen=True)
class UpdateBatch:
    """A batch of edge insertions ``(u, v, weight)``."""

    insertions: Tuple[EdgeInsertion, ...]

    def __post_init__(self):
        if not self.insertions:
            raise ProgramError("an update batch must contain insertions")

    @classmethod
    def of(cls, *edges: Iterable) -> "UpdateBatch":
        normalised: List[EdgeInsertion] = []
        for e in edges:
            if len(e) == 2:
                normalised.append((e[0], e[1], 1.0))
            elif len(e) == 3:
                normalised.append((e[0], e[1], float(e[2])))
            else:
                raise ProgramError(f"bad edge insertion: {e!r}")
        return cls(insertions=tuple(normalised))

    @property
    def touched_nodes(self) -> FrozenSet[Node]:
        out = set()
        for u, v, _ in self.insertions:
            out.add(u)
            out.add(v)
        return frozenset(out)

    def __len__(self) -> int:
        return len(self.insertions)
