"""Streaming updates on top of incremental IncEval (paper's future work)."""

from repro.streaming.session import StreamingSession
from repro.streaming.updates import UpdateBatch, edge_key, validate_batch

__all__ = ["StreamingSession", "UpdateBatch", "edge_key", "validate_batch"]
