"""Greedy shrinking of failing fuzz cases and replayable artifacts.

A failing (graph, partition, seed) triple from the fuzz loop is rarely
minimal: the bug usually survives with fewer fragments, a smaller graph
and most perturbation features disabled.  :func:`shrink` walks those
dimensions greedily — try one simplification, keep it iff the *same kind*
of violation still fires, repeat until nothing simplifies — and
:func:`save_artifact` writes the minimized case as a JSON artifact that
``repro fuzz --replay`` (and :func:`replay_artifact`) re-executes
deterministically.

Artifact format (version 1)::

    {
      "version": 1,
      "kind": "repro-fuzz-failure",
      "case": {...FuzzCase.to_dict()...},
      "violations": [{oracle, message, t, wid}, ...],
      "shrink_trail": ["disable pokes", "halve n", ...],
      "attempts": 17
    }

See ``docs/conformance.md`` for the full loop.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, \
    Tuple

from repro.errors import ReproError
from repro.fuzz.driver import CaseResult, FuzzCase, case_from_seed, run_case

ARTIFACT_VERSION = 1
ARTIFACT_KIND = "repro-fuzz-failure"


@dataclass
class ShrinkResult:
    """A minimized failing case plus how it got there."""

    case: FuzzCase
    result: CaseResult
    trail: List[str] = field(default_factory=list)
    attempts: int = 0


def _oracles(result: CaseResult) -> set:
    return {v.oracle for v in result.violations}


def _variants(case: FuzzCase) -> Iterator[Tuple[str, FuzzCase]]:
    """Candidate one-step simplifications, cheapest first.

    Perturber features are independent seeded streams (see
    :mod:`repro.fuzz.perturb`), so disabling one never re-randomizes the
    others — each acceptance strictly simplifies the schedule.
    """
    for feat in ("pokes", "phases", "latency_profile", "tie_shuffle"):
        if case.perturb.get(feat):
            p = dict(case.perturb)
            p[feat] = False
            yield f"disable {feat}", replace(case, perturb=p)
    if case.fragments > 2:
        yield (f"fragments {case.fragments}->{case.fragments - 1}",
               replace(case, fragments=case.fragments - 1))
    gp = dict(case.graph_params)
    if case.graph_kind == "grid2d":
        for axis in ("rows", "cols"):
            if gp.get(axis, 0) > 2:
                smaller = dict(gp)
                smaller[axis] = max(gp[axis] // 2, 2)
                yield (f"{axis} {gp[axis]}->{smaller[axis]}",
                       replace(case, graph_params=smaller))
    else:
        floor = 5 if case.graph_kind == "powerlaw" else 4
        smaller = dict(gp)
        smaller["n"] = max(gp.get("n", 0) // 2, floor)
        if smaller["n"] < gp.get("n", 0):
            yield (f"n {gp['n']}->{smaller['n']}",
                   replace(case, graph_params=smaller))


def shrink(case: FuzzCase, initial: Optional[CaseResult] = None,
           program_cls: Any = None, max_attempts: int = 64,
           progress: Optional[Callable[[str], None]] = None
           ) -> ShrinkResult:
    """Greedily minimize a failing case.

    A candidate is accepted when it still violates at least one of the
    oracles the original case violated (same failure *kind*, so the
    shrinker cannot wander off to an unrelated bug).  ``program_cls``
    must match whatever :func:`~repro.fuzz.driver.run_case` override
    produced the failure.
    """
    baseline = initial if initial is not None else run_case(
        case, program_cls=program_cls)
    if baseline.ok:
        raise ReproError("refusing to shrink a passing case")
    kinds = _oracles(baseline)
    current, current_result = case, baseline
    trail: List[str] = []
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for description, candidate in _variants(current):
            attempts += 1
            result = run_case(candidate, program_cls=program_cls)
            if _oracles(result) & kinds:
                current, current_result = candidate, result
                trail.append(description)
                if progress is not None:
                    progress(f"shrink: {description} "
                             f"({result.summary()})")
                improved = True
                break
            if attempts >= max_attempts:
                break
    return ShrinkResult(case=current, result=current_result, trail=trail,
                        attempts=attempts)


# ----------------------------------------------------------------------
# artifacts
# ----------------------------------------------------------------------
def artifact_dict(shrunk: ShrinkResult) -> Dict[str, Any]:
    return {
        "version": ARTIFACT_VERSION,
        "kind": ARTIFACT_KIND,
        "case": shrunk.case.to_dict(),
        "violations": [v.to_dict() for v in shrunk.result.violations],
        "shrink_trail": list(shrunk.trail),
        "attempts": shrunk.attempts,
    }


def save_artifact(shrunk: ShrinkResult, path: str) -> Dict[str, Any]:
    """Write the replayable JSON artifact; returns the written dict."""
    data = artifact_dict(shrunk)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return data


def load_artifact(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise ReproError(f"cannot read artifact {path}: {exc}") from exc
    except ValueError as exc:
        raise ReproError(f"artifact {path} is not valid JSON: {exc}") \
            from exc
    if data.get("kind") != ARTIFACT_KIND:
        raise ReproError(f"{path} is not a {ARTIFACT_KIND} artifact")
    if data.get("version") != ARTIFACT_VERSION:
        raise ReproError(
            f"artifact version {data.get('version')} unsupported "
            f"(expected {ARTIFACT_VERSION})")
    return data


def replay_artifact(path: str, program_cls: Any = None
                    ) -> Tuple[CaseResult, bool]:
    """Re-run an artifact's case; ``(result, reproduced)``.

    ``reproduced`` is True when the replay violates at least one oracle
    the artifact recorded (seeded determinism makes this exact for runs
    of the same code; after a fix it flips to False, which is the
    artifact's purpose as a regression probe).
    """
    data = load_artifact(path)
    case = FuzzCase.from_dict(data["case"])
    result = run_case(case, program_cls=program_cls)
    recorded = {v["oracle"] for v in data["violations"]}
    return result, bool(_oracles(result) & recorded)


# ----------------------------------------------------------------------
# the loop
# ----------------------------------------------------------------------
def fuzz_loop(seeds: Iterable[int], *, smoke: bool = False,
              artifact_dir: Optional[str] = None,
              shrink_failures: bool = True,
              progress: Optional[Callable[[str], None]] = None
              ) -> Dict[str, Any]:
    """Run seeded cases; shrink and persist every failure.

    Returns a JSON-serialisable summary with one entry per failing seed
    (its violations and, when written, the artifact path).
    """
    ran = 0
    failures: List[Dict[str, Any]] = []
    for seed in seeds:
        case = case_from_seed(seed, smoke=smoke)
        result = run_case(case)
        ran += 1
        if progress is not None:
            progress(f"{case.label}: {result.summary()}")
        if result.ok:
            continue
        entry: Dict[str, Any] = {
            "seed": seed,
            "violations": [v.to_dict() for v in result.violations],
        }
        if shrink_failures:
            shrunk = shrink(case, initial=result, progress=progress)
            entry["shrunk_case"] = shrunk.case.to_dict()
            if artifact_dir is not None:
                path = os.path.join(artifact_dir,
                                    f"fuzz-failure-seed{seed}.json")
                save_artifact(shrunk, path)
                entry["artifact"] = path
        failures.append(entry)
    return {"seeds_run": ran, "failures": failures,
            "ok": not failures}
