"""Online invariant oracles over the observability event stream.

Each oracle consumes the run's :class:`~repro.obs.events.ObsEvent` records
*as they are emitted* (via :class:`CheckingLog`) and records
:class:`OracleViolation` entries instead of raising, so one run can report
every broken invariant at once and the shrinker can compare verdicts.

The invariants come straight from Section 3 of the paper:

- **bounds** — ``r_min <= r_i <= r_max`` at every policy decision, plus the
  special-case gating: BSP may only start a round at ``r_min``, SSP(c) at
  most ``r_min + c`` ahead.
- **ledger** — every sent message is delivered exactly once, buffer depth
  and the staleness ``eta_i`` agree with the delivery/drain history, and at
  termination nothing is in flight (sent = received + in-flight, with the
  in-flight set empty).
- **wake gate** — a worker never begins IncEval without a policy decision
  that released it (action ``start``, or an earlier ``host_queued`` that
  the host-queue drain honoured), i.e. no wake while ``DS_i`` is unexpired.

The oracles assume the simulator's sequential event stream (one global
order, drains visible as ``round_start``).  The wall-clock runtimes emit
the same record types but interleave them per worker, so only
:class:`BoundsOracle` is meaningful there.

:class:`ContractionProbe` is different: monotone contraction (condition T2
— every IncEval moves status variables *down* the partial order) is not
observable from events, so it proxies the :class:`~repro.core.engine.
Engine` and compares fragment values before/after each IncEval with
``program.leq``.  Accumulative programs (PageRank's ship-and-reset deltas)
and the dense path are skipped, mirroring
:func:`repro.core.convergence.check_contracting`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import events as obs


@dataclass(frozen=True)
class OracleViolation:
    """One broken invariant, with enough context to replay and debug."""

    oracle: str
    message: str
    t: float = 0.0
    wid: int = -1

    def to_dict(self) -> Dict[str, Any]:
        return {"oracle": self.oracle, "message": self.message,
                "t": self.t, "wid": self.wid}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OracleViolation":
        return cls(**data)


class Oracle:
    """Base: consume events, accumulate violations (never raise)."""

    name = "oracle"
    #: stop recording after this many violations (a broken run floods)
    max_violations = 20

    def __init__(self) -> None:
        self.violations: List[OracleViolation] = []

    def violate(self, message: str, t: float = 0.0, wid: int = -1) -> None:
        if len(self.violations) < self.max_violations:
            self.violations.append(
                OracleViolation(oracle=self.name, message=message,
                                t=t, wid=wid))

    def on_event(self, event: obs.ObsEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def finish(self) -> None:
        """End-of-run checks (termination-time invariants)."""


class BoundsOracle(Oracle):
    """``r_min <= r_i <= r_max`` plus BSP/SSP start-gating and span.

    The span check uses ``c + 1``, not ``c``: the repo's round counters
    mean *rounds completed*, so a worker allowed to start at ``r_min + c``
    legitimately reads ``r_min + c + 1`` the moment it finishes.  The span
    check is also disabled for the rest of the run once a worker re-enters
    the pending set below the frontier (an inactive worker that receives a
    late message resumes at its old round, which lowers ``r_min``
    arbitrarily without any worker ever *starting* too far ahead — the
    gating check still covers the actual staleness semantics).
    """

    name = "bounds"

    def __init__(self, mode: str = "AAP",
                 staleness_bound: Optional[int] = None) -> None:
        super().__init__()
        self.mode = mode.upper()
        self.c = staleness_bound
        self._last_rmin: Optional[int] = None
        self._span_valid = True

    def _span_limit(self) -> Optional[int]:
        if self.mode == "BSP":
            return 1
        if self.mode == "SSP" and self.c is not None:
            return self.c + 1
        return None

    def _start_limit(self, rmin: int) -> Optional[int]:
        if self.mode == "BSP":
            return rmin
        if self.mode == "SSP" and self.c is not None:
            return rmin + self.c
        return None

    def on_event(self, event: obs.ObsEvent) -> None:
        if event.type == obs.STATUS_CHANGE:
            p = event.payload
            if (p.get("frm") == "inactive" and p.get("to") == "waiting"
                    and self._last_rmin is not None
                    and event.round < self._last_rmin):
                # late re-entry below the frontier: span is no longer a
                # sound invariant for this run (see class docstring)
                self._span_valid = False
            return
        if event.type != obs.DS_DECISION:
            return
        p = event.payload
        rmin, rmax = p["rmin"], p["rmax"]
        self._last_rmin = rmin
        if not rmin <= event.round <= rmax:
            self.violate(
                f"worker round {event.round} outside "
                f"[rmin={rmin}, rmax={rmax}]", event.t, event.wid)
        span = self._span_limit()
        if (span is not None and self._span_valid
                and rmax - rmin > span):
            self.violate(
                f"{self.mode} span rmax-rmin = {rmax - rmin} exceeds "
                f"{span}", event.t, event.wid)
        limit = self._start_limit(rmin)
        if (limit is not None and p["action"] == "start"
                and event.round > limit):
            self.violate(
                f"{self.mode} started round {event.round} > allowed "
                f"{limit} (rmin={rmin}, c={self.c})", event.t, event.wid)


class LedgerOracle(Oracle):
    """Message conservation: sent = received + in-flight, depth = eta.

    Tracks every designated message by its ``seq``; cross-checks the
    receiver-side buffer depth reported at delivery, the batch count
    drained at each IncEval start, and the staleness ``eta`` the policy
    saw.  :meth:`finish` asserts the termination ledger: nothing in
    flight, every send matched by exactly one delivery.
    """

    name = "ledger"

    def __init__(self) -> None:
        super().__init__()
        #: seq -> (src, dst) of sends not yet delivered
        self._in_flight: Dict[int, Tuple[int, int]] = {}
        self.sent = 0
        self.delivered = 0
        #: per-receiver batches delivered but not yet drained
        self._undrained: Dict[int, int] = {}

    def on_event(self, event: obs.ObsEvent) -> None:
        p = event.payload
        if event.type == obs.MSG_SEND:
            seq = p["seq"]
            if seq in self._in_flight:
                self.violate(f"duplicate send of seq {seq}",
                             event.t, event.wid)
            self._in_flight[seq] = (event.wid, p["dst"])
            self.sent += 1
        elif event.type == obs.MSG_DELIVER:
            seq = p["seq"]
            route = self._in_flight.pop(seq, None)
            if route is None:
                self.violate(
                    f"delivery of seq {seq} never sent (or delivered "
                    f"twice)", event.t, event.wid)
            elif route != (p["src"], event.wid):
                self.violate(
                    f"seq {seq} sent {route[0]}->{route[1]} but "
                    f"delivered {p['src']}->{event.wid}",
                    event.t, event.wid)
            self.delivered += 1
            depth = self._undrained.get(event.wid, 0) + 1
            self._undrained[event.wid] = depth
            if p["depth"] != depth:
                self.violate(
                    f"buffer depth {p['depth']} != ledger depth {depth}",
                    event.t, event.wid)
        elif event.type == obs.ROUND_START:
            if p["kind"] != "inceval":
                return
            expect = self._undrained.get(event.wid, 0)
            if p["batches"] != expect:
                self.violate(
                    f"IncEval drained {p['batches']} batches, ledger "
                    f"says {expect} were buffered", event.t, event.wid)
            self._undrained[event.wid] = 0
        elif event.type == obs.DS_DECISION:
            eta = p["eta"]
            expect = self._undrained.get(event.wid, 0)
            if eta != expect:
                self.violate(
                    f"policy saw eta={eta}, ledger says {expect} "
                    f"batches buffered", event.t, event.wid)

    def finish(self) -> None:
        if self._in_flight:
            sample = sorted(self._in_flight)[:5]
            self.violate(
                f"{len(self._in_flight)} messages still in flight at "
                f"termination (seqs {sample})")
        if self.sent != self.delivered:
            self.violate(
                f"termination ledger: sent {self.sent} != delivered "
                f"{self.delivered}")


class WakeGateOracle(Oracle):
    """No IncEval starts while the worker's ``DS_i`` is unexpired.

    Every IncEval ``round_start`` must be justified by the worker's most
    recent policy decision: either ``start`` (the decision released it at
    that instant) or ``host_queued`` (it was released but its physical
    host was busy; the host-queue drain may start it later *without* a
    fresh decision — the sticky case).  A ``suspend`` or pending
    ``wake_scheduled`` as the latest decision means the runtime ran a
    worker the policy had parked.

    Also cross-checks decision self-consistency: ``start``/``host_queued``
    require ``ds ~ 0``, ``suspend`` requires ``ds = inf``,
    ``wake_scheduled`` a finite positive ``ds``.
    """

    name = "wake_gate"
    _EPS = 1e-9

    def __init__(self) -> None:
        super().__init__()
        #: wid -> (action, ds, t) of the latest decision
        self._last: Dict[int, Tuple[str, float, float]] = {}

    def on_event(self, event: obs.ObsEvent) -> None:
        p = event.payload
        if event.type == obs.DS_DECISION:
            action, ds = p["action"], p["ds"]
            if action in ("start", "host_queued"):
                if ds > self._EPS:
                    self.violate(
                        f"action {action} with non-zero ds={ds}",
                        event.t, event.wid)
            elif action == "suspend":
                if not math.isinf(ds):
                    self.violate(
                        f"suspend with finite ds={ds}", event.t, event.wid)
            elif action == "wake_scheduled":
                if not (self._EPS < ds < math.inf):
                    self.violate(
                        f"wake_scheduled with ds={ds}", event.t, event.wid)
            else:
                self.violate(f"unknown ds action {action!r}",
                             event.t, event.wid)
            self._last[event.wid] = (action, ds, event.t)
        elif event.type == obs.ROUND_START and p["kind"] == "inceval":
            last = self._last.get(event.wid)
            if last is None:
                self.violate(
                    "IncEval started with no policy decision on record",
                    event.t, event.wid)
                return
            action, ds, t0 = last
            if action not in ("start", "host_queued"):
                self.violate(
                    f"IncEval started but latest decision was {action} "
                    f"(ds={ds} at t={t0:.6g})", event.t, event.wid)
            # a release is consumed by the start it authorised; the next
            # round needs a fresh decision (or a fresh host_queued)
            self._last.pop(event.wid, None)


class OracleSuite:
    """All event oracles behind one dispatch point."""

    def __init__(self, oracles: List[Oracle]):
        self.oracles = oracles
        #: violations found by non-event probes (contraction) join here
        self.extra: List[OracleViolation] = []
        self._finished = False

    @classmethod
    def for_run(cls, mode: str = "AAP",
                staleness_bound: Optional[int] = None) -> "OracleSuite":
        return cls([BoundsOracle(mode, staleness_bound), LedgerOracle(),
                    WakeGateOracle()])

    def on_event(self, event: obs.ObsEvent) -> None:
        for oracle in self.oracles:
            oracle.on_event(event)

    def finish(self) -> None:
        if not self._finished:
            self._finished = True
            for oracle in self.oracles:
                oracle.finish()

    @property
    def violations(self) -> List[OracleViolation]:
        out: List[OracleViolation] = []
        for oracle in self.oracles:
            out.extend(oracle.violations)
        out.extend(self.extra)
        return out

    @property
    def ok(self) -> bool:
        return not self.violations


class CheckingLog(obs.EventLog):
    """An :class:`~repro.obs.events.EventLog` that feeds a suite online.

    Drop-in for ``Observer.log``: runtimes emit as usual, every record is
    both stored and pushed through the oracle suite, so invariants are
    checked *during* the run at the exact global order the simulator saw.
    """

    def __init__(self, suite: OracleSuite):
        super().__init__()
        self.suite = suite

    def emit(self, type: str, t: float, wid: int = -1,
             round: int = -1, **payload: Any) -> None:
        event = obs.ObsEvent(type=type, t=t, wid=wid, round=round,
                             payload=payload)
        self.append(event)
        self.suite.on_event(event)


class ContractionProbe:
    """Engine proxy asserting T2 monotone contraction per IncEval.

    Wraps an :class:`~repro.core.engine.Engine`; after every IncEval it
    requires each changed status variable to satisfy
    ``leq(new, old)`` — the update moved the value *toward* the fixpoint.
    Disabled (pure pass-through) for accumulative aggregators, whose
    ship-and-reset deltas are not monotone in the value order, and for the
    dense path, whose contexts are arrays, mirroring
    :func:`repro.core.convergence.check_contracting`.
    """

    def __init__(self, engine: Any, suite: OracleSuite):
        self._engine = engine
        self._suite = suite
        self.enabled = (not engine.vectorized
                        and not engine.program.aggregator.accumulative)
        self._reported = 0

    def __getattr__(self, name: str) -> Any:
        return getattr(self._engine, name)

    def run_inceval(self, wid: int, batches, round_no: int):
        if not self.enabled:
            return self._engine.run_inceval(wid, batches, round_no)
        ctx = self._engine.contexts[wid]
        before = dict(ctx.values)
        out = self._engine.run_inceval(wid, batches, round_no)
        program = self._engine.program
        for v, new in ctx.values.items():
            old = before.get(v)
            if old is None or new == old:
                continue
            if not program.leq(new, old) and self._reported < 20:
                self._reported += 1
                self._suite.extra.append(OracleViolation(
                    oracle="contraction",
                    message=(f"IncEval round {round_no} moved node {v!r} "
                             f"from {old!r} to {new!r}, which is not "
                             f"leq-advanced (condition T2 violated)"),
                    wid=wid))
        return out
