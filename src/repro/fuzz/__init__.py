"""Schedule fuzzing + differential conformance (``repro fuzz``).

Theorem 2 of the paper promises that *any* AAP schedule converges to the
same answer.  This package stress-tests the reproduction against that
promise from three angles:

- :mod:`repro.fuzz.perturb` — a seeded :class:`SchedulePerturber` that
  biases the simulator's event ordering (tie-break shuffling, per-edge
  latency profiles, straggler/burst phases, forced policy
  re-evaluations) without touching any scheduling logic;
- :mod:`repro.fuzz.oracles` — online invariants over the obs event
  stream (round bounds, message ledger, wake gating) plus the
  :class:`ContractionProbe` engine proxy for condition T2;
- :mod:`repro.fuzz.differential` — one workload across
  modes x runtimes x paths, every assembled answer checked against the
  sequential fixpoint;
- :mod:`repro.fuzz.shrink` — greedy minimization of failing cases into
  replayable JSON artifacts (``repro fuzz --replay``).

See ``docs/conformance.md`` for the full story.
"""

from repro.fuzz.differential import (DiffCell, DiffReport, format_report,
                                     run_differential)
from repro.fuzz.driver import (FUZZ_ALGORITHMS, CaseResult, FuzzCase,
                               build_graph, case_from_seed, run_case)
from repro.fuzz.oracles import (BoundsOracle, CheckingLog, ContractionProbe,
                                LedgerOracle, OracleSuite, OracleViolation,
                                WakeGateOracle)
from repro.fuzz.perturb import PerturberConfig, SchedulePerturber
from repro.fuzz.shrink import (ShrinkResult, fuzz_loop, load_artifact,
                               replay_artifact, save_artifact, shrink)

__all__ = [
    "SchedulePerturber", "PerturberConfig",
    "OracleSuite", "OracleViolation", "BoundsOracle", "LedgerOracle",
    "WakeGateOracle", "ContractionProbe", "CheckingLog",
    "DiffCell", "DiffReport", "run_differential", "format_report",
    "FuzzCase", "CaseResult", "case_from_seed", "run_case", "build_graph",
    "FUZZ_ALGORITHMS",
    "shrink", "ShrinkResult", "save_artifact", "load_artifact",
    "replay_artifact", "fuzz_loop",
]
