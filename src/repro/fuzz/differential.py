"""Differential conformance: one workload across the whole grid.

Theorem 2 (Church-Rosser) says every run of a well-formed PIE program —
under any of the five parallel models, on any runtime, through either
execution path — assembles the same answer.  :func:`run_differential`
turns that into an executable check: it runs one (algorithm, graph,
partition) across ``modes x runtimes x paths`` and compares every
assembled answer against a sequential-fixpoint reference.

Comparison reuses the kernel bench's tolerance machinery
(:func:`repro.bench.kernels._make_workload` /
:func:`~repro.bench.kernels._answers_match`): SSSP and CC must match
exactly, accumulative PageRank within the shipping-threshold residual.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench.kernels import (ALGORITHMS, RUNTIMES, _answers_match,
                                 _make_workload, _run_once)
from repro.core.engine import Engine
from repro.core.fixpoint import run_sequential_fixpoint
from repro.core.modes import MODES
from repro.graph.graph import Graph
from repro.partition.edge_cut import HashPartitioner
from repro.partition.fragment import PartitionedGraph

#: generic first: its cell failing makes the vectorized diff easier to read
PATHS = (False, True)


@dataclass
class DiffCell:
    """One grid cell's verdict."""

    algorithm: str
    mode: str
    runtime: str
    vectorized: bool
    match: bool
    max_diff: float = 0.0
    error: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"algorithm": self.algorithm, "mode": self.mode,
                "runtime": self.runtime, "vectorized": self.vectorized,
                "match": self.match, "max_diff": self.max_diff,
                "error": self.error}

    @property
    def label(self) -> str:
        path = "vectorized" if self.vectorized else "generic"
        return f"{self.algorithm}/{self.mode}/{self.runtime}/{path}"


@dataclass
class DiffReport:
    """All cells of one differential sweep."""

    cells: List[DiffCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.match for c in self.cells)

    @property
    def failures(self) -> List[DiffCell]:
        return [c for c in self.cells if not c.match]

    def to_dict(self) -> Dict[str, Any]:
        return {"ok": self.ok,
                "cells": [c.to_dict() for c in self.cells]}


def reference_answer(program_cls, pg: PartitionedGraph, query: Any) -> Any:
    """The sequential-fixpoint answer every grid cell must reproduce."""
    return run_sequential_fixpoint(Engine(program_cls(), pg, query))


def run_differential(graph: Graph, *,
                     pg: Optional[PartitionedGraph] = None,
                     fragments: int = 4,
                     algorithms: Sequence[str] = ALGORITHMS,
                     modes: Sequence[str] = MODES,
                     runtimes: Sequence[str] = RUNTIMES,
                     paths: Sequence[bool] = PATHS,
                     timeout: float = 120.0,
                     progress=None) -> DiffReport:
    """Sweep the conformance grid; every cell vs the sequential reference.

    A cell that raises is recorded as a non-match with the exception text
    (a crash is a conformance failure too — the shrinker minimizes those
    the same way).  ``progress`` (optional callable) gets one line per
    finished cell.
    """
    if pg is None:
        pg = HashPartitioner().partition(graph, fragments)
    report = DiffReport()
    for algorithm in algorithms:
        program_cls, query, tolerance = _make_workload(algorithm, graph)
        reference = reference_answer(program_cls, pg, query)
        for mode in modes:
            for runtime in runtimes:
                for vectorized in paths:
                    cell = _run_cell(algorithm, program_cls, pg, query,
                                     tolerance, reference, mode, runtime,
                                     vectorized, timeout)
                    report.cells.append(cell)
                    if progress is not None:
                        verdict = ("ok" if cell.match else
                                   f"MISMATCH ({cell.error or cell.max_diff})")
                        progress(f"{cell.label}: {verdict}")
    return report


def _run_cell(algorithm: str, program_cls, pg: PartitionedGraph, query: Any,
              tolerance: float, reference: Any, mode: str, runtime: str,
              vectorized: bool, timeout: float) -> DiffCell:
    try:
        _, answer = _run_once(runtime, program_cls, pg, query, mode,
                              vectorized, timeout)
    except Exception as exc:
        return DiffCell(algorithm=algorithm, mode=mode, runtime=runtime,
                        vectorized=vectorized, match=False,
                        max_diff=float("inf"),
                        error=f"{type(exc).__name__}: {exc}")
    ok, worst = _answers_match(reference, answer, tolerance)
    return DiffCell(algorithm=algorithm, mode=mode, runtime=runtime,
                    vectorized=vectorized, match=ok, max_diff=worst)


def format_report(report: DiffReport) -> str:
    """Human-readable summary; failures first."""
    lines = []
    for cell in report.failures:
        detail = cell.error or f"max_diff={cell.max_diff}"
        lines.append(f"MISMATCH {cell.label}: {detail}")
    lines.append(f"{len(report.cells) - len(report.failures)}/"
                 f"{len(report.cells)} cells match")
    return "\n".join(lines)
