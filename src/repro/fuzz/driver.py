"""Seeded fuzz cases: generate, run, and judge one perturbed execution.

One :class:`FuzzCase` is the unit of fuzzing — a fully serializable
(algorithm, graph, partition, mode, perturbation) tuple derived from a
single seed.  :func:`run_case` executes it on the simulator with every
oracle attached and returns a :class:`CaseResult` verdict; the same seed
always produces the same schedule and the same verdict, which is what
makes failures replayable and shrinkable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.algorithms import ReachabilityProgram, ReachQuery
from repro.bench.kernels import _answers_match, _make_workload
from repro.core.engine import Engine
from repro.core.fixpoint import run_sequential_fixpoint
from repro.core.modes import MODES, make_policy
from repro.errors import ReproError
from repro.fuzz.oracles import (CheckingLog, ContractionProbe, OracleSuite,
                                OracleViolation)
from repro.fuzz.perturb import PerturberConfig, SchedulePerturber
from repro.graph import generators
from repro.graph.graph import Graph
from repro.obs import Observer
from repro.partition.edge_cut import HashPartitioner
from repro.runtime.simulator import SimulatedRuntime

#: algorithms the fuzzer draws from: the monotone T2/T3 trio plus the
#: accumulative one (contraction probe auto-skips PageRank)
FUZZ_ALGORITHMS = ("sssp", "cc", "reachability", "pagerank")
GRAPH_KINDS = ("erdos_renyi", "grid2d", "powerlaw", "path")


@dataclass
class FuzzCase:
    """One fully serializable fuzz input."""

    seed: int
    algorithm: str = "sssp"
    graph_kind: str = "erdos_renyi"
    graph_params: Dict[str, Any] = field(default_factory=dict)
    fragments: int = 4
    mode: str = "AAP"
    staleness_bound: Optional[int] = None
    perturb: Dict[str, Any] = field(
        default_factory=lambda: PerturberConfig().to_dict())

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "algorithm": self.algorithm,
                "graph_kind": self.graph_kind,
                "graph_params": dict(self.graph_params),
                "fragments": self.fragments, "mode": self.mode,
                "staleness_bound": self.staleness_bound,
                "perturb": dict(self.perturb)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzCase":
        return cls(**data)

    @property
    def label(self) -> str:
        return (f"seed={self.seed} {self.algorithm}/{self.mode} "
                f"{self.graph_kind}{self.graph_params} "
                f"x{self.fragments}")


@dataclass
class CaseResult:
    """The verdict of one executed case."""

    case: FuzzCase
    violations: List[OracleViolation] = field(default_factory=list)
    #: (event-stream signature) — equal for equal seeds; the determinism
    #: tests and the shrinker's reproduction check compare these
    signature: Tuple = ()
    answer: Any = None
    max_diff: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return "ok"
        kinds = sorted({v.oracle for v in self.violations})
        return f"{len(self.violations)} violations ({', '.join(kinds)})"


def case_from_seed(seed: int, smoke: bool = False) -> FuzzCase:
    """Derive one randomized-but-deterministic case from a seed.

    ``smoke`` shrinks graph sizes for CI (a few dozen nodes instead of up
    to a few hundred) without changing any other draw.
    """
    rng = random.Random(("fuzz-case", seed).__repr__())
    algorithm = rng.choice(FUZZ_ALGORITHMS)
    kind = rng.choice(GRAPH_KINDS)
    # one uniform draw scaled to the size band, so ``smoke`` changes the
    # graph size and nothing else (every other draw sees the same stream)
    lo, hi = (8, 24) if smoke else (16, 96)
    n = lo + int(rng.random() * (hi - lo))
    gseed = rng.randrange(1 << 16)
    if kind == "erdos_renyi":
        params = {"n": n, "p": min(4.0 / max(n - 1, 1), 1.0),
                  "seed": gseed}
    elif kind == "grid2d":
        side = max(int(n ** 0.5), 2)
        params = {"rows": side, "cols": side, "seed": gseed}
    elif kind == "powerlaw":
        params = {"n": max(n, 5), "m": 2, "seed": gseed}
    else:
        params = {"n": n}
    mode = rng.choice(MODES)
    return FuzzCase(
        seed=seed, algorithm=algorithm, graph_kind=kind,
        graph_params=params, fragments=rng.randrange(2, 6), mode=mode,
        staleness_bound=rng.randrange(0, 3) if mode == "SSP" else None,
        perturb=PerturberConfig.from_seed(seed).to_dict())


def build_graph(case: FuzzCase) -> Graph:
    if case.graph_kind not in GRAPH_KINDS:
        raise ReproError(f"unknown fuzz graph kind {case.graph_kind!r}")
    if case.graph_kind == "path":
        return generators.path_graph(**case.graph_params)
    return getattr(generators, case.graph_kind)(**case.graph_params)


def _workload(case: FuzzCase, graph: Graph):
    """(program_cls, query, tolerance) for the case's algorithm."""
    if case.algorithm == "reachability":
        source = next(iter(graph.nodes))
        return ReachabilityProgram, ReachQuery(source=source), 0.0
    return _make_workload(case.algorithm, graph)


def run_case(case: FuzzCase, program_cls: Any = None) -> CaseResult:
    """Execute one case under full instrumentation and judge it.

    ``program_cls`` overrides the algorithm's program class — the
    injected-bug tests pass a deliberately broken subclass here while
    keeping the query/tolerance of the named algorithm.
    """
    graph = build_graph(case)
    pg = HashPartitioner().partition(graph, case.fragments)
    default_cls, query, tolerance = _workload(case, graph)
    cls = program_cls if program_cls is not None else default_cls
    suite = OracleSuite.for_run(case.mode, case.staleness_bound)
    observer = Observer(log=CheckingLog(suite))
    policy = make_policy(case.mode, staleness_bound=case.staleness_bound)
    engine = ContractionProbe(Engine(cls(), pg, query), suite)
    perturber = SchedulePerturber(PerturberConfig.from_dict(case.perturb))
    runtime = SimulatedRuntime(engine, policy, observer=observer,
                               perturber=perturber, record_trace=False)
    answer = None
    max_diff = 0.0
    try:
        answer = runtime.run().answer
    except Exception as exc:
        suite.extra.append(OracleViolation(
            oracle="crash", message=f"{type(exc).__name__}: {exc}"))
    suite.finish()
    if answer is not None:
        reference = run_sequential_fixpoint(Engine(cls(), pg, query))
        ok, max_diff = _answers_match(reference, answer, tolerance)
        if not ok:
            suite.extra.append(OracleViolation(
                oracle="differential",
                message=(f"assembled answer diverged from the sequential "
                         f"fixpoint (max diff {max_diff})")))
    signature = tuple((e.type, round(e.t, 9), e.wid, e.round)
                      for e in observer.log)
    return CaseResult(case=case, violations=suite.violations,
                      signature=signature, answer=answer,
                      max_diff=max_diff)
