"""Seeded schedule perturbation for the simulated runtime.

Theorem 2 promises that *every* AAP schedule converges to the same answer;
the :class:`SchedulePerturber` exists to make "every" mean something.  From
a single seed it biases the simulator's event ordering through four
orthogonal features, none of which touches scheduling logic:

- **tie-break shuffling** — simultaneous events fire in a seeded-random
  order instead of insertion order (the delayed-async literature shows
  same-timestamp resolution alone flips schedules);
- **per-edge latency profiles** — each ``(src, dst)`` fragment pair gets a
  stable latency multiplier, so some channels are consistently slow;
- **straggler/burst phases** — time is cut into windows; in a straggler
  window one chosen worker's rounds stretch, in a burst window deliveries
  to a chosen worker are held to the window edge and land together;
- **forced policy re-evaluations** — spurious ``Custom`` "poke" events make
  the runtime re-consult the delay policy at arbitrary times (a correct
  policy/runtime pair must treat re-evaluation as idempotent).

All randomness comes from per-feature ``random.Random`` children of the one
seed, so disabling a feature (the shrinker does this) never perturbs the
draws of the others, and the same config always yields the same schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, asdict
from typing import Any, Dict, Tuple

#: phase kinds a window can take (weights drawn per window)
_PHASES = ("normal", "straggler", "burst")


@dataclass(frozen=True)
class PerturberConfig:
    """Serializable knobs of one perturbation profile.

    The shrinker flips the booleans off one at a time; the JSON replay
    artifact stores the whole config via :meth:`to_dict`.
    """

    seed: int = 0
    #: shuffle the ordering of simultaneous events
    tie_shuffle: bool = True
    #: stable per-(src, dst) latency multipliers in [1, latency_stretch]
    latency_profile: bool = True
    latency_stretch: float = 8.0
    #: alternate straggler/burst phases over simulated time
    phases: bool = True
    phase_length: float = 4.0
    straggler_factor: float = 6.0
    #: schedule spurious policy re-evaluations
    pokes: bool = True
    poke_probability: float = 0.25

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PerturberConfig":
        return cls(**data)

    @classmethod
    def from_seed(cls, seed: int) -> "PerturberConfig":
        """A randomized profile: each feature on/off plus drawn magnitudes."""
        rng = random.Random(("perturb-profile", seed).__repr__())
        return cls(
            seed=seed,
            tie_shuffle=rng.random() < 0.9,
            latency_profile=rng.random() < 0.8,
            latency_stretch=rng.uniform(1.5, 16.0),
            phases=rng.random() < 0.7,
            phase_length=rng.uniform(1.0, 10.0),
            straggler_factor=rng.uniform(2.0, 12.0),
            pokes=rng.random() < 0.6,
            poke_probability=rng.uniform(0.05, 0.5),
        )


class SchedulePerturber:
    """Biases one simulated run's schedule from a :class:`PerturberConfig`.

    The simulator calls three hooks (:meth:`round_duration`,
    :meth:`deliver_time`, :meth:`poke_times`) plus :meth:`tiebreak` from its
    event queue; each draws from its own seeded stream, so the whole
    schedule is a pure function of (config, program, graph, partition).
    """

    def __init__(self, config: PerturberConfig):
        self.config = config
        seed = config.seed
        self._tie_rng = random.Random(("tie", seed).__repr__())
        self._phase_rng_seed = ("phase", seed).__repr__()
        self._poke_rng = random.Random(("poke", seed).__repr__())
        self._edge_mult: Dict[Tuple[int, int], float] = {}
        self._phase_cache: Dict[int, Tuple[str, int]] = {}

    # -- event-queue hook ----------------------------------------------
    def tiebreak(self) -> float:
        """Secondary sort key for simultaneous events."""
        if not self.config.tie_shuffle:
            return 0.0
        return self._tie_rng.random()

    # -- per-edge latency profile --------------------------------------
    def _edge_multiplier(self, src: int, dst: int) -> float:
        key = (src, dst)
        mult = self._edge_mult.get(key)
        if mult is None:
            # stable per-edge draw, independent of call order
            rng = random.Random(("edge", self.config.seed, src, dst)
                                .__repr__())
            mult = rng.uniform(1.0, max(self.config.latency_stretch, 1.0))
            self._edge_mult[key] = mult
        return mult

    # -- phase schedule ------------------------------------------------
    def _phase(self, now: float) -> Tuple[str, int]:
        """(kind, victim worker) of the phase window containing ``now``."""
        if not self.config.phases or self.config.phase_length <= 0:
            return "normal", -1
        idx = int(now / self.config.phase_length)
        cached = self._phase_cache.get(idx)
        if cached is None:
            rng = random.Random((self._phase_rng_seed, idx).__repr__())
            kind = rng.choices(_PHASES, weights=(2, 1, 1))[0]
            cached = (kind, rng.randrange(1 << 16))
            self._phase_cache[idx] = cached
        return cached

    def _phase_end(self, now: float) -> float:
        idx = int(now / self.config.phase_length)
        return (idx + 1) * self.config.phase_length

    # -- simulator hooks -----------------------------------------------
    def round_duration(self, wid: int, duration: float,
                       now: float) -> float:
        """Stretch a round that runs inside a straggler phase."""
        kind, victim = self._phase(now)
        if kind == "straggler" and victim % self._num_workers_hint(wid) \
                == wid % self._num_workers_hint(wid):
            return duration * max(self.config.straggler_factor, 1.0)
        return duration

    def deliver_time(self, msg: Any, arrival: float, now: float) -> float:
        """Apply the edge profile, then any burst hold on the receiver."""
        out = arrival
        if self.config.latency_profile:
            out = now + (arrival - now) * self._edge_multiplier(msg.src,
                                                                msg.dst)
        kind, victim = self._phase(now)
        if kind == "burst" and victim % self._num_workers_hint(msg.dst) \
                == msg.dst % self._num_workers_hint(msg.dst):
            # hold the message to the window edge: it lands in a burst
            # together with everything else addressed to this worker
            out = max(out, self._phase_end(now))
        return max(out, now)

    def poke_times(self, wid: int, now: float, duration: float):
        """Times at which to force a spurious policy re-evaluation."""
        if not self.config.pokes:
            return ()
        if self._poke_rng.random() >= self.config.poke_probability:
            return ()
        return (now + self._poke_rng.uniform(0.0, max(duration, 1e-6)),)

    # ------------------------------------------------------------------
    _num_workers = 0

    def _num_workers_hint(self, wid: int) -> int:
        # victims are drawn as raw integers so the phase table does not
        # depend on fleet size; fold them onto the fleet lazily (any
        # worker id seen tells us at least wid+1 workers exist)
        if wid >= self._num_workers:
            self._num_workers = wid + 1
        return max(self._num_workers, 1)

    def __repr__(self) -> str:
        on = [name for name in ("tie_shuffle", "latency_profile", "phases",
                                "pokes") if getattr(self.config, name)]
        return (f"SchedulePerturber(seed={self.config.seed}, "
                f"features={'+'.join(on) or 'none'})")
