"""System profiles for the cross-system comparison (Table 1).

Each profile parameterises the vertex-centric engine with per-unit cost
constants representing one of the paper's competitor systems.  The
*structural* behaviour (superstep counts, message counts, activations) is
computed exactly by the engine; the constants encode well-documented
implementation differences and only set the scale:

============== ======================================================
Giraph         JVM vertex-centric BSP; highest per-object overheads and
               uncombined messages by default (the paper measures 767 GB
               shipped for PageRank vs GraphLab's 138 GB).
GraphLab sync  C++ sync engine (chromatic); efficient but vertex-centric.
GraphLab async C++ async engine; lock contention makes it *slower* than
               sync for PageRank (paper: 200s vs 99.5s) and chattier.
GiraphUC       Barrierless async Pregel (BAP); fewer barriers, JVM costs.
Maiter         Delta-based accumulative async; efficient messages.
PowerSwitch    Hsync GraphLab fork; closest to GRAPE+.
============== ======================================================

GRAPE+ itself is *not* a profile: it runs the real PIE programs on the real
AAP engine; :func:`table1_grape_plus` wraps that run for the bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.baselines.vertex_centric import (BellmanFordSSSP, HashMinCC,
                                            IterativePageRank,
                                            SuperstepVertexEngine, VCResult)
from repro.errors import RuntimeConfigError
from repro.graph.graph import Graph, Node


@dataclass(frozen=True)
class SystemProfile:
    """Cost constants of one competitor system."""

    name: str
    per_vertex_cost: float
    per_message_cost: float
    superstep_overhead: float
    barrier_cost: float
    bytes_per_message: int
    async_mode: bool = False
    async_factor: float = 1.0
    use_combiner: bool = True

    def engine(self, graph: Graph, num_workers: int,
               speed: Optional[Dict[int, float]] = None
               ) -> SuperstepVertexEngine:
        return SuperstepVertexEngine(
            graph, num_workers,
            per_vertex_cost=self.per_vertex_cost,
            per_message_cost=self.per_message_cost,
            superstep_overhead=self.superstep_overhead,
            barrier_cost=self.barrier_cost,
            bytes_per_message=self.bytes_per_message,
            speed=speed, async_mode=self.async_mode,
            async_factor=self.async_factor,
            use_combiner=self.use_combiner)


#: the paper's competitor systems (Table 1 rows, minus GRAPE+)
PROFILES: Dict[str, SystemProfile] = {
    "Giraph": SystemProfile(
        name="Giraph", per_vertex_cost=0.05, per_message_cost=0.02,
        superstep_overhead=4.0, barrier_cost=4.0, bytes_per_message=64,
        use_combiner=False),
    "GraphLab-sync": SystemProfile(
        name="GraphLab-sync", per_vertex_cost=0.012, per_message_cost=0.004,
        superstep_overhead=1.0, barrier_cost=1.0, bytes_per_message=24),
    "GraphLab-async": SystemProfile(
        name="GraphLab-async", per_vertex_cost=0.012, per_message_cost=0.004,
        superstep_overhead=1.0, barrier_cost=0.0, bytes_per_message=24,
        async_mode=True, async_factor=2.2),
    "GiraphUC": SystemProfile(
        name="GiraphUC", per_vertex_cost=0.05, per_message_cost=0.015,
        superstep_overhead=4.0, barrier_cost=0.5, bytes_per_message=48,
        async_mode=True, async_factor=1.4),
    "Maiter": SystemProfile(
        name="Maiter", per_vertex_cost=0.015, per_message_cost=0.004,
        superstep_overhead=0.5, barrier_cost=0.0, bytes_per_message=24,
        async_mode=True, async_factor=1.5),
    "PowerSwitch": SystemProfile(
        name="PowerSwitch", per_vertex_cost=0.011, per_message_cost=0.0035,
        superstep_overhead=1.0, barrier_cost=0.6, bytes_per_message=24),
}


def run_baseline(system: str, algorithm: str, graph: Graph,
                 num_workers: int, source: Node = None,
                 speed: Optional[Dict[int, float]] = None,
                 pagerank_iterations: int = 30) -> VCResult:
    """Run one competitor system profile on one algorithm."""
    if system not in PROFILES:
        raise RuntimeConfigError(
            f"unknown system {system!r}; known: {sorted(PROFILES)}")
    engine = PROFILES[system].engine(graph, num_workers, speed=speed)
    if algorithm == "sssp":
        prog = BellmanFordSSSP(source)
    elif algorithm == "cc":
        prog = HashMinCC()
    elif algorithm == "pagerank":
        prog = IterativePageRank(iterations=pagerank_iterations)
    else:
        raise RuntimeConfigError(f"unknown algorithm {algorithm!r}")
    return engine.run(prog, system=system)
