"""Cross-system baselines: vertex-centric and delta engines, profiles."""

from repro.baselines.maiter import (DeltaEngine, DeltaPageRank, DeltaProgram,
                                    DeltaResult, DeltaSSSP)
from repro.baselines.profiles import PROFILES, SystemProfile, run_baseline
from repro.baselines.vertex_centric import (BellmanFordSSSP, HashMinCC,
                                            IterativePageRank,
                                            SuperstepVertexEngine, VCResult,
                                            VertexCentricProgram)

__all__ = ["PROFILES", "SystemProfile", "run_baseline",
           "SuperstepVertexEngine", "VertexCentricProgram", "VCResult",
           "BellmanFordSSSP", "HashMinCC", "IterativePageRank",
           "DeltaEngine", "DeltaProgram", "DeltaPageRank", "DeltaSSSP",
           "DeltaResult"]
