"""Maiter-style delta-based accumulative engine with prioritized execution.

Maiter (Zhang et al., TPDS 2014) is the paper's closest asynchronous
competitor: vertex-centric, delta-accumulative ("accumulative iterative
computation"), with *prioritized* scheduling — each worker repeatedly picks
the vertices with the largest pending deltas.  The paper contrasts AAP with
it directly (related work, item 3).

:class:`DeltaEngine` implements the model generically over a
:class:`DeltaProgram` ``(⊕, g)`` pair: an accumulate operator and a
propagation function.  Two canonical programs are provided:

- :class:`DeltaPageRank` — ``⊕ = +``,  ``g(v, Δ) = d*Δ/N_v`` to successors;
- :class:`DeltaSSSP` — ``⊕ = min``, ``g(v, Δ) = Δ + w(v,u)`` to successors.

Scheduling is round-based per worker: each round the worker processes its
``batch_fraction`` highest-priority pending vertices (or all, FIFO-style,
with ``priority=False``), which is how Maiter's sampling-based priority
queues behave.  Cost accounting mirrors the vertex-centric engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.errors import RuntimeConfigError
from repro.graph.graph import Graph, Node


class DeltaProgram:
    """An accumulative iterative computation ``(⊕, g)``."""

    #: vertices with |pending - identity| below this are left unprocessed
    tolerance = 1e-9

    def initial_score(self, vid: Node, graph: Graph) -> float:
        raise NotImplementedError

    def initial_delta(self, vid: Node, graph: Graph) -> float:
        raise NotImplementedError

    def identity(self) -> float:
        """The neutral pending value (0 for +, +inf for min)."""
        raise NotImplementedError

    def accumulate(self, a: float, b: float) -> float:
        raise NotImplementedError

    def apply(self, score: float, delta: float) -> float:
        """Fold a processed delta into the score."""
        raise NotImplementedError

    def propagate(self, vid: Node, delta: float, graph: Graph
                  ) -> List[Tuple[Node, float]]:
        raise NotImplementedError

    def priority(self, vid: Node, score: float, delta: float) -> float:
        """Bigger = more urgent."""
        raise NotImplementedError

    def significant(self, score: float, delta: float) -> bool:
        """Whether processing ``delta`` would change the score materially."""
        raise NotImplementedError


class DeltaPageRank(DeltaProgram):
    """Accumulative PageRank: scores only grow, deltas are positive mass."""

    def __init__(self, damping: float = 0.85, tolerance: float = 1e-6):
        self.damping = damping
        self.tolerance = tolerance

    def initial_score(self, vid, graph):
        return 0.0

    def initial_delta(self, vid, graph):
        return 1.0 - self.damping

    def identity(self):
        return 0.0

    def accumulate(self, a, b):
        return a + b

    def apply(self, score, delta):
        return score + delta

    def propagate(self, vid, delta, graph):
        deg = graph.out_degree(vid)
        if deg == 0:
            return []
        share = self.damping * delta / deg
        return [(u, share) for u, _ in graph.out_edges(vid)]

    def priority(self, vid, score, delta):
        return delta

    def significant(self, score, delta):
        return delta > self.tolerance


class DeltaSSSP(DeltaProgram):
    """Accumulative SSSP: ``⊕ = min`` over candidate distances."""

    def __init__(self, source: Node):
        self.source = source

    def initial_score(self, vid, graph):
        # even the source starts "unsettled": its pending 0 is significant
        # against the inf score, which is what triggers the first round
        return math.inf

    def initial_delta(self, vid, graph):
        return 0.0 if vid == self.source else math.inf

    def identity(self):
        return math.inf

    def accumulate(self, a, b):
        return min(a, b)

    def apply(self, score, delta):
        return min(score, delta)

    def propagate(self, vid, delta, graph):
        return [(u, delta + w) for u, w in graph.out_edges(vid)]

    def priority(self, vid, score, delta):
        # smaller tentative distances first (Dijkstra-like priority)
        return -delta

    def significant(self, score, delta):
        return delta < score


@dataclass
class DeltaResult:
    """Outcome of a delta-engine run."""

    answer: Dict[Node, float]
    time: float
    rounds: int
    processed: int
    total_messages: int
    cross_messages: int


class DeltaEngine:
    """Asynchronous accumulative engine (Maiter)."""

    def __init__(self, graph: Graph, num_workers: int,
                 priority: bool = True, batch_fraction: float = 0.25,
                 per_update_cost: float = 0.015,
                 per_message_cost: float = 0.004,
                 round_overhead: float = 0.5,
                 speed: Optional[Dict[int, float]] = None,
                 max_rounds: int = 1_000_000):
        if num_workers < 1:
            raise RuntimeConfigError("num_workers must be >= 1")
        if not 0.0 < batch_fraction <= 1.0:
            raise RuntimeConfigError("batch_fraction must be in (0, 1]")
        self.graph = graph
        self.num_workers = num_workers
        self.priority = priority
        self.batch_fraction = batch_fraction
        self.per_update_cost = per_update_cost
        self.per_message_cost = per_message_cost
        self.round_overhead = round_overhead
        self.speed = speed or {}
        self.max_rounds = max_rounds
        self._owner = {v: hash(v) % num_workers for v in graph.nodes}

    def run(self, program: DeltaProgram) -> DeltaResult:
        g = self.graph
        score = {v: program.initial_score(v, g) for v in g.nodes}
        delta = {v: program.initial_delta(v, g) for v in g.nodes}
        ident = program.identity()
        owned: List[List[Node]] = [[] for _ in range(self.num_workers)]
        for v in g.nodes:
            owned[self._owner[v]].append(v)
        busy = [0.0] * self.num_workers
        rounds = 0
        processed = 0
        total_messages = 0
        cross_messages = 0

        active = True
        while active:
            rounds += 1
            if rounds > self.max_rounds:
                raise RuntimeConfigError("delta engine did not converge")
            active = False
            for wid in range(self.num_workers):
                candidates = [v for v in owned[wid]
                              if program.significant(score[v], delta[v])]
                if not candidates:
                    continue
                active = True
                if self.priority:
                    candidates.sort(
                        key=lambda v: program.priority(v, score[v],
                                                       delta[v]),
                        reverse=True)
                    take = max(1, int(len(candidates)
                                      * self.batch_fraction))
                    batch = candidates[:take]
                else:
                    batch = candidates
                cost = self.round_overhead
                for v in batch:
                    d = delta[v]
                    delta[v] = ident
                    score[v] = program.apply(score[v], d)
                    processed += 1
                    cost += self.per_update_cost
                    for target, out_delta in program.propagate(v, d, g):
                        delta[target] = program.accumulate(delta[target],
                                                           out_delta)
                        total_messages += 1
                        cost += self.per_message_cost
                        if self._owner[target] != wid:
                            cross_messages += 1
                busy[wid] += cost * self.speed.get(wid, 1.0)

        return DeltaResult(answer=score, time=max(busy), rounds=rounds,
                           processed=processed,
                           total_messages=total_messages,
                           cross_messages=cross_messages)
