"""Vertex-centric baseline engine (Pregel semantics) with cost accounting.

This standalone engine represents the *architectural class* of
Giraph/GraphLab-style systems in the cross-system comparison (Table 1):

- vertex-granularity programming: one ``compute()`` per active vertex per
  superstep, messages along edges — so SSSP is Bellman–Ford style relaxation
  (no fragment-level Dijkstra), CC is HashMin label propagation
  (O(diameter) supersteps), PageRank re-sends every vertex's score each
  iteration (no delta shipping);
- synchronous supersteps with a global barrier, or an asynchronous
  accounting mode for GraphLab-async/Maiter-like systems.

Timing uses the same abstract units as the simulator, scaled by a
:class:`~repro.baselines.profiles.SystemProfile`'s constants.  The
*structural* costs (message counts, superstep counts, total vertex
activations) are computed exactly; the constants only set each system's
per-unit overheads (DESIGN.md documents this substitution).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.errors import RuntimeConfigError
from repro.graph.graph import Graph, Node


@dataclass
class VCResult:
    """Outcome of one vertex-centric run."""

    answer: Dict[Node, Any]
    system: str
    time: float
    supersteps: int
    total_messages: int
    cross_messages: int
    comm_bytes: int
    vertex_activations: int


class VertexCentricProgram:
    """Interface for vertex programs run by :class:`SuperstepVertexEngine`."""

    def initial_value(self, vid: Node, graph: Graph) -> Any:
        raise NotImplementedError

    def compute(self, vid: Node, value: Any, messages: List[Any],
                graph: Graph, superstep: int
                ) -> Tuple[Any, List[Tuple[Node, Any]], bool]:
        """Return ``(new_value, outgoing (target, msg) list, halt)``."""
        raise NotImplementedError

    def combine(self, a: Any, b: Any) -> Optional[Any]:
        """Optional message combiner; ``None`` disables combining."""
        return None


class SuperstepVertexEngine:
    """Synchronous vertex-centric execution with per-system cost accounting.

    Parameters
    ----------
    graph: the input graph.
    num_workers: hash-partitioned worker count.
    per_vertex_cost / per_message_cost / superstep_overhead / barrier_cost:
        the profile's timing constants.
    speed: optional per-worker slowdown map (stragglers).
    async_mode:
        when True, time is accounted without barriers (per-worker total
        work on the critical path) and multiplied by ``async_factor`` to
        model locking/consistency overhead, as observed for GraphLab-async.
    use_combiner: whether the engine applies the program's combiner
        (Giraph's default configuration ships uncombined messages).
    """

    def __init__(self, graph: Graph, num_workers: int,
                 per_vertex_cost: float = 0.01,
                 per_message_cost: float = 0.002,
                 superstep_overhead: float = 1.0,
                 barrier_cost: float = 0.5,
                 bytes_per_message: int = 16,
                 speed: Optional[Dict[int, float]] = None,
                 async_mode: bool = False,
                 async_factor: float = 1.0,
                 use_combiner: bool = True,
                 max_supersteps: int = 100_000):
        if num_workers < 1:
            raise RuntimeConfigError("num_workers must be >= 1")
        self.graph = graph
        self.num_workers = num_workers
        self.per_vertex_cost = per_vertex_cost
        self.per_message_cost = per_message_cost
        self.superstep_overhead = superstep_overhead
        self.barrier_cost = barrier_cost
        self.bytes_per_message = bytes_per_message
        self.speed = speed or {}
        self.async_mode = async_mode
        self.async_factor = async_factor
        self.use_combiner = use_combiner
        self.max_supersteps = max_supersteps
        self._owner = {v: hash(v) % num_workers for v in graph.nodes}

    def _speed(self, wid: int) -> float:
        return self.speed.get(wid, 1.0)

    def run(self, program: VertexCentricProgram, system: str = "baseline"
            ) -> VCResult:
        g = self.graph
        values = {v: program.initial_value(v, g) for v in g.nodes}
        inbox: Dict[Node, List[Any]] = {v: [] for v in g.nodes}
        active = set(g.nodes)
        supersteps = 0
        total_messages = 0
        cross_messages = 0
        activations = 0
        time_sync = 0.0
        worker_busy = [0.0] * self.num_workers

        while active or any(inbox.values()):
            supersteps += 1
            if supersteps > self.max_supersteps:
                raise RuntimeConfigError(
                    f"{system}: exceeded {self.max_supersteps} supersteps")
            # cost accounting for this superstep
            per_worker_vertices = [0] * self.num_workers
            per_worker_msgs = [0] * self.num_workers
            next_inbox: Dict[Node, List[Any]] = {v: [] for v in g.nodes}
            next_active = set()
            for v in active | {u for u, msgs in inbox.items() if msgs}:
                wid = self._owner[v]
                msgs = inbox[v]
                per_worker_vertices[wid] += 1
                per_worker_msgs[wid] += len(msgs)
                activations += 1
                new_val, outgoing, halt = program.compute(
                    v, values[v], msgs, g, supersteps - 1)
                values[v] = new_val
                staged: Dict[Node, Any] = {}
                for target, msg in outgoing:
                    total_messages += 1
                    if self._owner[target] != wid:
                        cross_messages += 1
                    if self.use_combiner:
                        if target in staged:
                            combined = program.combine(staged[target], msg)
                            if combined is None:  # program has no combiner
                                next_inbox[target].append(staged[target])
                                next_active.add(target)
                                staged[target] = msg
                            else:
                                staged[target] = combined
                        else:
                            staged[target] = msg
                    else:
                        next_inbox[target].append(msg)
                        next_active.add(target)
                for target, msg in staged.items():
                    next_inbox[target].append(msg)
                    next_active.add(target)
                if not halt:
                    next_active.add(v)
            durations = []
            for wid in range(self.num_workers):
                cost = (self.superstep_overhead
                        + per_worker_vertices[wid] * self.per_vertex_cost
                        + per_worker_msgs[wid] * self.per_message_cost)
                cost *= self._speed(wid)
                worker_busy[wid] += cost
                durations.append(cost)
            time_sync += max(durations) + self.barrier_cost
            inbox = next_inbox
            active = next_active

        if self.async_mode:
            time = max(worker_busy) * self.async_factor
        else:
            time = time_sync
        return VCResult(
            answer=values, system=system, time=time, supersteps=supersteps,
            total_messages=total_messages, cross_messages=cross_messages,
            comm_bytes=cross_messages * self.bytes_per_message,
            vertex_activations=activations)


# ----------------------------------------------------------------------
# canonical vertex programs (the "default code" of those systems)
# ----------------------------------------------------------------------
class BellmanFordSSSP(VertexCentricProgram):
    """Vertex-centric SSSP: relax on message, no priority ordering."""

    def __init__(self, source: Node):
        self.source = source

    def initial_value(self, vid: Node, graph: Graph) -> float:
        return 0.0 if vid == self.source else math.inf

    def compute(self, vid, value, messages, graph, superstep):
        best = min([value] + messages) if messages else value
        outgoing = []
        if best < value or (superstep == 0 and vid == self.source):
            for u, w in graph.out_edges(vid):
                outgoing.append((u, best + w))
        return best, outgoing, True

    def combine(self, a, b):
        return min(a, b)


class HashMinCC(VertexCentricProgram):
    """Vertex-centric CC: propagate the minimum label (O(diameter) steps)."""

    def initial_value(self, vid: Node, graph: Graph) -> Node:
        return vid

    def compute(self, vid, value, messages, graph, superstep):
        best = min([value] + messages) if messages else value
        outgoing = []
        if best < value or superstep == 0:
            for u, _ in graph.out_edges(vid):
                outgoing.append((u, best))
            if graph.directed:
                for u, _ in graph.in_edges(vid):
                    outgoing.append((u, best))
        return best, outgoing, True

    def combine(self, a, b):
        return min(a, b)


class IterativePageRank(VertexCentricProgram):
    """Vertex-centric PageRank: every vertex re-sends its share each
    iteration for a fixed number of supersteps (the Pregel formulation)."""

    def __init__(self, damping: float = 0.85, iterations: int = 30):
        self.damping = damping
        self.iterations = iterations

    def initial_value(self, vid: Node, graph: Graph) -> float:
        return 1.0 - self.damping

    def compute(self, vid, value, messages, graph, superstep):
        if superstep > 0:
            value = (1.0 - self.damping) + self.damping * sum(messages)
        outgoing = []
        halt = superstep >= self.iterations
        if not halt:
            deg = graph.out_degree(vid)
            if deg:
                share = value / deg
                for u, _ in graph.out_edges(vid):
                    outgoing.append((u, share))
        return value, outgoing, halt

    def combine(self, a, b):
        return a + b
