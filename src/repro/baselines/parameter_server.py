"""Petuum-style parameter server for CF under SSP.

The paper's Table-1 text compares GRAPE+ against Petuum [53] for
collaborative filtering: a *parameter server* holds the shared model (item
factors); workers hold data shards (users + their ratings), pull the
parameters, compute SGD locally, push gradients, and advance a clock.  The
Stale Synchronous Parallel protocol lets the fastest worker lead the
slowest by at most ``staleness`` clocks [30].

:class:`ParameterServerCF` simulates this architecture deterministically:
an event heap orders pulls/pushes by simulated time (per-worker speed
factors create stragglers), the server applies pushes in time order, and a
worker blocks when its next clock would violate the staleness bound.
Communication is accounted per pulled/pushed parameter — the architectural
difference from GRAPE+'s designated messages (Petuum re-pulls the touched
parameters every clock; GRAPE+ ships only changed values).
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import RuntimeConfigError
from repro.graph.graph import Graph

Node = Hashable


@dataclass
class PSResult:
    """Outcome of a parameter-server CF run."""

    rmse: float
    time: float
    clocks: int
    comm_bytes: int
    pulls: int
    pushes: int
    stall_time: float


class ParameterServerCF:
    """SSP parameter-server SGD for matrix factorisation.

    Parameters mirror :class:`repro.algorithms.cf.CFQuery` where possible
    so the comparison against the PIE program is apples-to-apples: same
    rank, learning rate, regularisation, epochs (clocks) and seed.
    """

    def __init__(self, graph: Graph, num_workers: int, rank: int = 4,
                 learning_rate: float = 0.02, regularization: float = 0.05,
                 epochs: int = 10, staleness: int = 2, seed: int = 0,
                 epoch_cost: float = 1.0, per_rating_cost: float = 0.002,
                 per_param_cost: float = 0.001,
                 speed: Optional[Dict[int, float]] = None):
        if num_workers < 1:
            raise RuntimeConfigError("num_workers must be >= 1")
        if staleness < 0:
            raise RuntimeConfigError("staleness must be >= 0")
        self.graph = graph
        self.num_workers = num_workers
        self.rank = rank
        self.lr = learning_rate
        self.reg = regularization
        self.epochs = epochs
        self.staleness = staleness
        self.seed = seed
        self.epoch_cost = epoch_cost
        self.per_rating_cost = per_rating_cost
        self.per_param_cost = per_param_cost
        self.speed = speed or {}

    # ------------------------------------------------------------------
    def _init_vector(self, node: Node) -> List[float]:
        rng = random.Random((self.seed, repr(node)).__repr__())
        return [rng.uniform(0.05, 0.25) for _ in range(self.rank)]

    def _shards(self) -> Tuple[List[List[Tuple[Node, Node, float]]],
                               List[Node]]:
        """Split ratings by user hash; collect the item vocabulary."""
        shards: List[List[Tuple[Node, Node, float]]] = [
            [] for _ in range(self.num_workers)]
        items = set()
        for u, p, r in self.graph.edges():
            if not (isinstance(u, tuple) and u and u[0] == "u"):
                u, p = p, u
            shards[hash(u) % self.num_workers].append((u, p, r))
            items.add(p)
        for shard in shards:
            shard.sort()
        return shards, sorted(items)

    def run(self) -> PSResult:
        shards, items = self._shards()
        server: Dict[Node, List[float]] = {p: self._init_vector(p)
                                           for p in items}
        users: Dict[Node, List[float]] = {}
        for shard in shards:
            for u, _, _ in shard:
                if u not in users:
                    users[u] = self._init_vector(u)

        # --- timing: SSP clocks under constant per-worker speeds.
        # start[w][c] = max(own previous finish, the time every worker
        # finished clock c - staleness - 1); closed-form DP, deterministic.
        costs = []
        touched_per_worker = []
        for wid, shard in enumerate(shards):
            touched = sorted({p for _, p, _ in shard}, key=repr)
            touched_per_worker.append(touched)
            cost = (self.epoch_cost
                    + len(shard) * self.per_rating_cost
                    + 2 * len(touched) * self.per_param_cost)
            costs.append(cost * self.speed.get(wid, 1.0))
        finish = [[0.0] * (self.epochs + 1)
                  for _ in range(self.num_workers)]
        stall_time = 0.0
        for c in range(1, self.epochs + 1):
            barrier = 0.0
            gate = c - self.staleness - 1
            if gate >= 1:
                barrier = max(finish[w][gate]
                              for w in range(self.num_workers))
            for w in range(self.num_workers):
                start = max(finish[w][c - 1], barrier)
                stall_time += start - finish[w][c - 1]
                finish[w][c] = start + costs[w]
        makespan = max(finish[w][self.epochs]
                       for w in range(self.num_workers))

        # --- learning: pull-compute-push per clock, applied in clock order
        # (the deterministic equivalent of applying pushes in time order)
        pulls = pushes = 0
        comm_bytes = 0
        param_bytes = 8 * self.rank
        for _clock in range(self.epochs):
            for wid, shard in enumerate(shards):
                touched = touched_per_worker[wid]
                snapshot = {p: list(server[p]) for p in touched}
                pulls += len(touched)
                comm_bytes += len(touched) * param_bytes
                grads: Dict[Node, List[float]] = {
                    p: [0.0] * self.rank for p in touched}
                for u, p, rating in shard:
                    fu, fp = users[u], snapshot[p]
                    pred = sum(a * b for a, b in zip(fu, fp))
                    err = rating - pred
                    for k in range(self.rank):
                        gu = self.lr * (err * fp[k] - self.reg * fu[k])
                        gp = self.lr * (err * fu[k] - self.reg * fp[k])
                        fu[k] += gu
                        grads[p][k] += gp
                for p, gvec in grads.items():
                    vec = server[p]
                    for k in range(self.rank):
                        vec[k] += gvec[k]
                pushes += len(touched)
                comm_bytes += len(touched) * param_bytes

        rmse = self._rmse(shards, users, server)
        return PSResult(rmse=rmse, time=makespan, clocks=self.epochs,
                        comm_bytes=comm_bytes, pulls=pulls, pushes=pushes,
                        stall_time=stall_time)

    def _rmse(self, shards, users, server) -> float:
        total = 0.0
        count = 0
        for shard in shards:
            for u, p, rating in shard:
                pred = sum(a * b for a, b in zip(users[u], server[p]))
                total += (rating - pred) ** 2
                count += 1
        return math.sqrt(total / count) if count else 0.0
