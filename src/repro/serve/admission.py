"""Admission control for the resident graph service.

A resident service that never says no falls over in the worst way: the
ingest queue grows without bound, every query pays an unbounded catch-up
bill, and by the time anything fails the failure is memory exhaustion
rather than a refusal the client can act on.  The controller bounds both
queues and *sheds-and-reports*: rejected work is returned to the caller
with a reason (and surfaced as an ``admission_shed`` obs event by the
service) instead of silently dropped or silently queued.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class AdmissionController:
    """Decide whether to accept an update batch or a read query.

    - ``max_pending_batches`` bounds the ingest queue: an
      :meth:`~repro.serve.service.GraphService.ingest` arriving when the
      queue is full is shed, so backlog (and the staleness debt queries
      must pay down) stays bounded.
    - ``max_catchup`` bounds the work one query may force: a query whose
      freshness bound requires applying more than this many pending
      batches is shed rather than allowed to stall the caller.  ``None``
      disables the query bound.
    """

    max_pending_batches: int = 64
    max_catchup: Optional[int] = 32

    def admit_batch(self, depth: int) -> Optional[str]:
        """``None`` to accept a batch at queue depth ``depth``, else the
        shed reason."""
        if depth >= self.max_pending_batches:
            return (f"ingest queue full ({depth} >= "
                    f"{self.max_pending_batches} pending batches)")
        return None

    def admit_query(self, lag: int, bound: int) -> Optional[str]:
        """``None`` to accept a query, else the shed reason.

        ``lag`` is the current staleness (pending batches); ``bound`` is
        the query's declared maximum, so ``lag - bound`` is the number of
        epochs the service would have to apply before answering.
        """
        if self.max_catchup is None:
            return None
        needed = lag - bound
        if needed > self.max_catchup:
            return (f"catch-up of {needed} epochs exceeds limit "
                    f"{self.max_catchup} (lag={lag}, bound={bound})")
        return None
