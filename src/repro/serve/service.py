"""A resident bounded-staleness graph service over the AAP engines.

:class:`GraphService` is the serving-path counterpart of
:class:`~repro.streaming.StreamingSession`: it runs PEval exactly once on
a live runtime, then keeps the partitioned fragments *warm* while a
continuous stream of :class:`~repro.streaming.UpdateBatch` es flows in and
read queries flow out.  The hot path never rebuilds the engine:

1. **Ingest** — batches are validated atomically (against the current
   graph *and* the already-staged batches), admitted through a bounded
   queue, and parked; accepting a batch advances the *accepted* epoch.
2. **Epoch apply** — one parked batch is materialised by growing the
   fragments in place (:func:`~repro.partition.grow.grow_edge_cut` — same
   owner map, memoized routes refreshed, cost proportional to the batch),
   new nodes get program-default status variables and fresh mirrors adopt
   their owner's converged value, each touched fragment integrates its
   insertions through :meth:`~repro.core.pie.PIEProgram.inc_update` + one
   IncEval, and the continuation run resumes from the resulting designated
   messages (Theorem 2: monotone programs converge to ``Q(G ⊕ ∆G)`` from
   any intermediate state).  Applying a batch advances the *applied*
   epoch.
3. **Query** — each read declares a maximum staleness in applied-batch
   epochs (an SSP-style bound).  The service's staleness is the number of
   accepted-but-unapplied batches; a query whose bound is already met is
   answered from the current snapshot, otherwise the service applies
   pending batches until the lag satisfies the bound ("block until
   convergence catches up").  Point lookups go through an LRU cache
   invalidated by the changed keys of each epoch's answer diff.

Every ingest, epoch and query emits an obs event and feeds the latency /
freshness histograms on the service's :class:`~repro.obs.Observer`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Deque, Dict, Hashable, List, Optional, Set

from repro.core.engine import Engine
from repro.core.modes import make_policy
from repro.core.pie import PIEProgram
from repro.core.result import RunResult
from repro.errors import ProgramError, ReproError
from repro.graph.graph import Graph
from repro.graph.stable import stable_owner
from repro.obs import (ADMISSION_SHED, EPOCH_APPLY, INGEST, QUERY_SERVED,
                       Observer)
from repro.partition.builder import build_edge_cut
from repro.partition.grow import GrowthReport, grow_edge_cut
from repro.runtime.simulator import SimulatedRuntime
from repro.runtime.threaded import ThreadedRuntime
from repro.serve.admission import AdmissionController
from repro.serve.cache import QueryCache
from repro.streaming.updates import UpdateBatch, edge_key, validate_batch

Node = Hashable

#: sentinel distinguishing "key absent" from "value is None"
_MISSING = object()

RUNTIMES = ("threaded", "simulated")


@dataclass(frozen=True)
class IngestReceipt:
    """What :meth:`GraphService.ingest` hands back for one batch."""

    accepted: bool
    #: accepted-epoch number this batch will become when applied
    #: (meaningless when shed)
    epoch: int
    #: ingest queue depth after this call
    depth: int
    #: wall seconds spent admitting + validating + staging
    latency: float
    #: shed reason when not accepted
    reason: Optional[str] = None


@dataclass(frozen=True)
class QueryResult:
    """One answered (or shed) read query."""

    served: bool
    value: Any
    #: applied epoch of the snapshot that answered
    epoch: int
    #: accepted-but-unapplied batches at answer time (≤ the query's bound)
    staleness: int
    #: wall seconds from query arrival to answer
    latency: float
    cache_hit: bool = False
    #: shed reason when not served
    reason: Optional[str] = None


class GraphService:
    """A warm, incrementally-updated PIE computation behind a query API.

    ``runtime`` selects what executes the continuation runs: ``threaded``
    (real threads, the serving configuration) or ``simulated`` (the
    deterministic reference, used by the differential tests).
    """

    def __init__(self, program: PIEProgram, graph: Graph, query: Any,
                 num_fragments: int = 4, mode: str = "AAP",
                 runtime: str = "threaded",
                 staleness_bound: Optional[int] = None,
                 admission: Optional[AdmissionController] = None,
                 cache_size: int = 4096,
                 observer: Optional[Observer] = None,
                 time_scale: float = 1e-4):
        if runtime not in RUNTIMES:
            raise ReproError(
                f"unknown service runtime {runtime!r}; pick from {RUNTIMES}")
        self.program = program
        self.graph = graph.copy()
        #: the PIE query object (the read API is :meth:`query`)
        self.pie_query = query
        self.m = num_fragments
        self.mode = mode
        self.runtime = runtime
        self.time_scale = time_scale
        if staleness_bound is None and program.needs_bounded_staleness:
            staleness_bound = program.default_staleness_bound
        self.staleness_bound = staleness_bound
        self.admission = admission if admission is not None \
            else AdmissionController()
        self.cache = QueryCache(cache_size)
        #: always-on observability: events + histograms for every ingest,
        #: epoch and query land here
        self.obs = observer if observer is not None else Observer()
        # ownership is the process-stable hash shared with StreamingSession,
        # so a session-warmed partition and the service agree on placement
        owner = {v: stable_owner(v, num_fragments) for v in self.graph.nodes}
        self.pg = build_edge_cut(self.graph, owner, num_fragments, "serving")
        self.engine = Engine(program, self.pg, query)
        #: applied epochs == batches fully integrated and re-converged
        self.epoch = 0
        #: accepted epochs == applied + parked batches
        self.accepted = 0
        self._pending: Deque[UpdateBatch] = deque()
        #: edge keys of parked batches (cross-batch duplicate detection)
        self._staged: Set[Any] = set()
        #: the one PEval in this service's lifetime
        self.initial_result: RunResult = self._run_fresh()
        self._answer: Dict[Node, Any] = self._assembled()

    # -- runtime plumbing ----------------------------------------------
    def _policy(self):
        return make_policy(self.mode, staleness_bound=self.staleness_bound)

    def _make_runtime(self):
        if self.runtime == "threaded":
            return ThreadedRuntime(self.engine, self._policy(),
                                   time_scale=self.time_scale)
        return SimulatedRuntime(self.engine, self._policy(),
                                record_trace=False)

    def _run_fresh(self) -> RunResult:
        return self._make_runtime().run()

    def _assembled(self) -> Dict[Node, Any]:
        answer = self.engine.assemble()
        try:
            return dict(answer)
        except (TypeError, ValueError):
            raise ProgramError(
                f"{type(self.program).__name__} assembles a "
                f"{type(answer).__name__}; the service needs a node -> "
                f"value mapping to serve point lookups") from None

    # -- introspection -------------------------------------------------
    @property
    def lag(self) -> int:
        """Current staleness: accepted-but-unapplied batches."""
        return len(self._pending)

    @property
    def answer(self) -> Dict[Node, Any]:
        """The assembled answer at the current *applied* epoch."""
        return dict(self._answer)

    # -- ingest path ---------------------------------------------------
    def ingest(self, batch: UpdateBatch) -> IngestReceipt:
        """Admit, validate and park one update batch.

        Atomic: validation covers the whole batch against the current
        graph plus everything already staged, so a rejected batch
        (:class:`~repro.errors.ProgramError`) leaves the service
        untouched.  A shed batch (queue full) is reported, not raised.
        """
        t0 = perf_counter()
        reason = self.admission.admit_batch(len(self._pending))
        if reason is not None:
            self.obs.metrics.counter("serve_shed_batches").inc()
            self.obs.log.emit(ADMISSION_SHED, perf_counter(), kind="batch",
                              reason=reason, depth=len(self._pending))
            return IngestReceipt(accepted=False, epoch=self.accepted,
                                 depth=len(self._pending),
                                 latency=perf_counter() - t0, reason=reason)
        validate_batch(self.graph, batch, staged=self._staged)
        for u, v, _ in batch.insertions:
            self._staged.add(edge_key(self.graph, u, v))
        self._pending.append(batch)
        self.accepted += 1
        latency = perf_counter() - t0
        self.obs.metrics.histogram("serve_ingest_latency").observe(latency)
        self.obs.metrics.counter("serve_batches_accepted").inc()
        self.obs.log.emit(INGEST, perf_counter(), edges=len(batch),
                          depth=len(self._pending), latency=latency)
        return IngestReceipt(accepted=True, epoch=self.accepted,
                             depth=len(self._pending), latency=latency)

    # -- epoch apply ---------------------------------------------------
    def pump(self, max_batches: Optional[int] = None) -> int:
        """Apply up to ``max_batches`` pending batches; return how many."""
        applied = 0
        while self._pending and (max_batches is None
                                 or applied < max_batches):
            self._apply_one()
            applied += 1
        return applied

    def flush(self) -> int:
        """Apply every pending batch (staleness 0 afterwards)."""
        return self.pump()

    def _apply_one(self) -> None:
        batch = self._pending.popleft()
        t0 = perf_counter()
        for u, v, w in batch.insertions:
            self._staged.discard(edge_key(self.graph, u, v))
            self.graph.add_edge(u, v, w)
        report = grow_edge_cut(self.pg, batch.insertions)
        self._extend_contexts(report)
        touched = sorted(report.touched)
        self.engine.refresh_routes(touched)
        messages = self._integrate(batch, touched)
        if messages:
            runtime = self._make_runtime()
            runtime.seed_resume(messages)
            runtime.run()
        # with no designated messages the local IncEvals already reached
        # the global fixpoint; skip the runtime entirely
        self.epoch += 1
        new_answer = self._assembled()
        changed = {k for k, val in new_answer.items()
                   if self._answer.get(k, _MISSING) != val}
        self.cache.invalidate(changed)
        self._answer = new_answer
        duration = perf_counter() - t0
        self.obs.metrics.counter("serve_epochs").inc()
        self.obs.metrics.histogram("serve_epoch_duration").observe(duration)
        self.obs.metrics.histogram("serve_epoch_changed").observe(
            len(changed))
        self.obs.log.emit(EPOCH_APPLY, perf_counter(), epoch=self.epoch,
                          edges=len(batch), changed=len(changed),
                          duration=duration)

    def _extend_contexts(self, report: GrowthReport) -> None:
        """Give every newly-present node a status variable.

        Two passes: brand-new *owned* nodes take the program's initial
        value (what a rebuilt context would start them at); fresh mirror
        copies then adopt their owner's current value — exactly the
        carry-over :class:`~repro.streaming.StreamingSession` performs on
        rebuild, done in place.  Nothing is marked changed: seeding is
        ``inc_update``'s job.
        """
        for fid, nodes in report.new_local.items():
            ctx = self.engine.contexts[fid]
            owned_new = [v for v in nodes
                         if self.pg.owner[v] == fid and v not in ctx.values]
            if owned_new:
                defaults = self.program.init_values(self.pg.fragments[fid],
                                                    self.pie_query)
                for v in owned_new:
                    ctx.values[v] = defaults[v]
        for fid, nodes in report.new_local.items():
            ctx = self.engine.contexts[fid]
            for v in nodes:
                if v not in ctx.values:
                    owner_ctx = self.engine.contexts[self.pg.owner[v]]
                    ctx.values[v] = owner_ctx.values[v]

    def _integrate(self, batch: UpdateBatch,
                   touched: List[int]) -> List[Any]:
        """inc_update + one IncEval per touched fragment; collect the
        designated messages that seed the continuation run."""
        messages: List[Any] = []
        for wid in touched:
            frag = self.pg.fragments[wid]
            local = [(u, v, w) for u, v, w in batch.insertions
                     if frag.graph.has_node(u) and frag.graph.has_node(v)
                     and frag.graph.has_edge(u, v)]
            if not local:
                continue
            ctx = self.engine.contexts[wid]
            seeds = self.program.inc_update(frag, ctx, local, self.pie_query)
            if seeds:
                self.program.inceval(frag, ctx, set(seeds), self.pie_query)
            messages.extend(self.engine.derive_messages(wid, round_no=1))
        return messages

    # -- query path ----------------------------------------------------
    def query(self, key: Node, staleness_bound: int = 0) -> QueryResult:
        """Answer a point lookup no staler than ``staleness_bound`` epochs.

        If the current lag exceeds the bound, pending batches are applied
        until it does not (the "block until convergence catches up" arm of
        the contract); the admission controller may shed the query first
        if that catch-up would exceed its work budget.
        """
        return self._serve(key, staleness_bound, snapshot=False)

    def snapshot(self, staleness_bound: int = 0) -> QueryResult:
        """The whole assembled answer under the same freshness contract."""
        return self._serve(None, staleness_bound, snapshot=True)

    def _serve(self, key: Optional[Node], bound: int,
               snapshot: bool) -> QueryResult:
        if bound < 0:
            raise ProgramError(
                f"staleness bound must be >= 0 epochs, got {bound}")
        t0 = perf_counter()
        reason = self.admission.admit_query(len(self._pending), bound)
        if reason is not None:
            self.obs.metrics.counter("serve_shed_queries").inc()
            self.obs.log.emit(ADMISSION_SHED, perf_counter(), kind="query",
                              reason=reason, depth=len(self._pending))
            return QueryResult(served=False, value=None, epoch=self.epoch,
                               staleness=len(self._pending),
                               latency=perf_counter() - t0, reason=reason)
        while len(self._pending) > bound:
            self._apply_one()
        staleness = len(self._pending)
        cache_hit = False
        if snapshot:
            value: Any = dict(self._answer)
        else:
            cache_hit, value = self.cache.get(key)
            if not cache_hit:
                value = self._answer.get(key)
                self.cache.put(key, value)
        latency = perf_counter() - t0
        self.obs.metrics.histogram("serve_query_latency").observe(latency)
        self.obs.metrics.histogram("serve_staleness").observe(staleness)
        self.obs.metrics.counter("serve_queries").inc()
        self.obs.log.emit(QUERY_SERVED, perf_counter(),
                          key=repr(key) if not snapshot else "<snapshot>",
                          bound=bound, staleness=staleness, epoch=self.epoch,
                          latency=latency, cache_hit=cache_hit)
        return QueryResult(served=True, value=value, epoch=self.epoch,
                           staleness=staleness, latency=latency,
                           cache_hit=cache_hit)

    def __repr__(self) -> str:
        return (f"GraphService(m={self.m}, mode={self.mode!r}, "
                f"runtime={self.runtime!r}, epoch={self.epoch}, "
                f"lag={self.lag})")
