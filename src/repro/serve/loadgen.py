"""Seeded load generator for :class:`~repro.serve.GraphService`.

Drives a mixed update/query workload against a service and reports what a
serving benchmark cares about: query latency percentiles, the staleness
actually served (and whether any answer violated its declared bound —
the contract check), sustained update throughput, cache effectiveness and
shed counts.  Everything is derived from one ``random.Random(seed)``, so
a report is reproducible bit-for-bit given the same service configuration.

Query keys are drawn with a configurable skew (``index ~ n * u**skew``
over the known-node list, so low-index nodes are hot), which is what makes
the changed-mask-invalidated cache measurable.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Hashable, List, Optional, Sequence, Set

from repro.errors import ReproError
from repro.serve.service import GraphService
from repro.streaming.updates import UpdateBatch

Node = Hashable


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q / 100.0 * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def latency_summary(latencies: List[float]) -> Dict[str, float]:
    """p50/p95/p99/mean/max in milliseconds."""
    ordered = sorted(latencies)
    to_ms = 1000.0
    return {
        "count": len(ordered),
        "p50_ms": percentile(ordered, 50) * to_ms,
        "p95_ms": percentile(ordered, 95) * to_ms,
        "p99_ms": percentile(ordered, 99) * to_ms,
        "mean_ms": (sum(ordered) / len(ordered) * to_ms) if ordered else 0.0,
        "max_ms": (ordered[-1] * to_ms) if ordered else 0.0,
    }


class LoadGenerator:
    """Build a reproducible op stream and run it against one service."""

    def __init__(self, service: GraphService, seed: int = 0,
                 num_queries: int = 1000, num_batches: int = 20,
                 batch_size: int = 8, skew: float = 2.0,
                 staleness_bounds: Sequence[int] = (0, 1, 2, 4),
                 grow_fraction: float = 0.5):
        if num_queries < 1 or num_batches < 1:
            raise ReproError("loadgen needs at least one query and one batch")
        self.service = service
        self.rng = random.Random(seed)
        self.seed = seed
        self.num_queries = num_queries
        self.num_batches = num_batches
        self.batch_size = batch_size
        self.skew = skew
        self.staleness_bounds = tuple(staleness_bounds)
        self.grow_fraction = grow_fraction
        # node ids the generator knows about (grows as it invents nodes);
        # sorted by repr for cross-run determinism regardless of set order
        self.nodes: List[Node] = sorted(service.graph.nodes, key=repr)
        self._known: Set[Node] = set(self.nodes)
        self._edges: Set[frozenset] = set()
        directed = service.graph.directed
        for u, v, _ in service.graph.edges():
            self._edges.add(self._ekey(u, v, directed))
        self._next_id = 1 + max(
            (v for v in self.nodes if isinstance(v, int)), default=-1)
        self._directed = directed

    @staticmethod
    def _ekey(u: Node, v: Node, directed: bool) -> frozenset:
        if directed:
            return frozenset((("s", u), ("d", v)))
        return frozenset((u, v))

    # -- workload pieces -----------------------------------------------
    def _pick_key(self) -> Node:
        """Skewed choice: low indices are hot (u**skew concentrates)."""
        idx = int(len(self.nodes) * (self.rng.random() ** self.skew))
        return self.nodes[min(idx, len(self.nodes) - 1)]

    def _fresh_edge(self) -> Optional[Any]:
        """One edge not in the graph and not already generated."""
        for _ in range(64):
            if self.rng.random() < self.grow_fraction:
                u = self._pick_key()
                v = self._next_id
                self._next_id += 1
                self._known.add(v)
                self.nodes.append(v)
            else:
                u = self._pick_key()
                v = self._pick_key()
                if u == v:
                    continue
            key = self._ekey(u, v, self._directed)
            if key in self._edges:
                continue
            self._edges.add(key)
            return (u, v, round(self.rng.uniform(1.0, 4.0), 3))
        return None

    def next_batch(self) -> Optional[UpdateBatch]:
        edges = []
        for _ in range(self.batch_size):
            e = self._fresh_edge()
            if e is not None:
                edges.append(e)
        if not edges:
            return None
        return UpdateBatch(insertions=tuple(edges))

    # -- the run -------------------------------------------------------
    def run(self) -> Dict[str, Any]:
        svc = self.service
        ops = ["q"] * self.num_queries + ["u"] * self.num_batches
        self.rng.shuffle(ops)
        query_latencies: List[float] = []
        staleness_counts: Dict[int, int] = {}
        violations = 0
        served = shed_queries = cache_hits = 0
        batches_ok = batches_shed = edges_applied = 0
        ingest_seconds = 0.0
        for op in ops:
            if op == "u":
                batch = self.next_batch()
                if batch is None:
                    continue
                receipt = svc.ingest(batch)
                ingest_seconds += receipt.latency
                if receipt.accepted:
                    batches_ok += 1
                    edges_applied += len(batch)
                else:
                    batches_shed += 1
                continue
            bound = self.rng.choice(self.staleness_bounds)
            result = svc.query(self._pick_key(), staleness_bound=bound)
            if not result.served:
                shed_queries += 1
                continue
            served += 1
            query_latencies.append(result.latency)
            staleness_counts[result.staleness] = \
                staleness_counts.get(result.staleness, 0) + 1
            if result.cache_hit:
                cache_hits += 1
            if result.staleness > bound:
                violations += 1
        svc.flush()
        epoch_hist = svc.obs.metrics.histogram("serve_epoch_duration")
        apply_seconds = epoch_hist.total
        busy = ingest_seconds + apply_seconds
        report = {
            "seed": self.seed,
            "workload": {
                "num_queries": self.num_queries,
                "num_batches": self.num_batches,
                "batch_size": self.batch_size,
                "skew": self.skew,
                "staleness_bounds": list(self.staleness_bounds),
            },
            "queries": {
                "served": served,
                "shed": shed_queries,
                "cache_hits": cache_hits,
                "cache": svc.cache.stats(),
                "latency": latency_summary(query_latencies),
            },
            "staleness": {
                "histogram": {str(k): staleness_counts[k]
                              for k in sorted(staleness_counts)},
                "max_served": max(staleness_counts) if staleness_counts
                else 0,
                "violations": violations,
            },
            "updates": {
                "batches_applied": batches_ok,
                "batches_shed": batches_shed,
                "edges_applied": edges_applied,
                "epochs": svc.epoch,
                "ingest_seconds": ingest_seconds,
                "apply_seconds": apply_seconds,
                "updates_per_sec": edges_applied / busy if busy else 0.0,
                "epoch_duration_ms": {
                    "mean": epoch_hist.mean * 1000.0,
                    "max": (epoch_hist.vmax if epoch_hist.count else 0.0)
                    * 1000.0,
                },
            },
            "graph": {
                "nodes": svc.graph.num_nodes,
                "edges": svc.graph.num_edges,
            },
            "service": {
                "mode": svc.mode,
                "runtime": svc.runtime,
                "num_fragments": svc.m,
                "final_epoch": svc.epoch,
            },
        }
        return report


def verify_against_recompute(service: GraphService) -> bool:
    """Differential check: the drained service equals ``Q(G ⊕ ∆G)``.

    Rebuilds a fresh engine over the service's grown graph with the same
    (stable-hash) owner map and runs it from scratch on the reference
    runtime; the assembled answers must match exactly.
    """
    from repro.core.engine import Engine
    from repro.core.modes import make_policy
    from repro.partition.builder import build_edge_cut
    from repro.runtime.simulator import SimulatedRuntime

    service.flush()
    pg = build_edge_cut(service.graph, dict(service.pg.owner), service.m,
                        "recompute")
    engine = Engine(service.program, pg, service.pie_query)
    runtime = SimulatedRuntime(
        engine, make_policy(service.mode,
                            staleness_bound=service.staleness_bound),
        record_trace=False)
    runtime.run()
    return dict(engine.assemble()) == service.answer
