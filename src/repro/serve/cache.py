"""Per-query result cache, invalidated by changed-key sets.

The service answers point lookups out of the assembled answer map; the
cache in front of it exists for the *skewed* workloads a service actually
sees (a few hot keys asked over and over).  Entries are invalidated by the
epoch-apply path: after each batch converges, the service diffs the new
assembled answer against the previous one and drops exactly the keys whose
value changed — so a cache hit is always identical to reading the current
snapshot, and hot keys untouched by an update survive arbitrarily many
epochs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Iterable, Tuple

Node = Hashable


class QueryCache:
    """Bounded LRU of ``key -> answer value`` for the current snapshot.

    Capacity 0 disables caching (every ``get`` misses, ``put`` is a
    no-op), which keeps the service code branch-free.
    """

    __slots__ = ("capacity", "_entries", "hits", "misses", "invalidations")

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._entries: "OrderedDict[Node, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Node) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return False, None
        self._entries.move_to_end(key)
        self.hits += 1
        return True, value

    def put(self, key: Node, value: Any) -> None:
        if self.capacity <= 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self, keys: Iterable[Node]) -> int:
        """Drop every cached entry whose key's value just changed."""
        dropped = 0
        for k in keys:
            if self._entries.pop(k, None) is not None:
                dropped += 1
        self.invalidations += dropped
        return dropped

    def stats(self) -> Dict[str, float]:
        asked = self.hits + self.misses
        return {"size": len(self._entries), "hits": self.hits,
                "misses": self.misses, "invalidations": self.invalidations,
                "hit_rate": self.hits / asked if asked else 0.0}

    def __repr__(self) -> str:
        return (f"QueryCache(size={len(self._entries)}, hits={self.hits}, "
                f"misses={self.misses})")
