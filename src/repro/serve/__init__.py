"""Resident bounded-staleness serving on top of incremental IncEval.

The streaming package keeps one computation alive across update batches;
this package turns that into a *service*: PEval once, fragments warm,
continuous ingest through in-place partition growth + inc_update
continuation runs, and read queries answered under a declared staleness
bound (see :mod:`repro.serve.service` and ``docs/serving.md``).
"""

from repro.serve.admission import AdmissionController
from repro.serve.cache import QueryCache
from repro.serve.loadgen import (LoadGenerator, latency_summary, percentile,
                                 verify_against_recompute)
from repro.serve.service import (GraphService, IngestReceipt, QueryResult,
                                 RUNTIMES)

__all__ = [
    "AdmissionController", "QueryCache", "GraphService", "IngestReceipt",
    "QueryResult", "RUNTIMES", "LoadGenerator", "latency_summary",
    "percentile", "verify_against_recompute",
]
