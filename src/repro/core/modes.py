"""Named parallel models: AAP and its special cases.

``make_policy("BSP")`` etc. build the delay policy that turns the AAP engine
into each model (paper, Section 3, "Special cases"), so every model runs on
the *same* engine and differences measure the model, not the implementation —
mirroring the paper's GRAPE+ vs GRAPE+BSP/AP/SSP methodology.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.delay import (AAPPolicy, APPolicy, BSPPolicy, DelayPolicy,
                              HsyncPolicy, SSPPolicy)
from repro.errors import RuntimeConfigError

#: canonical mode names, in the order the paper compares them
MODES = ("AAP", "BSP", "AP", "SSP", "Hsync")


def make_policy(mode: str, *, staleness_bound: Optional[int] = None,
                **kwargs: Any) -> DelayPolicy:
    """Build the delay policy for a named parallel model.

    ``staleness_bound`` is the SSP bound ``c`` (default 1 for SSP) and the
    optional bounded-staleness predicate for AAP (CF-style programs).
    Remaining keyword arguments go to the policy constructor (AAP L⊥ and
    window knobs, Hsync thresholds).
    """
    key = mode.strip().upper()
    if key == "BSP":
        return BSPPolicy()
    if key == "AP":
        return APPolicy()
    if key == "SSP":
        c = 1 if staleness_bound is None else staleness_bound
        return SSPPolicy(staleness_bound=c)
    if key == "AAP":
        return AAPPolicy(staleness_bound=staleness_bound, **kwargs)
    if key == "HSYNC":
        return HsyncPolicy(**kwargs)
    raise RuntimeConfigError(
        f"unknown mode {mode!r}; expected one of {MODES}")


def policy_table(staleness_bound: Optional[int] = None,
                 **aap_kwargs: Any) -> Dict[str, DelayPolicy]:
    """Fresh policies for all modes (one run each; policies are stateful)."""
    return {m: make_policy(m, staleness_bound=staleness_bound,
                           **(aap_kwargs if m == "AAP" else {}))
            for m in MODES}
