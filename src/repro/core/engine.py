"""Fragment-local execution mechanics shared by every runtime.

The :class:`Engine` owns the per-fragment contexts and implements the three
operations every runtime schedules:

1. :meth:`run_peval` — partial evaluation on one fragment (round 0);
2. :meth:`run_inceval` — aggregate buffered messages into the update
   parameters (``M_i = f_aggr(B ∪ C_i.x̄)``) and run the incremental step;
3. :meth:`derive_messages` — diff the candidate set and group the changed
   values into designated messages ``M(i, j)``.

Scheduling (when each operation runs and what the delay stretches are) is the
runtime's job; the engine is schedule-agnostic, which is what makes the
Church-Rosser tests meaningful.

With ``vectorized=True`` the engine routes the same three operations through
the program's dense kernels over array-backed contexts
(:mod:`repro.core.dense`) and packs outgoing traffic into
:class:`~repro.core.messages.MessageBatch` — one batch per ``(dst, round)``
instead of one entry-list message.  The flag silently degrades to the
generic path when the program or partition does not support it, so callers
can pass it unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Sequence, Set

from repro.core.messages import (Message, MessageBatch, group_entries,
                                 make_messages)
from repro.core.pie import FragmentContext, PIEProgram
from repro.errors import ProgramError
from repro.partition.fragment import PartitionedGraph

Node = Hashable


@dataclass
class RoundOutput:
    """What one invocation of PEval/IncEval produced."""

    wid: int
    round: int
    work: int
    messages: List[Message] = field(default_factory=list)
    activated: int = 0

    @property
    def bytes_sent(self) -> int:
        return sum(m.size_bytes for m in self.messages)


class Engine:
    """Program + partitioned graph + query, with per-fragment contexts."""

    def __init__(self, program: PIEProgram, pg: PartitionedGraph, query: Any,
                 vectorized: bool = False):
        self.program = program
        self.pg = pg
        self.query = query
        if vectorized:
            from repro.core.dense import supports_dense
            self.vectorized = supports_dense(program, pg)
        else:
            self.vectorized = False
        if self.vectorized:
            self.contexts: List[FragmentContext] = [
                program.make_dense_context(frag, query) for frag in pg]
        else:
            self.contexts = [
                program.make_context(frag, query) for frag in pg]
        # ship sets and dense routes are pure functions of the partition
        # (unless the program says otherwise), so they are memoized on the
        # fragments: repeated engine builds over the same PartitionedGraph
        # — every run of a query class — skip the Python-loop setup cost
        cacheable = getattr(program, "cacheable_routes", True)
        cls = type(program)
        self._ship_sets = [
            frag.memo(("ship_set", cls),
                      lambda f=frag: self._checked_ship_set(f))
            if cacheable else self._checked_ship_set(frag)
            for frag in pg]
        if self.vectorized:
            self._dense_routes = []
            self._dense_ship_masks = []
            for wid, frag in enumerate(pg):
                routes, ship_mask = (
                    frag.memo(("dense_routes", cls),
                              lambda w=wid, f=frag:
                              self._build_dense_routes(w, f))
                    if cacheable else self._build_dense_routes(wid, frag))
                self._dense_routes.append(routes)
                self._dense_ship_masks.append(ship_mask)

    @property
    def num_workers(self) -> int:
        return self.pg.num_fragments

    def _checked_ship_set(self, frag) -> Any:
        """The program's ship set, validated against the routing index."""
        ship = self.program.ship_set(frag)
        stray = [v for v in ship if not frag.locations(v)]
        if stray:
            raise ProgramError(
                f"ship set of fragment {frag.fid} contains node "
                f"{stray[0]!r} that resides nowhere else")
        return ship

    def _build_dense_routes(self, wid: int, frag) -> Any:
        """Precompute one fragment's routing masks for batched derivation.

        ``destinations`` depends only on the partition, so we bake one
        boolean lid-mask per destination plus the union ship mask;
        deriving a round's batches is then pure masking.
        """
        import numpy as np
        view = frag.compact()
        routes: Dict[int, Any] = {}
        ship_mask = np.zeros(len(view), dtype=bool)
        for v in self._ship_sets[wid]:
            dests = self.program.destinations(self.pg, frag, v)
            if not dests:
                continue
            lid = view.lid_of[v]
            ship_mask[lid] = True
            for dst in dests:
                if dst not in routes:
                    routes[dst] = np.zeros(len(view), dtype=bool)
                routes[dst][lid] = True
        return routes, ship_mask

    def refresh_routes(self, wids) -> None:
        """Recompute memoized routing after the partition grew in place.

        :func:`repro.partition.grow.grow_edge_cut` invalidates the
        fragment-level caches; this refreshes the engine's per-instance
        copies (ship sets, dense routes) for the touched fragments so a
        warm engine keeps serving without a rebuild.
        """
        cacheable = getattr(self.program, "cacheable_routes", True)
        cls = type(self.program)
        for wid in wids:
            frag = self.pg.fragments[wid]
            self._ship_sets[wid] = (
                frag.memo(("ship_set", cls),
                          lambda f=frag: self._checked_ship_set(f))
                if cacheable else self._checked_ship_set(frag))
            if self.vectorized:
                routes, ship_mask = (
                    frag.memo(("dense_routes", cls),
                              lambda w=wid, f=frag:
                              self._build_dense_routes(w, f))
                    if cacheable else self._build_dense_routes(wid, frag))
                self._dense_routes[wid] = routes
                self._dense_ship_masks[wid] = ship_mask

    # ------------------------------------------------------------------
    def run_peval(self, wid: int) -> RoundOutput:
        """Round 0: run the batch algorithm and derive initial messages."""
        frag = self.pg.fragments[wid]
        ctx = self.contexts[wid]
        ctx.round = 0
        if self.vectorized:
            self.program.dense_peval(frag, ctx, self.query)
        else:
            self.program.peval(frag, ctx, self.query)
        work = ctx.take_work()
        messages = self.derive_messages(wid, round_no=0)
        return RoundOutput(wid=wid, round=0, work=work, messages=messages)

    def run_inceval(self, wid: int, batches: Sequence[Message],
                    round_no: int) -> RoundOutput:
        """One incremental round: aggregate ``batches`` then run IncEval."""
        if self.vectorized:
            return self._run_inceval_dense(wid, batches, round_no)
        frag = self.pg.fragments[wid]
        ctx = self.contexts[wid]
        ctx.round = round_no
        grouped = group_entries(batches)
        activated: Set[Node] = set()
        for v, payloads in grouped.items():
            if v not in ctx.values:
                raise ProgramError(
                    f"fragment {wid} received update for non-local node {v!r}")
            ctx.add_work(len(payloads))
            if self.program.apply_incoming(frag, ctx, v, payloads):
                activated.add(v)
        if activated:
            self.program.inceval(frag, ctx, activated, self.query)
        work = ctx.take_work()
        messages = self.derive_messages(wid, round_no=round_no)
        return RoundOutput(wid=wid, round=round_no, work=work,
                           messages=messages, activated=len(activated))

    def _run_inceval_dense(self, wid: int, batches: Sequence[Any],
                           round_no: int) -> RoundOutput:
        """Dense round: concatenate batch arrays, aggregate, IncEval."""
        import numpy as np
        frag = self.pg.fragments[wid]
        ctx = self.contexts[wid]
        ctx.round = round_no
        ids_parts: List[Any] = []
        payload_parts: List[Any] = []
        for m in batches:
            if isinstance(m, MessageBatch):
                ids_parts.append(np.asarray(m.ids, dtype=np.int64))
                payload_parts.append(
                    np.asarray(m.payloads, dtype=ctx.array.dtype))
            elif len(m):
                nodes, vals = zip(*m.entries)
                ids_parts.append(np.asarray(nodes, dtype=np.int64))
                payload_parts.append(
                    np.asarray(vals, dtype=ctx.array.dtype))
        activated = np.empty(0, dtype=np.int64)
        if ids_parts:
            gids = np.concatenate(ids_parts)
            payloads = np.concatenate(payload_parts)
            lids = ctx.view.lids_for(gids)
            bad = np.nonzero(lids < 0)[0]
            if bad.size:
                raise ProgramError(
                    f"fragment {wid} received update for non-local node "
                    f"{int(gids[bad[0]])!r}")
            ctx.add_work(int(lids.size))
            activated = self.program.dense_apply_incoming(
                frag, ctx, lids, payloads)
        if activated.size:
            ctx.mask[activated] = True
            self.program.dense_inceval(frag, ctx, activated, self.query)
        work = ctx.take_work()
        messages = self.derive_messages(wid, round_no=round_no)
        return RoundOutput(wid=wid, round=round_no, work=work,
                           messages=messages,
                           activated=int(activated.size))

    def derive_messages(self, wid: int, round_no: int,
                        token: Any = None) -> List[Message]:
        """Group changed candidate values into designated messages."""
        if self.vectorized:
            return self._derive_dense(wid, round_no, token=token)
        frag = self.pg.fragments[wid]
        ctx = self.contexts[wid]
        ship = self._ship_sets[wid]
        changed = ctx.take_changed()
        per_dest: Dict[int, List] = {}
        held_back = []
        for v in sorted(changed & ship, key=repr):
            if not self.program.should_ship(frag, ctx, v):
                held_back.append(v)
                continue
            dests = self.program.destinations(self.pg, frag, v)
            if not dests:
                continue
            payload = self.program.emit(frag, ctx, v)
            for dst in dests:
                per_dest.setdefault(dst, []).append((v, payload))
        # held-back nodes stay marked so a later round reconsiders them
        ctx.changed.update(held_back)
        entry_bytes = self.program.value_size_bytes(None)
        return make_messages(wid, round_no, per_dest, token=token,
                             entry_bytes=entry_bytes)

    def _derive_dense(self, wid: int, round_no: int,
                      token: Any = None) -> List[MessageBatch]:
        """Pack the round's changed candidates into per-destination
        batches."""
        import numpy as np
        frag = self.pg.fragments[wid]
        ctx = self.contexts[wid]
        cand = ctx.mask & self._dense_ship_masks[wid]
        ctx.mask[:] = False
        lids = np.nonzero(cand)[0]
        if lids.size == 0:
            return []
        keep = np.asarray(
            self.program.dense_should_ship(frag, ctx, lids), dtype=bool)
        held = lids[~keep]
        if held.size:
            # held-back lids stay marked so a later round reconsiders them
            ctx.mask[held] = True
        lids = lids[keep]
        if lids.size == 0:
            return []
        payloads = np.asarray(self.program.dense_emit(frag, ctx, lids))
        gids = ctx.view.gids[lids]
        entry_bytes = self.program.value_size_bytes(None)
        out: List[MessageBatch] = []
        routes = self._dense_routes[wid]
        for dst in sorted(routes):
            sel = routes[dst][lids]
            if not np.any(sel):
                continue
            out.append(MessageBatch(
                src=wid, dst=dst, round=round_no, ids=gids[sel],
                payloads=payloads[sel], token=token,
                entry_bytes=entry_bytes))
        return out

    def derive_reship(self, wid: int, dst: int, round_no: int,
                      token: Any = None) -> List[Message]:
        """Re-ship fragment ``wid``'s *entire* border state to ``dst``.

        Surgical recovery's anti-entropy push: after a worker is replaced,
        each surviving peer re-sends its current value for every ship-set
        node routed to the replacement, regardless of change tracking.
        Safe exactly when the program's aggregation is idempotent
        (:attr:`PIEProgram.reship_capable`): values the replacement — or
        anyone else — already absorbed are re-applied without effect, and
        the change masks are left untouched so normal derivation is not
        perturbed.
        """
        if self.vectorized:
            import numpy as np
            frag = self.pg.fragments[wid]
            ctx = self.contexts[wid]
            route = self._dense_routes[wid].get(dst)
            if route is None or not route.any():
                return []
            lids = np.nonzero(route)[0]
            payloads = np.asarray(self.program.dense_emit(frag, ctx, lids))
            return [MessageBatch(
                src=wid, dst=dst, round=round_no,
                ids=ctx.view.gids[lids], payloads=payloads, token=token,
                entry_bytes=self.program.value_size_bytes(None))]
        frag = self.pg.fragments[wid]
        ctx = self.contexts[wid]
        per_dest: Dict[int, List] = {}
        for v in sorted(self._ship_sets[wid], key=repr):
            if dst not in self.program.destinations(self.pg, frag, v):
                continue
            per_dest.setdefault(dst, []).append(
                (v, self.program.emit(frag, ctx, v)))
        return make_messages(wid, round_no, per_dest, token=token,
                             entry_bytes=self.program.value_size_bytes(None))

    def assemble(self) -> Any:
        """Apply Assemble to the partial results of all workers."""
        if self.vectorized:
            return self.program.dense_assemble(self.pg, self.contexts,
                                               self.query)
        return self.program.assemble(self.pg, self.contexts, self.query)
