"""Fragment-local execution mechanics shared by every runtime.

The :class:`Engine` owns the per-fragment contexts and implements the three
operations every runtime schedules:

1. :meth:`run_peval` — partial evaluation on one fragment (round 0);
2. :meth:`run_inceval` — aggregate buffered messages into the update
   parameters (``M_i = f_aggr(B ∪ C_i.x̄)``) and run the incremental step;
3. :meth:`derive_messages` — diff the candidate set and group the changed
   values into designated messages ``M(i, j)``.

Scheduling (when each operation runs and what the delay stretches are) is the
runtime's job; the engine is schedule-agnostic, which is what makes the
Church-Rosser tests meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Set

from repro.core.messages import Message, group_entries, make_messages
from repro.core.pie import FragmentContext, PIEProgram
from repro.errors import ProgramError
from repro.partition.fragment import PartitionedGraph

Node = Hashable


@dataclass
class RoundOutput:
    """What one invocation of PEval/IncEval produced."""

    wid: int
    round: int
    work: int
    messages: List[Message] = field(default_factory=list)
    activated: int = 0

    @property
    def bytes_sent(self) -> int:
        return sum(m.size_bytes for m in self.messages)


class Engine:
    """Program + partitioned graph + query, with per-fragment contexts."""

    def __init__(self, program: PIEProgram, pg: PartitionedGraph, query: Any):
        self.program = program
        self.pg = pg
        self.query = query
        self.contexts: List[FragmentContext] = [
            program.make_context(frag, query) for frag in pg]
        self._ship_sets = [program.ship_set(frag) for frag in pg]
        for frag, ship in zip(pg, self._ship_sets):
            stray = [v for v in ship if not frag.locations(v)]
            if stray:
                raise ProgramError(
                    f"ship set of fragment {frag.fid} contains node "
                    f"{stray[0]!r} that resides nowhere else")

    @property
    def num_workers(self) -> int:
        return self.pg.num_fragments

    # ------------------------------------------------------------------
    def run_peval(self, wid: int) -> RoundOutput:
        """Round 0: run the batch algorithm and derive initial messages."""
        frag = self.pg.fragments[wid]
        ctx = self.contexts[wid]
        ctx.round = 0
        self.program.peval(frag, ctx, self.query)
        work = ctx.take_work()
        messages = self.derive_messages(wid, round_no=0)
        return RoundOutput(wid=wid, round=0, work=work, messages=messages)

    def run_inceval(self, wid: int, batches: Sequence[Message],
                    round_no: int) -> RoundOutput:
        """One incremental round: aggregate ``batches`` then run IncEval."""
        frag = self.pg.fragments[wid]
        ctx = self.contexts[wid]
        ctx.round = round_no
        grouped = group_entries(batches)
        activated: Set[Node] = set()
        for v, payloads in grouped.items():
            if v not in ctx.values:
                raise ProgramError(
                    f"fragment {wid} received update for non-local node {v!r}")
            ctx.add_work(len(payloads))
            if self.program.apply_incoming(frag, ctx, v, payloads):
                activated.add(v)
        if activated:
            self.program.inceval(frag, ctx, activated, self.query)
        work = ctx.take_work()
        messages = self.derive_messages(wid, round_no=round_no)
        return RoundOutput(wid=wid, round=round_no, work=work,
                           messages=messages, activated=len(activated))

    def derive_messages(self, wid: int, round_no: int,
                        token: Any = None) -> List[Message]:
        """Group changed candidate values into designated messages."""
        frag = self.pg.fragments[wid]
        ctx = self.contexts[wid]
        ship = self._ship_sets[wid]
        changed = ctx.take_changed()
        per_dest: Dict[int, List] = {}
        held_back = []
        for v in sorted(changed & ship, key=repr):
            if not self.program.should_ship(frag, ctx, v):
                held_back.append(v)
                continue
            dests = self.program.destinations(self.pg, frag, v)
            if not dests:
                continue
            payload = self.program.emit(frag, ctx, v)
            for dst in dests:
                per_dest.setdefault(dst, []).append((v, payload))
        # held-back nodes stay marked so a later round reconsiders them
        ctx.changed.update(held_back)
        entry_bytes = self.program.value_size_bytes(None)
        return make_messages(wid, round_no, per_dest, token=token,
                             entry_bytes=entry_bytes)

    def assemble(self) -> Any:
        """Apply Assemble to the partial results of all workers."""
        return self.program.assemble(self.pg, self.contexts, self.query)
