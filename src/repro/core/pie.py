"""The PIE programming model: PEval + IncEval + Assemble.

A :class:`PIEProgram` parallelises an existing sequential algorithm exactly as
in GRAPE/AAP (Section 2 of the paper):

- :meth:`PIEProgram.peval` — a sequential *batch* algorithm run once per
  fragment (round 0);
- :meth:`PIEProgram.inceval` — a sequential *incremental* algorithm run on
  every later round, triggered by aggregated changes to the update parameters;
- :meth:`PIEProgram.assemble` — collects partial results into ``Q(G)``.

The only additions over the sequential algorithms are the declarations:
the *candidate set* ``C_i`` (:meth:`candidates`), whose status variables are
the update parameters, and the aggregate function ``f_aggr``
(:attr:`aggregator`) that resolves conflicting writes.

:class:`FragmentContext` holds the per-fragment status variables and tracks
changes so the engine can derive designated messages by diffing.
"""

from __future__ import annotations

import abc
from typing import (Any, Dict, FrozenSet, Hashable, Iterable, List, Mapping,
                    Optional, Sequence, Set, Tuple)

from repro.core.aggregators import Aggregator
from repro.errors import ProgramError
from repro.partition.fragment import Fragment, PartitionedGraph

Node = Hashable


class FragmentContext:
    """Mutable per-fragment state handed to PEval/IncEval.

    - :attr:`values` maps every locally present node to its status variable
      (the update parameters are the subset on the candidate set).
    - :attr:`changed` records nodes whose value changed since the last message
      derivation; the engine ships the changed candidates and clears it.
    - :attr:`scratch` is free-form program-private storage that persists
      across rounds (e.g. CC's component index, CF's gradient accumulators).
    - :attr:`work` accumulates abstract work units for the cost model.
    """

    __slots__ = ("fragment", "aggregator", "values", "changed", "scratch",
                 "work", "round")

    def __init__(self, fragment: Fragment, aggregator: Aggregator,
                 init_values: Mapping[Node, Any]):
        self.fragment = fragment
        self.aggregator = aggregator
        self.values: Dict[Node, Any] = dict(init_values)
        self.changed: Set[Node] = set()
        self.scratch: Dict[str, Any] = {}
        self.work = 0
        self.round = 0

    # -- status variable access ---------------------------------------
    def get(self, v: Node) -> Any:
        try:
            return self.values[v]
        except KeyError:
            raise ProgramError(
                f"node {v!r} has no status variable on fragment "
                f"{self.fragment.fid}") from None

    def set(self, v: Node, value: Any) -> bool:
        """Assign ``value`` to ``v``'s status variable; track the change.

        Returns ``True`` iff the value actually changed.
        """
        if v not in self.values:
            raise ProgramError(
                f"node {v!r} has no status variable on fragment "
                f"{self.fragment.fid}")
        if self.values[v] == value:
            return False
        self.values[v] = value
        self.changed.add(v)
        return True

    def update(self, v: Node, *incoming: Any) -> bool:
        """Aggregate ``incoming`` into ``v`` via ``f_aggr``; track
        the change."""
        return self.set(v, self.aggregator.combine(self.get(v), incoming))

    def set_silent(self, v: Node, value: Any) -> None:
        """Assign without change tracking.

        Used by accumulative programs to reset a shipped delta inside
        :meth:`PIEProgram.emit` without re-marking the node as changed.
        """
        if v not in self.values:
            raise ProgramError(
                f"node {v!r} has no status variable on fragment "
                f"{self.fragment.fid}")
        self.values[v] = value

    def add_work(self, units: int = 1) -> None:
        """Account ``units`` of abstract computation for the cost model."""
        self.work += units

    def take_work(self) -> int:
        units, self.work = self.work, 0
        return units

    def take_changed(self) -> Set[Node]:
        changed, self.changed = self.changed, set()
        return changed


class PIEProgram(abc.ABC):
    """A PIE program ``rho = (PEval, IncEval, Assemble)`` for a
    query class Q."""

    #: the aggregate function f_aggr shared by PEval and IncEval
    aggregator: Aggregator

    #: True when correctness requires bounded staleness (the paper: CF only)
    needs_bounded_staleness: bool = False
    #: default staleness bound c when bounded staleness is required
    default_staleness_bound: int = 5
    #: True when the value domain is finite given a graph (condition T1)
    finite_domain: bool = True
    #: True when the program provides vectorized dense kernels
    #: (``dense_peval``/``dense_inceval`` over a :class:`DenseContext`)
    dense_capable: bool = False
    #: numpy dtype name of the dense status-variable array
    dense_dtype: str = "float64"
    #: True when ``ship_set``/``destinations`` are pure functions of the
    #: partition, letting engines memoize routing per fragment + program
    #: class; set False when routing depends on instance state (e.g. CF's
    #: configurable aggregation topology)
    cacheable_routes: bool = True

    @property
    def reship_capable(self) -> bool:
        """True when peers may re-ship their full border state at-will.

        Surgical recovery re-sends each survivor's current ship-set values
        to a respawned worker; that is only sound when delivering a value
        twice is a no-op.  Idempotent lattice aggregators (Min/Max)
        qualify; accumulative ones (Sum) do not — their ``emit`` hooks
        ship-and-reset deltas, so a re-send would double-count (and the
        emit itself is destructive).  Programs with custom non-idempotent
        ``emit``/``apply_incoming`` semantics should override this.
        """
        return not getattr(self.aggregator, "accumulative", False)

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------
    def candidates(self, frag: Fragment) -> FrozenSet[Node]:
        """The candidate set ``C_i`` whose variables are update parameters.

        Defaults to every node shared with another fragment, which is correct
        under both edge-cut and vertex-cut.  Programs may restrict it (the
        paper uses ``F_i.O`` for CC/SSSP under edge-cut).
        """
        return frag.shared_nodes

    def ship_set(self, frag: Fragment) -> FrozenSet[Node]:
        """Nodes whose changed values are shipped to co-hosting fragments.

        Defaults to every candidate that resides somewhere else.  Accumulative
        programs typically restrict this to mirror copies.
        """
        return frozenset(v for v in self.candidates(frag)
                         if frag.locations(v))

    @abc.abstractmethod
    def init_values(self, frag: Fragment, query: Any) -> Dict[Node, Any]:
        """Initial status variables for every locally present node."""

    # ------------------------------------------------------------------
    # the three functions
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def peval(self, frag: Fragment, ctx: FragmentContext, query: Any) -> None:
        """Sequential batch algorithm computing ``Q(F_i)`` (round 0)."""

    @abc.abstractmethod
    def inceval(self, frag: Fragment, ctx: FragmentContext,
                activated: Set[Node], query: Any) -> None:
        """Sequential incremental algorithm computing ``Q(F_i ⊕ M_i)``.

        ``activated`` is the set of nodes whose update parameter changed when
        the aggregated messages ``M_i = f_aggr(B ∪ C_i.x̄)`` were applied; the
        new values are already visible through ``ctx``.
        """

    @abc.abstractmethod
    def assemble(self, pg: PartitionedGraph,
                 contexts: Sequence[FragmentContext], query: Any) -> Any:
        """Collect the partial results into the final answer ``Q(G)``."""

    # ------------------------------------------------------------------
    # message hooks (defaults cover lattice aggregators)
    # ------------------------------------------------------------------
    def emit(self, frag: Fragment, ctx: FragmentContext, v: Node) -> Any:
        """Payload to ship for changed node ``v``; default: its value.

        Accumulative programs override this to ship-and-reset deltas.
        """
        return ctx.get(v)

    def destinations(self, pg: PartitionedGraph, frag: Fragment,
                     v: Node) -> Sequence[int]:
        """Fragments that receive ``v``'s changed value.

        Default: every other fragment where ``v`` resides (the routing index
        ``I_i``).  Accumulative programs ship deltas to the owner only, so a
        delta is consumed exactly once.
        """
        return frag.locations(v)

    def should_ship(self, frag: Fragment, ctx: FragmentContext,
                    v: Node) -> bool:
        """Whether ``v``'s changed value is worth a message right now.

        Lattice programs ship every improvement (default).  Accumulative
        programs may hold back sub-threshold deltas (Maiter-style), trading
        a bounded residual for far less traffic.
        """
        return True

    def apply_incoming(self, frag: Fragment, ctx: FragmentContext, v: Node,
                       payloads: Sequence[Any]) -> bool:
        """Apply buffered payloads for node ``v``; return True if changed.

        Default: aggregate through ``f_aggr`` (``M_i = f_aggr(B ∪ C_i.x̄)``).
        """
        return ctx.update(v, *payloads)

    # ------------------------------------------------------------------
    # streaming updates (the paper's future-work extension)
    # ------------------------------------------------------------------
    def inc_update(self, frag: Fragment, ctx: FragmentContext,
                   inserted: Sequence[Tuple[Node, Node, float]],
                   query: Any) -> Set[Node]:
        """Integrate locally materialised edge insertions into the state.

        Called by :class:`repro.streaming.StreamingSession` after the
        fragment graph has been extended; returns the nodes IncEval should
        be (re)activated from.  Programs that support streaming override
        this; the default declares the program non-streamable.
        """
        raise ProgramError(
            f"{self.name} does not support streaming updates")

    # ------------------------------------------------------------------
    # convergence support (conditions T1-T3, Section 4.1)
    # ------------------------------------------------------------------
    def leq(self, a: Any, b: Any) -> bool:
        """Partial order on status-variable values: ``a <=_p b``.

        ``a <=_p b`` means ``a`` is at least as advanced as ``b`` (e.g. a
        smaller distance under ``min``).  Defaults to the aggregator's order.
        """
        return self.aggregator.leq(a, b)

    def value_size_bytes(self, value: Any) -> int:
        """Approximate wire size of one shipped value
        (communication metric)."""
        return 16

    # ------------------------------------------------------------------
    # vectorized fast path (opt-in; see docs/performance.md)
    # ------------------------------------------------------------------
    def dense_peval(self, frag: Fragment, ctx: "FragmentContext",
                    query: Any) -> None:
        """Vectorized batch algorithm over ``ctx.array`` (round 0).

        Only called when :attr:`dense_capable` is True; must produce the
        same Assemble output as :meth:`peval` (the equivalence tests
        enforce it).
        """
        raise ProgramError(f"{self.name} has no dense PEval")

    def dense_inceval(self, frag: Fragment, ctx: "FragmentContext",
                      activated_lids: Any, query: Any) -> None:
        """Vectorized incremental step; ``activated_lids`` is an int
        array of local ids whose update parameter just changed."""
        raise ProgramError(f"{self.name} has no dense IncEval")

    def dense_emit(self, frag: Fragment, ctx: "FragmentContext",
                   lids: Any) -> Any:
        """Payload array to ship for the changed local ids ``lids``."""
        return ctx.array[lids]

    def dense_should_ship(self, frag: Fragment, ctx: "FragmentContext",
                          lids: Any) -> Any:
        """Boolean keep-mask over ``lids``; default ships everything."""
        import numpy as np
        return np.ones(len(lids), dtype=bool)

    def dense_apply_incoming(self, frag: Fragment, ctx: "FragmentContext",
                             lids: Any, payloads: Any) -> Any:
        """Aggregate incoming payload arrays; return changed unique lids."""
        from repro.core.dense import apply_aggregated
        return apply_aggregated(self.aggregator, ctx.array, lids, payloads)

    def dense_assemble(self, pg: PartitionedGraph, contexts: Sequence[Any],
                       query: Any) -> Any:
        """Assemble from dense contexts; default: owner-fragment values."""
        from repro.core.dense import assemble_owner_values
        return assemble_owner_values(pg, contexts)

    # ------------------------------------------------------------------
    def make_context(self, frag: Fragment, query: Any) -> FragmentContext:
        """Build the initial per-fragment context (engine entry point)."""
        init = self.init_values(frag, query)
        missing = [v for v in frag.graph.nodes if v not in init]
        if missing:
            raise ProgramError(
                f"init_values missed {len(missing)} local nodes on fragment "
                f"{frag.fid} (e.g. {missing[0]!r})")
        return FragmentContext(frag, self.aggregator, init)

    def make_dense_context(self, frag: Fragment,
                           query: Any) -> FragmentContext:
        """Build the array-backed context for the vectorized path."""
        from repro.core.dense import DenseContext
        ctx = DenseContext(frag, self.aggregator, dtype=self.dense_dtype)
        self.dense_seed(frag, ctx, query)
        return ctx

    def dense_seed(self, frag: Fragment, ctx: Any, query: Any) -> None:
        """Fill ``ctx.array`` with the initial status variables.

        The default routes through :meth:`init_values` (a Python dict),
        which is correct but pays a per-node loop; dense-capable programs
        override this with a direct array fill.
        """
        init = self.init_values(frag, query)
        missing = [v for v in frag.graph.nodes if v not in init]
        if missing:
            raise ProgramError(
                f"init_values missed {len(missing)} local nodes on fragment "
                f"{frag.fid} (e.g. {missing[0]!r})")
        ctx.load_values(init)

    @property
    def name(self) -> str:
        return type(self).__name__
