"""Empirical bounded-incrementality checks for IncEval (paper, Section 3).

The paper credits much of AAP's speed-up to *bounded* incremental
algorithms: *"IncEval is bounded if ... it computes ∆O_i in cost that can
be expressed as a function in |M_i| + |∆O_i|, the size of changes in the
input and output"* — i.e. the cost of a round tracks the size of the
change, not the size of the (possibly big) fragment.

:func:`measure_incrementality` probes a converged program with single-value
perturbations of different magnitudes and records (|M| + |∆O|, work) pairs;
:func:`check_bounded` fits them and reports whether work scales with the
change (bounded) or with the fragment (unbounded).  This is an empirical
falsifier in the spirit of :mod:`repro.core.convergence`: it can expose an
accidentally unbounded IncEval (e.g. one that rescans the whole fragment
per round), and gives evidence — not proof — of boundedness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence, Tuple

from repro.core.engine import Engine
from repro.core.fixpoint import ScheduledExecutor
from repro.core.messages import Message
from repro.core.pie import PIEProgram
from repro.errors import ConvergenceError
from repro.partition.fragment import PartitionedGraph


@dataclass
class Probe:
    """One perturbation experiment on a converged fragment."""

    wid: int
    #: |M|: perturbed update parameters
    input_change: int
    #: |∆O|: status variables whose value changed in response
    output_change: int
    #: work units IncEval spent
    work: int

    @property
    def change(self) -> int:
        return self.input_change + self.output_change


@dataclass
class BoundednessReport:
    """Outcome of the boundedness measurement."""

    probes: List[Probe] = field(default_factory=list)
    fragment_size: int = 0

    @property
    def max_work_per_change(self) -> float:
        ratios = [p.work / max(p.change, 1) for p in self.probes]
        return max(ratios) if ratios else 0.0

    def zero_change_work(self) -> int:
        """Work spent on probes that changed nothing (stale re-delivery)."""
        return max((p.work for p in self.probes if p.output_change == 0),
                   default=0)

    def looks_bounded(self, slack: float = 8.0) -> bool:
        """True when no probe's work exceeds ``slack * (|M| + |∆O| + 1)``
        and stale re-deliveries cost (next to) nothing.

        ``slack`` absorbs the constant factor of the incremental algorithm
        (heap operations per relaxation, root-link fan-out, ...).
        """
        if not self.probes:
            return True
        if self.zero_change_work() > slack:
            return False
        return all(p.work <= slack * (p.change + 1) for p in self.probes)


def measure_incrementality(program: PIEProgram, pg: PartitionedGraph,
                           query: Any,
                           perturbations: Sequence[Tuple[Any, Any]],
                           wid: int = 0) -> BoundednessReport:
    """Converge the program, then probe worker ``wid`` with synthetic
    messages and record how much work each change triggers.

    ``perturbations`` are ``(node, value)`` pairs; each is delivered as a
    one-entry message to ``wid`` on an otherwise converged state.  Nodes
    must be local to fragment ``wid``.
    """
    engine = Engine(program, pg, query)
    ex = ScheduledExecutor(engine)
    ex.start()
    ex.drain()
    frag = pg.fragments[wid]
    ctx = engine.contexts[wid]
    report = BoundednessReport(
        fragment_size=frag.graph.num_nodes + frag.graph.num_edges)
    round_no = ex.rounds[wid]
    for node, value in perturbations:
        if node not in ctx.values:
            raise ConvergenceError(
                f"perturbation target {node!r} is not local to fragment "
                f"{wid}")
        before = dict(ctx.values)
        msg = Message(src=(wid + 1) % pg.num_fragments, dst=wid,
                      round=round_no, entries=((node, value),))
        out = engine.run_inceval(wid, [msg], round_no=round_no)
        round_no += 1
        output_change = sum(1 for v, val in ctx.values.items()
                            if before[v] != val)
        report.probes.append(Probe(
            wid=wid, input_change=1, output_change=output_change,
            work=out.work))
    return report
