"""Simultaneous fixpoint semantics with explicit schedules (Section 4.1).

The paper models AAP as the fixpoint operator

    R_i^0     = PEval(Q, F_i^0[x̄_i])                      (2)
    R_i^{r+1} = IncEval(Q, R_i^r, F_i^r[x̄_i], M_i)        (3)

A *run* is a sequence of worker activations.  :class:`ScheduledExecutor`
executes equations (2)/(3) directly under an arbitrary explicit schedule —
no clocks, no costs — which gives tests precise control over activation
order.  The Church-Rosser tests compare its results across schedules and
against the timed runtimes.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

from repro.core.engine import Engine
from repro.core.messages import Message
from repro.errors import TerminationError


class ScheduledExecutor:
    """Run a PIE program round-by-round under an explicit schedule.

    Message delivery is immediate (each derived message lands in the
    destination buffer before the next scheduled activation), so a schedule
    fully determines the run.
    """

    def __init__(self, engine: Engine):
        self.engine = engine
        m = engine.num_workers
        self.buffers: List[List[Message]] = [[] for _ in range(m)]
        self.rounds = [0] * m
        self.total_messages = 0
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Run PEval everywhere (the simultaneous round 0)."""
        if self._started:
            raise TerminationError("executor already started")
        self._started = True
        outs = [self.engine.run_peval(wid)
                for wid in range(self.engine.num_workers)]
        for out in outs:
            self.rounds[out.wid] += 1
            self._deliver(out.messages)

    def step(self, wid: int) -> bool:
        """Activate worker ``wid`` once (one IncEval round).

        Returns ``False`` when the worker had an empty buffer (no round ran).
        """
        if not self._started:
            raise TerminationError("call start() before step()")
        batch, self.buffers[wid] = self.buffers[wid], []
        if not batch:
            return False
        out = self.engine.run_inceval(wid, batch, round_no=self.rounds[wid])
        self.rounds[wid] += 1
        self._deliver(out.messages)
        return True

    def _deliver(self, messages: Iterable[Message]) -> None:
        for msg in messages:
            self.buffers[msg.dst].append(msg)
            self.total_messages += 1

    def superstep(self) -> bool:
        """One strict BSP superstep: every worker consumes exactly the
        messages produced by the previous superstep, simultaneously.

        Returns ``False`` when no worker had messages (fixpoint reached).
        """
        if not self._started:
            raise TerminationError("call start() before superstep()")
        snapshots = [list(b) for b in self.buffers]
        for wid in range(len(self.buffers)):
            self.buffers[wid] = []
        progressed = False
        for wid, batch in enumerate(snapshots):
            if not batch:
                continue
            out = self.engine.run_inceval(wid, batch,
                                          round_no=self.rounds[wid])
            self.rounds[wid] += 1
            self._deliver(out.messages)
            progressed = True
        return progressed

    def run_supersteps(self, max_supersteps: int = 1_000_000) -> int:
        """Strict BSP execution to fixpoint; returns the superstep count."""
        if not self._started:
            self.start()
        count = 0
        while self.superstep():
            count += 1
            if count > max_supersteps:
                raise TerminationError(
                    f"no fixpoint after {max_supersteps} supersteps")
        return count

    # ------------------------------------------------------------------
    @property
    def quiescent(self) -> bool:
        """True at the simultaneous fixpoint (all buffers empty)."""
        return all(not b for b in self.buffers)

    def run_schedule(self, schedule: Sequence[int],
                     then_drain: bool = True) -> Any:
        """Start, apply ``schedule``, optionally drain, then assemble."""
        self.start()
        for wid in schedule:
            self.step(wid)
        if then_drain:
            self.drain()
        return self.engine.assemble()

    def drain(self, max_steps: int = 1_000_000) -> int:
        """Round-robin until quiescent; returns the number of rounds run."""
        if not self._started:
            self.start()
        steps = 0
        while not self.quiescent:
            progressed = False
            for wid in range(self.engine.num_workers):
                if self.buffers[wid]:
                    self.step(wid)
                    progressed = True
                    steps += 1
                    if steps > max_steps:
                        raise TerminationError(
                            f"no fixpoint after {max_steps} rounds")
            if not progressed:  # pragma: no cover - defensive
                break
        return steps

    def assemble(self) -> Any:
        return self.engine.assemble()


def run_sequential_fixpoint(engine: Engine,
                            max_steps: int = 1_000_000) -> Any:
    """Shorthand: PEval everywhere, round-robin IncEval to fixpoint, Assemble.

    This is the canonical *reference run* — a BSP-like logical execution that
    correct monotone programs must agree with under any model.
    """
    ex = ScheduledExecutor(engine)
    ex.start()
    ex.drain(max_steps=max_steps)
    return ex.assemble()
