"""Aggregate functions ``f_aggr`` for update parameters.

The paper resolves conflicting updates to the same status variable with a
user-declared aggregate function (Section 2): *"PEval also specifies an
aggregate function f_aggr, e.g., min and max, to resolve conflicts when
multiple workers attempt to assign different values to the same update
parameter."*

Two families matter in practice and have different shipping semantics:

- **Lattice aggregators** (:class:`Min`, :class:`Max`): idempotent joins.
  Values only move monotonically along a partial order, which is exactly what
  conditions T2/T3 require; re-delivering a value is harmless.
- **Accumulative aggregators** (:class:`Sum`): Maiter-style delta
  accumulation.  A shipped delta must be consumed exactly once, so programs
  using them reset the local accumulator when a message is derived.

:class:`LatestByVersion` supports CF-style versioned values (the paper's
``(f, delta, t)`` triples aggregated by ``max`` on the timestamp).
"""

from __future__ import annotations

import abc
from typing import Any, Sequence, Tuple

from repro.errors import ProgramError


class Aggregator(abc.ABC):
    """Combines the current value of an update parameter with incoming ones."""

    name = "aggregator"
    #: accumulative aggregators use ship-and-reset message semantics
    accumulative = False

    @abc.abstractmethod
    def combine(self, current: Any, incoming: Sequence[Any]) -> Any:
        """Aggregate ``incoming`` values into ``current``; return new value."""

    def identity(self) -> Any:
        """Neutral element (the reset value for accumulative aggregators)."""
        raise ProgramError(f"{self.name} has no identity element")

    def leq(self, a: Any, b: Any) -> bool:
        """Partial order ``a <=_p b`` (``a`` at least as advanced as ``b``).

        Used by the convergence checkers (T2/T3).  Lattice aggregators
        override it; returns ``NotImplemented``-style False by default.
        """
        return a == b

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Min(Aggregator):
    """Keep the minimum value; the paper's ``f_aggr`` for CC and SSSP."""

    name = "min"

    def combine(self, current: Any, incoming: Sequence[Any]) -> Any:
        best = current
        for val in incoming:
            if val < best:
                best = val
        return best

    def leq(self, a: Any, b: Any) -> bool:
        return a <= b


class Max(Aggregator):
    """Keep the maximum value."""

    name = "max"

    def combine(self, current: Any, incoming: Sequence[Any]) -> Any:
        best = current
        for val in incoming:
            if val > best:
                best = val
        return best

    def leq(self, a: Any, b: Any) -> bool:
        return a >= b


class Sum(Aggregator):
    """Accumulate numeric deltas (Maiter-style); identity is 0.

    Used by PageRank: incoming messages carry score deltas which are *added*
    to the pending update of the receiving node.
    """

    name = "sum"
    accumulative = True

    def __init__(self, zero: float = 0.0):
        self._zero = zero

    def combine(self, current: Any, incoming: Sequence[Any]) -> Any:
        total = current
        for val in incoming:
            total = total + val
        return total

    def identity(self) -> Any:
        return self._zero


class LatestByVersion(Aggregator):
    """Keep the value with the highest version tag.

    Values are ``(version, payload)`` tuples; ties resolved deterministically
    by payload representation so that runs are schedule-independent when
    versions collide.
    """

    name = "latest"

    def combine(self, current: Tuple[int, Any],
                incoming: Sequence[Tuple[int, Any]]) -> Tuple[int, Any]:
        best = current
        for val in incoming:
            if val[0] > best[0] or (val[0] == best[0]
                                    and repr(val[1]) > repr(best[1])):
                best = val
        return best

    def leq(self, a: Tuple[int, Any], b: Tuple[int, Any]) -> bool:
        return a[0] >= b[0]
