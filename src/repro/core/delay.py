"""Delay-stretch policies: the heart of the AAP model.

Each (virtual) worker ``P_i`` maintains a *delay stretch* ``DS_i``: after
finishing a round, the worker is put on hold for ``DS_i`` time to accumulate
updates before starting the next round (Section 3).  A
:class:`DelayPolicy` computes ``DS_i`` from the worker's snapshot
(:class:`WorkerView`).  The runtime re-evaluates the policy whenever the
worker's state changes (round completion, message arrival, progress of other
workers), as the paper prescribes.

BSP, AP and SSP are special cases (paper, "Special cases"):

====  =====================================================================
BSP   ``DS_i = +inf`` if ``r_i > r_min`` else ``0`` — global barrier.
AP    ``DS_i = 0`` always — run as soon as the buffer is non-empty.
SSP   ``DS_i = +inf`` if ``r_i > r_min + c`` else ``0`` — bounded staleness.
AAP   Eq. (1): dynamic ``DS_i`` from staleness ``eta_i``, target ``L_i``,
      predicted round time ``t_i`` and arrival rate ``s_i``.
====  =====================================================================

``r_min``/``r_max`` are computed over workers that still have pending work
(suspended-or-runnable); finished workers do not pin the bound, which keeps
the emulation deadlock-free while preserving barrier semantics among workers
that actually participate.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import RuntimeConfigError

INF = math.inf


@dataclass
class WorkerView:
    """Read-only snapshot of one worker's progress handed to a policy."""

    wid: int
    #: rounds completed at this worker (PEval is round 0)
    round: int
    #: staleness eta_i: message batches currently buffered
    eta: int
    #: smallest round among workers with pending work
    rmin: int
    #: largest round among workers with pending work
    rmax: int
    #: time this worker has already been idle since its last round
    idle_time: float
    #: current (simulated or wall-clock) time
    now: float
    #: predicted duration t_i of the next round
    t_pred: float
    #: predicted message arrival rate s_i at this worker
    s_pred: float
    #: average arrival rate across the fleet
    fleet_avg_rate: float
    #: number of (virtual) workers m
    num_workers: int
    #: number of fragments that can send messages to this worker
    num_peers: int = 1
    #: average predicted round time across the fleet
    fleet_avg_round_time: float = 1.0


class DelayPolicy(abc.ABC):
    """Computes the delay stretch ``DS_i`` for a worker snapshot.

    A policy instance is shared by all workers of one run, so stateful
    policies (Hsync) can coordinate globally.
    """

    name = "policy"

    @abc.abstractmethod
    def delay(self, view: WorkerView) -> float:
        """Return ``DS_i`` in time units; ``math.inf`` means "suspend until
        the next state change re-evaluates the policy"."""

    def decide(self, view: WorkerView) -> Tuple[float, Dict[str, Any]]:
        """``DS_i`` plus the decision's audit details.

        The observability layer records these as ``ds_decision`` events
        ("why did worker *i* wait?").  The default wraps :meth:`delay`;
        policies with interesting internals (AAP) override it, and their
        :meth:`delay` must return exactly ``decide(view)[0]`` so attaching
        an observer never changes scheduling.
        """
        return self.delay(view), {}

    def on_round_complete(self, view: WorkerView, duration: float) -> None:
        """Hook invoked when any worker finishes a round (for Hsync)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class APPolicy(DelayPolicy):
    """Asynchronous Parallel: never wait (``DS_i = 0``)."""

    name = "AP"

    def delay(self, view: WorkerView) -> float:
        return 0.0


class BSPPolicy(DelayPolicy):
    """Bulk Synchronous Parallel: no worker may outpace the slowest."""

    name = "BSP"

    def delay(self, view: WorkerView) -> float:
        return 0.0 if view.round <= view.rmin else INF


class SSPPolicy(DelayPolicy):
    """Stale Synchronous Parallel with fixed staleness bound ``c``."""

    name = "SSP"

    def __init__(self, staleness_bound: int = 1):
        if staleness_bound < 0:
            raise RuntimeConfigError("staleness_bound must be >= 0")
        self.staleness_bound = staleness_bound

    def delay(self, view: WorkerView) -> float:
        return 0.0 if view.round <= view.rmin + self.staleness_bound else INF

    def __repr__(self) -> str:
        return f"SSPPolicy(c={self.staleness_bound})"


class AAPPolicy(DelayPolicy):
    """Adaptive Asynchronous Parallel: Eq. (1) of the paper.

    ::

        DS_i = +inf              if not S(r_i, rmin, rmax) or eta_i = 0
        DS_i = T_L - T_idle      if S and 1 <= eta_i < L_i
        DS_i = 0                 if S and eta_i >= L_i

    where ``L_i`` predicts how many messages to accumulate: when the arrival
    rate ``s_i`` is above the fleet average, ``L_i = max(eta_i, L_bottom) +
    dt * s_i`` with ``dt`` a fraction of the predicted round time ``t_i``; and
    ``T_L = (L_i - eta_i) / s_i`` estimates the remaining wait.  ``T_idle``
    (time already idled) prevents indefinite waiting.

    Parameters
    ----------
    l_bottom:
        The user-settable uniform bound L⊥ (Appendix B initialises it to 60%
        of the workers for CF).  Absolute number of message batches.
    l_bottom_fraction:
        Alternative to ``l_bottom`` as a fraction of the worker's potential
        *senders* (its fragment neighbours); the effective bound is the max
        of both.  This is what groups fast workers into implicit BSP rounds.
    dt_fraction:
        The fraction of ``t_i`` used as the accumulation window ``dt``.
    wait_cap_fraction:
        Upper bound on any computed wait, as a multiple of the predicted
        round time ``t_i`` — stragglers may hold up to one of their (long)
        rounds to accumulate, fast workers only a short time.  Guards against
        stale arrival-rate estimates in the endgame.
    staleness_bound:
        Optional bound ``c``; when set, the predicate ``S`` is false whenever
        the worker is the fastest and exceeds ``r_min`` by more than ``c``
        (bounded staleness for CF-like programs).
    predicate:
        Full override of ``S(r_i, rmin, rmax)``.
    """

    name = "AAP"

    def __init__(self, l_bottom: int = 0, l_bottom_fraction: float = 1.0,
                 dt_fraction: float = 0.5, wait_cap_fraction: float = 1.0,
                 staleness_bound: Optional[int] = None,
                 predicate: Optional[Callable[[int, int, int], bool]] = None):
        if l_bottom < 0 or not 0.0 <= l_bottom_fraction <= 1.0:
            raise RuntimeConfigError("invalid L_bottom configuration")
        if dt_fraction < 0 or wait_cap_fraction < 0:
            raise RuntimeConfigError("dt/wait_cap fractions must be >= 0")
        self.l_bottom = l_bottom
        self.l_bottom_fraction = l_bottom_fraction
        self.dt_fraction = dt_fraction
        self.wait_cap_fraction = wait_cap_fraction
        self.staleness_bound = staleness_bound
        self.predicate = predicate

    def _s_predicate(self, r: int, rmin: int, rmax: int) -> bool:
        if self.predicate is not None:
            return self.predicate(r, rmin, rmax)
        if self.staleness_bound is None:
            return True
        return not (r >= rmax and r - rmin > self.staleness_bound)

    def effective_l_bottom(self, num_peers: int) -> float:
        """L⊥ adjusted with the number of potential senders."""
        return max(float(self.l_bottom),
                   self.l_bottom_fraction * max(num_peers, 1))

    def delay(self, view: WorkerView) -> float:
        return self.decide(view)[0]

    def decide(self, view: WorkerView) -> Tuple[float, Dict[str, Any]]:
        if not self._s_predicate(view.round, view.rmin, view.rmax):
            return INF, {"reason": "predicate_false"}
        if view.eta == 0:
            return INF, {"reason": "empty_buffer"}
        l_bottom = self.effective_l_bottom(view.num_peers)
        s = view.s_pred
        target = l_bottom
        # the accumulation window: a fraction of one fleet-typical round,
        # i.e. long enough to catch the fast workers' next burst but never
        # scaled by this worker's own (possibly straggling) round time
        window = self.dt_fraction * min(view.t_pred,
                                        view.fleet_avg_round_time)
        if s > 0 and not math.isinf(s) and s > view.fleet_avg_rate:
            target = max(view.eta, l_bottom) + window * s
        why = {"l_bottom": l_bottom, "target": target, "window": window}
        if view.eta >= target:
            return 0.0, {"reason": "target_met", **why}
        if s <= 0.0 or math.isinf(s):
            # no (finite) arrival estimate: do not hold the worker hostage
            return 0.0, {"reason": "no_arrival_estimate", **why}
        if s * window < 1.0:
            # Example 4's rule: no messages are predicted to arrive within
            # the accumulation window, so waiting cannot pay off
            return 0.0, {"reason": "window_below_one_message", **why}
        t_wait = (target - view.eta) / s
        t_wait = min(t_wait, self.wait_cap_fraction
                     * min(view.t_pred, view.fleet_avg_round_time))
        return max(t_wait - view.idle_time, 0.0), \
            {"reason": "accumulate", **why}

    def __repr__(self) -> str:
        return (f"AAPPolicy(L_bottom={self.l_bottom}, "
                f"frac={self.l_bottom_fraction}, dt={self.dt_fraction}, "
                f"c={self.staleness_bound})")


class HsyncPolicy(DelayPolicy):
    """PowerSwitch-style Hsync: globally switch between AP and BSP.

    The published heuristic predicts throughput under both modes; we use the
    observable proxies the prediction is built from: in **BSP** mode, a high
    straggler ratio (slowest/mean round time) argues for AP; in **AP** mode,
    high average staleness at trigger time (many superseded message batches)
    argues for BSP.  Each switch costs ``switch_cost`` time units, paid by
    every worker on its next round — the explicit cost AAP avoids.
    """

    name = "Hsync"

    def __init__(self, straggler_threshold: float = 2.0,
                 staleness_threshold: float = 3.0,
                 window: int = 8, switch_cost: float = 1.0):
        self.straggler_threshold = straggler_threshold
        self.staleness_threshold = staleness_threshold
        self.window = window
        self.switch_cost = switch_cost
        self.mode = "AP"
        self.switches = 0
        self._durations = []
        self._etas = []
        self._paid = {}

    def on_round_complete(self, view: WorkerView, duration: float) -> None:
        self._durations.append(duration)
        self._etas.append(view.eta)
        if len(self._durations) >= self.window:
            self._maybe_switch()
            self._durations.clear()
            self._etas.clear()

    def _maybe_switch(self) -> None:
        mean_dur = sum(self._durations) / len(self._durations)
        straggle = (max(self._durations) / mean_dur) if mean_dur > 0 else 1.0
        mean_eta = sum(self._etas) / len(self._etas)
        if self.mode == "BSP" and straggle > self.straggler_threshold:
            self._switch("AP")
        elif self.mode == "AP" and mean_eta > self.staleness_threshold:
            self._switch("BSP")

    def _switch(self, mode: str) -> None:
        self.mode = mode
        self.switches += 1

    def delay(self, view: WorkerView) -> float:
        if self.mode == "BSP":
            base = 0.0 if view.round <= view.rmin else INF
        else:
            base = 0.0
        if math.isinf(base):
            # a worker blocked at the barrier has not paid anything yet;
            # it must still be charged when it is eventually released
            return base
        penalty = 0.0
        if self.switches and self._paid.get(view.wid) != self.switches:
            # each worker pays the switching cost once per switch, on the
            # same decision that actually adds the penalty
            self._paid[view.wid] = self.switches
            penalty = self.switch_cost
        return base + penalty

    def __repr__(self) -> str:
        return f"HsyncPolicy(mode={self.mode!r}, switches={self.switches})"
