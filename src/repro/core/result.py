"""Run results: the answer plus everything the evaluation section measures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # avoid a package-level import cycle with repro.runtime
    from repro.runtime.metrics import RunMetrics


@dataclass
class RunResult:
    """Outcome of parallelising a PIE program under one model.

    ``answer`` is ``rho(Q, G)`` — the assembled result.  ``metrics`` carries
    the measured quantities (response time, communication, rounds); ``trace``
    optionally carries the per-worker timing intervals used to draw the
    paper's Fig. 1 / Fig. 7 diagrams.
    """

    answer: Any
    mode: str
    metrics: "RunMetrics"
    trace: Optional[Any] = None
    #: per-worker rounds at termination (r_i of the fixpoint)
    rounds: List[int] = field(default_factory=list)
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def time(self) -> float:
        """Response time (simulated time units, or seconds for threaded)."""
        return self.metrics.makespan

    @property
    def communication_bytes(self) -> int:
        return self.metrics.total_bytes

    def __repr__(self) -> str:
        return (f"RunResult(mode={self.mode!r}, time={self.time:.3f}, "
                f"rounds={self.rounds}, msgs={self.metrics.total_messages})")
