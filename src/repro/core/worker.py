"""Per-worker runtime state shared by the simulated and threaded runtimes.

A :class:`WorkerState` tracks what Section 3 of the paper attaches to each
virtual worker ``P_i``: its message buffer ``B_x̄_i``, its current round
``r_i``, its status, idle bookkeeping for ``T_idle``, and the predictors that
feed the adjustment function delta.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.messages import MessageBuffer
from repro.core.predictors import ArrivalRatePredictor, RoundTimePredictor


class WorkerStatus(enum.Enum):
    """Lifecycle of a virtual worker between rounds."""

    #: created; PEval has not started yet
    CREATED = "created"
    #: executing PEval or IncEval
    RUNNING = "running"
    #: suspended under a delay stretch (buffer may be non-empty)
    WAITING = "waiting"
    #: finished a round with an empty buffer; flagged inactive to the master
    INACTIVE = "inactive"


class WorkerState:
    """Mutable state of one virtual worker."""

    __slots__ = ("wid", "buffer", "rounds", "status", "idle_since",
                 "round_time", "arrival_rate", "wake_epoch",
                 "busy_time", "idle_time", "suspended_time",
                 "messages_sent", "bytes_sent", "work_done", "host",
                 "wait_started", "last_arrival")

    def __init__(self, wid: int, host: Optional[int] = None):
        self.wid = wid
        self.buffer = MessageBuffer()
        self.rounds = 0
        self.status = WorkerStatus.CREATED
        #: when the worker last stopped computing (for T_idle)
        self.idle_since = 0.0
        self.round_time = RoundTimePredictor()
        self.arrival_rate = ArrivalRatePredictor()
        #: invalidates stale scheduled wake-ups (lazy cancellation)
        self.wake_epoch = 0
        self.busy_time = 0.0
        self.idle_time = 0.0
        self.suspended_time = 0.0
        self.messages_sent = 0
        self.bytes_sent = 0
        self.work_done = 0
        self.host = host if host is not None else wid
        #: when the current work-available-but-waiting period began (or None)
        self.wait_started: Optional[float] = None
        #: when the last message batch arrived (for the T_idle reference)
        self.last_arrival = 0.0

    # ------------------------------------------------------------------
    @property
    def eta(self) -> int:
        """Staleness: buffered message batches."""
        return self.buffer.staleness

    @property
    def pending(self) -> bool:
        """True when the worker still has work to do (counts toward r_min)."""
        if self.status is WorkerStatus.RUNNING:
            return True
        if self.status is WorkerStatus.CREATED:
            return True
        return bool(self.buffer)

    def idle_for(self, now: float) -> float:
        """``T_idle``: unproductive waiting time.

        Measured since the latest of (last round end, last message arrival):
        while updates keep arriving the worker is accumulating productively,
        so the indefinite-waiting guard only starts once the flux pauses.
        """
        if self.status is WorkerStatus.RUNNING:
            return 0.0
        return max(now - max(self.idle_since, self.last_arrival), 0.0)

    def invalidate_wakeups(self) -> int:
        """Bump the wake epoch so previously scheduled wake-ups are ignored."""
        self.wake_epoch += 1
        return self.wake_epoch

    def __repr__(self) -> str:
        return (f"WorkerState(wid={self.wid}, status={self.status.value}, "
                f"round={self.rounds}, eta={self.eta})")
