"""The master's termination protocol (paper, Section 3, phase 3).

Workers that finish a round with an empty buffer flag ``inactive`` to the
master.  When every worker is inactive, the master broadcasts ``terminate``;
each worker answers ``ack`` if it is still inactive, or ``wait`` if it became
active again (a message raced in).  Any ``wait`` aborts the attempt and the
incremental phase resumes; unanimous ``ack`` ends the run.

:class:`TerminationMaster` implements the protocol for the threaded runtime;
the discrete-event simulator does not need it (its event queue makes global
quiescence directly observable) but uses the same inactive-flag semantics.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

from repro.errors import TerminationError


class TerminationMaster:
    """Coordinates termination across ``m`` workers plus in-flight messages.

    Thread-safe.  Also tracks an in-flight message counter so a unanimous
    ``ack`` is only accepted when no message is on the wire (the paper's
    workers cannot be inactive while undelivered designated messages exist,
    because delivery would re-activate them).
    """

    def __init__(self, num_workers: int):
        self._lock = threading.Condition()
        self._inactive = [False] * num_workers
        self._in_flight = 0
        self._terminated = False
        self._errors: List[BaseException] = []
        self.attempts = 0

    # ------------------------------------------------------------------
    # worker-side API
    # ------------------------------------------------------------------
    def abort(self, exc: BaseException) -> None:
        """A worker crashed: record the error and release everybody.

        Termination is forced immediately so the run surfaces the failure
        promptly instead of stalling until the master's timeout.  The first
        recorded error is the one the runtime re-raises; concurrent failures
        are kept (:attr:`errors`) as context instead of overwriting it.
        """
        with self._lock:
            self._errors.append(exc)
            self._terminated = True
            self._lock.notify_all()

    @property
    def aborted(self) -> bool:
        with self._lock:
            return bool(self._errors)

    @property
    def errors(self) -> List[BaseException]:
        """All recorded worker errors, first failure first."""
        with self._lock:
            return list(self._errors)

    def set_inactive(self, wid: int) -> None:
        """Worker ``wid`` reports an empty buffer after a round."""
        with self._lock:
            self._inactive[wid] = True
            self._lock.notify_all()

    def set_active(self, wid: int) -> None:
        """Worker ``wid`` received a message (responds ``wait`` if probed)."""
        with self._lock:
            self._inactive[wid] = False

    def message_sent(self, count: int = 1) -> None:
        with self._lock:
            self._in_flight += count

    def message_delivered(self, count: int = 1) -> None:
        with self._lock:
            self._in_flight -= count
            if self._in_flight < 0:
                raise TerminationError("in-flight counter went negative")
            self._lock.notify_all()

    # ------------------------------------------------------------------
    # master-side API
    # ------------------------------------------------------------------
    def try_terminate(self) -> bool:
        """One broadcast/ack round; True iff all workers acked."""
        with self._lock:
            self.attempts += 1
            if all(self._inactive) and self._in_flight == 0:
                self._terminated = True
                self._lock.notify_all()
                return True
            return False

    def wait_for_termination(self, poll: Callable[[], None] = None,
                             timeout: Optional[float] = None) -> None:
        """Block until unanimous ack (with optional per-iteration ``poll``)."""
        deadline = None
        if timeout is not None:
            import time
            deadline = time.monotonic() + timeout
        with self._lock:
            while not self._terminated:
                if all(self._inactive) and self._in_flight == 0:
                    self._terminated = True
                    self._lock.notify_all()
                    return
                remaining = None
                if deadline is not None:
                    import time
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TerminationError(
                            "timed out waiting for termination")
                self._lock.wait(timeout=min(0.05, remaining)
                                if remaining is not None else 0.05)
                if poll is not None:
                    poll()

    @property
    def terminated(self) -> bool:
        with self._lock:
            return self._terminated

    @property
    def in_flight(self) -> int:
        """Messages announced as sent but not yet delivered."""
        with self._lock:
            return self._in_flight

    def snapshot_flags(self) -> List[bool]:
        with self._lock:
            return list(self._inactive)
