"""Array-backed fragment state for the vectorized fast path.

:class:`DenseContext` is a drop-in variant of
:class:`repro.core.pie.FragmentContext` that stores every status variable
in one numpy array indexed by *local id* (the contiguous ids of the
fragment's cached :class:`~repro.partition.fragment.FragmentCSR` view) and
tracks changes with a boolean mask instead of a Python set.

The scalar API (``get``/``set``/``values``/``changed``) is preserved so
runtimes, checkpoints, and Assemble keep working unchanged; vectorized
kernels bypass it and operate on :attr:`DenseContext.array` /
:attr:`DenseContext.mask` directly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping

import numpy as np

from repro.core.aggregators import Aggregator
from repro.core.pie import FragmentContext, Node, PIEProgram
from repro.errors import PartitionError, ProgramError
from repro.partition.fragment import Fragment, PartitionedGraph


def supports_dense(program: PIEProgram, pg: PartitionedGraph) -> bool:
    """Whether the vectorized fast path applies to ``(program, pg)``.

    Requires the program to declare dense kernels (``dense_capable``) and
    every fragment to admit an array view (non-negative integer node ids).
    Callers fall back to the generic path when this returns ``False``.
    """
    if not getattr(program, "dense_capable", False):
        return False
    try:
        for frag in pg:
            frag.compact()
    except PartitionError:
        return False
    return True


def aggregator_ufunc(agg: Aggregator):
    """The numpy ufunc implementing ``f_aggr``, or ``None`` if unknown."""
    return {"min": np.minimum, "max": np.maximum,
            "sum": np.add}.get(agg.name)


def apply_aggregated(agg: Aggregator, array: np.ndarray,
                     lids: np.ndarray, payloads: np.ndarray) -> np.ndarray:
    """Aggregate ``payloads`` into ``array`` at ``lids`` via ``f_aggr``.

    The vectorized form of ``M_i = f_aggr(B ∪ C_i.x̄)``: duplicate lids are
    combined by the ufunc's unbuffered ``at`` form.  Returns the unique
    lids whose value actually changed.
    """
    ufunc = aggregator_ufunc(agg)
    if ufunc is None:
        raise ProgramError(
            f"aggregator {agg.name!r} has no vectorized form")
    seen = np.zeros(array.size, dtype=bool)
    seen[lids] = True
    uniq = np.nonzero(seen)[0]
    prev = array[uniq]
    ufunc.at(array, lids, payloads)
    return uniq[array[uniq] != prev]


def assemble_owner_values(pg: PartitionedGraph,
                          contexts) -> Dict[Node, Any]:
    """Default dense Assemble: each node's value at its owner fragment.

    Selects owned rows through the fragment's ``owned_mask`` (partitioners
    build ``pg.owner`` from exactly those owned sets, so the mask and the
    owner map agree) and materialises Python scalars in one ``tolist``
    pass per fragment instead of a per-node dict lookup.
    """
    out: Dict[Node, Any] = {}
    for ctx in contexts:
        view = ctx.view
        sel = np.nonzero(view.owned_mask)[0]
        out.update(zip(view.gids[sel].tolist(),
                       ctx.array[sel].tolist()))
    return out


class _DenseValues(Mapping):
    """Read-mostly mapping view over a :class:`DenseContext` array.

    Behaves like the generic context's ``values`` dict for every consumer
    in the tree: ``dict(ctx.values)`` and iteration yield Python scalars,
    ``update`` loads a mapping back into the array, and ``deepcopy``
    (checkpoints) materialises a plain dict.
    """

    __slots__ = ("_ctx",)

    def __init__(self, ctx: "DenseContext"):
        self._ctx = ctx

    def __getitem__(self, v: Node) -> Any:
        lid = self._ctx.view.lid_of.get(v)
        if lid is None:
            raise KeyError(v)
        return self._ctx.array[lid].item()

    def __iter__(self) -> Iterator[Node]:
        return iter(self._ctx.view.nodes)

    def __len__(self) -> int:
        return len(self._ctx.view.nodes)

    def __contains__(self, v: object) -> bool:
        return v in self._ctx.view.lid_of

    def clear(self) -> None:
        """No-op: the array keeps its shape; ``update`` overwrites."""

    def update(self, mapping: Mapping[Node, Any]) -> None:
        self._ctx.load_values(mapping)

    def __deepcopy__(self, memo) -> Dict[Node, Any]:
        arr = self._ctx.array.tolist()
        return {v: arr[i] for i, v in enumerate(self._ctx.view.nodes)}


class _ChangedView:
    """Set-like facade over the changed-lid boolean mask (global ids)."""

    __slots__ = ("_ctx",)

    def __init__(self, ctx: "DenseContext"):
        self._ctx = ctx

    def add(self, v: Node) -> None:
        self._ctx.mask[self._ctx.view.lid_of[v]] = True

    def update(self, nodes: Iterable[Node]) -> None:
        for v in nodes:
            self.add(v)

    def discard(self, v: Node) -> None:
        lid = self._ctx.view.lid_of.get(v)
        if lid is not None:
            self._ctx.mask[lid] = False

    def clear(self) -> None:
        self._ctx.mask[:] = False

    def __iter__(self) -> Iterator[Node]:
        gids = self._ctx.view.gids
        for i in np.nonzero(self._ctx.mask)[0]:
            yield int(gids[i])

    def __len__(self) -> int:
        return int(self._ctx.mask.sum())

    def __bool__(self) -> bool:
        return bool(self._ctx.mask.any())

    def __contains__(self, v: object) -> bool:
        lid = self._ctx.view.lid_of.get(v)
        return lid is not None and bool(self._ctx.mask[lid])

    def __eq__(self, other: object) -> bool:
        try:
            return set(self) == set(other)  # type: ignore[arg-type]
        except TypeError:
            return NotImplemented

    def __repr__(self) -> str:
        return f"_ChangedView({set(self)!r})"


class DenseContext(FragmentContext):
    """Array-backed :class:`FragmentContext` over contiguous local ids.

    - :attr:`array` holds the status variables (``array[lid]``);
    - :attr:`mask` is the changed-tracking boolean mask;
    - :attr:`view` is the fragment's cached CSR view
      (:meth:`Fragment.compact`).

    ``values`` / ``changed`` stay available as compatible facades so
    snapshot seeding, checkpoint capture, and generic Assemble code keep
    working on dense contexts.
    """

    __slots__ = ("view", "array", "mask")

    def __init__(self, fragment: Fragment, aggregator: Aggregator,
                 init_values: "Mapping[Node, Any] | None" = None,
                 dtype: str = "float64"):
        self.fragment = fragment
        self.aggregator = aggregator
        self.scratch = {}
        self.work = 0
        self.round = 0
        view = fragment.compact()
        self.view = view
        self.array = np.empty(len(view), dtype=np.dtype(dtype))
        self.mask = np.zeros(len(view), dtype=bool)
        if init_values is not None:
            self.load_values(init_values)

    # -- facades over the array/mask -----------------------------------
    @property
    def values(self) -> _DenseValues:
        return _DenseValues(self)

    @values.setter
    def values(self, mapping: Mapping[Node, Any]) -> None:
        self.load_values(mapping)

    @property
    def changed(self) -> _ChangedView:
        return _ChangedView(self)

    @changed.setter
    def changed(self, nodes: Iterable[Node]) -> None:
        self.mask[:] = False
        for v in nodes:
            self.mask[self.view.lid_of[v]] = True

    def export_state(self) -> np.ndarray:
        """Owned copy of the status array, for cheap state shipping.

        A multiprocess worker reporting its final state pickles one
        contiguous array instead of materialising a ``node -> scalar``
        dict (which costs a Python-level lookup per node on both ends);
        :meth:`import_state` loads it back into a context built over the
        same fragment, whose local-id order is identical by construction.
        """
        return self.array.copy()

    def import_state(self, array: np.ndarray) -> None:
        """Load an :meth:`export_state` array back into this context."""
        if getattr(array, "shape", None) != self.array.shape:
            raise ProgramError(
                f"dense state shape {getattr(array, 'shape', None)!r} does "
                f"not match fragment {self.fragment.fid} "
                f"({self.array.shape})")
        self.array[:] = array

    def load_values(self, mapping: Mapping[Node, Any]) -> None:
        """Bulk-assign status variables from a ``node -> value`` mapping."""
        arr = self.array
        lid_of = self.view.lid_of
        for v, value in mapping.items():
            lid = lid_of.get(v)
            if lid is None:
                raise ProgramError(
                    f"node {v!r} has no status variable on fragment "
                    f"{self.fragment.fid}")
            arr[lid] = value

    # -- scalar status variable access (generic-path compatibility) ----
    def get(self, v: Node) -> Any:
        lid = self.view.lid_of.get(v)
        if lid is None:
            raise ProgramError(
                f"node {v!r} has no status variable on fragment "
                f"{self.fragment.fid}")
        return self.array[lid].item()

    def set(self, v: Node, value: Any) -> bool:
        lid = self.view.lid_of.get(v)
        if lid is None:
            raise ProgramError(
                f"node {v!r} has no status variable on fragment "
                f"{self.fragment.fid}")
        if self.array[lid] == value:
            return False
        self.array[lid] = value
        self.mask[lid] = True
        return True

    def set_silent(self, v: Node, value: Any) -> None:
        lid = self.view.lid_of.get(v)
        if lid is None:
            raise ProgramError(
                f"node {v!r} has no status variable on fragment "
                f"{self.fragment.fid}")
        self.array[lid] = value

    def take_changed(self):
        gids = self.view.gids
        lids = np.nonzero(self.mask)[0]
        self.mask[:] = False
        return {int(gids[i]) for i in lids}
