"""Empirical checkers for the paper's convergence conditions (Section 4.1).

The monotone condition consists of:

- **T1** — update parameters take values from a finite domain;
- **T2** — IncEval is *contracting*: successive partial results only move
  down the partial order ``<=_p`` within a run;
- **T3** — IncEval is *monotonic* across runs.

T1 is a declaration (:attr:`PIEProgram.finite_domain`).  T2 is checked by
recording every status-variable transition during real runs and verifying it
respects ``program.leq``.  T3 (with T1/T2) implies the Church-Rosser
property, which is what :func:`check_church_rosser` verifies empirically:
many randomly scheduled runs must all converge to the reference answer.
These are falsification harnesses — they can prove a program wrong, and give
statistical evidence it is right.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.engine import Engine
from repro.core.fixpoint import ScheduledExecutor, run_sequential_fixpoint
from repro.core.pie import PIEProgram
from repro.errors import ConvergenceError
from repro.partition.fragment import PartitionedGraph


@dataclass
class ConditionReport:
    """Outcome of checking T1/T2/Church-Rosser for one program + workload."""

    t1_finite_domain: bool
    t2_contracting: bool
    church_rosser: bool
    runs: int
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (self.t1_finite_domain and self.t2_contracting
                and self.church_rosser)


def check_contracting(program: PIEProgram, pg: PartitionedGraph, query: Any,
                      schedule_seed: int = 0,
                      max_steps: int = 100_000) -> List[str]:
    """Run one randomly scheduled execution, asserting every status-variable
    transition moves down the program's partial order (condition T2).

    Accumulative programs (``aggregator.accumulative``) are skipped — their
    deltas are not lattice values; the paper treats PageRank's convergence
    separately (Section 5.3).
    """
    if program.aggregator.accumulative:
        return []
    engine = Engine(program, pg, query)
    violations: List[str] = []
    originals: Dict[int, Dict] = {}

    def watch(wid: int) -> None:
        ctx = engine.contexts[wid]
        before = originals.get(wid)
        if before is not None:
            for v, old in before.items():
                new = ctx.values[v]
                if new != old and not program.leq(new, old):
                    violations.append(
                        f"worker {wid}: {v!r} moved {old!r} -> {new!r} "
                        f"against the partial order")
        originals[wid] = dict(ctx.values)

    ex = ScheduledExecutor(engine)
    ex.start()
    for wid in range(engine.num_workers):
        watch(wid)
    rng = random.Random(schedule_seed)
    steps = 0
    while not ex.quiescent and steps < max_steps:
        ready = [wid for wid in range(engine.num_workers) if ex.buffers[wid]]
        wid = rng.choice(ready)
        ex.step(wid)
        watch(wid)
        steps += 1
    return violations


def random_schedule_run(program: PIEProgram, pg: PartitionedGraph, query: Any,
                        seed: int, max_steps: int = 100_000) -> Any:
    """One complete run under a uniformly random activation schedule."""
    engine = Engine(program, pg, query)
    ex = ScheduledExecutor(engine)
    ex.start()
    rng = random.Random(seed)
    steps = 0
    while not ex.quiescent:
        ready = [wid for wid in range(engine.num_workers) if ex.buffers[wid]]
        ex.step(rng.choice(ready))
        steps += 1
        if steps > max_steps:
            raise ConvergenceError(f"no fixpoint after {max_steps} steps")
    return ex.assemble()


def check_church_rosser(program: PIEProgram, pg: PartitionedGraph, query: Any,
                        runs: int = 5, seed: int = 0,
                        equal: Optional[Callable[[Any, Any], bool]] = None
                        ) -> List[str]:
    """All randomly scheduled runs must converge to the reference answer."""
    eq = equal if equal is not None else (lambda a, b: a == b)
    reference = run_sequential_fixpoint(Engine(program, pg, query))
    violations = []
    for i in range(runs):
        answer = random_schedule_run(program, pg, query, seed=seed + i)
        if not eq(answer, reference):
            violations.append(
                f"run with seed {seed + i} diverged from the reference")
    return violations


def verify_conditions(program: PIEProgram, pg: PartitionedGraph, query: Any,
                      runs: int = 5, seed: int = 0,
                      equal: Optional[Callable[[Any, Any], bool]] = None
                      ) -> ConditionReport:
    """Check T1 (declared), T2 (observed) and Church-Rosser (observed)."""
    t2_violations = check_contracting(program, pg, query, schedule_seed=seed)
    cr_violations = check_church_rosser(program, pg, query, runs=runs,
                                        seed=seed, equal=equal)
    return ConditionReport(
        t1_finite_domain=program.finite_domain,
        t2_contracting=not t2_violations,
        church_rosser=not cr_violations,
        runs=runs,
        violations=t2_violations + cr_violations)
