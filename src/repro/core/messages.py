"""Designated messages ``M(i, j)`` and the per-worker buffer ``B_x̄``.

After each round, worker ``P_i`` groups the changed values of its update
parameters by destination fragment and pushes one :class:`Message` per
destination (point-to-point, push-based).  Each entry is the paper's
``(x, val, r)`` triple: the update parameter, its value, and the round that
produced it.

:class:`MessageBuffer` is the receiver-side buffer.  Its length is the
staleness measure ``eta_i`` of Section 3 — *"the number of messages in buffer
B received by P_i from distinct workers"* — counted as message batches, which
is what the worked example (Example 4) counts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Set, Tuple

Node = Hashable

#: crude but deterministic size accounting: bytes per
#: (node, value, round) entry
ENTRY_BYTES = 16
#: fixed per-message envelope overhead
ENVELOPE_BYTES = 24

_seq = itertools.count()


@dataclass(frozen=True)
class Message:
    """One designated message ``M(src, dst)`` produced by one round."""

    src: int
    dst: int
    round: int
    entries: Tuple[Tuple[Node, Any], ...]
    #: monotonically increasing id used for deterministic tie-breaking
    seq: int = field(default_factory=lambda: next(_seq))
    #: protocol flags (e.g. Chandy-Lamport snapshot token)
    token: Any = None
    #: wire size of one entry (programs shipping vectors override this)
    entry_bytes: int = ENTRY_BYTES

    @property
    def size_bytes(self) -> int:
        return ENVELOPE_BYTES + self.entry_bytes * len(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


@dataclass(frozen=True, eq=False)
class MessageBatch:
    """A packed designated message: all entries for one ``(dst, round)``.

    The vectorized engine coalesces every changed candidate bound for the
    same destination into one batch of parallel numpy arrays (``ids`` holds
    global node ids, ``payloads`` the shipped values), so the multiprocess
    runtime pays one ``queue.put``/pickle per destination per round instead
    of one per node.  ``len(batch)`` is the *logical* entry count, which is
    what the termination ledger and the checkpoint conservation counters
    track; :attr:`size_bytes` is the packed wire size.
    """

    src: int
    dst: int
    round: int
    ids: Any       # np.ndarray[int64] of global node ids
    payloads: Any  # np.ndarray aligned with ids
    #: monotonically increasing id used for deterministic tie-breaking
    seq: int = field(default_factory=lambda: next(_seq))
    #: protocol flags (e.g. Chandy-Lamport snapshot token)
    token: Any = None
    #: per-entry size of the equivalent unpacked message (reporting only)
    entry_bytes: int = ENTRY_BYTES

    @property
    def entries(self) -> Tuple[Tuple[Node, Any], ...]:
        """Materialise ``(node, value)`` pairs (generic-path compatibility,
        checkpoint replay into non-vectorized engines)."""
        return tuple(zip(self.ids.tolist(), self.payloads.tolist()))

    @property
    def size_bytes(self) -> int:
        return ENVELOPE_BYTES + self.ids.nbytes + self.payloads.nbytes

    def __len__(self) -> int:
        return int(self.ids.size)


def fresh_seq() -> int:
    """Allocate the next wire sequence number.

    Transport code that re-materialises a message (a fault-injected
    duplicate, a rebuilt sub-batch) must give the copy its own ``seq``:
    two wire messages sharing one sequence number break the seq-keyed
    ledger accounting (sent = delivered + in-flight, per seq).
    """
    return next(_seq)


def entry_count(messages: Iterable[Any]) -> int:
    """Total logical entries across messages (the ledger's currency)."""
    return sum(len(m) for m in messages)


def make_messages(src: int, round_no: int,
                  per_destination: Dict[int, List[Tuple[Node, Any]]],
                  token: Any = None,
                  entry_bytes: int = ENTRY_BYTES) -> List[Message]:
    """Build one message per destination fragment from grouped entries."""
    out = []
    for dst in sorted(per_destination):
        entries = tuple(per_destination[dst])
        if entries:
            out.append(Message(src=src, dst=dst, round=round_no,
                               entries=entries, token=token,
                               entry_bytes=entry_bytes))
    return out


class MessageBuffer:
    """Receiver-side buffer ``B_x̄_i`` with staleness accounting."""

    __slots__ = ("_messages", "total_received", "total_bytes")

    def __init__(self):
        self._messages: List[Message] = []
        self.total_received = 0
        self.total_bytes = 0

    def push(self, msg: Message) -> None:
        self._messages.append(msg)
        self.total_received += 1
        self.total_bytes += msg.size_bytes

    def drain(self) -> List[Message]:
        """Atomically take and clear all buffered messages.

        This is the only point where messages leave the buffer (the paper's
        single race condition; the threaded runtime guards it with a lock).
        """
        taken, self._messages = self._messages, []
        return taken

    def peek(self) -> List[Message]:
        """A copy of the buffered messages, without consuming them.

        This is the supported way to inspect channel state (checkpoint code
        records buffered messages through it); callers must not rely on the
        private storage behind ``__slots__``.
        """
        return list(self._messages)

    @property
    def staleness(self) -> int:
        """``eta_i``: number of message batches currently buffered."""
        return len(self._messages)

    def distinct_senders(self) -> Set[int]:
        return {m.src for m in self._messages}

    def __len__(self) -> int:
        return len(self._messages)

    def __bool__(self) -> bool:
        return bool(self._messages)


def group_entries(messages: Iterable[Any]) -> Dict[Node, List[Any]]:
    """Group buffered entries by node, preserving arrival order.

    Accepts both :class:`Message` and :class:`MessageBatch` (whose
    ``entries`` property unpacks the arrays), so a generic engine can
    consume batches produced by a vectorized peer.
    """
    grouped: Dict[Node, List[Any]] = {}
    for msg in messages:
        for node, value in msg.entries:
            grouped.setdefault(node, []).append(value)
    return grouped
