"""Runtime predictors for the dynamic adjustment function delta (Eq. 1).

The paper approximates the predicted round time ``t_i`` and message arrival
rate ``s_i`` *"by aggregating statistics of consecutive rounds of IncEval"*
(a random-forest model is mentioned as an optional refinement).  We use
exponential moving averages, which is the same statistics-of-consecutive-
rounds idea with a decay knob.
"""

from __future__ import annotations

from typing import Optional

#: ceiling on any predicted arrival rate.  Two message batches delivered at
#: the same timestamp (one round fanning out to the same worker, or the
#: simulator's zero-latency paths) drive the smoothed gap to 0; an infinite
#: rate would flow into ``WorkerView.s_pred`` and poison the Eq. 1
#: arithmetic, so the reciprocal is clamped to a large finite value instead.
MAX_ARRIVAL_RATE = 1e6


class Ema:
    """Exponential moving average with bias-corrected warm-up."""

    __slots__ = ("alpha", "_value", "_count")

    def __init__(self, alpha: float = 0.5):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: Optional[float] = None
        self._count = 0

    def observe(self, x: float) -> None:
        if self._value is None:
            self._value = x
        else:
            self._value = self.alpha * x + (1.0 - self.alpha) * self._value
        self._count += 1

    @property
    def value(self) -> Optional[float]:
        return self._value

    @property
    def count(self) -> int:
        return self._count

    def get(self, default: float = 0.0) -> float:
        return self._value if self._value is not None else default


class RoundTimePredictor:
    """Predicts ``t_i``, the running time of the next IncEval round."""

    __slots__ = ("_ema",)

    def __init__(self, alpha: float = 0.5):
        self._ema = Ema(alpha)

    def observe_round(self, duration: float) -> None:
        self._ema.observe(duration)

    def predict(self, default: float = 1.0) -> float:
        return self._ema.get(default)


class ArrivalRatePredictor:
    """Predicts ``s_i``, the message arrival rate at a worker.

    Tracks inter-arrival gaps of message batches; the rate is the reciprocal
    of the smoothed gap, clamped to ``max_rate`` so simultaneous deliveries
    (gap 0) yield a large-but-finite estimate.  A worker that has seen fewer
    than two messages has an unknown rate (:meth:`predict` returns 0,
    meaning "no more expected").
    """

    __slots__ = ("_ema_gap", "_last_arrival", "max_rate")

    def __init__(self, alpha: float = 0.5,
                 max_rate: float = MAX_ARRIVAL_RATE):
        if max_rate <= 0:
            raise ValueError(f"max_rate must be > 0, got {max_rate}")
        self._ema_gap = Ema(alpha)
        self._last_arrival: Optional[float] = None
        self.max_rate = max_rate

    def observe_arrival(self, now: float) -> None:
        if self._last_arrival is not None:
            gap = max(now - self._last_arrival, 0.0)
            self._ema_gap.observe(gap)
        self._last_arrival = now

    def predict(self) -> float:
        """Messages per time unit; 0.0 when unknown or arrivals stopped."""
        gap = self._ema_gap.value
        if gap is None:
            return 0.0
        if gap <= 1.0 / self.max_rate:
            return self.max_rate
        return 1.0 / gap
