"""Runtime predictors for the dynamic adjustment function delta (Eq. 1).

The paper approximates the predicted round time ``t_i`` and message arrival
rate ``s_i`` *"by aggregating statistics of consecutive rounds of IncEval"*
(a random-forest model is mentioned as an optional refinement).  We use
exponential moving averages, which is the same statistics-of-consecutive-
rounds idea with a decay knob.
"""

from __future__ import annotations

from typing import Optional

#: ceiling on any predicted arrival rate.  Two message batches delivered at
#: the same timestamp (one round fanning out to the same worker, or the
#: simulator's zero-latency paths) drive the smoothed gap to 0; an infinite
#: rate would flow into ``WorkerView.s_pred`` and poison the Eq. 1
#: arithmetic, so the reciprocal is clamped to a large finite value instead.
MAX_ARRIVAL_RATE = 1e6


class Ema:
    """Exponential moving average with bias-corrected warm-up.

    The raw recursion ``v_t = alpha * x_t + (1 - alpha) * v_{t-1}`` is
    seeded at 0, which under-weights early observations; :attr:`value`
    divides out the missing mass, ``v_t / (1 - (1 - alpha)^t)``, so the
    estimate is unbiased from the very first sample (a constant input
    yields that constant immediately instead of creeping up to it).
    """

    __slots__ = ("alpha", "_raw", "_count")

    def __init__(self, alpha: float = 0.5):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._raw = 0.0
        self._count = 0

    def observe(self, x: float) -> None:
        self._raw = self.alpha * x + (1.0 - self.alpha) * self._raw
        self._count += 1

    @property
    def value(self) -> Optional[float]:
        if self._count == 0:
            return None
        correction = 1.0 - (1.0 - self.alpha) ** self._count
        return self._raw / correction

    @property
    def count(self) -> int:
        return self._count

    def get(self, default: float = 0.0) -> float:
        value = self.value
        return value if value is not None else default


class RoundTimePredictor:
    """Predicts ``t_i``, the running time of the next IncEval round."""

    __slots__ = ("_ema",)

    def __init__(self, alpha: float = 0.5):
        self._ema = Ema(alpha)

    def observe_round(self, duration: float) -> None:
        self._ema.observe(duration)

    def predict(self, default: float = 1.0) -> float:
        return self._ema.get(default)


class ArrivalRatePredictor:
    """Predicts ``s_i``, the message arrival rate at a worker.

    Tracks inter-arrival gaps of message batches; the rate is the reciprocal
    of the smoothed gap, clamped to ``max_rate`` so simultaneous deliveries
    (gap 0) yield a large-but-finite estimate.  A worker that has seen fewer
    than two messages has an unknown rate (:meth:`predict` returns 0,
    meaning "no more expected").

    Passing ``now`` to :meth:`predict` makes the estimate *decay* once the
    flux pauses: when more time has elapsed since the last arrival than the
    smoothed gap, the elapsed time itself is the best gap estimate, and
    after ``stale_after`` smoothed gaps of silence the rate is reported as
    exactly 0.0 ("arrivals stopped").  Without the decay an endgame worker
    keeps its mid-run rate forever, which inflates AAP's accumulation
    targets precisely when no more messages are coming.
    """

    __slots__ = ("_ema_gap", "_last_arrival", "max_rate", "stale_after")

    def __init__(self, alpha: float = 0.5,
                 max_rate: float = MAX_ARRIVAL_RATE,
                 stale_after: float = 8.0):
        if max_rate <= 0:
            raise ValueError(f"max_rate must be > 0, got {max_rate}")
        if stale_after <= 0:
            raise ValueError(f"stale_after must be > 0, got {stale_after}")
        self._ema_gap = Ema(alpha)
        self._last_arrival: Optional[float] = None
        self.max_rate = max_rate
        self.stale_after = stale_after

    def observe_arrival(self, now: float) -> None:
        if self._last_arrival is not None:
            gap = max(now - self._last_arrival, 0.0)
            self._ema_gap.observe(gap)
        self._last_arrival = now

    def predict(self, now: Optional[float] = None) -> float:
        """Messages per time unit; 0.0 when unknown or arrivals stopped."""
        gap = self._ema_gap.value
        if gap is None:
            return 0.0
        if now is not None and self._last_arrival is not None:
            elapsed = max(now - self._last_arrival, 0.0)
            floor = max(gap, 1.0 / self.max_rate)
            if elapsed > self.stale_after * floor:
                return 0.0
            gap = max(gap, elapsed)
        if gap <= 1.0 / self.max_rate:
            return self.max_rate
        return 1.0 / gap
