"""The paper's primary contribution: PIE programming + the AAP model."""

from repro.core.aggregators import (Aggregator, LatestByVersion, Max, Min,
                                    Sum)
from repro.core.delay import (AAPPolicy, APPolicy, BSPPolicy, DelayPolicy,
                              HsyncPolicy, SSPPolicy, WorkerView)
from repro.core.engine import Engine, RoundOutput
from repro.core.fixpoint import ScheduledExecutor, run_sequential_fixpoint
from repro.core.messages import Message, MessageBuffer
from repro.core.modes import MODES, make_policy, policy_table
from repro.core.pie import FragmentContext, PIEProgram
from repro.core.result import RunResult
from repro.core.worker import WorkerState, WorkerStatus

__all__ = [
    "Aggregator", "Min", "Max", "Sum", "LatestByVersion",
    "DelayPolicy", "BSPPolicy", "APPolicy", "SSPPolicy", "AAPPolicy",
    "HsyncPolicy", "WorkerView", "Engine", "RoundOutput",
    "ScheduledExecutor", "run_sequential_fixpoint", "Message",
    "MessageBuffer", "MODES", "make_policy", "policy_table",
    "FragmentContext", "PIEProgram", "RunResult", "WorkerState",
    "WorkerStatus",
]
