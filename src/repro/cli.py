"""Command-line interface.

::

    repro run   --algorithm sssp --graph grid:40x40 --mode AAP -m 8
    repro compare --algorithm cc --graph powerlaw:2000 --straggler 4
    repro bench --experiment table1
    repro verify --algorithm sssp --graph powerlaw:200
    repro info  --graph grid:30x30 -m 8 --partitioner bfs
    repro trace --algorithm sssp --graph grid:20x20 --mode AAP \
                --out trace.json --jsonl events.jsonl --explain 0
    repro chaos --algorithm sssp --graph grid:12x12 -m 4 \
                --crash 1:3 --runtime threaded --retries 2
    repro fuzz  --seeds 20 --smoke --artifact-dir artifacts/
    repro fuzz  --replay artifacts/fuzz-failure-seed7.json
    repro fuzz  --differential --graph grid:6x6 -m 3

Graph specs: ``grid:RxC``, ``powerlaw:N``, ``er:N:P``, ``smallworld:N``,
``rmat:SCALE``, ``path:N``, or ``file:PATH`` (edge list).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional, Tuple

from repro import api
from repro.algorithms import (CCProgram, CCQuery, CFProgram, CFQuery,
                              PageRankProgram, PageRankQuery, SSSPProgram,
                              SSSPQuery)
from repro.core.convergence import verify_conditions
from repro.core.modes import MODES
from repro.errors import ReproError
from repro.graph import analysis, generators, io
from repro.graph.graph import Graph
from repro.partition.edge_cut import (BfsPartitioner, GreedyLdgPartitioner,
                                      HashPartitioner, RangePartitioner)
from repro.partition.quality import summary
from repro.runtime.costmodel import CostModel

PARTITIONERS = {
    "hash": HashPartitioner,
    "range": RangePartitioner,
    "bfs": BfsPartitioner,
    "ldg": GreedyLdgPartitioner,
}


def parse_graph(spec: str, seed: int = 0, weighted: bool = True) -> Graph:
    """Build a graph from a CLI spec string."""
    kind, _, rest = spec.partition(":")
    kind = kind.lower()
    if kind == "grid":
        rows, _, cols = rest.partition("x")
        return generators.grid2d(int(rows), int(cols or rows),
                                 weighted=weighted, seed=seed)
    if kind == "powerlaw":
        return generators.powerlaw(int(rest), m=3, weighted=weighted,
                                   seed=seed)
    if kind == "er":
        n, _, p = rest.partition(":")
        return generators.erdos_renyi(int(n), float(p or 0.05),
                                      weighted=weighted, seed=seed)
    if kind == "smallworld":
        return generators.small_world(int(rest), seed=seed)
    if kind == "rmat":
        return generators.rmat(int(rest), weighted=weighted, seed=seed)
    if kind == "path":
        return generators.path_graph(int(rest), weighted=weighted,
                                     seed=seed)
    if kind == "file":
        return io.read_edge_list(rest)
    raise ReproError(f"unknown graph spec {spec!r}")


def build_program(algorithm: str, graph: Graph,
                  source: Optional[str]) -> Tuple[Any, Any]:
    algorithm = algorithm.lower()
    if algorithm == "sssp":
        src = _parse_node(source) if source else next(iter(graph.nodes))
        return SSSPProgram(), SSSPQuery(source=src)
    if algorithm == "cc":
        return CCProgram(), CCQuery()
    if algorithm == "pagerank":
        return PageRankProgram(), PageRankQuery(
            epsilon=5e-4 * graph.num_nodes, num_nodes=graph.num_nodes)
    if algorithm == "cf":
        return CFProgram(), CFQuery()
    raise ReproError(f"unknown algorithm {algorithm!r}; "
                     f"expected sssp|cc|pagerank|cf")


def _parse_node(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def _cost_model(args) -> CostModel:
    speed = {0: args.straggler} if args.straggler > 1 else None
    return CostModel(alpha=1.0, beta=0.002, speed=speed, latency=0.25,
                     msg_cost=0.05, send_cost=0.02, seed=args.seed)


def _summarise(result) -> dict:
    return {
        "mode": result.mode,
        "time": result.time,
        "rounds": result.rounds,
        "messages": result.metrics.total_messages,
        "bytes": result.metrics.total_bytes,
        "total_work": result.metrics.total_work,
        "idle_ratio": round(result.metrics.idle_ratio, 4),
    }


# ----------------------------------------------------------------------
def cmd_run(args) -> int:
    graph = parse_graph(args.graph, seed=args.seed)
    program, query = build_program(args.algorithm, graph, args.source)
    partitioner = PARTITIONERS[args.partitioner]()
    result = api.run(program, graph, query, mode=args.mode,
                     num_fragments=args.fragments, partitioner=partitioner,
                     cost_model=_cost_model(args),
                     record_trace=bool(args.report),
                     vectorized=args.vectorized)
    if args.report:
        from repro.runtime.report import write_report
        write_report(result, args.report, include_trace=True,
                     extra={"graph": args.graph,
                            "algorithm": args.algorithm,
                            "fragments": args.fragments})
    out = _summarise(result)
    if args.algorithm == "cc":
        out["components"] = len(set(result.answer.values()))
    elif args.algorithm == "cf":
        out["rmse"] = result.answer["rmse"]
    print(json.dumps(out, indent=2))
    return 0


def cmd_chaos(args) -> int:
    """Run one workload under an injected fault plan with recovery on."""
    from repro.runtime.faultplan import (CrashFault, DelayFault, DropFault,
                                         DuplicateFault, FaultPlan,
                                         StragglerFault)
    from repro.runtime.recovery import RetryPolicy, run_chaos

    faults = []
    for spec in args.crash or ():
        wid, _, at = spec.partition(":")
        faults.append(CrashFault(wid=int(wid), at_round=int(at or 1)))
    if args.drop > 0:
        faults.append(DropFault(rate=args.drop))
    if args.duplicate > 0:
        faults.append(DuplicateFault(rate=args.duplicate))
    if args.delay:
        rate, _, secs = args.delay.partition(":")
        faults.append(DelayFault(rate=float(rate),
                                 delay=float(secs or 0.05)))
    for spec in args.slow or ():
        wid, _, factor = spec.partition(":")
        faults.append(StragglerFault(wid=int(wid),
                                     factor=float(factor or 4.0)))
    plan = FaultPlan(seed=args.fault_seed, faults=tuple(faults))

    graph = parse_graph(args.graph, seed=args.seed)
    program, query = build_program(args.algorithm, graph, args.source)
    pg = PARTITIONERS[args.partitioner]().partition(graph, args.fragments)
    report = run_chaos(
        program, pg, query, plan, runtime=args.runtime, mode=args.mode,
        checkpoint_interval=args.checkpoint_interval,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_timeout=args.heartbeat_timeout, timeout=args.timeout,
        respawn_budget=args.respawn_budget, tolerance=args.tolerance,
        retry=RetryPolicy(max_retries=args.retries,
                          deadline=args.retry_deadline,
                          jitter=args.retry_jitter, seed=args.fault_seed))
    report["fault_plan"] = {
        "seed": plan.seed, "faults": [repr(f) for f in plan.faults]}
    print(json.dumps(report, indent=2))
    return 0 if report["ok"] else 1


def cmd_trace(args) -> int:
    """Run one workload with observability on and export the event stream."""
    from repro.obs import Observer, explain_delays, write_chrome_trace, \
        write_jsonl
    graph = parse_graph(args.graph, seed=args.seed)
    program, query = build_program(args.algorithm, graph, args.source)
    partitioner = PARTITIONERS[args.partitioner]()
    observer = Observer()
    pg = api.partition_graph(graph, args.fragments, partitioner)
    if args.runtime == "simulated":
        result = api.run(program, pg, query, mode=args.mode,
                         cost_model=_cost_model(args), observer=observer)
    elif args.runtime == "threaded":
        from repro.core.engine import Engine
        from repro.core.modes import make_policy
        from repro.runtime.threaded import ThreadedRuntime
        result = ThreadedRuntime(Engine(program, pg, query),
                                 make_policy(args.mode),
                                 observer=observer).run()
    else:  # multiprocess
        from repro.runtime.multiprocess import MultiprocessRuntime
        result = MultiprocessRuntime(program, pg, query, mode=args.mode,
                                     observer=observer).run()
    write_chrome_trace(observer.log, args.out,
                       process_name=f"repro {args.algorithm} {args.mode}")
    out = _summarise(result)
    out["trace"] = args.out
    out["events"] = observer.log.counts()
    if args.jsonl:
        write_jsonl(observer.log, args.jsonl)
        out["jsonl"] = args.jsonl
    print(json.dumps(out, indent=2))
    if args.explain is not None:
        for line in explain_delays(observer.log, wid=args.explain,
                                   limit=args.explain_limit):
            print(line)
    return 0


def cmd_compare(args) -> int:
    graph = parse_graph(args.graph, seed=args.seed)
    program, query = build_program(args.algorithm, graph, args.source)
    pg = api.partition_graph(graph, args.fragments,
                             PARTITIONERS[args.partitioner]())
    results = api.compare_modes(
        type(program), pg, query,
        cost_model_factory=lambda: _cost_model(args))
    print(json.dumps({mode: _summarise(r) for mode, r in results.items()},
                     indent=2))
    return 0


def cmd_verify(args) -> int:
    graph = parse_graph(args.graph, seed=args.seed)
    program, query = build_program(args.algorithm, graph, args.source)
    pg = api.partition_graph(graph, args.fragments)
    if args.algorithm == "pagerank":
        report = verify_conditions(
            program, pg, query, runs=args.runs,
            equal=lambda a, b: all(abs(a[k] - b[k]) < 1e-2 for k in a))
    else:
        report = verify_conditions(program, pg, query, runs=args.runs)
    print(json.dumps({
        "t1_finite_domain": report.t1_finite_domain,
        "t2_contracting": report.t2_contracting,
        "church_rosser": report.church_rosser,
        "runs": report.runs,
        "violations": report.violations,
        "ok": report.ok,
    }, indent=2))
    return 0 if report.ok or args.algorithm == "pagerank" else 1


def cmd_info(args) -> int:
    graph = parse_graph(args.graph, seed=args.seed)
    pg = api.partition_graph(graph, args.fragments,
                             PARTITIONERS[args.partitioner]())
    print(json.dumps({
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "directed": graph.directed,
        "degree_skew": round(analysis.degree_skew(graph), 3),
        "diameter_estimate": analysis.diameter_estimate(graph),
        "partition": {k: round(v, 4) for k, v in summary(pg).items()},
    }, indent=2))
    return 0


def cmd_fuzz(args) -> int:
    """Schedule fuzzing, artifact replay and differential conformance."""
    from repro import fuzz

    progress = (None if args.quiet else
                (lambda line: print(line, file=sys.stderr)))
    if args.replay:
        result, reproduced = fuzz.replay_artifact(args.replay)
        print(json.dumps({
            "artifact": args.replay,
            "case": result.case.to_dict(),
            "reproduced": reproduced,
            "violations": [v.to_dict() for v in result.violations],
        }, indent=2))
        return 1 if reproduced else 0
    if args.differential:
        graph = parse_graph(args.graph, seed=args.seed or 0)
        report = fuzz.run_differential(graph, fragments=args.fragments,
                                       timeout=args.timeout,
                                       progress=progress)
        print(fuzz.format_report(report))
        return 0 if report.ok else 1
    if args.seed is not None:
        seeds = [args.seed]
    else:
        seeds = list(range(args.first_seed, args.first_seed + args.seeds))
    summary = fuzz.fuzz_loop(seeds, smoke=args.smoke,
                             artifact_dir=args.artifact_dir,
                             shrink_failures=not args.no_shrink,
                             progress=progress)
    print(json.dumps(summary, indent=2))
    return 0 if summary["ok"] else 1


def cmd_bench(args) -> int:
    from repro.bench import experiments, reporting
    name = args.experiment.lower()
    if name == "kernels":
        from repro.bench import kernels
        graph = parse_graph(args.kernels_graph, seed=args.seed)
        report = kernels.run_kernel_bench(
            graph, fragments=args.fragments, mode=args.mode,
            runtimes=kernels.parse_runtimes(args.runtimes),
            transport=args.transport,
            progress=lambda line: print(line, file=sys.stderr))
        print(kernels.format_kernel_report(report))
        kernels.save_report(report, args.out)
        print(f"wrote {args.out}")
        return 0 if report["all_match"] else 1
    if name == "table1":
        rows = experiments.run_table1(num_workers=args.fragments)
        print(reporting.format_table(
            "Table 1", ["system", "PR time", "PR comm", "SSSP time",
                        "SSSP comm"],
            [[r["system"], r["pagerank_time"],
              reporting.human_bytes(r["pagerank_comm"]), r["sssp_time"],
              reporting.human_bytes(r["sssp_comm"])] for r in rows]))
        return 0
    if name in ("sssp", "cc", "pagerank", "cf"):
        graph = parse_graph(args.graph, seed=args.seed)
        series = experiments.run_modes_experiment(
            name, graph, workers=(4, 6, 8), straggler_factor=args.straggler)
        print(reporting.format_series(f"{name} vs workers", "workers",
                                      (4, 6, 8), series))
        return 0
    if name == "partition":
        series = experiments.run_partition_impact()
        print(reporting.format_series("SSSP vs skew r", "r", (1, 3, 5, 7, 9),
                                      series))
        return 0
    raise ReproError(f"unknown experiment {args.experiment!r}")


# ----------------------------------------------------------------------
def _build_service(args):
    from repro.serve import AdmissionController, GraphService
    graph = parse_graph(args.graph, seed=args.seed)
    program, query = build_program(args.algorithm, graph, args.source)
    admission = AdmissionController(
        max_pending_batches=args.max_pending,
        max_catchup=args.max_catchup if args.max_catchup >= 0 else None)
    return GraphService(program, graph, query,
                        num_fragments=args.fragments, mode=args.mode,
                        runtime=args.runtime, admission=admission,
                        cache_size=args.cache_size)


def cmd_serve(args) -> int:
    """Bring a service up, drive a seeded update stream through it, and
    report per-epoch integration stats plus a final differential check."""
    from repro.obs import EPOCH_APPLY
    from repro.serve import LoadGenerator, verify_against_recompute
    service = _build_service(args)
    gen = LoadGenerator(service, seed=args.seed, num_queries=1,
                        num_batches=args.batches,
                        batch_size=args.batch_size)
    accepted = shed = 0
    for _ in range(args.batches):
        batch = gen.next_batch()
        if batch is None:
            break
        if service.ingest(batch).accepted:
            accepted += 1
        else:
            shed += 1
        service.pump(1)
        for ev in service.obs.log.events[-1:]:
            if ev.type == EPOCH_APPLY:
                print(f"epoch {ev.payload['epoch']:>4}  "
                      f"edges {ev.payload['edges']:>4}  "
                      f"changed {ev.payload['changed']:>6}  "
                      f"{ev.payload['duration'] * 1000:8.2f} ms",
                      file=sys.stderr)
    service.flush()
    matches = verify_against_recompute(service)
    epoch_hist = service.obs.metrics.histogram("serve_epoch_duration")
    print(json.dumps({
        "graph": args.graph, "algorithm": args.algorithm,
        "mode": args.mode, "runtime": args.runtime,
        "fragments": args.fragments,
        "batches_accepted": accepted, "batches_shed": shed,
        "epochs": service.epoch,
        "nodes": service.graph.num_nodes,
        "edges": service.graph.num_edges,
        "epoch_ms_mean": round(epoch_hist.mean * 1000, 3),
        "matches_recompute": matches,
    }, indent=2))
    return 0 if matches else 1


def cmd_loadgen(args) -> int:
    """Drive a seeded mixed update/query workload and write the report."""
    from repro.serve import LoadGenerator, verify_against_recompute
    service = _build_service(args)
    gen = LoadGenerator(service, seed=args.seed,
                        num_queries=args.queries,
                        num_batches=args.batches,
                        batch_size=args.batch_size, skew=args.skew,
                        staleness_bounds=tuple(
                            int(b) for b in args.bounds.split(",")))
    report = gen.run()
    report["matches_recompute"] = verify_against_recompute(service)
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    ok = (report["matches_recompute"]
          and report["staleness"]["violations"] == 0)
    return 0 if ok else 1


# ----------------------------------------------------------------------
def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AAP graph-computation engine (SIGMOD'18 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, algorithm=True):
        p.add_argument("--graph", default="powerlaw:1000",
                       help="graph spec (grid:RxC, powerlaw:N, er:N:P, "
                            "rmat:S, path:N, file:PATH)")
        if algorithm:
            p.add_argument("--algorithm", "-a", default="cc",
                           choices=["sssp", "cc", "pagerank", "cf"])
            p.add_argument("--source", default=None,
                           help="SSSP source node")
        p.add_argument("--fragments", "-m", type=int, default=8)
        p.add_argument("--partitioner", default="hash",
                       choices=sorted(PARTITIONERS))
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--straggler", type=float, default=1.0,
                       help="slow-down factor of worker 0")

    p_run = sub.add_parser("run", help="run one algorithm under one model")
    common(p_run)
    p_run.add_argument("--mode", default="AAP", choices=list(MODES))
    p_run.add_argument("--report", default=None,
                       help="write a JSON run report (with trace) here")
    p_run.add_argument("--vectorized", action="store_true",
                       help="use the dense numpy fast path when the "
                            "algorithm/partition supports it "
                            "(see docs/performance.md)")
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="run under every parallel model")
    common(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_tr = sub.add_parser(
        "trace", help="run with observability on; export Chrome trace/JSONL")
    common(p_tr)
    p_tr.add_argument("--mode", default="AAP", choices=list(MODES))
    p_tr.add_argument("--runtime", default="simulated",
                      choices=["simulated", "threaded", "multiprocess"])
    p_tr.add_argument("--out", default="trace.json",
                      help="Chrome trace_event JSON output path "
                           "(open in chrome://tracing or Perfetto)")
    p_tr.add_argument("--jsonl", default=None,
                      help="also dump raw events as JSON Lines here")
    p_tr.add_argument("--explain", type=int, default=None, metavar="WID",
                      help="print the delay-decision audit for worker WID")
    p_tr.add_argument("--explain-limit", type=int, default=20,
                      help="max audit lines to print")
    p_tr.set_defaults(func=cmd_trace)

    p_chaos = sub.add_parser(
        "chaos", help="inject faults into a live runtime; report "
                      "detection latency, recoveries and correctness")
    common(p_chaos)
    p_chaos.add_argument("--runtime", default="threaded",
                         choices=["threaded", "multiprocess"])
    p_chaos.add_argument("--mode", default="AAP",
                         choices=["AP", "BSP", "AAP"])
    p_chaos.add_argument("--crash", action="append", metavar="WID:ROUND",
                         help="kill worker WID at round ROUND (repeatable)")
    p_chaos.add_argument("--drop", type=float, default=0.0,
                         help="drop this fraction of messages")
    p_chaos.add_argument("--duplicate", type=float, default=0.0,
                         help="duplicate this fraction of messages")
    p_chaos.add_argument("--delay", default=None, metavar="RATE:SECONDS",
                         help="delay RATE of messages by SECONDS")
    p_chaos.add_argument("--slow", action="append", metavar="WID:FACTOR",
                         help="stretch worker WID's rounds by FACTOR")
    p_chaos.add_argument("--fault-seed", type=int, default=0,
                         help="seed of the deterministic fault plan")
    p_chaos.add_argument("--checkpoint-interval", type=float, default=0.05,
                         help="seconds between live Chandy-Lamport "
                              "checkpoints")
    p_chaos.add_argument("--heartbeat-interval", type=float, default=0.02)
    p_chaos.add_argument("--heartbeat-timeout", type=float, default=0.5)
    p_chaos.add_argument("--retries", type=int, default=2,
                         help="recovery attempts before giving up")
    p_chaos.add_argument("--respawn-budget", type=int, default=1,
                         help="in-place respawns per worker slot before a "
                              "death degrades to whole-run rollback "
                              "(0 disables rung 1)")
    p_chaos.add_argument("--tolerance", type=float, default=None,
                         help="max per-node diff vs the fault-free "
                              "reference (default: inferred from the "
                              "workload; 0 = exact)")
    p_chaos.add_argument("--retry-deadline", type=float, default=None,
                         help="total wall-clock budget in seconds for the "
                              "rollback ladder rung")
    p_chaos.add_argument("--retry-jitter", type=float, default=0.0,
                         help="relative backoff jitter in [0, 1], seeded "
                              "by --fault-seed")
    p_chaos.add_argument("--timeout", type=float, default=60.0)
    p_chaos.set_defaults(func=cmd_chaos)

    p_ver = sub.add_parser("verify",
                           help="check T1/T2 + Church-Rosser empirically")
    common(p_ver)
    p_ver.add_argument("--runs", type=int, default=4)
    p_ver.set_defaults(func=cmd_verify)

    p_info = sub.add_parser("info", help="graph and partition statistics")
    common(p_info, algorithm=False)
    p_info.set_defaults(func=cmd_info)

    p_fuzz = sub.add_parser(
        "fuzz", help="seeded schedule fuzzing + differential conformance "
                     "(see docs/conformance.md)")
    p_fuzz.add_argument("--seeds", type=int, default=50,
                        help="number of consecutive seeds to fuzz")
    p_fuzz.add_argument("--first-seed", type=int, default=0,
                        help="first seed of the range")
    p_fuzz.add_argument("--seed", type=int, default=None,
                        help="fuzz exactly this one seed")
    p_fuzz.add_argument("--smoke", action="store_true",
                        help="small graphs for CI (same draws otherwise)")
    p_fuzz.add_argument("--artifact-dir", default=None,
                        help="write minimized failure artifacts here")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="report failures without minimizing them")
    p_fuzz.add_argument("--replay", default=None, metavar="ARTIFACT",
                        help="re-run a saved failure artifact instead of "
                             "fuzzing (exit 1 iff it still reproduces)")
    p_fuzz.add_argument("--differential", action="store_true",
                        help="run the full modes x runtimes x paths "
                             "conformance grid on --graph instead of "
                             "fuzzing")
    p_fuzz.add_argument("--graph", default="grid:8x8",
                        help="graph spec for --differential")
    p_fuzz.add_argument("--fragments", "-m", type=int, default=4)
    p_fuzz.add_argument("--timeout", type=float, default=120.0,
                        help="per-cell timeout for --differential")
    p_fuzz.add_argument("--quiet", action="store_true",
                        help="suppress per-case progress on stderr")
    p_fuzz.set_defaults(func=cmd_fuzz)

    def serve_common(p):
        common(p)
        p.add_argument("--mode", default="AAP", choices=list(MODES))
        p.add_argument("--runtime", default="threaded",
                       choices=["threaded", "simulated"])
        p.add_argument("--batches", type=int, default=20,
                       help="update batches to stream in")
        p.add_argument("--batch-size", type=int, default=8,
                       help="edge insertions per batch")
        p.add_argument("--max-pending", type=int, default=64,
                       help="ingest queue bound (excess batches are shed)")
        p.add_argument("--max-catchup", type=int, default=32,
                       help="max epochs one query may force (-1: unbounded)")
        p.add_argument("--cache-size", type=int, default=4096,
                       help="query result cache capacity (0 disables)")

    p_serve = sub.add_parser(
        "serve", help="resident bounded-staleness service: stream a seeded "
                      "update load, report per-epoch stats")
    serve_common(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_lg = sub.add_parser(
        "loadgen", help="mixed update/query workload against a fresh "
                        "service; reports latency percentiles, staleness "
                        "and throughput")
    serve_common(p_lg)
    p_lg.add_argument("--queries", type=int, default=1000,
                      help="read queries to issue")
    p_lg.add_argument("--skew", type=float, default=2.0,
                      help="key skew exponent (higher = hotter head)")
    p_lg.add_argument("--bounds", default="0,1,2,4",
                      help="comma-separated staleness bounds to draw from")
    p_lg.add_argument("--out", default=None,
                      help="write the JSON report here instead of stdout")
    p_lg.set_defaults(func=cmd_loadgen)

    p_bench = sub.add_parser("bench", help="run a named experiment")
    common(p_bench, algorithm=False)
    p_bench.add_argument("--experiment", "-e", default="table1")
    p_bench.add_argument("--kernels-graph", default="powerlaw:40000",
                         help="graph spec for -e kernels (default is a "
                              "~120k-edge power-law graph)")
    p_bench.add_argument("--runtimes",
                         default="simulated,threaded,multiprocess",
                         help="comma-separated runtimes for -e kernels")
    p_bench.add_argument("--mode", default="AP", choices=list(MODES),
                         help="parallel model for -e kernels")
    p_bench.add_argument("--transport", default=None,
                         choices=["shm", "queue"],
                         help="multiprocess data plane for -e kernels "
                              "(default: the runtime's default, shm)")
    p_bench.add_argument("--out", default="BENCH_kernels.json",
                         help="JSON report path for -e kernels")
    p_bench.set_defaults(func=cmd_bench)
    return parser


def main(argv=None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
