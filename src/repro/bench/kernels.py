"""Generic vs vectorized kernel benchmark (the fast-path speedup bench).

Times each algorithm (SSSP, CC, PageRank) on each runtime twice — once
through the generic per-vertex path and once through the dense vectorized
path — and cross-checks that both produce the same answer.  SSSP and CC
must match exactly; PageRank is compared within the programs' shipping
tolerance (accumulation order differs between the two paths).

Entry point is :func:`run_kernel_bench`; ``repro bench -e kernels`` and
``benchmarks/bench_kernels.py`` are thin wrappers around it that also
write ``BENCH_kernels.json``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.algorithms import (CCProgram, CCQuery, PageRankProgram,
                              PageRankQuery, SSSPProgram, SSSPQuery)
from repro.errors import ReproError
from repro.graph.graph import Graph
from repro.partition.edge_cut import HashPartitioner
from repro.partition.fragment import PartitionedGraph

ALGORITHMS = ("sssp", "cc", "pagerank")
RUNTIMES = ("simulated", "threaded", "multiprocess")


def _make_workload(algorithm: str, graph: Graph) -> Tuple[Any, Any, float]:
    """Program factory + query + match tolerance (0.0 = exact)."""
    if algorithm == "sssp":
        source = next(iter(graph.nodes))
        return SSSPProgram, SSSPQuery(source=source), 0.0
    if algorithm == "cc":
        return CCProgram, CCQuery(), 0.0
    if algorithm == "pagerank":
        n = graph.num_nodes
        query = PageRankQuery(epsilon=5e-4 * n, num_nodes=n)
        # Both paths stop shipping per-node deltas below
        # eps_node = epsilon / n, so each run can leave up to eps_node
        # unpropagated at every in-neighbour of a node (plus its own
        # pending mass); two runs differ by at most twice that residual.
        eps_node = query.epsilon / max(n, 1)
        max_indeg = max((graph.in_degree(v) for v in graph.nodes),
                        default=0)
        return PageRankProgram, query, 2.0 * eps_node * (1 + max_indeg)
    raise ReproError(f"unknown bench algorithm {algorithm!r}")


def _run_once(runtime: str, program_cls, pg: PartitionedGraph, query: Any,
              mode: str, vectorized: bool, timeout: float,
              transport: Optional[str] = None
              ) -> Tuple[float, Dict[Any, Any]]:
    """One timed run; returns (wall seconds, assembled answer)."""
    program = program_cls()
    t0 = time.perf_counter()
    if runtime == "simulated":
        from repro import api
        result = api.run(program, pg, query, mode=mode,
                         record_trace=False, vectorized=vectorized)
    elif runtime == "threaded":
        from repro.core.engine import Engine
        from repro.core.modes import make_policy
        from repro.runtime.threaded import ThreadedRuntime
        engine = Engine(program, pg, query, vectorized=vectorized)
        result = ThreadedRuntime(engine, make_policy(mode),
                                 timeout=timeout).run()
    elif runtime == "multiprocess":
        from repro.runtime.multiprocess import MultiprocessRuntime
        result = MultiprocessRuntime(program, pg, query, mode=mode,
                                     timeout=timeout,
                                     vectorized=vectorized,
                                     transport=transport).run()
    else:
        raise ReproError(f"unknown runtime {runtime!r}")
    elapsed = time.perf_counter() - t0
    return elapsed, result.answer


def _answers_match(generic: Dict[Any, Any], fast: Dict[Any, Any],
                   tolerance: float) -> Tuple[bool, float]:
    """Compare assembled answers; returns (ok, max observed diff)."""
    if set(generic) != set(fast):
        return False, float("inf")
    if tolerance == 0.0:
        return generic == fast, 0.0
    worst = max((abs(generic[k] - fast[k]) for k in generic), default=0.0)
    return worst <= tolerance, worst


def run_kernel_bench(graph: Graph, *, fragments: int = 4, mode: str = "AP",
                     runtimes: Sequence[str] = RUNTIMES,
                     algorithms: Sequence[str] = ALGORITHMS,
                     timeout: float = 600.0,
                     transport: Optional[str] = None,
                     progress=None) -> Dict[str, Any]:
    """Bench every algorithm x runtime, generic vs vectorized.

    Returns a JSON-serialisable report; ``results`` rows carry the two
    wall-clock times, the speedup, and whether the cross-check passed.
    ``transport`` selects the multiprocess data plane (``"shm"`` /
    ``"queue"``; None = runtime default).  ``progress`` (optional
    callable) receives one line per finished row.
    """
    from repro.core.engine import Engine
    pg = HashPartitioner().partition(graph, fragments)
    rows = []
    for algorithm in algorithms:
        program_cls, query, tolerance = _make_workload(algorithm, graph)
        # warm the partition-level caches (CSR views, memoized ship sets
        # and dense routes) once per program class so timed runs measure
        # steady-state kernel cost, not one-time setup shared by both
        # paths and amortised over every run of a query class
        Engine(program_cls(), pg, query, vectorized=False)
        Engine(program_cls(), pg, query, vectorized=True)
        for runtime in runtimes:
            t_gen, a_gen = _run_once(runtime, program_cls, pg, query,
                                     mode, False, timeout,
                                     transport=transport)
            t_vec, a_vec = _run_once(runtime, program_cls, pg, query,
                                     mode, True, timeout,
                                     transport=transport)
            ok, worst = _answers_match(a_gen, a_vec, tolerance)
            row = {
                "algorithm": algorithm,
                "runtime": runtime,
                "generic_s": round(t_gen, 4),
                "vectorized_s": round(t_vec, 4),
                "speedup": round(t_gen / t_vec, 2) if t_vec > 0
                else float("inf"),
                "match": ok,
                "max_diff": worst if tolerance else 0.0,
                "tolerance": tolerance,
            }
            rows.append(row)
            if progress is not None:
                progress(f"{algorithm}/{runtime}: generic {t_gen:.2f}s, "
                         f"vectorized {t_vec:.2f}s "
                         f"({row['speedup']}x, match={ok})")
    return {
        "bench": "kernels",
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges,
                  "directed": graph.directed},
        "fragments": fragments,
        "mode": mode,
        "transport": transport,
        "results": rows,
        "all_match": all(r["match"] for r in rows),
    }


def format_kernel_report(report: Dict[str, Any]) -> str:
    """Human-readable table of a :func:`run_kernel_bench` report."""
    from repro.bench.reporting import format_table
    g = report["graph"]
    title = (f"kernel bench - {g['nodes']} nodes / {g['edges']} edges, "
             f"{report['fragments']} fragments, mode {report['mode']}")
    rows = [[r["algorithm"], r["runtime"], r["generic_s"],
             r["vectorized_s"], f"{r['speedup']}x",
             "ok" if r["match"] else "MISMATCH"]
            for r in report["results"]]
    return format_table(title, ["algorithm", "runtime", "generic s",
                                "vectorized s", "speedup", "check"], rows)


def save_report(report: Dict[str, Any], path: str) -> None:
    import json
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def parse_runtimes(spec: Optional[str]) -> Sequence[str]:
    """Parse a comma-separated runtime list, validating names."""
    if not spec:
        return RUNTIMES
    names = tuple(s.strip() for s in spec.split(",") if s.strip())
    for name in names:
        if name not in RUNTIMES:
            raise ReproError(
                f"unknown runtime {name!r}; expected one of "
                f"{', '.join(RUNTIMES)}")
    return names
