"""Workload builders for the paper's experiments.

One builder per dataset stand-in (DESIGN.md section 2), each deterministic
given its seed, plus the Fig. 1(b) hand-built graph and the straggler /
skewed-partition setups of Exp-1 and Exp-4.

Sizes are laptop-scale; ``scale`` multiplies them for the scale-up
experiments (Fig. 6(i)-(l)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro import api
from repro.graph import generators
from repro.graph.graph import Graph
from repro.partition.edge_cut import BfsPartitioner, HashPartitioner
from repro.partition.fragment import PartitionedGraph
from repro.partition.skew import reshuffle_to_skew
from repro.runtime.costmodel import CostModel


# ----------------------------------------------------------------------
# dataset stand-ins
# ----------------------------------------------------------------------
def friendster(scale: float = 1.0, seed: int = 7) -> Graph:
    """Power-law social graph (Friendster stand-in), weighted for SSSP."""
    n = max(int(2000 * scale), 50)
    return generators.powerlaw(n, m=3, weighted=True, seed=seed)


def ukweb(scale: float = 1.0, seed: int = 11) -> Graph:
    """Directed RMAT web graph (UKWeb stand-in)."""
    import math
    scale_bits = max(int(round(10 + math.log2(max(scale, 0.25)))), 6)
    return generators.rmat(scale_bits, edge_factor=6, directed=True,
                           seed=seed)


def traffic(scale: float = 1.0, seed: int = 13) -> Graph:
    """Weighted 2-D grid road network (traffic stand-in)."""
    side = max(int(36 * (scale ** 0.5)), 6)
    return generators.grid2d(side, side, weighted=True, seed=seed)


def movielens(scale: float = 1.0, seed: int = 17):
    """Small bipartite rating graph (movieLens stand-in)."""
    users = max(int(120 * scale), 10)
    items = max(int(40 * scale), 5)
    return generators.bipartite_ratings(users, items,
                                        ratings_per_user=min(12, items),
                                        rank=4, seed=seed)


def netflix(scale: float = 1.0, seed: int = 19):
    """Larger bipartite rating graph (Netflix stand-in)."""
    users = max(int(300 * scale), 20)
    items = max(int(60 * scale), 8)
    return generators.bipartite_ratings(users, items,
                                        ratings_per_user=min(15, items),
                                        rank=4, seed=seed)


def synthetic_large(scale: float = 1.0, seed: int = 23) -> Graph:
    """GTgraph-style synthetic: power-law + small-world mix (Exp-4)."""
    n = max(int(3000 * scale), 100)
    return generators.powerlaw(n, m=4, weighted=True, seed=seed)


def fig1_graph() -> Graph:
    """The 8-component graph of the paper's Fig. 1(b).

    Components 0-7 (labelled by their minimum node id scaled by 10):
    F1 holds components {1, 3, 5}, F2 holds {2, 4, 6}, F3 holds {0, 7};
    dotted cut edges chain them as in the figure:
    0-5, 5-2 (wait, per figure: 7-5, 5-6, 6-3, ...) — we reproduce the
    *chain of components* 0-1-2-...-7 across the three fragments so that
    cid 0 must traverse every component, which is the property Example 4
    exercises.
    """
    g = Graph(directed=False)
    # eight 3-node triangle components; component k has nodes 10k..10k+2
    for k in range(8):
        base = 10 * k
        g.add_edge(base, base + 1)
        g.add_edge(base + 1, base + 2)
        g.add_edge(base, base + 2)
    # chain the components: k connects to k+1 via a cut edge
    for k in range(7):
        g.add_edge(10 * k + 2, 10 * (k + 1))
    return g


def fig1_partition() -> PartitionedGraph:
    """Fig. 1(b)'s three fragments: F1={1,3,5}, F2={2,4,6}, F3={0,7}."""
    g = fig1_graph()
    owner_of_component = {1: 0, 3: 0, 5: 0, 2: 1, 4: 1, 6: 1, 0: 2, 7: 2}
    assignment = {v: owner_of_component[v // 10] for v in g.nodes}
    from repro.partition.builder import build_edge_cut
    return build_edge_cut(g, assignment, 3, "fig1")


def fig1_cost_model() -> CostModel:
    """Example 1's timing: P1, P2 take 3 units per round, P3 takes 6,
    messages take 1 unit."""
    return CostModel(fixed_round_time={0: 3.0, 1: 3.0, 2: 6.0},
                     latency=1.0, msg_cost=0.0, send_cost=0.0)


# ----------------------------------------------------------------------
# cluster setups
# ----------------------------------------------------------------------
#: the default cost regime for mode comparisons: per-round overhead and
#: message handling are significant relative to per-unit work, message
#: latency is a fraction of a round — the paper's Fig. 1 proportions
def default_cost(straggler: Optional[int] = None, factor: float = 4.0,
                 seed: int = 1) -> CostModel:
    speed = {straggler: factor} if straggler is not None else None
    return CostModel(alpha=1.0, beta=0.002, speed=speed, latency=0.25,
                     msg_cost=0.05, send_cost=0.02, seed=seed)


def grape_cost(straggler: Optional[int] = None, factor: float = 4.0,
               seed: int = 1) -> CostModel:
    """Cost constants for GRAPE+ in the *cross-system* comparison (Table 1).

    The per-work-unit constant (0.001) reflects a tight sequential C++ loop
    over a fragment, vs the vertex-centric profiles' per-vertex-function
    (0.011-0.05) and per-message-object (0.0035-0.02) constants — the
    documented implementation gap between block-centric and vertex-centric
    engines (DESIGN.md, section 2).  Mode comparisons (Fig. 6) never mix
    timescales: they use :func:`default_cost` for every mode.
    """
    speed = {straggler: factor} if straggler is not None else None
    return CostModel(alpha=0.25, beta=0.001, speed=speed, latency=0.25,
                     msg_cost=0.004, send_cost=0.002, seed=seed)


def partition(graph: Graph, m: int, locality: bool = False,
              skew: Optional[float] = None, seed: int = 0
              ) -> PartitionedGraph:
    """Partition with the experiment knobs: locality and target skew r.

    With ``skew`` set, the reshuffle starts from a locality partition when
    ``locality`` is true (the paper reshuffles XtraPuLP partitions) and
    from a hash partition otherwise.
    """
    if skew is not None and skew > 1.0:
        if locality:
            base = BfsPartitioner(seed=seed).assign(graph, m)
        else:
            base = HashPartitioner(salt=seed).assign(graph, m)
        return reshuffle_to_skew(graph, base, m, target_ratio=skew,
                                 seed=seed)
    if locality:
        return BfsPartitioner(seed=seed).partition(graph, m)
    return HashPartitioner(salt=seed).partition(graph, m)
