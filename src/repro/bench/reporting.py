"""Table/series formatting for the experiment harness.

The benches print the same row/series structure as the paper's tables and
figures; these helpers keep the output uniform and grep-friendly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[Any]]) -> str:
    """Fixed-width text table with a title rule."""
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [f"== {title} ==",
           " | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_series(title: str, x_label: str, xs: Sequence[Any],
                  series: Mapping[str, Sequence[float]]) -> str:
    """One row per series, one column per x value (a figure as text)."""
    headers = [x_label] + [str(x) for x in xs]
    rows = [[name] + list(vals) for name, vals in series.items()]
    return format_table(title, headers, rows)


def speedups(times: Mapping[str, float], baseline: str) -> Dict[str, float]:
    """time(baseline) / time(mode) for every mode (>1 = faster)."""
    base = times[baseline]
    return {mode: (base / t if t > 0 else float("inf"))
            for mode, t in times.items()}


def human_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024:
            return f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}TB"
