"""Experiment harness: workloads, per-figure runners, report formatting."""

from repro.bench import experiments, reporting, workloads

__all__ = ["workloads", "experiments", "reporting"]
