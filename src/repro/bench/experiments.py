"""Experiment runners: one function per paper table/figure.

Each function reproduces the *structure* of one experiment — same modes,
same x-axis, same measured quantities — at laptop scale, and returns plain
dicts the benches print with :mod:`repro.bench.reporting`.  The worker
counts are scaled down (the paper's 64..320 workers -> 4..24 fragments) but
kept proportional so the trends are comparable; EXPERIMENTS.md records the
mapping and the measured-vs-paper shapes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro import api
from repro.algorithms import (CCProgram, CCQuery, CFProgram, CFQuery,
                              PageRankProgram, PageRankQuery, SSSPProgram,
                              SSSPQuery)
from repro.baselines import PROFILES, run_baseline
from repro.bench import workloads
from repro.core.modes import MODES
from repro.graph.graph import Graph

#: the modes every figure compares (GRAPE+ = AAP; its variants = the rest)
FIG6_MODES = ("AAP", "BSP", "AP", "SSP")


def _program_and_query(algorithm: str, graph: Graph, source=None):
    if algorithm == "sssp":
        src = source if source is not None else next(iter(graph.nodes))
        return SSSPProgram, SSSPQuery(source=src)
    if algorithm == "cc":
        return CCProgram, CCQuery()
    if algorithm == "pagerank":
        # per-node threshold of 5e-4 regardless of graph size
        return PageRankProgram, PageRankQuery(
            epsilon=max(1e-3, 5e-4 * graph.num_nodes),
            num_nodes=graph.num_nodes)
    if algorithm == "cf":
        return (lambda: CFProgram(rank=4)), CFQuery(rank=4, epochs=6)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def run_modes_experiment(algorithm: str, graph: Graph, workers: Sequence[int],
                         straggler_factor: float = 4.0,
                         skew: Optional[float] = None,
                         modes: Sequence[str] = FIG6_MODES,
                         source=None, seed: int = 1
                         ) -> Dict[str, List[float]]:
    """Fig. 6(a)-(h) core: response time per mode, varying worker count.

    A straggler (slow worker 0) models the skewed clusters of Exp-1; pass
    ``skew`` to use a skewed partition instead (Exp-4 style).
    """
    prog_factory, query = _program_and_query(algorithm, graph, source)
    series: Dict[str, List[float]] = {m: [] for m in modes}
    for n in workers:
        pg = workloads.partition(graph, n, skew=skew, seed=seed)
        straggler = 0 if straggler_factor and straggler_factor > 1 else None
        results = api.compare_modes(
            prog_factory, pg, query, modes=modes,
            cost_model_factory=lambda: workloads.default_cost(
                straggler=straggler, factor=straggler_factor, seed=seed))
        for m in modes:
            series[m].append(results[m].time)
    return series


def run_table1(num_workers: int = 8, scale: float = 1.0, seed: int = 1
               ) -> List[Dict[str, Any]]:
    """Table 1: PageRank and SSSP across systems — time and communication.

    Competitors run on the vertex-centric engine with their profiles;
    GRAPE+ runs the real PIE programs under AAP.  One straggler (worker 0,
    4x) reproduces the skewed-cluster setting.
    """
    g = workloads.friendster(scale=scale)
    source = next(iter(g.nodes))
    speed = {0: 4.0}
    rows: List[Dict[str, Any]] = []
    for system in PROFILES:
        pr = run_baseline(system, "pagerank", g, num_workers, speed=speed,
                          pagerank_iterations=30)
        ss = run_baseline(system, "sssp", g, num_workers, source=source,
                          speed=speed)
        rows.append({"system": system,
                     "pagerank_time": pr.time, "pagerank_comm": pr.comm_bytes,
                     "sssp_time": ss.time, "sssp_comm": ss.comm_bytes})
    pg = workloads.partition(g, num_workers)

    def cost():
        return workloads.grape_cost(straggler=0, factor=4.0, seed=seed)

    # epsilon=1.5 gives the same answer accuracy as the profiles' 30
    # synchronous iterations (~0.14 max error on this workload)
    pr = api.run(PageRankProgram(), pg,
                 PageRankQuery(epsilon=1.5, num_nodes=g.num_nodes),
                 mode="AAP", cost_model=cost(), record_trace=False)
    ss = api.run(SSSPProgram(), pg, SSSPQuery(source=source), mode="AAP",
                 cost_model=cost(), record_trace=False)
    rows.append({"system": "GRAPE+",
                 "pagerank_time": pr.time,
                 "pagerank_comm": pr.communication_bytes,
                 "sssp_time": ss.time, "sssp_comm": ss.communication_bytes})
    return rows


def run_communication(algorithms: Sequence[str] = ("sssp", "pagerank"),
                      num_workers: int = 8, seed: int = 1
                      ) -> List[Dict[str, Any]]:
    """Exp-2: bytes shipped per mode (GRAPE+ vs its BSP/AP/SSP variants)."""
    g = workloads.friendster()
    source = next(iter(g.nodes))
    pg = workloads.partition(g, num_workers)
    rows = []
    for algorithm in algorithms:
        prog_factory, query = _program_and_query(algorithm, g, source)
        results = api.compare_modes(
            prog_factory, pg, query, modes=FIG6_MODES,
            cost_model_factory=lambda: workloads.default_cost(
                straggler=0, factor=4.0, seed=seed))
        for mode, r in results.items():
            rows.append({"algorithm": algorithm, "mode": mode,
                         "time": r.time,
                         "bytes": r.communication_bytes,
                         "messages": r.metrics.total_messages})
    return rows


def run_scaleup(algorithm: str, workers: Sequence[int] = (4, 8, 12, 16),
                base_scale: float = 0.5, seed: int = 1
                ) -> Dict[str, List[float]]:
    """Fig. 6(i)/(j): graph size and workers grow proportionally.

    Reports the time ratio vs the smallest configuration (1.0 = perfect
    scale-up, i.e. flat).
    """
    times: List[float] = []
    n0 = workers[0]
    for n in workers:
        scale = base_scale * (n / n0)
        g = workloads.synthetic_large(scale=scale, seed=seed)
        prog_factory, query = _program_and_query(algorithm, g)
        pg = workloads.partition(g, n, seed=seed)
        r = api.run(prog_factory(), pg, query, mode="AAP",
                    cost_model=workloads.default_cost(straggler=0,
                                                      factor=2.0, seed=seed),
                    record_trace=False)
        times.append(r.time)
    base = times[0] if times and times[0] > 0 else 1.0
    return {"workers": list(workers), "time": times,
            "ratio": [t / base for t in times]}


def run_partition_impact(ratios: Sequence[float] = (1, 3, 5, 7, 9),
                         num_workers: int = 16, seed: int = 2
                         ) -> Dict[str, List[float]]:
    """Fig. 6(k): SSSP time per mode as the skew ratio r grows.

    Two scale adaptations (documented in EXPERIMENTS.md): the paper runs
    this on Friendster, whose laptop stand-in has too small a diameter for
    stragglers to gate anything, so the road network carries the
    experiment; and the worker count is kept high (16) so the r=9 heavy
    fragment is a bottleneck *by speed* rather than simply holding most of
    the data (at the paper's 192 workers, 9x the median is still a small
    fraction of the graph).
    """
    g = workloads.traffic()
    source = next(iter(g.nodes))
    series: Dict[str, List[float]] = {m: [] for m in FIG6_MODES}
    for r_target in ratios:
        skew = None if r_target <= 1 else float(r_target)
        pg = workloads.partition(g, num_workers, skew=skew, seed=seed)
        results = api.compare_modes(
            SSSPProgram, pg, SSSPQuery(source=source), modes=FIG6_MODES,
            cost_model_factory=lambda: workloads.default_cost(seed=seed))
        for m in FIG6_MODES:
            series[m].append(results[m].time)
    return series


def run_largescale(workers: Sequence[int] = (8, 12, 16),
                   scale: float = 1.0, seed: int = 1
                   ) -> Dict[str, List[float]]:
    """Fig. 6(l): PageRank on the large synthetic graph, more workers.

    "Large" is relative to the Fig. 6(e)-(f) workloads (~2x the edges);
    the per-node threshold is coarsened accordingly to keep the bench
    wall-clock bounded (the shape is threshold-insensitive).
    """
    g = workloads.synthetic_large(scale=scale, seed=seed)
    query = PageRankQuery(epsilon=2e-3 * g.num_nodes,
                          num_nodes=g.num_nodes)
    series: Dict[str, List[float]] = {m: [] for m in FIG6_MODES}
    for n in workers:
        pg = workloads.partition(g, n, skew=3.0, seed=seed)
        results = api.compare_modes(
            PageRankProgram, pg, query, modes=FIG6_MODES,
            cost_model_factory=lambda: workloads.default_cost(
                straggler=0, factor=3.0, seed=seed))
        for m in FIG6_MODES:
            series[m].append(results[m].time)
    return series


def run_fig7_casestudy(num_workers: int = 8, straggler: int = 0,
                       factor: float = 4.0, seed: int = 3
                       ) -> Dict[str, Any]:
    """Appendix B: PageRank timing diagrams with one straggler.

    Returns per-mode run results with traces (for the Gantt rendering) and
    the straggler round counts the paper quotes (50/27/28 vs 24)."""
    g = workloads.friendster(scale=0.6, seed=seed)
    pg = workloads.partition(g, num_workers, seed=seed)
    out: Dict[str, Any] = {}
    for mode in ("BSP", "AP", "SSP", "AAP"):
        r = api.run(PageRankProgram(), pg, PageRankQuery(epsilon=1e-3),
                    mode=mode,
                    cost_model=workloads.default_cost(
                        straggler=straggler, factor=factor, seed=seed),
                    staleness_bound=5 if mode == "SSP" else None,
                    record_trace=True)
        out[mode] = {
            "result": r,
            "time": r.time,
            "straggler_rounds": r.rounds[straggler],
            # the paper's "idle" covers all waiting: idle + suspension
            "idle": r.metrics.total_idle + r.metrics.total_suspended,
        }
    return out


def run_cf_casestudy(num_workers: int = 6, epochs: int = 6,
                     bounds: Sequence[int] = (1, 2, 4, 8), seed: int = 5
                     ) -> List[Dict[str, Any]]:
    """Appendix B (2): CF under the four models, varying staleness bound c.

    The paper's finding: BSP converges in the fewest rounds but idles; AP
    takes the most rounds; SSP needs a hand-tuned c; AAP is robust to c.
    """
    g, _, _ = workloads.netflix(scale=0.5, seed=seed)
    pg = workloads.partition(g, num_workers, seed=seed)
    rows: List[Dict[str, Any]] = []
    query = CFQuery(rank=4, epochs=epochs, seed=seed)

    def cost():
        return workloads.default_cost(straggler=0, factor=3.0, seed=seed)

    for mode in ("BSP", "AP"):
        r = api.run(CFProgram(rank=4), pg, query, mode=mode,
                    cost_model=cost(), record_trace=False)
        rows.append({"mode": mode, "c": "-", "time": r.time,
                     "rounds": max(r.rounds), "rmse": r.answer["rmse"]})
    for c in bounds:
        for mode in ("SSP", "AAP"):
            r = api.run(CFProgram(rank=4), pg, query, mode=mode,
                        staleness_bound=c, cost_model=cost(),
                        record_trace=False)
            rows.append({"mode": mode, "c": c, "time": r.time,
                         "rounds": max(r.rounds), "rmse": r.answer["rmse"]})
    return rows
