"""Typed event records and the append-only event log.

Every runtime emits the same record types with the same payload keys, so a
run on the simulator, the threaded runtime or the multiprocess runtime can
be analysed (and exported) with the same tooling.  The canonical payload
schema lives in :data:`SCHEMA`; the tests assert every runtime conforms.

Timestamps are in the emitting runtime's time base: simulated time units for
:class:`~repro.runtime.simulator.SimulatedRuntime`, seconds since run start
for the wall-clock runtimes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

#: a worker begins PEval or IncEval
ROUND_START = "round_start"
#: a worker finished a round; its messages become visible
ROUND_END = "round_end"
#: a designated message leaves its producer (wid = sender)
MSG_SEND = "msg_send"
#: a designated message lands in the destination buffer (wid = receiver)
MSG_DELIVER = "msg_deliver"
#: a delay policy was consulted; carries the Eq. 1 inputs and the verdict
DS_DECISION = "ds_decision"
#: a worker's lifecycle status changed
STATUS_CHANGE = "status_change"
#: a global synchronisation point (BSP superstep boundary)
BARRIER = "barrier"
#: the master probed for termination (the terminate/ack-or-wait exchange)
TERMINATE_PROBE = "terminate_probe"
#: a worker's heartbeat is overdue but not yet fatal (wid = suspect)
HEARTBEAT_MISS = "heartbeat_miss"
#: the failure detector declared a worker dead (wid = failed worker)
FAILURE_DETECTED = "failure_detected"
#: a Chandy-Lamport checkpoint completed (run-global)
CHECKPOINT = "checkpoint"
#: recovery rolled the computation back to a consistent snapshot
ROLLBACK = "rollback"
#: recovery is restarting the run after a backoff
RETRY = "retry"
#: the fault plan injected an event (crash, drop, delay, duplicate)
FAULT_INJECTED = "fault_injected"
#: a dead worker was respawned in place (wid = respawned worker)
WORKER_RESPAWN = "worker_respawn"
#: a replacement took over its fragment: reseeded + peers re-shipped
FRAGMENT_TAKEOVER = "fragment_takeover"
#: recovery fell down one rung of the degradation ladder
DEGRADE = "degrade"
#: the graph service accepted an update batch into its ingest queue
INGEST = "ingest"
#: one ingested batch was fully applied and re-converged (an epoch)
EPOCH_APPLY = "epoch_apply"
#: the graph service answered a read query under its freshness contract
QUERY_SERVED = "query_served"
#: admission control shed work (an update batch or a read query)
ADMISSION_SHED = "admission_shed"

EVENT_TYPES = (ROUND_START, ROUND_END, MSG_SEND, MSG_DELIVER, DS_DECISION,
               STATUS_CHANGE, BARRIER, TERMINATE_PROBE, HEARTBEAT_MISS,
               FAILURE_DETECTED, CHECKPOINT, ROLLBACK, RETRY, FAULT_INJECTED,
               WORKER_RESPAWN, FRAGMENT_TAKEOVER, DEGRADE, INGEST,
               EPOCH_APPLY, QUERY_SERVED, ADMISSION_SHED)

#: canonical payload keys per event type (shared by every runtime)
SCHEMA: Dict[str, tuple] = {
    ROUND_START: ("kind", "batches"),
    ROUND_END: ("kind", "duration", "messages"),
    MSG_SEND: ("dst", "bytes", "seq", "entries"),
    MSG_DELIVER: ("src", "bytes", "seq", "depth"),
    DS_DECISION: ("ds", "action", "eta", "t_pred", "s_pred", "rmin", "rmax",
                  "t_idle", "reason"),
    STATUS_CHANGE: ("frm", "to"),
    BARRIER: ("step",),
    TERMINATE_PROBE: ("result",),
    HEARTBEAT_MISS: ("age",),
    FAILURE_DETECTED: ("reason", "age"),
    CHECKPOINT: ("token", "workers", "channel_messages"),
    ROLLBACK: ("token", "attempt"),
    RETRY: ("attempt", "backoff"),
    FAULT_INJECTED: ("fault", "detail"),
    WORKER_RESPAWN: ("incarnation", "seeded", "token", "budget_left"),
    FRAGMENT_TAKEOVER: ("incarnation", "reshipped", "duration"),
    DEGRADE: ("frm", "to", "reason"),
    INGEST: ("edges", "depth", "latency"),
    EPOCH_APPLY: ("epoch", "edges", "changed", "duration"),
    QUERY_SERVED: ("key", "bound", "staleness", "epoch", "latency",
                   "cache_hit"),
    ADMISSION_SHED: ("kind", "reason", "depth"),
}


@dataclass(frozen=True)
class ObsEvent:
    """One structured observability record."""

    type: str
    #: timestamp in the emitting runtime's time base
    t: float
    #: worker the event concerns (-1 for run-global events)
    wid: int = -1
    #: the worker's round counter when the event fired (-1 when n/a)
    round: int = -1
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.type, "t": self.t, "wid": self.wid,
                "round": self.round, "payload": dict(self.payload)}


class EventLog:
    """Append-only, thread-safe log of :class:`ObsEvent` records.

    The hot-path contract is that runtimes never call :meth:`emit` unless an
    observer was attached, so a disabled run pays nothing; when enabled the
    per-emit cost is one lock acquisition and one list append.
    """

    __slots__ = ("events", "_lock")

    def __init__(self):
        self.events: List[ObsEvent] = []
        self._lock = threading.Lock()

    def emit(self, type: str, t: float, wid: int = -1,
             round: int = -1, **payload: Any) -> None:
        with self._lock:
            self.events.append(ObsEvent(type=type, t=t, wid=wid,
                                        round=round, payload=payload))

    def append(self, event: ObsEvent) -> None:
        with self._lock:
            self.events.append(event)

    def extend(self, events) -> None:
        with self._lock:
            self.events.extend(events)

    # ------------------------------------------------------------------
    def filter(self, type: Optional[str] = None,
               wid: Optional[int] = None) -> List[ObsEvent]:
        return [e for e in self.events
                if (type is None or e.type == type)
                and (wid is None or e.wid == wid)]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.type] = out.get(e.type, 0) + 1
        return out

    def types(self) -> set:
        return {e.type for e in self.events}

    def payload_keys(self) -> Dict[str, set]:
        """Observed payload-key sets per event type (schema introspection)."""
        out: Dict[str, set] = {}
        for e in self.events:
            out.setdefault(e.type, set()).update(e.payload)
        return out

    def sort(self) -> None:
        """Order records by timestamp (stable); for merged worker logs."""
        with self._lock:
            self.events.sort(key=lambda e: e.t)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ObsEvent]:
        return iter(list(self.events))

    def __repr__(self) -> str:
        return f"EventLog({len(self.events)} events)"
