"""Exporters: Chrome ``trace_event`` JSON and JSONL event dumps.

The Chrome format (one JSON document with a ``traceEvents`` array) loads
directly in ``chrome://tracing`` and in Perfetto's legacy-trace importer
(https://ui.perfetto.dev → "Open trace file").  Rounds become complete
("X") slices on one track per worker; everything else becomes instant
("i") events on the same track; buffer depth additionally becomes a
counter ("C") series, so the staleness build-up the delay policies react
to is visible as a graph above the timeline.

Simulated time units are mapped 1:1 onto microseconds (the viewer's native
unit); wall-clock runtimes record seconds, which are scaled likewise.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.events import (BARRIER, MSG_DELIVER, ROUND_END, ROUND_START,
                              EventLog, ObsEvent)

#: timestamp scale: event-log time units -> trace microseconds
_TS_SCALE = 1e6


def to_chrome_trace(log: EventLog, process_name: str = "repro",
                    time_scale: float = _TS_SCALE) -> Dict[str, Any]:
    """Convert an event log into a Chrome ``trace_event`` document.

    Each worker is one thread (track) of one process; ``round_start`` /
    ``round_end`` pairs become duration slices named after the round kind
    (``peval`` / ``inceval``).
    """
    events: List[Dict[str, Any]] = []
    events.append({"ph": "M", "pid": 0, "tid": 0,
                   "name": "process_name",
                   "args": {"name": process_name}})
    wids = sorted({e.wid for e in log.events if e.wid >= 0})
    for wid in wids:
        events.append({"ph": "M", "pid": 0, "tid": wid,
                       "name": "thread_name",
                       "args": {"name": f"worker {wid}"}})
    open_rounds: Dict[int, ObsEvent] = {}
    for e in log.events:
        ts = e.t * time_scale
        if e.type == ROUND_START:
            open_rounds[e.wid] = e
            continue
        if e.type == ROUND_END:
            start = open_rounds.pop(e.wid, None)
            begin = start.t * time_scale if start is not None \
                else ts - e.payload.get("duration", 0.0) * time_scale
            events.append({
                "ph": "X", "pid": 0, "tid": e.wid,
                "name": e.payload.get("kind", "round"),
                "cat": "round", "ts": begin, "dur": max(ts - begin, 0.0),
                "args": {"round": e.round, **e.payload}})
            continue
        tid = e.wid if e.wid >= 0 else 0
        scope = "g" if e.type == BARRIER else "t"
        events.append({
            "ph": "i", "pid": 0, "tid": tid, "name": e.type,
            "cat": e.type, "ts": ts, "s": scope,
            "args": {"round": e.round, **e.payload}})
        if e.type == MSG_DELIVER:
            events.append({
                "ph": "C", "pid": 0, "tid": tid,
                "name": f"buffer_depth_w{e.wid}", "ts": ts,
                "args": {"depth": e.payload.get("depth", 0)}})
    # rounds still open at export time (e.g. a crashed run) become slices
    # ending at the last known timestamp
    last_ts = max((e.t for e in log.events), default=0.0) * time_scale
    for wid, start in open_rounds.items():
        events.append({
            "ph": "X", "pid": 0, "tid": wid,
            "name": start.payload.get("kind", "round"), "cat": "round",
            "ts": start.t * time_scale,
            "dur": max(last_ts - start.t * time_scale, 0.0),
            "args": {"round": start.round, "unfinished": True}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(log: EventLog, path: str,
                       process_name: str = "repro") -> None:
    """Write the Chrome-trace JSON document to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(log, process_name=process_name), fh)


def write_jsonl(log: EventLog, path: str) -> None:
    """Dump the log as JSON Lines (one event object per line)."""
    with open(path, "w", encoding="utf-8") as fh:
        for e in log.events:
            fh.write(json.dumps(e.to_dict()) + "\n")


def read_jsonl(path: str) -> EventLog:
    """Load a JSONL dump back into an :class:`EventLog`."""
    log = EventLog()
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            log.append(ObsEvent(type=doc["type"], t=doc["t"],
                                wid=doc.get("wid", -1),
                                round=doc.get("round", -1),
                                payload=doc.get("payload", {})))
    return log
