"""Unified observability layer shared by every runtime (paper, Section 6).

GRAPE+'s statistics collector is what makes adaptive DS adjustment — and the
paper's Fig. 1 / Fig. 7 analyses — possible.  This package provides its
reproduction-side equivalent as three composable pieces:

- :class:`~repro.obs.events.EventLog` — typed, timestamped event records
  (``round_start``, ``round_end``, ``msg_send``, ``msg_deliver``,
  ``ds_decision``, ``status_change``, ``barrier``, ``terminate_probe``)
  emitted by the simulated, threaded and multiprocess runtimes behind a
  zero-overhead-when-disabled hook (runtimes hold ``observer=None`` by
  default and guard every emission).
- :class:`~repro.obs.registry.MetricsRegistry` — named counters, gauges and
  histograms with an optional per-worker label; :class:`~repro.runtime.
  metrics.RunMetrics` is built on top of it, so all runtimes report the
  same schema.
- Exporters — Chrome ``trace_event`` JSON (:func:`~repro.obs.export.
  to_chrome_trace`, loadable in ``chrome://tracing`` / Perfetto) and a
  JSONL dump, plus the delay-decision audit ("why did worker *i* wait?").

See ``docs/observability.md`` for the event schema and usage.
"""

from repro.obs.audit import explain_delays
from repro.obs.events import (ADMISSION_SHED, BARRIER, CHECKPOINT,
                              DS_DECISION, EPOCH_APPLY, EVENT_TYPES,
                              FAILURE_DETECTED, FAULT_INJECTED,
                              HEARTBEAT_MISS, INGEST, MSG_DELIVER, MSG_SEND,
                              QUERY_SERVED, RETRY, ROLLBACK, ROUND_END,
                              ROUND_START, SCHEMA, STATUS_CHANGE,
                              TERMINATE_PROBE, EventLog, ObsEvent)
from repro.obs.export import (read_jsonl, to_chrome_trace, write_chrome_trace,
                              write_jsonl)
from repro.obs.registry import (Counter, Gauge, Histogram, MetricsRegistry)


class Observer:
    """Bundle of one run's event log and metrics registry.

    Runtimes accept ``observer=None`` (the default: no recording, zero
    overhead) or an :class:`Observer`; after the run, ``observer.log`` holds
    the event stream and ``observer.metrics`` the populated registry.
    """

    __slots__ = ("log", "metrics")

    def __init__(self, log: EventLog = None,
                 metrics: MetricsRegistry = None):
        self.log = log if log is not None else EventLog()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def __repr__(self) -> str:
        return (f"Observer(events={len(self.log.events)}, "
                f"metrics={len(self.metrics.names())})")


__all__ = [
    "Observer", "EventLog", "ObsEvent", "MetricsRegistry", "Counter",
    "Gauge", "Histogram", "to_chrome_trace", "write_chrome_trace",
    "write_jsonl", "read_jsonl", "explain_delays", "EVENT_TYPES", "SCHEMA",
    "ROUND_START", "ROUND_END", "MSG_SEND", "MSG_DELIVER", "DS_DECISION",
    "STATUS_CHANGE", "BARRIER", "TERMINATE_PROBE", "HEARTBEAT_MISS",
    "FAILURE_DETECTED", "CHECKPOINT", "ROLLBACK", "RETRY", "FAULT_INJECTED",
    "INGEST", "EPOCH_APPLY", "QUERY_SERVED", "ADMISSION_SHED",
]
