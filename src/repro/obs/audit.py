"""Delay-policy decision audit: *why did worker i wait?*

Every time a runtime consults its :class:`~repro.core.delay.DelayPolicy`,
it records a ``ds_decision`` event carrying the Eq. 1 inputs (``eta``,
``t_pred``, ``s_pred``, ``r_min``/``r_max``, ``T_idle``), the resulting
``DS_i`` and the action taken.  This module renders those records as a
human-readable audit trail.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.obs.events import DS_DECISION, EventLog


def _fmt(v) -> str:
    if isinstance(v, float):
        if math.isinf(v):
            return "inf"
        return f"{v:.4g}"
    return str(v)


def explain_delays(log: EventLog, wid: Optional[int] = None,
                   limit: Optional[int] = None) -> List[str]:
    """One line per ``ds_decision``, newest last.

    ``wid`` restricts the audit to one worker; ``limit`` keeps only the last
    N decisions.
    """
    lines = []
    for e in log.filter(type=DS_DECISION, wid=wid):
        p = e.payload
        reason = p.get("reason") or ""
        reason = f" [{reason}]" if reason else ""
        lines.append(
            f"t={_fmt(e.t)} P{e.wid} r{e.round}: {p.get('action', '?')} "
            f"DS={_fmt(p.get('ds', '?'))}{reason} "
            f"(eta={_fmt(p.get('eta', '?'))}, "
            f"t_pred={_fmt(p.get('t_pred', '?'))}, "
            f"s_pred={_fmt(p.get('s_pred', '?'))}, "
            f"r_min/r_max={_fmt(p.get('rmin', '?'))}/"
            f"{_fmt(p.get('rmax', '?'))}, "
            f"T_idle={_fmt(p.get('t_idle', '?'))})")
    if limit is not None:
        lines = lines[-limit:]
    return lines
