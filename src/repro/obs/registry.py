"""Named counters, gauges and histograms with a per-worker label.

The registry is the uniform vocabulary the runtimes report through:
per-round durations, buffer depth at delivery, the DS values a policy chose,
staleness at drain time, bytes on the wire.  :class:`~repro.runtime.metrics.
RunMetrics` is assembled from a registry, so the simulator and the
wall-clock runtimes share one metrics schema.

Instruments are keyed by ``(name, wid)``; ``wid=None`` is a run-global
instrument.  Creation is lock-protected (the threaded runtime creates
instruments from many threads); updates on an instrument are simple
attribute writes, which each runtime already serialises per worker.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple


class Counter:
    """Monotonically increasing count (messages, bytes, rounds...)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n=1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """Last-write-wins value (busy time, makespan...)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def add(self, v: float) -> None:
        self.value += v

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


class Histogram:
    """Streaming summary of a distribution (round durations, DS values...)."""

    __slots__ = ("count", "total", "vmin", "vmax")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        if v < self.vmin:
            self.vmin = v
        if v > self.vmax:
            self.vmax = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        return {"count": self.count, "total": self.total, "mean": self.mean,
                "min": self.vmin if self.count else 0.0,
                "max": self.vmax if self.count else 0.0}

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, mean={self.mean:.4g})"


_Key = Tuple[str, Optional[int]]


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    __slots__ = ("_instruments", "_lock")

    def __init__(self):
        self._instruments: Dict[_Key, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, wid: Optional[int], factory):
        key = (name, wid)
        inst = self._instruments.get(key)
        if inst is None:
            with self._lock:
                inst = self._instruments.get(key)
                if inst is None:
                    inst = factory()
                    self._instruments[key] = inst
        if not isinstance(inst, factory):
            raise TypeError(
                f"metric {name!r} (wid={wid}) already registered as "
                f"{type(inst).__name__}, not {factory.__name__}")
        return inst

    def counter(self, name: str, wid: Optional[int] = None) -> Counter:
        return self._get(name, wid, Counter)

    def gauge(self, name: str, wid: Optional[int] = None) -> Gauge:
        return self._get(name, wid, Gauge)

    def histogram(self, name: str, wid: Optional[int] = None) -> Histogram:
        return self._get(name, wid, Histogram)

    # ------------------------------------------------------------------
    def get(self, name: str, wid: Optional[int] = None):
        """The instrument, or ``None`` if it was never created."""
        return self._instruments.get((name, wid))

    def names(self) -> List[str]:
        return sorted({name for name, _ in self._instruments})

    def wids(self, name: str) -> List[int]:
        """Worker labels under which ``name`` was recorded."""
        return sorted(w for n, w in self._instruments
                      if n == name and w is not None)

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """JSON-ready dump: ``{name: {wid-or-'all': value-or-summary}}``."""
        out: Dict[str, Dict[str, Any]] = {}
        for (name, wid), inst in sorted(
                self._instruments.items(),
                key=lambda kv: (kv[0][0], -1 if kv[0][1] is None
                                else kv[0][1])):
            label = "all" if wid is None else str(wid)
            value = (inst.summary() if isinstance(inst, Histogram)
                     else inst.value)
            out.setdefault(name, {})[label] = value
        return out

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._instruments)} instruments)"
