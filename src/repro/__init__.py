"""repro: reproduction of "Adaptive Asynchronous Parallelization of Graph
Algorithms" (Fan et al., SIGMOD 2018).

The package implements the AAP parallel model, the GRAPE PIE programming
paradigm (PEval / IncEval / Assemble), a deterministic discrete-event
distributed runtime with BSP/AP/SSP/Hsync as special-case delay policies, a
real threaded runtime, the paper's four applications (SSSP, CC, PageRank,
CF), vertex-centric baselines, and the full experiment harness.

Quick start::

    from repro import api
    from repro.algorithms import CCProgram, CCQuery
    from repro.graph import generators

    g = generators.powerlaw(2000, m=3, seed=7)
    result = api.run(CCProgram(), g, CCQuery(), num_fragments=8, mode="AAP")
"""

from repro import api
from repro.api import compare_modes, partition_graph, run
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["api", "run", "compare_modes", "partition_graph", "ReproError",
           "__version__"]
