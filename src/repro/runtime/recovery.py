"""Online recovery: rollback to the last checkpoint and retry (Section 6).

The paper's Theorem 2 guarantees that for monotone PIE programs any
consistent Chandy-Lamport cut is a valid restart point: re-running from the
snapshot reaches the same fixpoint as the uninterrupted run.
:func:`run_with_recovery` turns that guarantee into a supervisor loop — it
builds a fresh runtime per attempt (via a caller-supplied factory), seeds it
from the last complete checkpoint when one exists, and retries detected
worker failures with bounded exponential backoff.  When the budget is
exhausted it raises a structured :class:`~repro.errors.WorkerFailureError`
carrying the accumulated failure log and the last checkpoint, instead of
hanging or losing the evidence.

:func:`run_chaos` is the one-call harness behind ``repro chaos``: it runs a
program under a :class:`~repro.runtime.faultplan.FaultPlan` with recovery
enabled and reports detection latency, recovery count and answer
correctness against a fault-free reference run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import RuntimeConfigError, WorkerCrashedError, \
    WorkerFailureError
from repro.obs import events as obs_events
from repro.runtime.detection import FailureEvent
from repro.runtime.snapshot import GlobalSnapshot


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for failure recovery."""

    max_retries: int = 2
    backoff: float = 0.05
    factor: float = 2.0
    max_backoff: float = 1.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise RuntimeConfigError(
                f"max_retries must be >= 0, got {self.max_retries!r}")
        if self.backoff < 0 or self.max_backoff < 0 or self.factor < 1.0:
            raise RuntimeConfigError(
                f"invalid backoff parameters: {self!r}")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based)."""
        return min(self.backoff * self.factor ** max(attempt - 1, 0),
                   self.max_backoff)


def run_with_recovery(runtime_factory: Callable[
                          [Optional[GlobalSnapshot], int], Any],
                      retry: Optional[RetryPolicy] = None,
                      observer: Optional[Any] = None,
                      sleep: Callable[[float], None] = time.sleep):
    """Run a live runtime, rolling back to checkpoints on worker failure.

    ``runtime_factory(snapshot, attempt)`` must return a *fresh* runtime,
    already seeded from ``snapshot`` when it is not ``None`` (attempt 0
    always receives ``None``).  The factory owns the policy decisions a
    restart needs — in particular, building attempt > 0 with
    ``plan.without_crashes()`` so a deterministic crash fault does not
    simply re-fire (that is what
    :func:`~repro.runtime.faultplan.FaultPlan.without_crashes` is for).

    Returns the successful :class:`~repro.core.result.RunResult`, with
    ``extras["recovery"]`` summarising attempts/recoveries/failures.
    Raises :class:`WorkerFailureError` once ``retry.max_retries`` restarts
    have failed.
    """
    retry = retry or RetryPolicy()
    snapshot: Optional[GlobalSnapshot] = None
    failures: List[FailureEvent] = []
    crashes: List[Dict[str, Any]] = []
    recoveries = 0
    attempt = 0
    while True:
        runtime = runtime_factory(snapshot, attempt)
        try:
            result = runtime.run()
        except WorkerCrashedError as crash:
            failures.extend(crash.failures or [FailureEvent(
                t=crash.detected_at, kind=crash.reason, wid=crash.wid)])
            crashes.append({"wid": crash.wid, "reason": crash.reason,
                            "detected_at": crash.detected_at,
                            "detection_latency": crash.detection_latency})
            if crash.checkpoint is not None:
                snapshot = crash.checkpoint
            if attempt >= retry.max_retries:
                raise WorkerFailureError(
                    wid=crash.wid, failures=failures, checkpoint=snapshot,
                    attempts=attempt + 1) from crash
            attempt += 1
            recoveries += 1
            backoff = retry.delay(attempt)
            if observer is not None:
                observer.log.emit(
                    obs_events.ROLLBACK, crash.detected_at,
                    wid=crash.wid, attempt=attempt,
                    token=snapshot.token if snapshot is not None else -1)
                observer.log.emit(obs_events.RETRY, crash.detected_at,
                                  wid=crash.wid, attempt=attempt,
                                  backoff=backoff)
            if backoff > 0:
                sleep(backoff)
            continue
        result.extras["recovery"] = {
            "attempts": attempt + 1,
            "recoveries": recoveries,
            "failures": list(failures),
            "crashes": list(crashes),
            "resumed_from_checkpoint": snapshot is not None,
        }
        return result


def _build_runtime(kind: str, engine_or_none, *, program, pg, query, policy,
                   mode: str, snapshot, fault_plan, checkpoint_interval,
                   heartbeat_interval, heartbeat_timeout, timeout,
                   observer):
    """Construct one live-runtime attempt (lazy imports avoid cycles)."""
    if kind == "threaded":
        from repro.core.engine import Engine
        from repro.runtime.threaded import ThreadedRuntime
        engine = Engine(program, pg, query)
        rt = ThreadedRuntime(
            engine, policy, timeout=timeout, observer=observer,
            fault_plan=fault_plan, checkpoint_interval=checkpoint_interval,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout)
        if snapshot is not None:
            rt.seed_from_snapshot(snapshot)
        return rt
    if kind == "multiprocess":
        from repro.runtime.multiprocess import MultiprocessRuntime
        return MultiprocessRuntime(
            program, pg, query, mode=mode, timeout=timeout,
            observer=observer, fault_plan=fault_plan,
            checkpoint_interval=checkpoint_interval,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout, snapshot=snapshot)
    raise RuntimeConfigError(f"unknown chaos runtime {kind!r}")


def run_chaos(program, pg, query, fault_plan, *, runtime: str = "threaded",
              mode: str = "AAP", policy_factory: Optional[Callable] = None,
              checkpoint_interval: Optional[float] = 0.05,
              heartbeat_interval: float = 0.02,
              heartbeat_timeout: float = 1.0, timeout: float = 60.0,
              retry: Optional[RetryPolicy] = None,
              observer: Optional[Any] = None,
              reference: Optional[Dict] = None) -> Dict[str, Any]:
    """Run ``program`` under ``fault_plan`` with detection + recovery.

    Returns a report dict: the answer, whether it matches a fault-free
    reference run (computed with the simulator unless ``reference`` is
    given), recovery/attempt counts, detection latencies and the injected
    fault log.  This is the engine behind the ``repro chaos`` CLI.
    """
    from repro.core.delay import AAPPolicy, APPolicy, BSPPolicy

    def default_policy():
        if mode == "BSP":
            return BSPPolicy()
        if mode == "AP":
            return APPolicy()
        return AAPPolicy()

    make_policy = policy_factory or default_policy
    if reference is None:
        from repro.core.engine import Engine
        from repro.runtime.simulator import SimulatedRuntime
        ref_engine = Engine(program, pg, query)
        reference = SimulatedRuntime(ref_engine, make_policy()).run().answer

    def factory(snapshot, attempt):
        plan = fault_plan if attempt == 0 else fault_plan.without_crashes()
        return _build_runtime(
            runtime, None, program=program, pg=pg, query=query,
            policy=make_policy(), mode=mode, snapshot=snapshot,
            fault_plan=plan, checkpoint_interval=checkpoint_interval,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout, timeout=timeout,
            observer=observer)

    start = time.monotonic()
    failed: Optional[WorkerFailureError] = None
    try:
        result = run_with_recovery(factory, retry=retry, observer=observer)
    except WorkerFailureError as exc:
        failed = exc
    elapsed = time.monotonic() - start
    if failed is not None:
        return {
            "ok": False,
            "error": str(failed),
            "attempts": failed.attempts,
            "failures": [
                {"t": f.t, "kind": f.kind, "wid": f.wid, "detail": f.detail}
                for f in failed.failures],
            "last_checkpoint_token": (failed.checkpoint.token
                                      if failed.checkpoint else None),
            "elapsed": elapsed,
        }
    rec = result.extras.get("recovery", {})
    fail_log = rec.get("failures", [])
    return {
        "ok": True,
        "answer_matches_reference": result.answer == reference,
        "attempts": rec.get("attempts", 1),
        "recoveries": rec.get("recoveries", 0),
        "resumed_from_checkpoint": rec.get("resumed_from_checkpoint",
                                           False),
        "detection_latencies": [
            round(c["detection_latency"], 4)
            for c in rec.get("crashes", [])],
        "failures": [
            {"t": f.t, "kind": f.kind, "wid": f.wid, "detail": f.detail}
            for f in fail_log],
        "elapsed": elapsed,
        "mode": result.mode,
    }
