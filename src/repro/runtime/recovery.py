"""Graceful-degradation ladder for worker failures (Section 6).

The paper's Theorem 2 guarantees that for monotone PIE programs any
consistent Chandy-Lamport cut is a valid restart point: re-running from the
snapshot reaches the same fixpoint as the uninterrupted run.  Recovery is
organised as a three-rung ladder, each rung strictly cheaper than the next:

1. **In-place respawn** (rung 1, inside the runtimes): the master
   quarantines the dead worker, respawns a replacement in place, re-seeds
   its fragment from the last checkpoint and has peers re-ship their
   border values.  Survivors never stop in AP/AAP/SSP and pause only at
   the next barrier in BSP.  Enabled per-runtime with ``respawn_budget``.
2. **Whole-run rollback** (rung 2, :func:`run_with_recovery`): when the
   respawn budget is exhausted — or the runtime cannot take the fragment
   over — the supervisor builds a fresh runtime seeded from the last
   complete checkpoint and retries with bounded, optionally jittered
   exponential backoff.
3. **Structured failure** (rung 3): once the retry budget or wall-clock
   deadline is spent, a :class:`~repro.errors.WorkerFailureError` carrying
   the accumulated failure log and the last checkpoint is raised, instead
   of hanging or losing the evidence.

Each downward transition emits a :data:`~repro.obs.events.DEGRADE` event.

:func:`run_chaos` is the one-call harness behind ``repro chaos``: it runs a
program under a :class:`~repro.runtime.faultplan.FaultPlan` with the full
ladder enabled and reports detection latency, respawn/recovery counts, the
deepest rung reached and answer correctness against a fault-free reference
run (within a per-workload numeric tolerance).
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import RuntimeConfigError, WorkerCrashedError, \
    WorkerFailureError
from repro.obs import events as obs_events
from repro.runtime.detection import FailureEvent
from repro.runtime.faultplan import _mix
from repro.runtime.snapshot import GlobalSnapshot


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for failure recovery.

    ``deadline`` caps the *total* wall-clock budget of the supervisor loop:
    a retry whose backoff would overrun it degrades straight to rung 3.
    ``jitter`` spreads retry storms: each delay is scaled by a factor drawn
    deterministically from ``[1 - jitter, 1 + jitter)`` keyed on
    ``(seed, attempt)``, so the same policy replays the same schedule.
    """

    max_retries: int = 2
    backoff: float = 0.05
    factor: float = 2.0
    max_backoff: float = 1.0
    #: total wall-clock budget in seconds (None = unbounded)
    deadline: Optional[float] = None
    #: relative jitter amplitude in [0, 1]; 0 disables jitter
    jitter: float = 0.0
    #: seed for the deterministic jitter stream
    seed: int = 0

    def __post_init__(self):
        if self.max_retries < 0:
            raise RuntimeConfigError(
                f"max_retries must be >= 0, got {self.max_retries!r}")
        if self.backoff < 0 or self.max_backoff < 0 or self.factor < 1.0:
            raise RuntimeConfigError(
                f"invalid backoff parameters: {self!r}")
        if self.deadline is not None and self.deadline <= 0:
            raise RuntimeConfigError(
                f"deadline must be positive, got {self.deadline!r}")
        if not 0.0 <= self.jitter <= 1.0:
            raise RuntimeConfigError(
                f"jitter must be in [0, 1], got {self.jitter!r}")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based)."""
        base = min(self.backoff * self.factor ** max(attempt - 1, 0),
                   self.max_backoff)
        if self.jitter <= 0.0 or base <= 0.0:
            return base
        u = _mix(self.seed, 0x5E71, attempt)
        return max(base * (1.0 + self.jitter * (2.0 * u - 1.0)), 0.0)


def _accepts_crash(factory: Callable) -> bool:
    """Whether ``factory`` takes the optional third ``crash`` argument."""
    try:
        sig = inspect.signature(factory)
    except (TypeError, ValueError):
        return False
    if any(p.kind == p.VAR_POSITIONAL for p in sig.parameters.values()):
        return True
    positional = [p for p in sig.parameters.values()
                  if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)]
    return len(positional) >= 3


def run_with_recovery(runtime_factory: Callable[..., Any],
                      retry: Optional[RetryPolicy] = None,
                      observer: Optional[Any] = None,
                      sleep: Callable[[float], None] = time.sleep,
                      clock: Callable[[], float] = time.monotonic):
    """Run a live runtime, rolling back to checkpoints on worker failure.

    ``runtime_factory(snapshot, attempt)`` must return a *fresh* runtime,
    already seeded from ``snapshot`` when it is not ``None`` (attempt 0
    always receives ``None``).  A factory may declare an optional third
    parameter to additionally receive the :class:`WorkerCrashedError` that
    ended the previous attempt (``None`` on attempt 0) — that is how a
    supervisor disarms exactly the crash fault that fired, via
    :meth:`~repro.runtime.faultplan.FaultPlan.without_crash`, while leaving
    the rest of the chaos script armed.

    The retry loop stops — raising :class:`WorkerFailureError` (with the
    accumulated in-place respawn log attached as ``.respawns``) — when
    either ``retry.max_retries`` restarts have failed or the next backoff
    would overrun ``retry.deadline`` seconds of total wall-clock time.

    Returns the successful :class:`~repro.core.result.RunResult`, with
    ``extras["recovery"]`` summarising attempts / recoveries / in-place
    respawns / failures and the deepest ladder rung reached (0 = clean,
    1 = respawn only, 2 = rollback).
    """
    retry = retry or RetryPolicy()
    pass_crash = _accepts_crash(runtime_factory)
    snapshot: Optional[GlobalSnapshot] = None
    failures: List[FailureEvent] = []
    crashes: List[Dict[str, Any]] = []
    respawn_log: List[Dict[str, Any]] = []
    recoveries = 0
    attempt = 0
    last_crash: Optional[WorkerCrashedError] = None
    start = clock()
    while True:
        if pass_crash:
            runtime = runtime_factory(snapshot, attempt, last_crash)
        else:
            runtime = runtime_factory(snapshot, attempt)
        try:
            result = runtime.run()
        except WorkerCrashedError as crash:
            respawn_log.extend(
                dict(r) for r in getattr(runtime, "respawns", None) or [])
            failures.extend(crash.failures or [FailureEvent(
                t=crash.detected_at, kind=crash.reason, wid=crash.wid)])
            crashes.append({"wid": crash.wid, "reason": crash.reason,
                            "detected_at": crash.detected_at,
                            "detection_latency": crash.detection_latency})
            if crash.checkpoint is not None:
                snapshot = crash.checkpoint
            last_crash = crash
            backoff = retry.delay(attempt + 1)
            out_of_retries = attempt >= retry.max_retries
            out_of_time = (retry.deadline is not None
                           and (clock() - start) + backoff > retry.deadline)
            if out_of_retries or out_of_time:
                reason = ("retry budget exhausted" if out_of_retries else
                          f"deadline {retry.deadline}s would be exceeded")
                if observer is not None:
                    observer.log.emit(
                        obs_events.DEGRADE, crash.detected_at,
                        wid=crash.wid, frm="rollback", to="fail",
                        reason=reason)
                err = WorkerFailureError(
                    wid=crash.wid, failures=failures, checkpoint=snapshot,
                    attempts=attempt + 1)
                err.respawns = respawn_log
                raise err from crash
            attempt += 1
            recoveries += 1
            if observer is not None:
                observer.log.emit(
                    obs_events.ROLLBACK, crash.detected_at,
                    wid=crash.wid, attempt=attempt,
                    token=snapshot.token if snapshot is not None else -1)
                observer.log.emit(obs_events.RETRY, crash.detected_at,
                                  wid=crash.wid, attempt=attempt,
                                  backoff=backoff)
            if backoff > 0:
                sleep(backoff)
            continue
        respawn_log.extend(
            dict(r) for r in getattr(runtime, "respawns", None) or [])
        result.extras["recovery"] = {
            "attempts": attempt + 1,
            "recoveries": recoveries,
            "respawns": respawn_log,
            "failures": list(failures),
            "crashes": list(crashes),
            "resumed_from_checkpoint": snapshot is not None,
            "rung": 2 if recoveries else (1 if respawn_log else 0),
        }
        return result


def _build_runtime(kind: str, engine_or_none, *, program, pg, query, policy,
                   mode: str, snapshot, fault_plan, checkpoint_interval,
                   heartbeat_interval, heartbeat_timeout, timeout,
                   observer, respawn_budget: int = 0):
    """Construct one live-runtime attempt (lazy imports avoid cycles)."""
    if kind == "threaded":
        from repro.core.engine import Engine
        from repro.runtime.threaded import ThreadedRuntime
        engine = Engine(program, pg, query)
        rt = ThreadedRuntime(
            engine, policy, timeout=timeout, observer=observer,
            fault_plan=fault_plan, checkpoint_interval=checkpoint_interval,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            respawn_budget=respawn_budget)
        if snapshot is not None:
            rt.seed_from_snapshot(snapshot)
        return rt
    if kind == "multiprocess":
        from repro.runtime.multiprocess import MultiprocessRuntime
        return MultiprocessRuntime(
            program, pg, query, mode=mode, timeout=timeout,
            observer=observer, fault_plan=fault_plan,
            checkpoint_interval=checkpoint_interval,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout, snapshot=snapshot,
            respawn_budget=respawn_budget)
    raise RuntimeConfigError(f"unknown chaos runtime {kind!r}")


def infer_tolerance(program, pg, query) -> float:
    """Numeric tolerance for comparing two runs of ``program``.

    Non-accumulative aggregators (min/max) are idempotent, so any two
    fixpoints agree exactly: tolerance 0.  Accumulative programs stop
    shipping per-node deltas below ``eps_node = epsilon / n``, leaving up
    to ``eps_node`` unpropagated at each in-neighbour of a node; two runs
    can therefore differ by ``2 * eps_node * (1 + max_indeg)`` — the same
    bound :mod:`repro.bench.kernels` uses for its fast-path comparison.
    """
    aggregator = getattr(program, "aggregator", None)
    if not getattr(aggregator, "accumulative", False):
        return 0.0
    epsilon = float(getattr(query, "epsilon", 0.0) or 0.0)
    n = max(len(pg.owner), 1)
    indeg: Dict[Any, int] = {}
    for frag in pg.fragments:
        g = frag.graph
        for v in g.nodes:
            indeg[v] = indeg.get(v, 0) + g.in_degree(v)
    max_indeg = max(indeg.values(), default=0)
    tol = 2.0 * (epsilon / n) * (1 + max_indeg)
    return tol if tol > 0.0 else 1e-9


def answers_within(reference: Dict[Any, Any], answer: Dict[Any, Any],
                   tolerance: float) -> Tuple[bool, float]:
    """Compare assembled answers; returns (ok, max observed diff).

    ``tolerance == 0`` means exact equality.  Equal values (including
    ``inf == inf`` and non-numeric payloads) always match; unequal
    non-numeric values never do.
    """
    if set(reference) != set(answer):
        return False, float("inf")
    worst = 0.0
    for k, rv in reference.items():
        av = answer[k]
        if rv == av:
            continue
        try:
            diff = abs(rv - av)
        except TypeError:
            return False, float("inf")
        worst = max(worst, diff)
    return worst <= tolerance, worst


def run_chaos(program, pg, query, fault_plan, *, runtime: str = "threaded",
              mode: str = "AAP", policy_factory: Optional[Callable] = None,
              checkpoint_interval: Optional[float] = 0.05,
              heartbeat_interval: float = 0.02,
              heartbeat_timeout: float = 1.0, timeout: float = 60.0,
              retry: Optional[RetryPolicy] = None,
              respawn_budget: int = 0,
              tolerance: Optional[float] = None,
              observer: Optional[Any] = None,
              reference: Optional[Dict] = None) -> Dict[str, Any]:
    """Run ``program`` under ``fault_plan`` with the full recovery ladder.

    ``respawn_budget`` arms rung 1 (per-worker in-place respawns inside
    the runtime); rung 2 rollbacks and the rung 3 structured failure are
    always armed via ``retry``.  ``tolerance`` bounds the answer
    comparison against the fault-free reference; ``None`` infers it from
    the workload (exact for idempotent aggregators, the bench bound for
    accumulative ones — see :func:`infer_tolerance`).

    Returns a report dict: the answer-match verdict, attempt / recovery /
    respawn / takeover counts, the deepest ladder rung reached, detection
    latencies and the injected fault log.  This is the engine behind the
    ``repro chaos`` CLI.
    """
    from repro.core.delay import AAPPolicy, APPolicy, BSPPolicy

    def default_policy():
        if mode == "BSP":
            return BSPPolicy()
        if mode == "AP":
            return APPolicy()
        return AAPPolicy()

    make_policy = policy_factory or default_policy
    if tolerance is None:
        tolerance = infer_tolerance(program, pg, query)
    if reference is None:
        from repro.core.engine import Engine
        from repro.runtime.simulator import SimulatedRuntime
        ref_engine = Engine(program, pg, query)
        reference = SimulatedRuntime(ref_engine, make_policy()).run().answer

    # surgical re-arm: each rollback disarms only the crash that actually
    # fired (the earliest scheduled one for that worker), so later crashes
    # in a multi-crash script still play out across restart attempts
    plan_state = {"plan": fault_plan}

    def factory(snapshot, attempt, crash=None):
        if crash is not None:
            plan_state["plan"] = plan_state["plan"].without_crash(crash.wid)
        return _build_runtime(
            runtime, None, program=program, pg=pg, query=query,
            policy=make_policy(), mode=mode, snapshot=snapshot,
            fault_plan=plan_state["plan"],
            checkpoint_interval=checkpoint_interval,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout, timeout=timeout,
            observer=observer, respawn_budget=respawn_budget)

    start = time.monotonic()
    failed: Optional[WorkerFailureError] = None
    try:
        result = run_with_recovery(factory, retry=retry, observer=observer)
    except WorkerFailureError as exc:
        failed = exc
    elapsed = time.monotonic() - start
    if failed is not None:
        respawn_log = getattr(failed, "respawns", [])
        return {
            "ok": False,
            "error": str(failed),
            "attempts": failed.attempts,
            "respawns": len(respawn_log),
            "takeovers": sum(1 for r in respawn_log if r.get("takeover")),
            "rung": 3,
            "failures": [
                {"t": f.t, "kind": f.kind, "wid": f.wid, "detail": f.detail}
                for f in failed.failures],
            "last_checkpoint_token": (failed.checkpoint.token
                                      if failed.checkpoint else None),
            "elapsed": elapsed,
        }
    rec = result.extras.get("recovery", {})
    fail_log = rec.get("failures", [])
    respawn_log = rec.get("respawns", [])
    matches, max_diff = answers_within(reference, result.answer, tolerance)
    return {
        "ok": True,
        "answer_matches_reference": matches,
        "max_diff": max_diff,
        "tolerance": tolerance,
        "attempts": rec.get("attempts", 1),
        "recoveries": rec.get("recoveries", 0),
        "respawns": len(respawn_log),
        "takeovers": sum(1 for r in respawn_log if r.get("takeover")),
        "respawn_log": [dict(r) for r in respawn_log],
        "rung": rec.get("rung", 0),
        "resumed_from_checkpoint": rec.get("resumed_from_checkpoint",
                                           False),
        "detection_latencies": [
            round(c["detection_latency"], 4)
            for c in rec.get("crashes", [])],
        "failures": [
            {"t": f.t, "kind": f.kind, "wid": f.wid, "detail": f.detail}
            for f in fail_log],
        "elapsed": elapsed,
        "mode": result.mode,
    }
