"""Structured run reports: JSON export of results, metrics and traces.

The statistics collector's output (Section 6) as machine-readable
documents, for dashboards and regression tracking.  ``repro run --report
out.json`` writes one from the CLI.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.core.result import RunResult


def worker_dict(w) -> Dict[str, Any]:
    return {
        "wid": w.wid,
        "rounds": w.rounds,
        "busy_time": w.busy_time,
        "idle_time": w.idle_time,
        "suspended_time": w.suspended_time,
        "messages_sent": w.messages_sent,
        "messages_received": w.messages_received,
        "bytes_sent": w.bytes_sent,
        "bytes_received": w.bytes_received,
        "work_done": w.work_done,
    }


def result_to_dict(result: RunResult, include_trace: bool = False,
                   include_answer: bool = False) -> Dict[str, Any]:
    """Serialise a run result.

    The answer is excluded by default (it can be huge and its node ids may
    not be JSON keys); pass ``include_answer=True`` for small runs.
    """
    observer = result.extras.get("obs")
    doc: Dict[str, Any] = {
        "mode": result.mode,
        "time": result.time,
        "rounds": result.rounds,
        "metrics": {
            "makespan": result.metrics.makespan,
            "total_busy": result.metrics.total_busy,
            "total_idle": result.metrics.total_idle,
            "total_suspended": result.metrics.total_suspended,
            "total_messages": result.metrics.total_messages,
            "total_bytes": result.metrics.total_bytes,
            "total_work": result.metrics.total_work,
            "total_rounds": result.metrics.total_rounds,
            "idle_ratio": result.metrics.idle_ratio,
            "workers": [worker_dict(w) for w in result.metrics.workers],
        },
        "extras": {k: v for k, v in result.extras.items()
                   if isinstance(v, (int, float, str, bool))},
    }
    if observer is not None:
        doc["observability"] = {
            "event_counts": observer.log.counts(),
            "metrics": observer.metrics.as_dict(),
        }
    if include_trace and result.trace is not None:
        doc["trace"] = [
            {"wid": iv.wid, "start": iv.start, "end": iv.end,
             "kind": iv.kind, "round": iv.round}
            for iv in result.trace.intervals]
    if include_answer:
        doc["answer"] = {repr(k): v for k, v in result.answer.items()} \
            if isinstance(result.answer, dict) else repr(result.answer)
    return doc


def write_report(result: RunResult, path: str,
                 include_trace: bool = False,
                 include_answer: bool = False,
                 extra: Optional[Dict[str, Any]] = None) -> None:
    """Write the JSON report to ``path``."""
    doc = result_to_dict(result, include_trace=include_trace,
                         include_answer=include_answer)
    if extra:
        doc["context"] = extra
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
