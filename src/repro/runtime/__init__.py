"""Runtimes: deterministic discrete-event simulator and threaded executor."""

from repro.runtime.costmodel import CostModel
from repro.runtime.metrics import RunMetrics, WorkerMetrics
from repro.runtime.simulator import SimulatedRuntime
from repro.runtime.trace import TraceRecorder, ascii_gantt

__all__ = ["CostModel", "RunMetrics", "WorkerMetrics", "SimulatedRuntime",
           "TraceRecorder", "ascii_gantt"]
