"""Runtimes: deterministic discrete-event simulator and live executors."""

from repro.runtime.costmodel import CostModel
from repro.runtime.detection import (FailureDetector, FailureEvent,
                                     Suspicion)
from repro.runtime.faultplan import (CrashFault, DelayFault, DropFault,
                                     DuplicateFault, FaultInjector,
                                     FaultPlan, InjectedCrash,
                                     StragglerFault)
from repro.runtime.metrics import RunMetrics, WorkerMetrics
from repro.runtime.recovery import (RetryPolicy, run_chaos,
                                    run_with_recovery)
from repro.runtime.simulator import SimulatedRuntime
from repro.runtime.snapshot import (ChandyLamportCoordinator,
                                    GlobalSnapshot, LiveCheckpointer,
                                    WorkerSnapshot)
from repro.runtime.trace import TraceRecorder, ascii_gantt

__all__ = ["CostModel", "RunMetrics", "WorkerMetrics", "SimulatedRuntime",
           "TraceRecorder", "ascii_gantt",
           "FaultPlan", "FaultInjector", "CrashFault", "DropFault",
           "DuplicateFault", "DelayFault", "StragglerFault",
           "InjectedCrash", "FailureDetector", "FailureEvent", "Suspicion",
           "ChandyLamportCoordinator", "GlobalSnapshot", "LiveCheckpointer",
           "WorkerSnapshot", "RetryPolicy", "run_with_recovery",
           "run_chaos"]
