"""Deterministic discrete-event runtime for AAP and its special cases.

This is the primary runtime of the reproduction (DESIGN.md, Section 2): it
executes a PIE program over partitioned fragments exactly as Section 3 of the
paper prescribes —

- *Partial evaluation*: every worker runs PEval at time 0 and pushes its
  designated messages point-to-point.
- *Incremental evaluation*: a worker is triggered when (a) its buffer is
  non-empty and (b) it has been suspended for its delay stretch ``DS_i``;
  the delay stretch is re-evaluated by the :class:`~repro.core.delay.
  DelayPolicy` on every state change (round completions, message arrivals,
  progress of other workers).
- *Termination*: a worker with an empty buffer after a round becomes
  inactive; the run terminates when no worker is pending and no message is in
  flight (which is exactly "all inactive, all ack" in the event model, since
  every in-flight message is a scheduled event).

Timing comes from a :class:`~repro.runtime.costmodel.CostModel`; per-worker
speed factors create stragglers.  Runs are bit-for-bit reproducible: events
are totally ordered by ``(time, insertion seq)``.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Sequence

from repro.core.delay import DelayPolicy, WorkerView
from repro.core.engine import Engine
from repro.core.worker import WorkerState, WorkerStatus
from repro.errors import RuntimeConfigError, TerminationError
from repro.core.result import RunResult
from repro.obs import events as obs_events
from repro.runtime.costmodel import CostModel
from repro.runtime.events import (Custom, Deliver, EventQueue, HostFree,
                                  RoundEnd, WakeUp)
from repro.runtime.metrics import (RunMetrics, WorkerMetrics,
                                   registry_from_workers)
from repro.runtime.trace import TraceRecorder

#: delay stretches at or below this are treated as zero (float safety)
_DS_EPSILON = 1e-9


class SimulatedRuntime:
    """Run one PIE program to fixpoint under one delay policy."""

    def __init__(self, engine: Engine, policy: DelayPolicy,
                 cost_model: Optional[CostModel] = None,
                 hosts: Optional[Sequence[int]] = None,
                 record_trace: bool = True,
                 max_rounds_per_worker: int = 1_000_000,
                 max_events: int = 10_000_000,
                 snapshot_coordinator: Optional[Any] = None,
                 observer: Optional[Any] = None,
                 perturber: Optional[Any] = None):
        self.engine = engine
        self.policy = policy
        #: optional repro.obs.Observer; None means zero-overhead no-op
        self.obs = observer
        #: optional repro.fuzz.SchedulePerturber; biases event ordering
        #: (tie-breaks, latency profiles, straggler/burst phases, forced
        #: re-evaluations) without touching any scheduling logic
        self.perturber = perturber
        self.cost = cost_model if cost_model is not None else CostModel()
        m = engine.num_workers
        if hosts is not None:
            if len(hosts) != m:
                raise RuntimeConfigError(
                    f"hosts must map all {m} workers, got {len(hosts)}")
            host_of = list(hosts)
        else:
            host_of = list(range(m))
        self.workers: List[WorkerState] = [
            WorkerState(wid, host=host_of[wid]) for wid in range(m)]
        self.trace = TraceRecorder(enabled=record_trace)
        self.queue = EventQueue(
            tiebreak=perturber.tiebreak if perturber is not None else None)
        self.now = 0.0
        self.max_rounds_per_worker = max_rounds_per_worker
        self.max_events = max_events
        self.snapshot_coordinator = snapshot_coordinator
        # per-worker messages of the running round, released at its end
        self._held: List[List] = [[] for _ in range(m)]
        self._round_started: List[float] = [0.0] * m
        self._round_duration: List[float] = [0.0] * m
        self._round_kind: List[str] = ["peval"] * m
        # physical hosts: current occupant and FIFO of waiting workers
        num_hosts = max(host_of) + 1 if host_of else 1
        self._host_occupant: List[Optional[int]] = [None] * num_hosts
        self._host_queue: List[List[int]] = [[] for _ in range(num_hosts)]
        self._finished = False
        self._seeded = False
        # potential senders per worker: fragments sharing at least one node
        self._num_peers = [len(frag.peer_fragments()) for frag in engine.pg]

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute to the simultaneous fixpoint and assemble the answer."""
        if self._finished:
            raise TerminationError("runtime already ran; build a new one")
        if not self._seeded:
            for wid in range(self.engine.num_workers):
                self._try_start(wid)
        self._event_loop()
        self._finished = True
        answer = self.engine.assemble()
        metrics = self._collect_metrics()
        extras = {"events": self.queue.processed}
        if self.obs is not None:
            extras["obs"] = self.obs
        return RunResult(
            answer=answer, mode=self.policy.name, metrics=metrics,
            trace=self.trace,
            rounds=[w.rounds for w in self.workers],
            extras=extras)

    def seed_resume(self, messages) -> None:
        """Resume incremental evaluation from pre-derived messages.

        Used by the streaming extension: the engine's contexts already hold
        a (locally updated) fixpoint state; ``messages`` are the designated
        messages derived from the update integration.  PEval is skipped.
        """
        for wid, w in enumerate(self.workers):
            w.rounds = 1  # PEval logically done in a previous run
            w.status = WorkerStatus.INACTIVE
        for msg in messages:
            w = self.workers[msg.dst]
            w.buffer.push(msg)
            if w.status is not WorkerStatus.WAITING:
                w.status = WorkerStatus.WAITING
                w.wait_started = 0.0
        self._seeded = True
        self._reevaluate_all()

    def seed_from_snapshot(self, snapshot) -> None:
        """Resume from a Chandy-Lamport snapshot instead of running PEval.

        Restores status variables, program scratch and buffered messages, then
        marks every worker pending (or inactive when it has no messages).
        """
        import copy
        for wid, ctx in enumerate(self.engine.contexts):
            state = snapshot.worker_states[wid]
            ctx.values = copy.deepcopy(state.values)
            ctx.scratch = copy.deepcopy(state.scratch)
            ctx.changed = set()
            w = self.workers[wid]
            w.rounds = 1  # PEval logically done
            for msg in snapshot.buffered_messages(wid):
                w.buffer.push(msg)
            if w.buffer:
                w.status = WorkerStatus.WAITING
                w.wait_started = 0.0
            else:
                w.status = WorkerStatus.INACTIVE
            w.idle_since = 0.0
        self._seeded = True
        self._reevaluate_all()

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def _event_loop(self) -> None:
        while True:
            if not self.queue:
                # give suspended workers one more look (rmin may have moved)
                self._reevaluate_all()
                if not self.queue:
                    break
            if self.queue.processed > self.max_events:
                raise TerminationError(
                    f"exceeded max_events={self.max_events}; "
                    f"likely non-terminating program or policy")
            event = self.queue.pop()
            self.now = event.time
            self._dispatch(event)
        self._check_quiescent()

    def _dispatch(self, event) -> None:
        if isinstance(event, RoundEnd):
            self._on_round_end(event.wid)
        elif isinstance(event, Deliver):
            self._on_deliver(event.message)
        elif isinstance(event, WakeUp):
            self._on_wakeup(event.wid, event.epoch)
        elif isinstance(event, HostFree):
            self._drain_host_queue(event.host)
        elif isinstance(event, Custom):
            self._on_custom(event)
        else:  # pragma: no cover - defensive
            raise TerminationError(f"unknown event {event!r}")

    def _check_quiescent(self) -> None:
        stuck = [w.wid for w in self.workers
                 if w.status is WorkerStatus.WAITING and w.buffer]
        if self.obs is not None:
            self.obs.log.emit(obs_events.TERMINATE_PROBE, self.now,
                              result="stuck" if stuck else "quiescent")
        if stuck:
            raise TerminationError(
                f"event queue drained but workers {stuck} still have "
                f"buffered messages: the delay policy suspended them forever")

    # ------------------------------------------------------------------
    # round lifecycle
    # ------------------------------------------------------------------
    def _set_status(self, w: WorkerState, status: WorkerStatus) -> None:
        """Assign a worker status, emitting ``status_change`` if observed."""
        if self.obs is not None and w.status is not status:
            self.obs.log.emit(obs_events.STATUS_CHANGE, self.now, wid=w.wid,
                              round=w.rounds, frm=w.status.value,
                              to=status.value)
        w.status = status

    def _try_start(self, wid: int) -> bool:
        """Start a round now if the worker's physical host is free."""
        w = self.workers[wid]
        host = w.host
        occupant = self._host_occupant[host]
        if occupant is not None and occupant != wid:
            if wid not in self._host_queue[host]:
                self._host_queue[host].append(wid)
            return False
        self._host_occupant[host] = wid
        self._start_round(wid)
        return True

    def _start_round(self, wid: int) -> None:
        w = self.workers[wid]
        peval = w.status is WorkerStatus.CREATED
        # close the idle/suspended accounting segment
        if w.status is not WorkerStatus.CREATED:
            gap = max(self.now - w.idle_since, 0.0)
            waited = (max(self.now - w.wait_started, 0.0)
                      if w.wait_started is not None else 0.0)
            waited = min(waited, gap)
            w.suspended_time += waited
            w.idle_time += gap - waited
        w.wait_started = None
        self._set_status(w, WorkerStatus.RUNNING)
        w.invalidate_wakeups()
        round_no = w.rounds
        if peval:
            out = self.engine.run_peval(wid)
            kind = "peval"
            consumed = 0
        else:
            batches = w.buffer.drain()
            out = self.engine.run_inceval(wid, batches, round_no=round_no)
            kind = "inceval"
            consumed = len(batches)
        if self.obs is not None:
            self.obs.log.emit(obs_events.ROUND_START, self.now, wid=wid,
                              round=round_no, kind=kind, batches=consumed)
            if not peval:
                self.obs.metrics.histogram(
                    "eta_at_drain", wid).observe(consumed)
        duration = self.cost.round_time(wid, out.work,
                                        batches_consumed=consumed,
                                        messages_sent=len(out.messages))
        if self.perturber is not None:
            duration = self.perturber.round_duration(wid, duration, self.now)
            for at in self.perturber.poke_times(wid, self.now, duration):
                # forced policy re-evaluation: _on_custom re-evaluates all
                self.queue.push(Custom(time=at, tag="fuzz_poke"))
        self._held[wid] = out.messages
        self._round_started[wid] = self.now
        self._round_duration[wid] = duration
        self._round_kind[wid] = kind
        w.work_done += out.work
        w.busy_time += duration
        self.queue.push(RoundEnd(time=self.now + duration, wid=wid))

    def _on_round_end(self, wid: int) -> None:
        w = self.workers[wid]
        w.rounds += 1
        if w.rounds > self.max_rounds_per_worker:
            raise TerminationError(
                f"worker {wid} exceeded {self.max_rounds_per_worker} rounds")
        duration = self._round_duration[wid]
        self.trace.record(wid, self._round_started[wid], self.now,
                          self._round_kind[wid], w.rounds - 1)
        if self.obs is not None:
            self.obs.log.emit(obs_events.ROUND_END, self.now, wid=wid,
                              round=w.rounds - 1,
                              kind=self._round_kind[wid], duration=duration,
                              messages=len(self._held[wid]))
            self.obs.metrics.histogram(
                "round_duration", wid).observe(duration)
        w.round_time.observe_round(duration)
        # release the physical host
        host = w.host
        self._host_occupant[host] = None
        # ship the messages produced by the finished round; snapshot tokens
        # are stamped at *send* time (a snapshot may land mid-round, and
        # its channel state already includes the held messages)
        held = self._held[wid]
        if self.snapshot_coordinator is not None:
            held = self.snapshot_coordinator.stamp_outgoing(wid, held)
        for msg in held:
            arrival = self.now + self.cost.transfer_time(msg.size_bytes)
            if self.perturber is not None:
                arrival = self.perturber.deliver_time(msg, arrival, self.now)
            self.queue.push(Deliver(time=arrival, message=msg))
            w.messages_sent += 1
            w.bytes_sent += msg.size_bytes
            if self.obs is not None:
                self.obs.log.emit(obs_events.MSG_SEND, self.now, wid=wid,
                                  round=w.rounds - 1, dst=msg.dst,
                                  bytes=msg.size_bytes, seq=msg.seq,
                                  entries=len(msg))
                self.obs.metrics.counter("wire_bytes").inc(msg.size_bytes)
        self._held[wid] = []
        w.idle_since = self.now
        if w.buffer:
            self._set_status(w, WorkerStatus.WAITING)
            w.wait_started = self.now
        else:
            self._set_status(w, WorkerStatus.INACTIVE)
            w.wait_started = None
        self.policy.on_round_complete(self._view(wid), duration)
        self._drain_host_queue(host)
        self._reevaluate_all()

    def _on_deliver(self, msg) -> None:
        w = self.workers[msg.dst]
        if self.snapshot_coordinator is not None:
            self.snapshot_coordinator.on_deliver(msg.dst, msg, self.now)
        w.buffer.push(msg)
        w.arrival_rate.observe_arrival(self.now)
        w.last_arrival = self.now
        if self.obs is not None:
            self.obs.log.emit(obs_events.MSG_DELIVER, self.now, wid=msg.dst,
                              round=w.rounds, src=msg.src,
                              bytes=msg.size_bytes, seq=msg.seq,
                              depth=w.buffer.staleness)
            self.obs.metrics.histogram(
                "buffer_depth", msg.dst).observe(w.buffer.staleness)
        if w.status is WorkerStatus.INACTIVE:
            self._set_status(w, WorkerStatus.WAITING)
            w.wait_started = self.now
        elif w.status is WorkerStatus.WAITING and w.wait_started is None:
            w.wait_started = self.now
        self._reevaluate_all()

    def _on_wakeup(self, wid: int, epoch: int) -> None:
        w = self.workers[wid]
        if epoch != w.wake_epoch or w.status is not WorkerStatus.WAITING:
            return
        if not w.buffer:
            self._set_status(w, WorkerStatus.INACTIVE)
            return
        self._reevaluate(wid, from_wakeup=True)

    def _on_custom(self, event: Custom) -> None:
        if self.snapshot_coordinator is not None and event.tag == "snapshot":
            self.snapshot_coordinator.on_initiate(self, self.now)
        self._reevaluate_all()

    def _drain_host_queue(self, host: int) -> None:
        """Let the first queued virtual worker occupy a freed host."""
        while self._host_queue[host]:
            if self._host_occupant[host] is not None:
                return
            wid = self._host_queue[host].pop(0)
            w = self.workers[wid]
            if (w.status is WorkerStatus.CREATED
                    or (w.status is WorkerStatus.WAITING and w.buffer)):
                self._host_occupant[host] = wid
                self._start_round(wid)
            # else: the worker no longer wants the host; try the next one

    # ------------------------------------------------------------------
    # policy evaluation
    # ------------------------------------------------------------------
    def _pending_rounds(self) -> List[int]:
        return [w.rounds for w in self.workers if w.pending]

    def _view(self, wid: int) -> WorkerView:
        w = self.workers[wid]
        pending = self._pending_rounds()
        rmin = min(pending) if pending else w.rounds
        rmax = max(pending) if pending else w.rounds
        rates = [x.arrival_rate.predict(now=self.now) for x in self.workers]
        finite = [r for r in rates if r > 0 and not math.isinf(r)]
        fleet_avg = sum(finite) / len(finite) if finite else 0.0
        t_preds = [x.round_time.predict(default=self.cost.alpha)
                   for x in self.workers]
        fleet_t = sum(t_preds) / len(t_preds) if t_preds else 1.0
        return WorkerView(
            wid=wid, round=w.rounds, eta=w.eta, rmin=rmin, rmax=rmax,
            idle_time=w.idle_for(self.now), now=self.now,
            t_pred=w.round_time.predict(default=self.cost.round_time(wid, 1)),
            s_pred=w.arrival_rate.predict(now=self.now),
            fleet_avg_rate=fleet_avg,
            num_workers=len(self.workers),
            num_peers=self._num_peers[wid],
            fleet_avg_round_time=fleet_t)

    def _reevaluate_all(self) -> None:
        for wid in range(len(self.workers)):
            self._reevaluate(wid)

    def _reevaluate(self, wid: int, from_wakeup: bool = False) -> None:
        w = self.workers[wid]
        if w.status is not WorkerStatus.WAITING or not w.buffer:
            return
        view = self._view(wid)
        if self.obs is None:
            ds = self.policy.delay(view)
            why = None
        else:
            # decide() returns the same DS as delay() plus audit details,
            # so attaching an observer never changes scheduling
            ds, why = self.policy.decide(view)
        # name the action before performing it, so the decision record
        # precedes its consequences (round_start etc.) in the event stream
        # — cause before effect, which the conformance oracles rely on
        if ds <= _DS_EPSILON:
            occupant = self._host_occupant[w.host]
            action = ("start" if occupant is None or occupant == wid
                      else "host_queued")
        elif math.isinf(ds):
            action = "suspend"
        else:
            action = "wake_scheduled"
        if self.obs is not None:
            self.obs.log.emit(
                obs_events.DS_DECISION, self.now, wid=wid, round=view.round,
                ds=ds, action=action, eta=view.eta, t_pred=view.t_pred,
                s_pred=view.s_pred, rmin=view.rmin, rmax=view.rmax,
                t_idle=view.idle_time, reason=why.pop("reason", ""), **why)
            if math.isinf(ds):
                self.obs.metrics.counter("ds_suspend", wid).inc()
            else:
                self.obs.metrics.histogram("ds_chosen", wid).observe(ds)
        if ds <= _DS_EPSILON:
            self._try_start(wid)
        elif math.isinf(ds):
            # suspend until the next state change re-evaluates the policy
            w.invalidate_wakeups()
        else:
            epoch = w.invalidate_wakeups()
            # keep the wake strictly in the future despite float rounding
            wake_at = max(self.now + ds, self.now * (1 + 1e-12) + _DS_EPSILON)
            self.queue.push(WakeUp(time=wake_at, wid=wid, epoch=epoch))

    # ------------------------------------------------------------------
    def _collect_metrics(self) -> RunMetrics:
        per_worker = []
        for w in self.workers:
            # close the trailing non-RUNNING segment up to the makespan,
            # split into suspended vs. idle exactly as _start_round does:
            # a worker that ends the run under a delay stretch (WAITING)
            # was suspended for that stretch, not idle
            tail_suspended = tail_idle = 0.0
            if w.status is not WorkerStatus.RUNNING:
                gap = max(self.now - w.idle_since, 0.0)
                waited = (max(self.now - w.wait_started, 0.0)
                          if w.wait_started is not None else 0.0)
                tail_suspended = min(waited, gap)
                tail_idle = gap - tail_suspended
            per_worker.append(WorkerMetrics(
                wid=w.wid, rounds=w.rounds, busy_time=w.busy_time,
                idle_time=w.idle_time + tail_idle,
                suspended_time=w.suspended_time + tail_suspended,
                messages_sent=w.messages_sent,
                messages_received=w.buffer.total_received,
                bytes_sent=w.bytes_sent,
                bytes_received=w.buffer.total_bytes,
                work_done=w.work_done))
        if self.obs is not None:
            registry_from_workers(per_worker, into=self.obs.metrics)
            return RunMetrics.from_registry(self.obs.metrics,
                                            makespan=self.now)
        return RunMetrics.from_workers(per_worker, makespan=self.now)
