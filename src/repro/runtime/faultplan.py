"""Seeded, deterministic fault injection for the live runtimes.

A :class:`FaultPlan` scripts the chaos of a degraded fleet — worker crashes,
message drops / delays / duplicates, straggler slow-downs — and a
:class:`FaultInjector` (one per run, built with :meth:`FaultPlan.injector`)
applies it at the *single transport seam* both live runtimes share: every
designated message passes through :meth:`FaultInjector.on_send` exactly once
before it becomes receivable, and every worker consults
:meth:`FaultInjector.crash_due` before starting a round.

Determinism
-----------
Message-level decisions must be reproducible even though the threaded and
multiprocess runtimes race for real.  They therefore never consume a shared
RNG stream (whose draw order would depend on thread scheduling); instead
each decision is a pure hash of ``(seed, fault-kind, src, dst, k)`` where
``k`` is the index of the message on its ``src -> dst`` channel.  The k-th
message a worker sends to a given peer receives the same verdict in every
run of the same plan — the acceptance meaning of "same plan, same injected
events".  Crash and straggler faults key on ``(wid, round)`` and are exact.

In the multiprocess runtime each worker process builds its own injector from
the (picklable) plan; since a channel's messages are produced by a single
worker, the per-channel counters agree with the threaded runtime's.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.messages import Message, MessageBatch, fresh_seq
from repro.errors import RuntimeConfigError

#: 64-bit odd constants for splitmix-style hashing
_MASK = (1 << 64) - 1
_GAMMA = 0x9E3779B97F4A7C15


def _mix(*parts: int) -> float:
    """Deterministically map integer parts to a float in [0, 1)."""
    h = 0x632BE59BD9B4E019
    for p in parts:
        h = (h ^ (p & _MASK)) & _MASK
        h = (h + _GAMMA) & _MASK
        h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & _MASK
        h = h ^ (h >> 31)
    return (h >> 11) / float(1 << 53)


# stream tags keep drop/duplicate/delay verdicts independent per message
_TAG_DROP, _TAG_DUP, _TAG_DELAY = 1, 2, 3


class InjectedCrash(BaseException):
    """Raised inside a worker to simulate its sudden death.

    Derives from ``BaseException`` so PIE programs catching ``Exception``
    cannot accidentally survive an injected crash.  The threaded runtime
    treats it as a silent thread death (no abort, no error report) so the
    master's failure detector — not the normal error path — must notice.
    """

    def __init__(self, wid: int, round_no: int):
        super().__init__(f"injected crash: worker {wid} at round {round_no}")
        self.wid = wid
        self.round_no = round_no


@dataclass(frozen=True)
class CrashFault:
    """Kill worker ``wid`` when it is about to start round ``at_round``."""

    wid: int
    at_round: int = 1


@dataclass(frozen=True)
class DropFault:
    """Silently lose a fraction ``rate`` of messages (lossy channel)."""

    rate: float
    src: Optional[int] = None
    dst: Optional[int] = None


@dataclass(frozen=True)
class DuplicateFault:
    """Deliver a fraction ``rate`` of messages twice (at-least-once)."""

    rate: float
    src: Optional[int] = None
    dst: Optional[int] = None


@dataclass(frozen=True)
class DelayFault:
    """Hold a fraction ``rate`` of messages for ``delay`` wall-clock secs."""

    rate: float
    delay: float
    src: Optional[int] = None
    dst: Optional[int] = None


@dataclass(frozen=True)
class StragglerFault:
    """Stretch every round of worker ``wid`` by ``factor`` (>= 1)."""

    wid: int
    factor: float


@dataclass(frozen=True)
class InjectionRecord:
    """One injected event, for reports and tests."""

    kind: str
    wid: int
    detail: str


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible chaos script: seed + a list of fault specs."""

    seed: int = 0
    faults: Tuple = ()

    def __post_init__(self):
        for f in self.faults:
            rate = getattr(f, "rate", None)
            if rate is not None and not 0.0 <= rate <= 1.0:
                raise RuntimeConfigError(
                    f"fault rate must be in [0, 1], got {rate!r} on {f!r}")
            factor = getattr(f, "factor", None)
            if factor is not None and factor < 1.0:
                raise RuntimeConfigError(
                    f"straggler factor must be >= 1, got {factor!r}")
            delay = getattr(f, "delay", None)
            if delay is not None and delay < 0:
                raise RuntimeConfigError(
                    f"delay must be >= 0, got {delay!r} on {f!r}")
            wid = getattr(f, "wid", None)
            if wid is not None and wid < 0:
                raise RuntimeConfigError(
                    f"worker id must be >= 0, got {wid!r} on {f!r}")
            at_round = getattr(f, "at_round", None)
            if at_round is not None and at_round < 0:
                raise RuntimeConfigError(
                    f"at_round must be >= 0, got {at_round!r} on {f!r}")

    def injector(self) -> "FaultInjector":
        """Build a fresh injector (per run attempt)."""
        return FaultInjector(self)

    def without_crashes(self) -> "FaultPlan":
        """The same plan minus *all* crash faults.

        Blunt instrument: it also disarms crashes that never fired, so a
        multi-crash plan loses its later crashes across restart attempts.
        Supervisors should prefer :meth:`without_crash`, which surgically
        removes only the crash that already happened.
        """
        return FaultPlan(seed=self.seed, faults=tuple(
            f for f in self.faults if not isinstance(f, CrashFault)))

    def without_crash(self, wid: int,
                      at_round: Optional[int] = None) -> "FaultPlan":
        """The same plan minus *one* fired crash of worker ``wid``.

        Removes the matching crash fault (the earliest-scheduled one for
        ``wid`` when ``at_round`` is None), leaving every other fault —
        including later crashes of the same worker — armed.  A respawned
        worker therefore does not deterministically re-die at the same
        round, but the rest of the chaos script still plays out.
        """
        candidates = sorted(
            (f for f in self.faults
             if isinstance(f, CrashFault) and f.wid == wid
             and (at_round is None or f.at_round == at_round)),
            key=lambda f: f.at_round)
        if not candidates:
            return self
        fired = candidates[0]
        faults = list(self.faults)
        faults.remove(fired)
        return FaultPlan(seed=self.seed, faults=tuple(faults))

    @property
    def has_crashes(self) -> bool:
        return any(isinstance(f, CrashFault) for f in self.faults)

    @property
    def crash_faults(self) -> Tuple:
        return tuple(f for f in self.faults if isinstance(f, CrashFault))


def _matches(fault, src: int, dst: int) -> bool:
    return ((fault.src is None or fault.src == src)
            and (fault.dst is None or fault.dst == dst))


class FaultInjector:
    """Applies one :class:`FaultPlan` to one run.

    Thread-safe: the threaded runtime's workers send concurrently.  The
    per-channel counters under the lock are the only mutable state; the
    verdicts themselves are pure functions of the plan seed and the
    channel-local message index.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        # per-worker crash schedule, earliest first: a worker with two
        # scheduled crashes fires the earliest, and — once the runtime
        # respawns it and calls :meth:`reset_worker` — the next one is
        # still armed (a dict keyed on wid would silently collapse them)
        self._crashes: Dict[int, List[int]] = {}
        for f in plan.faults:
            if isinstance(f, CrashFault):
                self._crashes.setdefault(f.wid, []).append(f.at_round)
        for schedule in self._crashes.values():
            schedule.sort()
        self._stragglers: Dict[int, float] = {
            f.wid: f.factor for f in plan.faults
            if isinstance(f, StragglerFault)}
        self._drops = [f for f in plan.faults if isinstance(f, DropFault)]
        self._dups = [f for f in plan.faults
                      if isinstance(f, DuplicateFault)]
        self._delays = [f for f in plan.faults if isinstance(f, DelayFault)]
        self._channel_idx: Dict[Tuple[int, int], int] = {}
        self._lock = threading.Lock()
        #: injected events, in injection order (per process)
        self.records: List[InjectionRecord] = []
        self._crashed: set = set()

    @property
    def message_faults(self) -> bool:
        return bool(self._drops or self._dups or self._delays)

    # ------------------------------------------------------------------
    def crash_due(self, wid: int, round_no: int) -> bool:
        """True when ``wid`` must die before running ``round_no``."""
        schedule = self._crashes.get(wid)
        if not schedule or wid in self._crashed or round_no < schedule[0]:
            return False
        with self._lock:
            self._crashed.add(wid)
            schedule.pop(0)
            self.records.append(InjectionRecord(
                kind="crash", wid=wid, detail=f"round={round_no}"))
        return True

    def reset_worker(self, wid: int) -> None:
        """Re-arm ``wid`` after an in-place respawn.

        The fired crash was already consumed by :meth:`crash_due`; this
        only clears the "already dead" latch so the respawned worker's
        remaining schedule (if any) can fire.  Used by the threaded
        runtime, whose respawned workers share this injector; multiprocess
        replacements build a fresh injector from
        :meth:`FaultPlan.without_crash` instead.
        """
        with self._lock:
            self._crashed.discard(wid)

    def maybe_crash(self, wid: int, round_no: int) -> None:
        """Raise :class:`InjectedCrash` when the plan schedules one here."""
        if self.crash_due(wid, round_no):
            raise InjectedCrash(wid, round_no)

    def round_slowdown(self, wid: int, duration: float) -> float:
        """Extra seconds worker ``wid`` must stall after a round."""
        factor = self._stragglers.get(wid)
        if factor is None:
            return 0.0
        return (factor - 1.0) * max(duration, 0.0)

    # ------------------------------------------------------------------
    def on_send(self, msg: Message) -> List[Tuple[Message, float]]:
        """The transport seam: decide the fate of one outgoing message.

        Returns ``(message, extra_delay_seconds)`` pairs to actually put on
        the wire — empty when dropped, two entries when duplicated.

        A packed :class:`MessageBatch` is judged *per entry*: each entry
        consumes one channel index and gets its own drop/duplicate/delay
        verdict, exactly as if it had been sent as an unpacked message, so
        batching does not change what a chaos plan injects.
        """
        if not self.message_faults:
            return [(msg, 0.0)]
        if isinstance(msg, MessageBatch):
            return self._on_send_batch(msg)
        with self._lock:
            key = (msg.src, msg.dst)
            k = self._channel_idx.get(key, 0)
            self._channel_idx[key] = k + 1
        seed = self.plan.seed
        for f in self._drops:
            if _matches(f, msg.src, msg.dst) and _mix(
                    seed, _TAG_DROP, msg.src, msg.dst, k) < f.rate:
                self._record("drop", msg, k)
                return []
        deliveries = [(msg, 0.0)]
        for f in self._dups:
            if _matches(f, msg.src, msg.dst) and _mix(
                    seed, _TAG_DUP, msg.src, msg.dst, k) < f.rate:
                self._record("duplicate", msg, k)
                # the duplicate is its own wire message: it must carry a
                # fresh seq or seq-keyed ledgers double-count deliveries
                deliveries.append(
                    (dataclasses.replace(msg, seq=fresh_seq()), 0.0))
                break
        for f in self._delays:
            if _matches(f, msg.src, msg.dst) and _mix(
                    seed, _TAG_DELAY, msg.src, msg.dst, k) < f.rate:
                self._record("delay", msg, k)
                deliveries = [(m, d + f.delay) for m, d in deliveries]
                break
        return deliveries

    def _on_send_batch(self, batch: MessageBatch
                       ) -> List[Tuple[MessageBatch, float]]:
        """Per-entry verdicts over a packed batch.

        Surviving entries are regrouped into sub-batches by extra delay
        (entries delivered together must share a wire message); duplicated
        entries additionally go out as separate batches.  The channel
        counter advances by the entry count, keeping verdicts aligned with
        an unpacked run of the same plan.
        """
        import numpy as np
        n = len(batch)
        if n == 0:
            return [(batch, 0.0)]
        with self._lock:
            key = (batch.src, batch.dst)
            k0 = self._channel_idx.get(key, 0)
            self._channel_idx[key] = k0 + n
        seed = self.plan.seed
        src, dst = batch.src, batch.dst
        keep = np.ones(n, dtype=bool)
        dup = np.zeros(n, dtype=bool)
        delay = np.zeros(n, dtype=np.float64)
        for i in range(n):
            k = k0 + i
            dropped = False
            for f in self._drops:
                if _matches(f, src, dst) and _mix(
                        seed, _TAG_DROP, src, dst, k) < f.rate:
                    self._record("drop", batch, k)
                    keep[i] = False
                    dropped = True
                    break
            if dropped:
                continue
            for f in self._dups:
                if _matches(f, src, dst) and _mix(
                        seed, _TAG_DUP, src, dst, k) < f.rate:
                    self._record("duplicate", batch, k)
                    dup[i] = True
                    break
            for f in self._delays:
                if _matches(f, src, dst) and _mix(
                        seed, _TAG_DELAY, src, dst, k) < f.rate:
                    self._record("delay", batch, k)
                    delay[i] = f.delay
                    break
        if keep.all() and not dup.any() and not delay.any():
            return [(batch, 0.0)]
        out: List[Tuple[MessageBatch, float]] = []
        for mask in (keep, keep & dup):
            if not mask.any():
                continue
            for dly in np.unique(delay[mask]):
                sel = mask & (delay == dly)
                sub = MessageBatch(
                    src=src, dst=dst, round=batch.round,
                    ids=batch.ids[sel], payloads=batch.payloads[sel],
                    token=batch.token, entry_bytes=batch.entry_bytes)
                out.append((sub, float(dly)))
        return out

    def _record(self, kind: str, msg: Message, k: int) -> None:
        with self._lock:
            self.records.append(InjectionRecord(
                kind=kind, wid=msg.src,
                detail=f"dst={msg.dst} channel_idx={k}"))
