"""Discrete-event core: a deterministic future-event queue.

Events are totally ordered by ``(time, seq)`` where ``seq`` is the insertion
counter, so simultaneous events fire in schedule order and every run is
reproducible bit-for-bit.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional, Tuple

from repro.core.messages import Message


@dataclass(frozen=True)
class Event:
    """Base event; subclasses carry their payload."""

    time: float


@dataclass(frozen=True)
class RoundEnd(Event):
    """Worker ``wid`` finishes its current round (messages become visible)."""

    wid: int = 0


@dataclass(frozen=True)
class Deliver(Event):
    """Message arrives at its destination worker's buffer."""

    message: Message = None


@dataclass(frozen=True)
class WakeUp(Event):
    """A delay stretch expired; re-evaluate worker ``wid``.

    ``epoch`` implements lazy cancellation: the event is ignored unless it
    matches the worker's current wake epoch.
    """

    wid: int = 0
    epoch: int = 0


@dataclass(frozen=True)
class HostFree(Event):
    """A physical host may have freed up; retry queued virtual workers."""

    host: int = 0


@dataclass(frozen=True)
class Custom(Event):
    """Extension point (fault injection, snapshot requests)."""

    tag: str = ""
    payload: Any = None


class EventQueue:
    """Min-heap of events with deterministic total order.

    ``tiebreak`` (optional, no-arg callable) supplies a secondary sort key
    for simultaneous events; the default is pure insertion order.  The
    schedule fuzzer passes a seeded random source here to explore different
    — but still reproducible — interleavings of same-time events (the
    insertion counter stays as the final key, so even equal tiebreaks keep
    a deterministic total order).
    """

    __slots__ = ("_heap", "_counter", "processed", "_tiebreak")

    def __init__(self, tiebreak=None):
        self._heap = []
        self._counter = itertools.count()
        self.processed = 0
        self._tiebreak = tiebreak

    def push(self, event: Event) -> None:
        if event.time < 0:
            raise ValueError(f"event time must be >= 0, got {event.time}")
        sub = 0.0 if self._tiebreak is None else self._tiebreak()
        heapq.heappush(self._heap,
                       (event.time, sub, next(self._counter), event))

    def pop(self) -> Event:
        event = heapq.heappop(self._heap)[-1]
        self.processed += 1
        return event

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
