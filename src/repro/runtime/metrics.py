"""Run metrics: the statistics collector of GRAPE+ (Section 6).

Gathers per-worker information — rounds, busy/idle/suspended time, messages
and bytes exchanged — and aggregates the quantities the paper reports:
response time, communication cost, idle time, and (at bench level, relative
to a BSP reference) stale computation.

Since the observability refactor, the canonical representation is a
:class:`~repro.obs.registry.MetricsRegistry` populated under the shared
schema below; :class:`RunMetrics` is assembled from a registry
(:meth:`RunMetrics.from_registry`), and :meth:`RunMetrics.from_workers`
routes through the same path so every runtime reports identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.registry import MetricsRegistry

#: per-worker integer counters in the shared registry schema
WORKER_COUNTERS = ("rounds", "messages_sent", "messages_received",
                   "bytes_sent", "bytes_received", "work_done")
#: per-worker time gauges in the shared registry schema
WORKER_TIMES = ("busy_time", "idle_time", "suspended_time")


@dataclass
class WorkerMetrics:
    """Final statistics of one virtual worker."""

    wid: int
    rounds: int = 0
    busy_time: float = 0.0
    idle_time: float = 0.0
    suspended_time: float = 0.0
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    work_done: int = 0


@dataclass
class RunMetrics:
    """Aggregated statistics of one run."""

    workers: List[WorkerMetrics] = field(default_factory=list)
    #: simulated (or wall-clock) response time of the run
    makespan: float = 0.0
    #: total computation time across workers
    total_busy: float = 0.0
    total_idle: float = 0.0
    total_suspended: float = 0.0
    total_messages: int = 0
    total_bytes: int = 0
    total_work: int = 0
    total_rounds: int = 0

    @classmethod
    def from_workers(cls, workers: List[WorkerMetrics],
                     makespan: float) -> "RunMetrics":
        registry = registry_from_workers(workers)
        m = cls.from_registry(registry, makespan=makespan)
        m.workers = list(workers)  # preserve the caller's ordering
        return m

    @classmethod
    def from_registry(cls, registry: MetricsRegistry,
                      makespan: float) -> "RunMetrics":
        """Assemble run metrics from a registry in the shared schema."""
        wids = sorted(set(registry.wids("rounds"))
                      | set(registry.wids("busy_time")))
        workers = []
        for wid in wids:
            w = WorkerMetrics(wid=wid)
            for name in WORKER_COUNTERS:
                inst = registry.get(name, wid)
                if inst is not None:
                    setattr(w, name, inst.value)
            for name in WORKER_TIMES:
                inst = registry.get(name, wid)
                if inst is not None:
                    setattr(w, name, inst.value)
            workers.append(w)
        registry.gauge("makespan").set(makespan)
        m = cls(workers=workers, makespan=makespan)
        for w in workers:
            m.total_busy += w.busy_time
            m.total_idle += w.idle_time
            m.total_suspended += w.suspended_time
            m.total_messages += w.messages_sent
            m.total_bytes += w.bytes_sent
            m.total_work += w.work_done
            m.total_rounds += w.rounds
        return m

    @property
    def max_rounds(self) -> int:
        return max((w.rounds for w in self.workers), default=0)

    @property
    def idle_ratio(self) -> float:
        denom = self.total_busy + self.total_idle + self.total_suspended
        return self.total_idle / denom if denom > 0 else 0.0

    def straggler_rounds(self) -> int:
        """Rounds taken by the worker with the most computation time.

        The paper's Appendix B reports how many rounds the *straggler* needed
        under each model; the straggler is the worker with max busy time.
        """
        if not self.workers:
            return 0
        straggler = max(self.workers, key=lambda w: w.busy_time)
        return straggler.rounds

    def to_registry(self, into: Optional[MetricsRegistry] = None
                    ) -> MetricsRegistry:
        """Re-express these metrics in the shared registry schema."""
        registry = registry_from_workers(self.workers, into=into)
        registry.gauge("makespan").set(self.makespan)
        return registry

    def summary(self) -> Dict[str, float]:
        return {
            "makespan": self.makespan,
            "total_busy": self.total_busy,
            "total_idle": self.total_idle,
            "idle_ratio": self.idle_ratio,
            "total_messages": float(self.total_messages),
            "total_bytes": float(self.total_bytes),
            "total_work": float(self.total_work),
            "total_rounds": float(self.total_rounds),
            "max_rounds": float(self.max_rounds),
        }


def registry_from_workers(workers: List[WorkerMetrics],
                          into: Optional[MetricsRegistry] = None
                          ) -> MetricsRegistry:
    """Record final per-worker statistics under the shared schema."""
    registry = into if into is not None else MetricsRegistry()
    for w in workers:
        for name in WORKER_COUNTERS:
            counter = registry.counter(name, w.wid)
            counter.value = getattr(w, name)
        for name in WORKER_TIMES:
            registry.gauge(name, w.wid).set(getattr(w, name))
    return registry
