"""Run metrics: the statistics collector of GRAPE+ (Section 6).

Gathers per-worker information — rounds, busy/idle/suspended time, messages
and bytes exchanged — and aggregates the quantities the paper reports:
response time, communication cost, idle time, and (at bench level, relative
to a BSP reference) stale computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class WorkerMetrics:
    """Final statistics of one virtual worker."""

    wid: int
    rounds: int = 0
    busy_time: float = 0.0
    idle_time: float = 0.0
    suspended_time: float = 0.0
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    work_done: int = 0


@dataclass
class RunMetrics:
    """Aggregated statistics of one run."""

    workers: List[WorkerMetrics] = field(default_factory=list)
    #: simulated (or wall-clock) response time of the run
    makespan: float = 0.0
    #: total computation time across workers
    total_busy: float = 0.0
    total_idle: float = 0.0
    total_suspended: float = 0.0
    total_messages: int = 0
    total_bytes: int = 0
    total_work: int = 0
    total_rounds: int = 0

    @classmethod
    def from_workers(cls, workers: List[WorkerMetrics],
                     makespan: float) -> "RunMetrics":
        m = cls(workers=workers, makespan=makespan)
        for w in workers:
            m.total_busy += w.busy_time
            m.total_idle += w.idle_time
            m.total_suspended += w.suspended_time
            m.total_messages += w.messages_sent
            m.total_bytes += w.bytes_sent
            m.total_work += w.work_done
            m.total_rounds += w.rounds
        return m

    @property
    def max_rounds(self) -> int:
        return max((w.rounds for w in self.workers), default=0)

    @property
    def idle_ratio(self) -> float:
        denom = self.total_busy + self.total_idle + self.total_suspended
        return self.total_idle / denom if denom > 0 else 0.0

    def straggler_rounds(self) -> int:
        """Rounds taken by the worker with the most computation time.

        The paper's Appendix B reports how many rounds the *straggler* needed
        under each model; the straggler is the worker with max busy time.
        """
        if not self.workers:
            return 0
        straggler = max(self.workers, key=lambda w: w.busy_time)
        return straggler.rounds

    def summary(self) -> Dict[str, float]:
        return {
            "makespan": self.makespan,
            "total_busy": self.total_busy,
            "total_idle": self.total_idle,
            "idle_ratio": self.idle_ratio,
            "total_messages": float(self.total_messages),
            "total_bytes": float(self.total_bytes),
            "total_work": float(self.total_work),
            "total_rounds": float(self.total_rounds),
            "max_rounds": float(self.max_rounds),
        }
