"""Zero-copy shared-memory data plane for the multiprocess runtime.

The multiprocess runtime's hot path used to pickle every packed
:class:`~repro.core.messages.MessageBatch` through a
``multiprocessing.Queue`` — a feeder thread, a pipe write bounded at the
OS pipe capacity, and a receiver-side unpickle per batch.  This module
replaces that data plane with the "remote memory access" model of AMPC
(Behnezhad et al., PAPERS.md): per-``(src, dst)`` ring buffers over
``multiprocessing.shared_memory`` slabs.  A batch send becomes an array
write plus a tiny record header; the receiver reconstructs numpy views
over the slab **without copying**.  Control traffic (heartbeats,
``ds_decisions``, ``rmin`` broadcasts, the termination probe, checkpoint
state) stays on the existing ``ctx.Queue`` control plane.

Slab layout (one slab per directed channel ``src -> dst``)::

    [ 64-byte slab header | capacity bytes of ring data ]

    slab header (8 x u64):  MAGIC  capacity  head  tail  generation  (rest
    reserved)

``head`` is the producer's cumulative append offset, ``tail`` the
consumer's cumulative release offset; both only ever grow, so the live
region is ``[tail, head)`` and free space is ``capacity - (head - tail)``.
The producer is the only writer of ``head``, the consumer the only writer
of ``tail`` (single-producer/single-consumer), so plain aligned 8-byte
stores are enough — no locks on the data plane.

Records are appended at ``head % capacity``, never wrap (a 64-byte PAD
record skips the slack at the end of the buffer), and are 64-byte
aligned::

    record header (8 x u64):
        kind  rec_seq  count  round  seq  token+1  dtype_code  entry_bytes
    followed by  count * 8  bytes of int64 ids
    followed by  count * itemsize  bytes of payloads

The record header doubles as the *descriptor*: the consumer learns of new
records purely by comparing its cursor against the published ``head`` (no
queue traffic at all), and every field it needs to rebuild the batch —
round, wire ``seq``, snapshot token, dtype — rides in the header.

Torn-read hardening: :meth:`SlabRing.open` validates the record before
constructing views — the position must lie inside the live ``[tail,
head)`` window, the kind magic and dtype code must be known, the length
must fit, and (when the caller tracks it) the per-channel ``rec_seq``
must match.  Any mismatch raises a typed
:class:`~repro.errors.TransportError` instead of returning garbage.

Lifetime: the master creates every channel slab before forking workers
and unlinks them all in its ``finally`` block, so neither a clean exit
nor a crashed-worker abort leaks ``/dev/shm`` segments.  Worker-side
attachments are immediately unregistered from the
``multiprocessing.resource_tracker`` — ownership stays with the master's
sweep (and the tracker would otherwise double-unlink under fork).

Batches that cannot ride the plane (ring full, oversized record, exotic
dtype or token) fall back to the pickled queue path; correctness never
depends on the fast path.  Cross-plane ordering within a channel is
irrelevant by Church-Rosser (designated messages commute under
``f_aggr``), and the termination ledger counts logical entries on both
planes identically.
"""

from __future__ import annotations

import os
import uuid
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.messages import MessageBatch
from repro.errors import TransportError

try:  # pragma: no cover - exercised indirectly everywhere
    from multiprocessing import shared_memory as _shm_mod
except ImportError:  # pragma: no cover - ancient pythons only
    _shm_mod = None

#: slab header size and record alignment (one cache line)
HEADER_BYTES = 64
ALIGN = 64
#: slab-header field indices (u64 words)
_MAGIC, _CAP, _HEAD, _TAIL, _GEN = 0, 1, 2, 3, 4
SLAB_MAGIC = 0x5245_5052_4F53_4C41  # "REPROSLA"
#: record kinds
REC_DATA = 0x5245C0DA
REC_PAD = 0x5245ADAD
#: record-header field indices (u64 words)
(_KIND, _RSEQ, _COUNT, _ROUND, _SEQ, _TOKEN, _DTYPE, _EBYTES) = range(8)

#: payload dtypes the wire format can carry (ids are always int64)
DTYPE_CODES: Dict[str, int] = {"float64": 1, "float32": 2, "int64": 3,
                               "int32": 4, "bool": 5, "uint8": 6,
                               "int16": 7, "uint64": 8}
_CODE_DTYPES = {v: np.dtype(k) for k, v in DTYPE_CODES.items()}

_SHM_PREFIX = "reproshm"


def new_run_id() -> str:
    """A fresh data-plane namespace (one per runtime ``run()``)."""
    return uuid.uuid4().hex[:12]


def channel_name(run_id: str, src: int, dst: int) -> str:
    """Deterministic slab name, so the master can sweep without a registry."""
    return f"{_SHM_PREFIX}_{run_id}_{src}x{dst}"


class _no_tracking:
    """Suppress resource-tracker registration inside the ``with`` block.

    CPython < 3.13 registers a ``SharedMemory`` with the (per-machine)
    resource tracker on *both* create and attach; a segment attached by
    two workers would be registered twice into the tracker's name *set*
    and unregistered twice — the second unregister KeyErrors in the
    tracker process.  Ownership here is explicit (the master's arena
    sweep unlinks everything), so the tracker must never learn these
    names at all.
    """

    def __enter__(self):
        from multiprocessing import resource_tracker
        self._mod = resource_tracker
        self._orig = resource_tracker.register
        def register(name, rtype):  # noqa: ANN001
            if rtype != "shared_memory":
                self._orig(name, rtype)
        resource_tracker.register = register
        return self

    def __exit__(self, *exc):
        self._mod.register = self._orig
        return False


def _rebuild_plain(src, dst, round_no, ids, payloads, seq, token,
                   entry_bytes):
    """Pickle target for :class:`ShmMessageBatch`: a plain, owned batch."""
    return MessageBatch(src=src, dst=dst, round=round_no, ids=ids,
                        payloads=payloads, seq=seq, token=token,
                        entry_bytes=entry_bytes)


@dataclass(frozen=True, eq=False)
class ShmMessageBatch(MessageBatch):
    """A :class:`MessageBatch` whose arrays are views into a slab ring.

    Behaves exactly like its parent everywhere (termination ledger,
    checkpoint stamping via ``dataclasses.replace``, dense aggregation);
    the extra ``release_end`` names the ring offset the consumer may
    reclaim once the batch has been processed.  Pickling materialises the
    views into an owned plain :class:`MessageBatch` (checkpoint state
    shipped to the master must not dangle into a slab the master never
    mapped), which also preserves snapshot type-fidelity: a packed batch
    stays a packed batch across a snapshot round-trip.
    """

    #: cumulative ring offset to release through (consumer side)
    release_end: int = 0

    def __reduce__(self):
        return (_rebuild_plain,
                (self.src, self.dst, self.round, np.array(self.ids),
                 np.array(self.payloads), self.seq, self.token,
                 self.entry_bytes))


def to_owned(msg: Any) -> Any:
    """Materialise a slab-backed batch into an owned plain batch.

    A :class:`ShmMessageBatch` held across a ring reset (takeover) would
    dangle into bytes the replacement producer overwrites; callers that
    must keep a drained batch past the reset copy it out first.  Anything
    that is not a slab view passes through untouched.
    """
    if isinstance(msg, ShmMessageBatch):
        return _rebuild_plain(msg.src, msg.dst, msg.round,
                              np.array(msg.ids), np.array(msg.payloads),
                              msg.seq, msg.token, msg.entry_bytes)
    return msg


def _roundup(n: int, align: int = ALIGN) -> int:
    return (n + align - 1) // align * align


class SlabRing:
    """One SPSC ring over one shared-memory slab (one directed channel).

    The same class serves both endpoints: the producer calls
    :meth:`try_write`, the consumer :meth:`poll` / :meth:`open` /
    :meth:`release`.  ``create=True`` (master only) initialises the
    header; workers attach to the existing segment.
    """

    def __init__(self, name: str, capacity: int = 0, create: bool = False):
        if _shm_mod is None:  # pragma: no cover - gated import
            raise TransportError("multiprocessing.shared_memory unavailable")
        self.name = name
        if create:
            # the master registers its segments normally: if it dies hard
            # the resource tracker still reclaims them, and the arena's
            # explicit unlink balances the registration
            capacity = _roundup(int(capacity))
            self._shm = _shm_mod.SharedMemory(
                name=name, create=True, size=HEADER_BYTES + capacity)
        else:
            with _no_tracking():
                self._shm = _shm_mod.SharedMemory(name=name)
            # Attach-side handles outlive their zero-copy views only by
            # luck at interpreter shutdown: SharedMemory.__del__ calls
            # close(), which raises BufferError while exported numpy
            # views are still alive.  Disarm the finalizer (the worker
            # exits via os._exit anyway; the master's arena sweep owns
            # the unlink) but keep the real close reachable for
            # explicit teardown paths.
            shm = self._shm
            shm._slab_close = shm.close
            shm.close = lambda: None
        self._ctrl = np.frombuffer(self._shm.buf, dtype=np.uint64, count=8)
        if create:
            self._ctrl[_CAP] = capacity
            self._ctrl[_HEAD] = 0
            self._ctrl[_TAIL] = 0
            self._ctrl[_GEN] = 0
            self._ctrl[_MAGIC] = SLAB_MAGIC  # last: marks the slab usable
        elif int(self._ctrl[_MAGIC]) != SLAB_MAGIC:
            raise TransportError(
                f"slab {name!r} has bad magic "
                f"0x{int(self._ctrl[_MAGIC]):x} (torn or foreign segment)")
        self.capacity = int(self._ctrl[_CAP])
        #: consumer-side read cursor and per-channel record counter
        self._cursor = 0
        self._read_seq = 0
        #: producer-side record counter
        self._write_seq = 0
        #: the ring incarnation this endpoint is bound to; a master-side
        #: :meth:`reset` bumps the header word, and both endpoints refuse
        #: to touch a ring whose live generation no longer matches until
        #: they :meth:`rebind`
        self._gen = int(self._ctrl[_GEN])

    # -- shared ---------------------------------------------------------
    @property
    def head(self) -> int:
        return int(self._ctrl[_HEAD])

    @property
    def tail(self) -> int:
        return int(self._ctrl[_TAIL])

    @property
    def generation(self) -> int:
        """The ring's live incarnation number (bumped by :meth:`reset`)."""
        return int(self._ctrl[_GEN])

    @property
    def stale(self) -> bool:
        """True when the ring was reset since this endpoint last bound."""
        return self._gen != self.generation

    def reset(self) -> int:
        """Wipe the ring for a fresh incarnation (master-side takeover).

        Rewinds ``head``/``tail`` to zero and bumps the generation word so
        any endpoint still holding pre-reset cursors sees :attr:`stale`
        instead of silently parsing bytes the replacement producer is
        about to overwrite.  Returns the new generation.
        """
        self._ctrl[_HEAD] = 0
        self._ctrl[_TAIL] = 0
        self._ctrl[_GEN] = self.generation + 1
        self._cursor = 0
        self._read_seq = 0
        self._write_seq = 0
        self._gen = self.generation
        return self._gen

    def rebind(self) -> None:
        """Adopt the ring's current incarnation (survivor rejoin).

        Re-reads the header and rewinds the endpoint cursors to the live
        window, so a surviving peer can resume reading/writing a channel
        that was reset while its counterpart was being replaced.
        """
        self._gen = self.generation
        self._cursor = self.head
        self._read_seq = 0
        self._write_seq = 0

    def close(self) -> None:
        """Release numpy header views and unmap (no unlink)."""
        self._ctrl = None
        try:
            getattr(self._shm, "_slab_close", self._shm.close)()
        except BufferError:  # pragma: no cover - exported data views alive
            pass

    # -- producer -------------------------------------------------------
    def _encode_token(self, token: Any) -> Optional[int]:
        if token is None:
            return 0
        if isinstance(token, int) and 0 <= token < 2 ** 63:
            return token + 1
        return None  # exotic token: caller falls back to the queue plane

    def try_write(self, msg: MessageBatch) -> bool:
        """Append ``msg`` as one record; False means "use the fallback".

        Never blocks: a full ring, an oversized batch, an unsupported
        payload dtype or a non-integer snapshot token all return False and
        leave the ring untouched.
        """
        if self.stale:
            # the ring was reset behind our back (peer replaced): the
            # queue plane carries the batch until this endpoint rebinds
            return False
        ids = np.ascontiguousarray(msg.ids, dtype=np.int64)
        payloads = np.ascontiguousarray(msg.payloads)
        if payloads.ndim != 1 or ids.ndim != 1:
            return False
        code = DTYPE_CODES.get(payloads.dtype.name)
        token = self._encode_token(msg.token)
        if code is None or token is None:
            return False
        total = _roundup(HEADER_BYTES + ids.nbytes + payloads.nbytes)
        head, tail, cap = self.head, self.tail, self.capacity
        off = head % cap
        pad = cap - off if cap - off < total else 0
        if total + pad > cap - (head - tail):
            return False  # ring full: fall back rather than block
        buf = self._shm.buf
        if pad:
            hdr = np.frombuffer(buf, dtype=np.uint64, count=8,
                                offset=HEADER_BYTES + off)
            hdr[_KIND] = REC_PAD
            hdr[_COUNT] = pad
            off = 0
        base = HEADER_BYTES + off
        hdr = np.frombuffer(buf, dtype=np.uint64, count=8, offset=base)
        hdr[_KIND] = REC_DATA
        hdr[_RSEQ] = self._write_seq
        hdr[_COUNT] = len(ids)
        hdr[_ROUND] = msg.round
        hdr[_SEQ] = msg.seq
        hdr[_TOKEN] = token
        hdr[_DTYPE] = code
        hdr[_EBYTES] = msg.entry_bytes
        if ids.nbytes:
            buf[base + HEADER_BYTES:base + HEADER_BYTES + ids.nbytes] = \
                ids.tobytes()
            poff = base + HEADER_BYTES + ids.nbytes
            buf[poff:poff + payloads.nbytes] = payloads.tobytes()
        self._write_seq += 1
        # publish *after* the record is fully written: the consumer only
        # parses below head, so it can never observe a half-built record
        self._ctrl[_HEAD] = head + pad + total
        return True

    # -- consumer -------------------------------------------------------
    def open(self, pos: int, src: int, dst: int,
             rec_seq: Optional[int] = None) -> Tuple[ShmMessageBatch, int]:
        """Validate + reconstruct the record at cumulative offset ``pos``.

        Returns ``(batch, next_pos)``.  Raises
        :class:`~repro.errors.TransportError` on any descriptor/slab
        mismatch — a stale position (already released or past ``head``),
        a corrupt kind magic, an unknown dtype code, a length that does
        not fit the live window, or a ``rec_seq`` disagreement — instead
        of silently returning a wrong-answer view.
        """
        head, tail, cap = self.head, self.tail, self.capacity
        if pos < tail or pos + HEADER_BYTES > head:
            raise TransportError(
                f"stale slab descriptor: pos={pos} outside live window "
                f"[{tail}, {head}) of {self.name!r}")
        base = HEADER_BYTES + pos % cap
        hdr = np.frombuffer(self._shm.buf, dtype=np.uint64, count=8,
                            offset=base)
        kind = int(hdr[_KIND])
        if kind == REC_PAD:
            return None, pos + int(hdr[_COUNT])
        if kind != REC_DATA:
            raise TransportError(
                f"torn read in {self.name!r} at pos={pos}: record magic "
                f"0x{kind:x}")
        if rec_seq is not None and int(hdr[_RSEQ]) != rec_seq:
            raise TransportError(
                f"slab generation mismatch in {self.name!r}: expected "
                f"record #{rec_seq} at pos={pos}, found #{int(hdr[_RSEQ])}")
        count = int(hdr[_COUNT])
        dtype = _CODE_DTYPES.get(int(hdr[_DTYPE]))
        if dtype is None:
            raise TransportError(
                f"torn read in {self.name!r}: unknown payload dtype code "
                f"{int(hdr[_DTYPE])} at pos={pos}")
        total = _roundup(HEADER_BYTES + count * 8 + count * dtype.itemsize)
        if pos + total > head or total > cap:
            raise TransportError(
                f"slab record at pos={pos} of {self.name!r} overruns the "
                f"published head ({pos}+{total} > {head})")
        ids = np.frombuffer(self._shm.buf, dtype=np.int64, count=count,
                            offset=base + HEADER_BYTES)
        payloads = np.frombuffer(self._shm.buf, dtype=dtype, count=count,
                                 offset=base + HEADER_BYTES + count * 8)
        token = int(hdr[_TOKEN])
        batch = ShmMessageBatch(
            src=src, dst=dst, round=int(hdr[_ROUND]), ids=ids,
            payloads=payloads, seq=int(hdr[_SEQ]),
            token=None if token == 0 else token - 1,
            entry_bytes=int(hdr[_EBYTES]), release_end=pos + total)
        return batch, pos + total

    def poll(self, src: int, dst: int) -> List[ShmMessageBatch]:
        """All records published since the last poll (FIFO, zero-copy)."""
        if self.stale:
            # a reset ring with a pre-reset cursor would either look
            # empty forever (cursor > head) or hand out views into bytes
            # the new producer owns; reject loudly instead
            raise TransportError(
                f"stale ring endpoint for {self.name!r}: bound to "
                f"generation {self._gen}, ring is at {self.generation} "
                f"(rebind required)")
        out: List[ShmMessageBatch] = []
        head = self.head
        while self._cursor < head:
            batch, self._cursor = self.open(self._cursor, src, dst,
                                            rec_seq=None)
            if batch is None:
                continue  # pad record
            if batch.release_end > head:  # pragma: no cover - defensive
                raise TransportError(
                    f"slab record overruns head in {self.name!r}")
            self._read_seq += 1
            out.append(batch)
        return out

    @property
    def drained(self) -> bool:
        """True when the consumer has parsed every published record."""
        return self._cursor >= self.head

    def release(self, through: int) -> None:
        """Reclaim ring space up to cumulative offset ``through``.

        Monotonic (a stale release cannot rewind the tail) and only legal
        for offsets the consumer has already parsed past.
        """
        if through > self._cursor:
            raise TransportError(
                f"release({through}) beyond read cursor {self._cursor} "
                f"in {self.name!r}")
        if through > self.tail:
            self._ctrl[_TAIL] = through


class SlabPool:
    """Per-process endpoint of the whole data plane (one per worker).

    Attaches the worker's outbound ring per destination and every inbound
    ring; exposes batch-level send/poll/release plus the counters the
    worker report ships back to the master.
    """

    def __init__(self, run_id: str, wid: int, num_workers: int):
        self.run_id = run_id
        self.wid = wid
        self._out: Dict[int, SlabRing] = {}
        self._in: Dict[int, SlabRing] = {}
        for peer in range(num_workers):
            if peer == wid:
                continue
            self._out[peer] = SlabRing(channel_name(run_id, wid, peer))
            self._in[peer] = SlabRing(channel_name(run_id, peer, wid))
        #: transport counters (shipped in the worker report)
        self.sent_batches = 0
        self.sent_bytes = 0
        self.fallbacks = 0
        #: peers under takeover: their rings are skipped (the master may
        #: reset them at any moment) until :meth:`rejoin_peer`
        self._quarantined: set = set()

    def try_send(self, msg: MessageBatch) -> bool:
        if not isinstance(msg, MessageBatch):
            # generic unpacked Message: the queue plane carries it
            self.fallbacks += 1
            return False
        ring = self._out.get(msg.dst)
        if ring is None or msg.dst in self._quarantined \
                or not ring.try_write(msg):
            self.fallbacks += 1
            return False
        self.sent_batches += 1
        self.sent_bytes += msg.size_bytes
        return True

    def poll(self) -> List[ShmMessageBatch]:
        """Newly published inbound batches across all channels."""
        out: List[ShmMessageBatch] = []
        for src, ring in self._in.items():
            if src in self._quarantined:
                continue
            out.extend(ring.poll(src, self.wid))
        return out

    def quarantine_peer(self, peer: int) -> List[ShmMessageBatch]:
        """Final drain of ``peer``'s inbound ring, then fence it off.

        Everything the dead incarnation published is parsed out one last
        time (callers must copy these views before the master resets the
        ring); afterwards neither :meth:`poll` nor :meth:`try_send`
        touches the peer's channels until :meth:`rejoin_peer`.
        """
        ring = self._in.get(peer)
        last = ring.poll(peer, self.wid) if ring is not None else []
        self._quarantined.add(peer)
        return last

    def rejoin_peer(self, peer: int) -> None:
        """Bind both of ``peer``'s channels to their reset incarnation."""
        for side in (self._in, self._out):
            ring = side.get(peer)
            if ring is not None:
                ring.rebind()
        self._quarantined.discard(peer)

    @property
    def drained(self) -> bool:
        return all(r.drained for src, r in self._in.items()
                   if src not in self._quarantined)

    def release(self, messages) -> None:
        """Reclaim ring space for processed shm-backed batches.

        Safe to pass a mixed batch list; only :class:`ShmMessageBatch`
        instances that came off this pool's inbound rings are touched.
        """
        ends: Dict[int, int] = {}
        for m in messages:
            if isinstance(m, ShmMessageBatch) and m.src in self._in:
                ends[m.src] = max(ends.get(m.src, 0), m.release_end)
        for src, end in ends.items():
            self._in[src].release(end)

    def close(self) -> None:
        for ring in (*self._out.values(), *self._in.values()):
            ring.close()


# ----------------------------------------------------------------------
# master-side slab lifecycle
# ----------------------------------------------------------------------

class SlabArena:
    """Master-side owner of every channel slab of one run.

    Creates the full ``src x dst`` mesh before the workers fork (so
    worker attachment never races creation) and sweeps every segment on
    the way out — including the terminate/crash path, so chaos runs leave
    nothing in ``/dev/shm``.
    """

    def __init__(self, num_workers: int, slab_bytes: int,
                 run_id: Optional[str] = None):
        self.run_id = run_id or new_run_id()
        self.num_workers = num_workers
        self._rings: List[SlabRing] = []
        self._by_channel: Dict[Tuple[int, int], SlabRing] = {}
        try:
            for src in range(num_workers):
                for dst in range(num_workers):
                    if src != dst:
                        ring = SlabRing(
                            channel_name(self.run_id, src, dst),
                            capacity=slab_bytes, create=True)
                        self._rings.append(ring)
                        self._by_channel[(src, dst)] = ring
        except Exception:
            self.unlink_all()
            raise

    def ring(self, src: int, dst: int) -> SlabRing:
        """The master's handle on one directed channel's ring."""
        return self._by_channel[(src, dst)]

    def reset_worker(self, wid: int) -> int:
        """Reset every ring touching ``wid`` for a fresh incarnation.

        Called during a takeover after the surviving peers have fully
        drained and fenced off the dead worker's channels; returns the
        new generation shared by the reset rings.
        """
        gen = 0
        for (src, dst), ring in self._by_channel.items():
            if src == wid or dst == wid:
                gen = ring.reset()
        return gen

    def unlink_all(self) -> int:
        """Close + unlink every segment of this run; returns the count."""
        removed = 0
        for ring in self._rings:
            ring.close()
        self._rings = []
        self._by_channel = {}
        for src in range(self.num_workers):
            for dst in range(self.num_workers):
                if src == dst:
                    continue
                name = channel_name(self.run_id, src, dst)
                try:
                    with _no_tracking():
                        seg = _shm_mod.SharedMemory(name=name)
                except FileNotFoundError:
                    continue
                seg.close()
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover - raced
                    pass
                removed += 1
        return removed


def residual_segments(run_id: Optional[str] = None) -> List[str]:
    """Repro-owned segments still present in ``/dev/shm`` (leak checks).

    Returns an empty list on platforms without a visible shm filesystem;
    the leak-check tests skip there.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    prefix = _SHM_PREFIX if run_id is None else f"{_SHM_PREFIX}_{run_id}"
    return sorted(n for n in os.listdir(shm_dir) if n.startswith(prefix))
