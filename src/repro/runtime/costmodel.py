"""Cost model: converts abstract work and bytes into simulated time.

The simulator charges each round ``alpha + beta * work * speed(wid)`` and
each message ``latency + size/bandwidth``.  Straggling workers (the paper's
``P_3`` in Example 1, ``P_12`` in Appendix B) are modelled with per-worker
speed factors > 1.  All jitter is drawn from a seeded generator so runs are
reproducible.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Mapping, Optional, Sequence, Union

from repro.errors import RuntimeConfigError

SpeedSpec = Union[None, Mapping[int, float], Sequence[float],
                  Callable[[int], float]]


class CostModel:
    """Timing parameters of the simulated cluster.

    Parameters
    ----------
    alpha:
        Fixed per-round scheduling overhead.
    beta:
        Time per unit of work (edge relaxations, SGD steps, ...).
    speed:
        Per-worker slowdown factor (1.0 = nominal; 4.0 = 4x slower).  A dict,
        sequence, callable, or ``None`` for uniform speed.
    msg_cost:
        Receiver-side CPU time per consumed message batch (deserialisation,
        aggregation dispatch).  This is what makes per-message round churn
        expensive, as on real clusters.
    send_cost:
        Sender-side CPU time per produced message.
    latency:
        Fixed network latency per message.
    bandwidth:
        Bytes per time unit; ``None`` models infinite bandwidth.
    latency_jitter:
        Uniform jitter amplitude added to each message's latency
        (deterministic given ``seed``).
    fixed_round_time:
        Optional per-worker constant round duration overriding work-based
        costing — used to reproduce the paper's Example 1 exactly
        ("P1 and P2 take 3 time units, P3 takes 6").
    min_round_time:
        Lower bound on any round's duration.
    """

    def __init__(self, alpha: float = 0.1, beta: float = 0.01,
                 speed: SpeedSpec = None, latency: float = 0.05,
                 msg_cost: float = 0.02, send_cost: float = 0.01,
                 bandwidth: Optional[float] = None,
                 latency_jitter: float = 0.0,
                 fixed_round_time: Optional[Mapping[int, float]] = None,
                 min_round_time: float = 1e-6,
                 seed: Optional[int] = None):
        if min(alpha, beta, latency, latency_jitter, msg_cost, send_cost) < 0:
            raise RuntimeConfigError("cost parameters must be non-negative")
        if bandwidth is not None and bandwidth <= 0:
            raise RuntimeConfigError("bandwidth must be positive or None")
        self.alpha = alpha
        self.beta = beta
        self._speed = speed
        self.latency = latency
        self.msg_cost = msg_cost
        self.send_cost = send_cost
        self.bandwidth = bandwidth
        self.latency_jitter = latency_jitter
        self.fixed_round_time = dict(fixed_round_time or {})
        self.min_round_time = min_round_time
        self._rng = random.Random(seed if seed is not None else 0)

    # ------------------------------------------------------------------
    def speed(self, wid: int) -> float:
        spec = self._speed
        if spec is None:
            return 1.0
        if callable(spec):
            return float(spec(wid))
        if isinstance(spec, Mapping):
            return float(spec.get(wid, 1.0))
        try:
            return float(spec[wid])
        except IndexError:
            return 1.0

    def round_time(self, wid: int, work: int, batches_consumed: int = 0,
                   messages_sent: int = 0) -> float:
        """Duration of one PEval/IncEval round doing ``work`` units.

        ``batches_consumed`` message batches are deserialised and
        ``messages_sent`` messages serialised as part of the round.
        """
        if wid in self.fixed_round_time:
            return max(self.fixed_round_time[wid], self.min_round_time)
        t = (self.alpha + self.beta * max(work, 0)
             + self.msg_cost * max(batches_consumed, 0)
             + self.send_cost * max(messages_sent, 0)) * self.speed(wid)
        return max(t, self.min_round_time)

    def transfer_time(self, size_bytes: int) -> float:
        """Network time for one message of ``size_bytes``."""
        t = self.latency
        if self.latency_jitter > 0:
            t += self._rng.uniform(0.0, self.latency_jitter)
        if self.bandwidth is not None:
            t += size_bytes / self.bandwidth
        return t

    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, **kwargs) -> "CostModel":
        """All workers at nominal speed (no stragglers)."""
        kwargs.setdefault("speed", None)
        return cls(**kwargs)

    @classmethod
    def with_straggler(cls, straggler: int, factor: float = 4.0,
                       **kwargs) -> "CostModel":
        """One worker ``factor`` times slower — the paper's straggler setup."""
        if factor <= 0:
            raise RuntimeConfigError("straggler factor must be positive")
        return cls(speed={straggler: factor}, **kwargs)

    def __repr__(self) -> str:
        return (f"CostModel(alpha={self.alpha}, beta={self.beta}, "
                f"latency={self.latency}, bandwidth={self.bandwidth})")
