"""Threaded runtime: real asynchronous execution with OS threads.

Where the simulator *models* asynchrony deterministically, this runtime
*is* asynchronous: one thread per virtual worker, push-based point-to-point
queues, the paper's master termination protocol
(:class:`~repro.core.master.TerminationMaster`), and delay stretches
realised as wall-clock waits.

Because of the GIL this runtime does not demonstrate speed-up (the repro
band notes compute-heavy async workers need multiprocessing); it
demonstrates *correctness under real races*: the Church-Rosser tests run the
same program here and compare with the reference answer.  Wall-clock delay
stretches are scaled by ``time_scale`` so tests stay fast.

A worker that raises calls :meth:`TerminationMaster.abort`, which releases
every other worker promptly; the first error is re-raised by :meth:`run`
with any concurrent failures attached as notes.

Fault tolerance (paper, Section 6) is opt-in and adds nothing to the
default path: pass a :class:`~repro.runtime.faultplan.FaultPlan` to inject
reproducible chaos at the send seam, a ``checkpoint_interval`` for periodic
live Chandy-Lamport snapshots, and the master then runs a heartbeat
failure detector — a silently dead worker raises
:class:`~repro.errors.WorkerCrashedError` (carrying the last checkpoint)
within the heartbeat timeout instead of stalling until the global deadline.
:func:`repro.runtime.recovery.run_with_recovery` turns that into rollback
and restart.
"""

from __future__ import annotations

import copy
import math
import threading
import time
from typing import Any, List, Optional

from repro.core.delay import DelayPolicy, WorkerView
from repro.core.engine import Engine
from repro.core.master import TerminationMaster
from repro.core.result import RunResult
from repro.core.worker import WorkerState, WorkerStatus
from repro.errors import SnapshotError, WorkerCrashedError
from repro.obs import events as obs_events
from repro.runtime.detection import FailureDetector, FailureEvent
from repro.runtime.faultplan import FaultPlan, InjectedCrash
from repro.runtime.metrics import (RunMetrics, WorkerMetrics,
                                   registry_from_workers)
from repro.runtime.snapshot import (GlobalSnapshot, LiveCheckpointer,
                                    apply_snapshot_values)


class ThreadedRuntime:
    """Run a PIE program on real threads until the termination protocol ends.

    Parameters
    ----------
    time_scale:
        Multiplier applied to finite delay stretches (seconds); keep small.
    max_wait:
        Cap on any single wall-clock wait, so a policy returning large finite
        delays cannot stall tests.
    timeout:
        Overall run timeout (seconds).
    observer:
        Optional :class:`repro.obs.Observer`; ``None`` (the default) records
        nothing and costs nothing.
    fault_plan:
        Optional :class:`~repro.runtime.faultplan.FaultPlan` of injected
        failures (deterministic given its seed).
    checkpoint_interval:
        Seconds between live Chandy-Lamport checkpoints; ``None`` (default)
        takes none.
    heartbeat_interval / heartbeat_timeout:
        Failure-detector tuning: workers beat every loop iteration; a worker
        silent past the timeout (or whose thread died) is declared failed.
    detect_failures:
        Force the failure detector on/off; defaults to on whenever a fault
        plan or checkpoint interval is configured.
    respawn_budget:
        Surgical-recovery rung 1: how many in-place thread respawns each
        worker slot may spend before a detected death degrades to
        whole-run rollback (``WorkerCrashedError``).  0 (default)
        disables the rung.

    With none of the fault-tolerance options set, the scheduling path is
    byte-for-byte today's: no extra locks, waits or message rewrites.
    """

    def __init__(self, engine: Engine, policy: DelayPolicy,
                 time_scale: float = 0.001, max_wait: float = 0.05,
                 timeout: float = 120.0, observer: Optional[Any] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 checkpoint_interval: Optional[float] = None,
                 heartbeat_interval: float = 0.02,
                 heartbeat_timeout: float = 1.0,
                 detect_failures: Optional[bool] = None,
                 respawn_budget: int = 0):
        self.engine = engine
        self.policy = policy
        self.time_scale = time_scale
        self.max_wait = max_wait
        self.timeout = timeout
        self.obs = observer
        m = engine.num_workers
        self.workers = [WorkerState(wid) for wid in range(m)]
        self.master = TerminationMaster(m)
        self._locks = [threading.Lock() for _ in range(m)]
        self._events = [threading.Event() for _ in range(m)]
        self._num_peers = [len(frag.peer_fragments()) for frag in engine.pg]
        self._start_time = 0.0
        # --- fault tolerance (all optional; None/off by default) ---------
        self.fault_plan = fault_plan
        self._injector = fault_plan.injector() if fault_plan else None
        if detect_failures is None:
            detect_failures = (fault_plan is not None
                               or checkpoint_interval is not None)
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self._detector: Optional[FailureDetector] = (
            FailureDetector(m, heartbeat_interval, heartbeat_timeout)
            if detect_failures else None)
        self._ckpt: Optional[LiveCheckpointer] = (
            LiveCheckpointer(checkpoint_interval, m)
            if checkpoint_interval is not None else None)
        self._ft = (self._injector is not None or self._detector is not None
                    or self._ckpt is not None)
        #: structured failure log (heartbeat misses, detected deaths)
        self.failures: List[FailureEvent] = []
        self._threads: List[threading.Thread] = []
        self._timers: List[threading.Timer] = []
        self._clean_exit = [False] * m
        self._seeded = False
        #: surgical-recovery rung 1: in-place thread respawns allowed per
        #: worker slot before a death degrades to whole-run rollback
        self.respawn_budget = respawn_budget
        self._budget = [respawn_budget] * m
        #: one record per successful in-place respawn of the last run
        self.respawns: List[dict] = []
        #: per-slot incarnation, carried by heartbeats so a stale beat
        #: can never vouch for a replacement thread
        self._era = [0] * m
        #: whether this slot's fragment ran PEval (a pre-PEval crash
        #: leaves an uninitialised context the replacement must fill)
        self._peval_done = [False] * m

    # ------------------------------------------------------------------
    @property
    def last_checkpoint(self) -> Optional[GlobalSnapshot]:
        """The most recent complete live checkpoint, or ``None``."""
        return self._ckpt.last if self._ckpt is not None else None

    def seed_from_snapshot(self, snapshot: GlobalSnapshot) -> None:
        """Roll every worker back to a consistent checkpoint before running.

        Restores status variables, program scratch and in-channel messages;
        PEval is skipped (it logically happened before the snapshot).
        """
        if snapshot.num_workers_recorded != self.engine.num_workers:
            raise SnapshotError(
                f"snapshot covers {snapshot.num_workers_recorded} workers, "
                f"engine has {self.engine.num_workers}")
        for wid, ctx in enumerate(self.engine.contexts):
            state = snapshot.worker_states[wid]
            apply_snapshot_values(ctx, copy.deepcopy(state.values),
                                  copy.deepcopy(state.scratch))
            w = self.workers[wid]
            w.rounds = 1  # PEval logically done
            for msg in snapshot.buffered_messages(wid):
                w.buffer.push(msg)
        self._seeded = True

    def seed_resume(self, messages) -> None:
        """Resume incremental evaluation from pre-derived messages.

        The streaming/serving continuation path (mirror of
        :meth:`~repro.runtime.simulator.SimulatedRuntime.seed_resume`):
        the engine's contexts already hold a locally-integrated fixpoint
        state; ``messages`` are the designated messages derived from the
        update integration.  PEval is skipped for every worker.
        """
        for wid, w in enumerate(self.workers):
            w.rounds = 1  # PEval logically done in a previous run
            self._peval_done[wid] = True
        for msg in messages:
            self.workers[msg.dst].buffer.push(msg)
        self._seeded = True

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        self._start_time = time.monotonic()
        self.respawns = []
        self._budget = [self.respawn_budget] * self.engine.num_workers
        if self._detector is not None:
            for wid in range(self.engine.num_workers):
                self._detector.beat(wid, self._start_time)
        self._threads = [threading.Thread(target=self._worker_loop,
                                          args=(wid,),
                                          name=f"grape-worker-{wid}",
                                          daemon=True)
                         for wid in range(self.engine.num_workers)]
        for t in self._threads:
            t.start()
        crash: Optional[WorkerCrashedError] = None
        poll = self._ft_poll if self._ft else None
        try:
            self.master.wait_for_termination(timeout=self.timeout, poll=poll)
        except WorkerCrashedError as exc:
            crash = exc
            self.master.abort(exc)  # release every surviving worker
        for wid in range(self.engine.num_workers):
            self._events[wid].set()  # release any sleeper
        for t in self._threads:
            t.join(timeout=5.0)
        for timer in self._timers:
            timer.cancel()
        if self.obs is not None:
            self.obs.log.emit(
                obs_events.TERMINATE_PROBE, self._now(),
                result="aborted" if self.master.aborted else "quiescent")
        if crash is not None:
            raise crash
        errors = self.master.errors
        if errors:
            first = errors[0]
            for other in errors[1:]:
                if hasattr(first, "add_note"):  # pragma: no branch
                    first.add_note(
                        f"concurrent worker failure: {other!r}")
            raise first
        makespan = time.monotonic() - self._start_time
        answer = self.engine.assemble()
        metrics = self._metrics(makespan)
        extras = {} if self.obs is None else {"obs": self.obs}
        if self._ckpt is not None:
            extras["checkpoints"] = self._ckpt.completed
        return RunResult(answer=answer, mode=f"{self.policy.name}-threaded",
                         metrics=metrics,
                         rounds=[w.rounds for w in self.workers],
                         extras=extras)

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.monotonic() - self._start_time

    # ------------------------------------------------------------------
    # fault-tolerance hooks (never on the default path)
    # ------------------------------------------------------------------
    def _ft_poll(self) -> None:
        """Master-side tick: rotate checkpoints, run the failure detector.

        Runs inside :meth:`TerminationMaster.wait_for_termination`'s wait
        loop (every <= 50 ms).  Raising ``WorkerCrashedError`` from here
        aborts the run promptly — detection latency is O(heartbeat
        timeout), not O(global timeout).
        """
        if self.master.terminated:
            return
        now = time.monotonic()
        t = now - self._start_time
        if self._ckpt is not None:
            self._ckpt.maybe_start(now)
            snap = self._ckpt.maybe_complete(now, self.master.in_flight)
            if snap is not None and self.obs is not None:
                self.obs.log.emit(
                    obs_events.CHECKPOINT, t, token=snap.token,
                    workers=snap.num_workers_recorded,
                    channel_messages=snap.num_channel_messages)
        if self._detector is None:
            return
        for s in self._detector.check(now, alive=self._worker_alive):
            event = FailureEvent(t=t, kind=s.kind, wid=s.wid,
                                 detail=f"age={s.age:.3f}s")
            self.failures.append(event)
            if not s.fatal:
                if self.obs is not None:
                    self.obs.log.emit(obs_events.HEARTBEAT_MISS, t,
                                      wid=s.wid, age=s.age)
                continue
            if self.obs is not None:
                self.obs.log.emit(obs_events.FAILURE_DETECTED, t, wid=s.wid,
                                  reason=s.kind, age=s.age)
            # degradation ladder, rung 1: respawn the thread in place
            if not self._try_respawn(s, t):
                raise WorkerCrashedError(
                    wid=s.wid, reason=s.kind, detected_at=t,
                    checkpoint=self.last_checkpoint, failures=self.failures,
                    detection_latency=s.age)

    def _worker_alive(self, wid: int) -> bool:
        # a clean exit (master terminated while the poll raced) is not death
        return self._threads[wid].is_alive() or self._clean_exit[wid]

    def _try_respawn(self, s, t: float) -> bool:
        """Degradation-ladder rung 1: replace a dead worker thread.

        Threads share the address space, so the dead worker's fragment
        state *survives* its thread: an injected crash fires between
        rounds — a consistent cut under monotone IncEval — and everything
        its final round produced was already shipped.  Takeover is
        therefore pure resumption on the surviving context: no checkpoint
        reseed, no border re-ship, no quarantine, and surviving workers
        never pause at all.  Returns False to hand the failure to the
        next rung (whole-run rollback via ``WorkerCrashedError``).
        """
        wid = s.wid

        def degrade(reason: str) -> bool:
            if self.obs is not None:
                self.obs.log.emit(obs_events.DEGRADE, t, wid=wid,
                                  frm="respawn", to="rollback",
                                  reason=reason)
            return False

        if self._budget[wid] <= 0:
            if self.respawn_budget > 0:
                return degrade("respawn budget exhausted")
            return False  # rung disabled: no DEGRADE noise
        if self._threads[wid].is_alive():
            # hung, not dead: its next step would race the replacement
            # on the same shared context — never run two incarnations
            # of one fragment concurrently
            return degrade("old thread is hung, not dead")
        if self.master.terminated:
            return False
        t0 = time.monotonic()
        self._budget[wid] -= 1
        if self._injector is not None:
            # the fired crash consumed its schedule slot; un-mark the
            # slot so any *later* scheduled crash for it can still fire
            self._injector.reset_worker(wid)
        incarnation = (self._detector.respawn(wid, t0)
                       if self._detector is not None
                       else self._era[wid] + 1)
        self._era[wid] = incarnation
        self._clean_exit[wid] = False
        replacement = threading.Thread(
            target=self._worker_loop, args=(wid,),
            name=f"grape-worker-{wid}-r{incarnation}", daemon=True)
        self._threads[wid] = replacement
        # mark active before the thread runs: the master must not reach
        # a termination verdict between start() and the first loop tick
        self.master.set_active(wid)
        replacement.start()
        self._events[wid].set()
        duration = time.monotonic() - t0
        # threads share the address space, so the fragment survives its
        # worker: the replacement resumes in place with no state rebuild
        self.respawns.append({
            "wid": wid, "incarnation": incarnation, "seeded": False,
            "token": None, "takeover": False, "t": t, "duration": duration,
            "budget_left": self._budget[wid]})
        if self.obs is not None:
            self.obs.log.emit(obs_events.WORKER_RESPAWN, t, wid=wid,
                              incarnation=incarnation, seeded=False,
                              token=None, budget_left=self._budget[wid])
            self.obs.log.emit(obs_events.FRAGMENT_TAKEOVER, t, wid=wid,
                              incarnation=incarnation, reshipped=0,
                              duration=duration)
        return True

    def _ft_tick(self, wid: int) -> None:
        """Worker-side tick: heartbeat, injected crash, checkpoint record."""
        if self._detector is not None:
            self._detector.beat(wid, time.monotonic(), self._era[wid])
        if self._injector is not None:
            w = self.workers[wid]
            if self._injector.crash_due(wid, w.rounds):
                if self.obs is not None:
                    self.obs.log.emit(obs_events.FAULT_INJECTED, self._now(),
                                      wid=wid, round=w.rounds, fault="crash",
                                      detail=f"round={w.rounds}")
                raise InjectedCrash(wid, w.rounds)
        if self._ckpt is not None:
            coord = self._ckpt.current
            if coord is not None and not coord.recorded(wid):
                # record between rounds, atomically with the buffer peek
                with self._locks[wid]:
                    coord.record_live(wid, self.engine.contexts[wid],
                                      self.workers[wid].buffer.peek())

    # ------------------------------------------------------------------
    def _set_status(self, w: WorkerState, status: WorkerStatus) -> None:
        if self.obs is not None and w.status is not status:
            self.obs.log.emit(obs_events.STATUS_CHANGE, self._now(),
                              wid=w.wid, round=w.rounds,
                              frm=w.status.value, to=status.value)
        w.status = status

    def _note_if_inactive(self, wid: int) -> bool:
        """Atomically check emptiness and report inactive to the master.

        The inactive flag must be set atomically with the emptiness check,
        or a racing delivery could be lost and the master would terminate
        with an undrained buffer.  The worker's ``status`` is reset in the
        same critical section, so status-based views (and ``status_change``
        events) never report a stale RUNNING/WAITING state while the worker
        sits in the empty-buffer wait path.
        """
        w = self.workers[wid]
        with self._locks[wid]:
            if w.buffer:
                return False
            self._set_status(w, WorkerStatus.INACTIVE)
            self.master.set_inactive(wid)
            return True

    def _worker_loop(self, wid: int) -> None:
        w = self.workers[wid]
        try:
            if self._ft:
                self._ft_tick(wid)  # at_round <= 0 crashes before PEval
            if not self._seeded and not self._peval_done[wid]:
                # a respawned thread resumes the surviving context; only
                # the first incarnation (or one whose predecessor died
                # before PEval finished) initialises the fragment
                self._run_round(wid, peval=True)
                self._peval_done[wid] = True
            while not self.master.terminated:
                if self._ft:
                    self._ft_tick(wid)
                if self._note_if_inactive(wid):
                    self._events[wid].wait(timeout=0.02)
                    self._events[wid].clear()
                    continue
                view = self._view(wid)
                if self.obs is None:
                    ds = self.policy.delay(view)
                else:
                    ds, why = self.policy.decide(view)
                    action = ("start" if ds <= 0 else
                              "suspend" if math.isinf(ds) else
                              "wake_scheduled")
                    self.obs.log.emit(
                        obs_events.DS_DECISION, self._now(), wid=wid,
                        round=view.round, ds=ds, action=action,
                        eta=view.eta, t_pred=view.t_pred,
                        s_pred=view.s_pred, rmin=view.rmin, rmax=view.rmax,
                        t_idle=view.idle_time,
                        reason=why.pop("reason", ""), **why)
                    if math.isinf(ds):
                        self.obs.metrics.counter("ds_suspend", wid).inc()
                    else:
                        self.obs.metrics.histogram(
                            "ds_chosen", wid).observe(ds)
                if ds > 0:
                    wait = (min(ds * self.time_scale, self.max_wait)
                            if not math.isinf(ds) else self.max_wait)
                    self._set_status(w, WorkerStatus.WAITING)
                    self._events[wid].wait(timeout=wait)
                    self._events[wid].clear()
                    if math.isinf(ds):
                        # re-evaluate after any state change
                        continue
                self._run_round(wid, peval=False)
            self._clean_exit[wid] = True
        except InjectedCrash:
            # simulated hard death: no abort, no error report — the
            # master's failure detector must notice on its own
            return
        except BaseException as exc:
            # abort releases every worker promptly and keeps the first
            # error; concurrent failures are collected, not overwritten
            self.master.abort(exc)
            self._clean_exit[wid] = True

    def _run_round(self, wid: int, peval: bool) -> None:
        w = self.workers[wid]
        self._set_status(w, WorkerStatus.RUNNING)
        started = time.monotonic()
        if peval:
            batches = []
            out = self.engine.run_peval(wid)
        else:
            with self._locks[wid]:
                batches = w.buffer.drain()
            if not batches:
                self._set_status(w, WorkerStatus.INACTIVE)
                return
            out = self.engine.run_inceval(wid, batches, round_no=w.rounds)
        if self._injector is not None:
            # straggler fault: stretch the round before results ship
            extra = self._injector.round_slowdown(
                wid, time.monotonic() - started)
            if extra > 0:
                time.sleep(min(extra, self.max_wait))
        if self.obs is not None:
            self.obs.log.emit(obs_events.ROUND_START,
                              started - self._start_time, wid=wid,
                              round=w.rounds,
                              kind="peval" if peval else "inceval",
                              batches=len(batches))
            if not peval:
                self.obs.metrics.histogram(
                    "eta_at_drain", wid).observe(len(batches))
        w.rounds += 1
        w.work_done += out.work
        duration = time.monotonic() - started
        w.busy_time += duration
        w.round_time.observe_round(max(duration, 1e-9))
        if self.obs is not None:
            self.obs.log.emit(obs_events.ROUND_END, self._now(), wid=wid,
                              round=w.rounds - 1,
                              kind="peval" if peval else "inceval",
                              duration=duration, messages=len(out.messages))
            self.obs.metrics.histogram(
                "round_duration", wid).observe(duration)
        for msg in out.messages:
            self._send(msg)
        self._set_status(w, WorkerStatus.INACTIVE if not w.buffer
                         else WorkerStatus.WAITING)
        w.idle_since = time.monotonic() - self._start_time
        self.policy.on_round_complete(self._view(wid), max(duration, 1e-9))

    # ------------------------------------------------------------------
    # transport: _send decides the fate of a message, _deliver lands it
    # ------------------------------------------------------------------
    def _send(self, msg) -> None:
        src = self.workers[msg.src]
        if not self._ft:
            deliveries = ((msg, 0.0),)
        else:
            if self._ckpt is not None:
                coord = self._ckpt.current
                if coord is not None:
                    msg = coord.stamp_outgoing(msg.src, [msg])[0]
            if self._injector is None:
                deliveries = ((msg, 0.0),)
            else:
                deliveries = self._injector.on_send(msg)
                self._emit_injections(msg, deliveries)
                if not deliveries:
                    # dropped: never reaches the wire.  Producer stats
                    # count wire messages only, matching the per-entry
                    # batch path (a partially-dropped batch counts its
                    # surviving sub-batches, not the dropped entries) —
                    # each logical entry is counted exactly once
                    return
        for m, delay in deliveries:
            self.master.message_sent()
            src.messages_sent += 1
            src.bytes_sent += m.size_bytes
            if self.obs is not None:
                self.obs.log.emit(obs_events.MSG_SEND, self._now(),
                                  wid=m.src, round=src.rounds, dst=m.dst,
                                  bytes=m.size_bytes, seq=m.seq,
                                  entries=len(m))
                self.obs.metrics.counter("wire_bytes").inc(m.size_bytes)
            if delay <= 0:
                self._deliver(m)
            else:
                timer = threading.Timer(delay, self._deliver, args=(m,))
                timer.daemon = True
                self._timers.append(timer)
                timer.start()

    def _emit_injections(self, msg, deliveries) -> None:
        if self.obs is None:
            return
        detail = f"src={msg.src} dst={msg.dst} seq={msg.seq}"
        if not deliveries:
            fault = "drop"
        elif len(deliveries) > 1:
            fault = "duplicate"
        elif deliveries[0][1] > 0:
            fault = "delay"
        else:
            return
        self.obs.log.emit(obs_events.FAULT_INJECTED, self._now(),
                          wid=msg.src, fault=fault, detail=detail)

    def _deliver(self, msg) -> None:
        dst = self.workers[msg.dst]
        with self._locks[msg.dst]:
            if self._ft and self._ckpt is not None:
                coord = self._ckpt.current
                if coord is not None:
                    coord.on_deliver(msg.dst, msg, self._now())
            dst.buffer.push(msg)
            now = time.monotonic() - self._start_time
            dst.arrival_rate.observe_arrival(now)
            dst.last_arrival = now
            if self.obs is not None:
                depth = dst.buffer.staleness
                self.obs.log.emit(obs_events.MSG_DELIVER, now, wid=msg.dst,
                                  round=dst.rounds, src=msg.src,
                                  bytes=msg.size_bytes, seq=msg.seq,
                                  depth=depth)
                self.obs.metrics.histogram(
                    "buffer_depth", msg.dst).observe(depth)
        self.master.set_active(msg.dst)
        self.master.message_delivered()
        self._events[msg.dst].set()

    # ------------------------------------------------------------------
    def _view(self, wid: int) -> WorkerView:
        w = self.workers[wid]
        pending = [x.rounds for x in self.workers if x.pending]
        rmin = min(pending) if pending else w.rounds
        rmax = max(pending) if pending else w.rounds
        now = time.monotonic() - self._start_time
        rates = [x.arrival_rate.predict(now=now) for x in self.workers]
        finite = [r for r in rates if r > 0 and not math.isinf(r)]
        t_preds = [x.round_time.predict(default=1e-4) for x in self.workers]
        return WorkerView(
            wid=wid, round=w.rounds, eta=w.eta, rmin=rmin, rmax=rmax,
            idle_time=w.idle_for(now), now=now,
            t_pred=w.round_time.predict(default=1e-4),
            s_pred=w.arrival_rate.predict(now=now),
            fleet_avg_rate=sum(finite) / len(finite) if finite else 0.0,
            num_workers=len(self.workers),
            num_peers=self._num_peers[wid],
            fleet_avg_round_time=sum(t_preds) / len(t_preds))

    def _metrics(self, makespan: float) -> RunMetrics:
        per_worker = [WorkerMetrics(
            wid=w.wid, rounds=w.rounds, busy_time=w.busy_time,
            messages_sent=w.messages_sent,
            messages_received=w.buffer.total_received,
            bytes_sent=w.bytes_sent, bytes_received=w.buffer.total_bytes,
            work_done=w.work_done) for w in self.workers]
        if self.obs is not None:
            registry_from_workers(per_worker, into=self.obs.metrics)
            return RunMetrics.from_registry(self.obs.metrics,
                                            makespan=makespan)
        return RunMetrics.from_workers(per_worker, makespan=makespan)
