"""Threaded runtime: real asynchronous execution with OS threads.

Where the simulator *models* asynchrony deterministically, this runtime
*is* asynchronous: one thread per virtual worker, push-based point-to-point
queues, the paper's master termination protocol
(:class:`~repro.core.master.TerminationMaster`), and delay stretches
realised as wall-clock waits.

Because of the GIL this runtime does not demonstrate speed-up (the repro
band notes compute-heavy async workers need multiprocessing); it
demonstrates *correctness under real races*: the Church-Rosser tests run the
same program here and compare with the reference answer.  Wall-clock delay
stretches are scaled by ``time_scale`` so tests stay fast.

A worker that raises calls :meth:`TerminationMaster.abort`, which releases
every other worker promptly; the first error is re-raised by :meth:`run`
with any concurrent failures attached as notes.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, List, Optional

from repro.core.delay import DelayPolicy, WorkerView
from repro.core.engine import Engine
from repro.core.master import TerminationMaster
from repro.core.result import RunResult
from repro.core.worker import WorkerState, WorkerStatus
from repro.errors import TerminationError
from repro.obs import events as obs_events
from repro.runtime.metrics import (RunMetrics, WorkerMetrics,
                                   registry_from_workers)


class ThreadedRuntime:
    """Run a PIE program on real threads until the termination protocol ends.

    Parameters
    ----------
    time_scale:
        Multiplier applied to finite delay stretches (seconds); keep small.
    max_wait:
        Cap on any single wall-clock wait, so a policy returning large finite
        delays cannot stall tests.
    timeout:
        Overall run timeout (seconds).
    observer:
        Optional :class:`repro.obs.Observer`; ``None`` (the default) records
        nothing and costs nothing.
    """

    def __init__(self, engine: Engine, policy: DelayPolicy,
                 time_scale: float = 0.001, max_wait: float = 0.05,
                 timeout: float = 120.0, observer: Optional[Any] = None):
        self.engine = engine
        self.policy = policy
        self.time_scale = time_scale
        self.max_wait = max_wait
        self.timeout = timeout
        self.obs = observer
        m = engine.num_workers
        self.workers = [WorkerState(wid) for wid in range(m)]
        self.master = TerminationMaster(m)
        self._locks = [threading.Lock() for _ in range(m)]
        self._events = [threading.Event() for _ in range(m)]
        self._num_peers = [len(frag.peer_fragments()) for frag in engine.pg]
        self._start_time = 0.0

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        self._start_time = time.monotonic()
        threads = [threading.Thread(target=self._worker_loop, args=(wid,),
                                    name=f"grape-worker-{wid}", daemon=True)
                   for wid in range(self.engine.num_workers)]
        for t in threads:
            t.start()
        self.master.wait_for_termination(timeout=self.timeout)
        for wid in range(self.engine.num_workers):
            self._events[wid].set()  # release any sleeper
        for t in threads:
            t.join(timeout=5.0)
        if self.obs is not None:
            self.obs.log.emit(
                obs_events.TERMINATE_PROBE, self._now(),
                result="aborted" if self.master.aborted else "quiescent")
        errors = self.master.errors
        if errors:
            first = errors[0]
            for other in errors[1:]:
                if hasattr(first, "add_note"):  # pragma: no branch
                    first.add_note(
                        f"concurrent worker failure: {other!r}")
            raise first
        makespan = time.monotonic() - self._start_time
        answer = self.engine.assemble()
        metrics = self._metrics(makespan)
        extras = {} if self.obs is None else {"obs": self.obs}
        return RunResult(answer=answer, mode=f"{self.policy.name}-threaded",
                         metrics=metrics,
                         rounds=[w.rounds for w in self.workers],
                         extras=extras)

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.monotonic() - self._start_time

    def _set_status(self, w: WorkerState, status: WorkerStatus) -> None:
        if self.obs is not None and w.status is not status:
            self.obs.log.emit(obs_events.STATUS_CHANGE, self._now(),
                              wid=w.wid, round=w.rounds,
                              frm=w.status.value, to=status.value)
        w.status = status

    def _note_if_inactive(self, wid: int) -> bool:
        """Atomically check emptiness and report inactive to the master.

        The inactive flag must be set atomically with the emptiness check,
        or a racing delivery could be lost and the master would terminate
        with an undrained buffer.  The worker's ``status`` is reset in the
        same critical section, so status-based views (and ``status_change``
        events) never report a stale RUNNING/WAITING state while the worker
        sits in the empty-buffer wait path.
        """
        w = self.workers[wid]
        with self._locks[wid]:
            if w.buffer:
                return False
            self._set_status(w, WorkerStatus.INACTIVE)
            self.master.set_inactive(wid)
            return True

    def _worker_loop(self, wid: int) -> None:
        w = self.workers[wid]
        try:
            self._run_round(wid, peval=True)
            while not self.master.terminated:
                if self._note_if_inactive(wid):
                    self._events[wid].wait(timeout=0.02)
                    self._events[wid].clear()
                    continue
                view = self._view(wid)
                if self.obs is None:
                    ds = self.policy.delay(view)
                else:
                    ds, why = self.policy.decide(view)
                    action = ("start" if ds <= 0 else
                              "suspend" if math.isinf(ds) else
                              "wake_scheduled")
                    self.obs.log.emit(
                        obs_events.DS_DECISION, self._now(), wid=wid,
                        round=view.round, ds=ds, action=action,
                        eta=view.eta, t_pred=view.t_pred,
                        s_pred=view.s_pred, rmin=view.rmin, rmax=view.rmax,
                        t_idle=view.idle_time,
                        reason=why.pop("reason", ""), **why)
                    if math.isinf(ds):
                        self.obs.metrics.counter("ds_suspend", wid).inc()
                    else:
                        self.obs.metrics.histogram(
                            "ds_chosen", wid).observe(ds)
                if ds > 0:
                    wait = (min(ds * self.time_scale, self.max_wait)
                            if not math.isinf(ds) else self.max_wait)
                    self._set_status(w, WorkerStatus.WAITING)
                    self._events[wid].wait(timeout=wait)
                    self._events[wid].clear()
                    if math.isinf(ds):
                        # re-evaluate after any state change
                        continue
                self._run_round(wid, peval=False)
        except BaseException as exc:
            # abort releases every worker promptly and keeps the first
            # error; concurrent failures are collected, not overwritten
            self.master.abort(exc)

    def _run_round(self, wid: int, peval: bool) -> None:
        w = self.workers[wid]
        self._set_status(w, WorkerStatus.RUNNING)
        started = time.monotonic()
        if peval:
            batches = []
            out = self.engine.run_peval(wid)
        else:
            with self._locks[wid]:
                batches = w.buffer.drain()
            if not batches:
                self._set_status(w, WorkerStatus.INACTIVE)
                return
            out = self.engine.run_inceval(wid, batches, round_no=w.rounds)
        if self.obs is not None:
            self.obs.log.emit(obs_events.ROUND_START,
                              started - self._start_time, wid=wid,
                              round=w.rounds,
                              kind="peval" if peval else "inceval",
                              batches=len(batches))
            if not peval:
                self.obs.metrics.histogram(
                    "eta_at_drain", wid).observe(len(batches))
        w.rounds += 1
        w.work_done += out.work
        duration = time.monotonic() - started
        w.busy_time += duration
        w.round_time.observe_round(max(duration, 1e-9))
        if self.obs is not None:
            self.obs.log.emit(obs_events.ROUND_END, self._now(), wid=wid,
                              round=w.rounds - 1,
                              kind="peval" if peval else "inceval",
                              duration=duration, messages=len(out.messages))
            self.obs.metrics.histogram(
                "round_duration", wid).observe(duration)
        for msg in out.messages:
            self._send(msg)
        self._set_status(w, WorkerStatus.INACTIVE if not w.buffer
                         else WorkerStatus.WAITING)
        w.idle_since = time.monotonic() - self._start_time
        self.policy.on_round_complete(self._view(wid), max(duration, 1e-9))

    def _send(self, msg) -> None:
        self.master.message_sent()
        src = self.workers[msg.src]
        src.messages_sent += 1
        src.bytes_sent += msg.size_bytes
        dst = self.workers[msg.dst]
        if self.obs is not None:
            self.obs.log.emit(obs_events.MSG_SEND, self._now(), wid=msg.src,
                              round=src.rounds, dst=msg.dst,
                              bytes=msg.size_bytes, seq=msg.seq)
            self.obs.metrics.counter("wire_bytes").inc(msg.size_bytes)
        with self._locks[msg.dst]:
            dst.buffer.push(msg)
            now = time.monotonic() - self._start_time
            dst.arrival_rate.observe_arrival(now)
            dst.last_arrival = now
            if self.obs is not None:
                depth = dst.buffer.staleness
                self.obs.log.emit(obs_events.MSG_DELIVER, now, wid=msg.dst,
                                  round=dst.rounds, src=msg.src,
                                  bytes=msg.size_bytes, seq=msg.seq,
                                  depth=depth)
                self.obs.metrics.histogram(
                    "buffer_depth", msg.dst).observe(depth)
        self.master.set_active(msg.dst)
        self.master.message_delivered()
        self._events[msg.dst].set()

    # ------------------------------------------------------------------
    def _view(self, wid: int) -> WorkerView:
        w = self.workers[wid]
        pending = [x.rounds for x in self.workers if x.pending]
        rmin = min(pending) if pending else w.rounds
        rmax = max(pending) if pending else w.rounds
        rates = [x.arrival_rate.predict() for x in self.workers]
        finite = [r for r in rates if r > 0 and not math.isinf(r)]
        now = time.monotonic() - self._start_time
        t_preds = [x.round_time.predict(default=1e-4) for x in self.workers]
        return WorkerView(
            wid=wid, round=w.rounds, eta=w.eta, rmin=rmin, rmax=rmax,
            idle_time=w.idle_for(now), now=now,
            t_pred=w.round_time.predict(default=1e-4),
            s_pred=w.arrival_rate.predict(),
            fleet_avg_rate=sum(finite) / len(finite) if finite else 0.0,
            num_workers=len(self.workers),
            num_peers=self._num_peers[wid],
            fleet_avg_round_time=sum(t_preds) / len(t_preds))

    def _metrics(self, makespan: float) -> RunMetrics:
        per_worker = [WorkerMetrics(
            wid=w.wid, rounds=w.rounds, busy_time=w.busy_time,
            messages_sent=w.messages_sent,
            messages_received=w.buffer.total_received,
            bytes_sent=w.bytes_sent, bytes_received=w.buffer.total_bytes,
            work_done=w.work_done) for w in self.workers]
        if self.obs is not None:
            registry_from_workers(per_worker, into=self.obs.metrics)
            return RunMetrics.from_registry(self.obs.metrics,
                                            makespan=makespan)
        return RunMetrics.from_workers(per_worker, makespan=makespan)
