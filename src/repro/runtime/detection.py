"""Master-side failure detection for the live runtimes.

Workers beat a heartbeat (shared-memory timestamp in the threaded runtime,
a control-channel message in the multiprocess one); the master polls a
:class:`FailureDetector`, which escalates a silent worker from *miss*
(overdue, reported once per interval) to *failure* (past the timeout, or
its thread/process is no longer alive).  Detection latency is therefore
O(heartbeat timeout), not O(global run timeout): a killed worker is
declared dead in under a second instead of stalling the run for the full
deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class FailureEvent:
    """One entry of the structured failure log."""

    t: float
    kind: str  # "heartbeat_miss" | "heartbeat_timeout" | "worker_dead"
    wid: int
    detail: str = ""


@dataclass(frozen=True)
class Suspicion:
    """A detector verdict about one worker."""

    wid: int
    kind: str
    age: float
    fatal: bool


class FailureDetector:
    """Tracks per-worker heartbeats and escalates silence to failure.

    ``interval`` is the expected beat period; a worker is *missed* after
    ``2 * interval`` of silence (throttled to one report per interval) and
    *failed* after ``timeout``.  ``alive`` (an optional callable
    ``wid -> bool``) lets the caller add liveness checks — a dead thread or
    process fails immediately, regardless of heartbeat age.
    """

    def __init__(self, num_workers: int, interval: float, timeout: float,
                 now: float = 0.0):
        if timeout <= 2 * interval:
            # the timeout must exceed the miss threshold or every failure
            # would be reported without any preceding miss
            timeout = max(timeout, 3 * interval)
        self.interval = interval
        self.timeout = timeout
        self._last: Dict[int, float] = {w: now for w in range(num_workers)}
        self._last_miss: Dict[int, float] = {}
        self._failed: set = set()
        #: per-worker incarnation: bumped on respawn so a late heartbeat
        #: from the dead incarnation can never vouch for the replacement
        self._incarnation: Dict[int, int] = {w: 0 for w in range(num_workers)}

    def beat(self, wid: int, now: float, incarnation: int = 0) -> None:
        """Record a heartbeat — unless it cannot vouch for a live worker.

        A beat from a worker already declared failed is a *resurrection*
        and is ignored: the declaration stands until :meth:`respawn`.  A
        beat keyed to a stale incarnation (the dead process's backlog
        draining after its replacement started) is likewise dropped.
        """
        if wid in self._failed:
            return
        if incarnation != self._incarnation.get(wid, 0):
            return
        self._last[wid] = now

    def respawn(self, wid: int, now: float) -> int:
        """Un-declare ``wid`` for its replacement; returns the new
        incarnation that the replacement's heartbeats must carry."""
        self._failed.discard(wid)
        self._last_miss.pop(wid, None)
        self._last[wid] = now
        self._incarnation[wid] = self._incarnation.get(wid, 0) + 1
        return self._incarnation[wid]

    def incarnation(self, wid: int) -> int:
        return self._incarnation.get(wid, 0)

    def is_failed(self, wid: int) -> bool:
        return wid in self._failed

    def last_beat(self, wid: int) -> float:
        return self._last[wid]

    def check(self, now: float,
              alive: Optional[Callable[[int], bool]] = None
              ) -> List[Suspicion]:
        """One poll: the new misses and failures since the last call."""
        out: List[Suspicion] = []
        for wid, last in self._last.items():
            if wid in self._failed:
                continue
            age = now - last
            dead = alive is not None and not alive(wid)
            if dead or age > self.timeout:
                self._failed.add(wid)
                out.append(Suspicion(
                    wid=wid, kind="worker_dead" if dead
                    else "heartbeat_timeout", age=age, fatal=True))
            elif age > 2 * self.interval:
                if now - self._last_miss.get(wid, -1e9) >= self.interval:
                    self._last_miss[wid] = now
                    out.append(Suspicion(wid=wid, kind="heartbeat_miss",
                                         age=age, fatal=False))
        return out
