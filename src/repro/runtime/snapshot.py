"""Chandy-Lamport snapshots for asynchronous runs (paper, Section 6).

GRAPE+ adapts Chandy-Lamport for checkpoints because asynchronous runs have
no superstep boundary to roll back to: *"The master broadcasts a checkpoint
request with a token.  Upon receiving the request, each worker ignores the
request if it has already held the token.  Otherwise, it snapshots its
current state before sending any messages.  The token is attached to its
following messages.  Messages that arrive late without the token are added
to the last snapshot."*

:class:`ChandyLamportCoordinator` plugs into the simulator via three hooks
(initiate broadcast, outgoing-message stamping, delivery inspection) and
produces a :class:`GlobalSnapshot` that is *consistent*: restoring it into a
fresh runtime (:meth:`SimulatedRuntime.seed_from_snapshot`) and running to
fixpoint yields the same answer as the uninterrupted run.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional

from repro.core.messages import Message
from repro.errors import SnapshotError
from repro.runtime.events import Custom


@dataclass
class WorkerSnapshot:
    """Frozen state of one worker: status variables + program scratch."""

    wid: int
    values: Dict[Hashable, Any]
    scratch: Dict[str, Any]


@dataclass
class GlobalSnapshot:
    """A consistent global checkpoint: worker states + channel states."""

    token: int
    worker_states: Dict[int, WorkerSnapshot] = field(default_factory=dict)
    #: in-channel messages recorded per destination worker
    channel_messages: Dict[int, List[Message]] = field(default_factory=dict)
    complete: bool = False

    def buffered_messages(self, wid: int) -> List[Message]:
        return list(self.channel_messages.get(wid, []))

    @property
    def num_workers_recorded(self) -> int:
        return len(self.worker_states)


class ChandyLamportCoordinator:
    """Drives one snapshot over a :class:`SimulatedRuntime`.

    Usage::

        coord = ChandyLamportCoordinator()
        runtime = SimulatedRuntime(engine, policy,
                                   snapshot_coordinator=coord)
        coord.request_at(runtime, time=5.0)
        result = runtime.run()
        snap = coord.snapshot    # consistent once the run drains
    """

    def __init__(self, token: int = 1):
        self.token = token
        self.snapshot: Optional[GlobalSnapshot] = None
        self._runtime = None
        self._recorded: set = set()

    # ------------------------------------------------------------------
    def request_at(self, runtime, time: float) -> None:
        """Schedule the master's checkpoint broadcast at ``time``."""
        self._runtime = runtime
        runtime.queue.push(Custom(time=time, tag="snapshot",
                                  payload=self.token))

    # -- runtime hooks -------------------------------------------------
    def on_initiate(self, runtime, now: float) -> None:
        """Master broadcast: every worker that has not held the token yet
        snapshots its local state immediately."""
        if self.snapshot is None:
            self.snapshot = GlobalSnapshot(token=self.token)
        for wid in range(runtime.engine.num_workers):
            self._record_worker(runtime, wid)

    def stamp_outgoing(self, wid: int, messages: List[Message]
                       ) -> List[Message]:
        """Attach the token to messages sent after the local snapshot."""
        if self.snapshot is None or wid not in self._recorded:
            return messages
        return [Message(src=m.src, dst=m.dst, round=m.round,
                        entries=m.entries, token=self.token,
                        entry_bytes=m.entry_bytes)
                for m in messages]

    def on_deliver(self, wid: int, message: Message, now: float) -> None:
        """Channel recording: late messages without the token belong to the
        pre-snapshot state and are added to the checkpoint."""
        if self.snapshot is None:
            return
        if message.token == self.token:
            return
        if wid in self._recorded:
            self.snapshot.channel_messages.setdefault(wid, []).append(message)

    # ------------------------------------------------------------------
    def _record_worker(self, runtime, wid: int) -> None:
        if wid in self._recorded:
            return
        ctx = runtime.engine.contexts[wid]
        self.snapshot.worker_states[wid] = WorkerSnapshot(
            wid=wid,
            values=copy.deepcopy(ctx.values),
            scratch=copy.deepcopy(ctx.scratch))
        # messages already buffered at snapshot time are channel state too
        for msg in list(runtime.workers[wid].buffer._messages):
            self.snapshot.channel_messages.setdefault(wid, []).append(msg)
        # so are messages produced by the currently running round but not
        # yet shipped: the recorded values already reflect that round, and
        # once shipped these messages will carry the token (i.e. they are
        # counted exactly once, here)
        for msg in runtime._held[wid]:
            self.snapshot.channel_messages.setdefault(
                msg.dst, []).append(msg)
        self._recorded.add(wid)

    def finalize(self) -> GlobalSnapshot:
        """Validate and return the snapshot after the run drained."""
        if self.snapshot is None:
            raise SnapshotError("no snapshot was initiated")
        if self._runtime is not None:
            expected = self._runtime.engine.num_workers
            if self.snapshot.num_workers_recorded != expected:
                raise SnapshotError(
                    f"snapshot incomplete: {self.snapshot.num_workers_recorded}"
                    f"/{expected} workers recorded")
        self.snapshot.complete = True
        return self.snapshot
