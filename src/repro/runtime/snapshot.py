"""Chandy-Lamport snapshots for asynchronous runs (paper, Section 6).

GRAPE+ adapts Chandy-Lamport for checkpoints because asynchronous runs have
no superstep boundary to roll back to: *"The master broadcasts a checkpoint
request with a token.  Upon receiving the request, each worker ignores the
request if it has already held the token.  Otherwise, it snapshots its
current state before sending any messages.  The token is attached to its
following messages.  Messages that arrive late without the token are added
to the last snapshot."*

:class:`ChandyLamportCoordinator` plugs into the simulator via three hooks
(initiate broadcast, outgoing-message stamping, delivery inspection) and
produces a :class:`GlobalSnapshot` that is *consistent*: restoring it into a
fresh runtime (:meth:`SimulatedRuntime.seed_from_snapshot`) and running to
fixpoint yields the same answer as the uninterrupted run.

The same coordinator also serves the *live* runtimes: there the master only
raises the token (:meth:`ChandyLamportCoordinator.begin`) and each worker
records itself between rounds (:meth:`record_live`), exactly the paper's
protocol.  :class:`LiveCheckpointer` rotates coordinator epochs for periodic
online checkpoints, keeping the last complete snapshot for rollback.
"""

from __future__ import annotations

import copy
import dataclasses
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Optional

from repro.core.messages import Message
from repro.errors import SnapshotError
from repro.runtime.events import Custom


@dataclass
class WorkerSnapshot:
    """Frozen state of one worker: status variables + program scratch."""

    wid: int
    values: Dict[Hashable, Any]
    scratch: Dict[str, Any]


@dataclass
class GlobalSnapshot:
    """A consistent global checkpoint: worker states + channel states."""

    token: int
    worker_states: Dict[int, WorkerSnapshot] = field(default_factory=dict)
    #: in-channel messages recorded per destination worker
    channel_messages: Dict[int, List[Message]] = field(default_factory=dict)
    complete: bool = False

    def buffered_messages(self, wid: int) -> List[Message]:
        return list(self.channel_messages.get(wid, []))

    def fragment_state(self, wid: int) -> WorkerSnapshot:
        """Per-fragment extraction for surgical recovery.

        A replacement worker is re-seeded from exactly one fragment's
        recorded state (plus :meth:`buffered_messages`), without touching
        the surviving workers — Theorem 2 licenses restarting any subset
        from a consistent cut under monotone IncEval.
        """
        try:
            return self.worker_states[wid]
        except KeyError:
            raise SnapshotError(
                f"snapshot {self.token} holds no state for worker {wid} "
                f"({self.num_workers_recorded} recorded)") from None

    @property
    def num_workers_recorded(self) -> int:
        return len(self.worker_states)

    @property
    def num_channel_messages(self) -> int:
        return sum(len(v) for v in self.channel_messages.values())


def apply_snapshot_values(ctx, values: Any, scratch: Optional[Dict] = None
                          ) -> None:
    """Load recorded worker state into a (generic or dense) context.

    Recorded values come in two shapes: a plain ``node -> value`` dict, or
    the dense marker ``("__dense__", array)`` that
    :meth:`~repro.core.dense.DenseContext.export_state` produces — the
    fast path for vectorized checkpoints (one contiguous array instead of
    a per-node dict).  Either shape loads into either context kind; the
    change-tracking state is cleared so a seeded worker re-derives only
    what its incoming messages actually improve.
    """
    dense_marked = (isinstance(values, tuple) and len(values) == 2
                    and values[0] == "__dense__")
    if dense_marked and hasattr(ctx, "import_state"):
        ctx.import_state(values[1])
    elif dense_marked:
        # dense-recorded state into a generic context: expand the array
        # through the fragment's compact view (dense contexts only exist
        # for int-node graphs, so the gid mapping is total)
        view = ctx.fragment.compact()
        arr = values[1]
        ctx.values.clear()
        ctx.values.update(
            {int(g): arr[lid] for lid, g in enumerate(view.gids)})
    elif hasattr(ctx, "load_values"):
        # plain dict into a dense context; checkpoints record every node
        # of the fragment, so the bulk assignment is total
        ctx.load_values(values)
    else:
        ctx.values.clear()
        ctx.values.update(values)
    if scratch is not None:
        ctx.scratch.clear()
        ctx.scratch.update(scratch)
    ctx.changed = set()


def stamp_messages(messages: Iterable[Message], token: Any) -> List[Message]:
    """Rebuild ``messages`` with the snapshot ``token`` attached.

    Type-preserving: packed :class:`~repro.core.messages.MessageBatch`
    traffic stays packed (``dataclasses.replace`` keeps everything but
    the token, including the ``seq``).
    """
    return [dataclasses.replace(m, token=token) for m in messages]


class ChandyLamportCoordinator:
    """Drives one snapshot epoch over a runtime.

    Simulator usage::

        coord = ChandyLamportCoordinator()
        runtime = SimulatedRuntime(engine, policy,
                                   snapshot_coordinator=coord)
        coord.request_at(runtime, time=5.0)
        result = runtime.run()
        snap = coord.finalize()    # consistent once the run drains

    Live usage (threaded runtime / multiprocess master): the master calls
    :meth:`begin`; workers call :meth:`record_live` (or the master records
    shipped state with :meth:`record_state`) the first time they see the
    token, stamp their subsequent sends via :meth:`stamp_outgoing`, and
    report un-tokened deliveries via :meth:`on_deliver`.
    """

    def __init__(self, token: int = 1):
        self.token = token
        self.snapshot: Optional[GlobalSnapshot] = None
        self._runtime = None
        self._recorded: set = set()
        # live runtimes mutate the snapshot from several worker threads
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def request_at(self, runtime, time: float) -> None:
        """Schedule the master's checkpoint broadcast at ``time``."""
        self._runtime = runtime
        runtime.queue.push(Custom(time=time, tag="snapshot",
                                  payload=self.token))

    def begin(self) -> None:
        """Raise the token for a live run (workers self-record later)."""
        with self._lock:
            if self.snapshot is None:
                self.snapshot = GlobalSnapshot(token=self.token)

    # -- runtime hooks -------------------------------------------------
    def on_initiate(self, runtime, now: float) -> None:
        """Master broadcast: every worker that has not held the token yet
        snapshots its local state immediately."""
        if self.snapshot is None:
            self.snapshot = GlobalSnapshot(token=self.token)
        for wid in range(runtime.engine.num_workers):
            self._record_worker(runtime, wid)

    def stamp_outgoing(self, wid: int, messages: List[Message]
                       ) -> List[Message]:
        """Attach the token to messages sent after the local snapshot."""
        if self.snapshot is None or wid not in self._recorded:
            return messages
        return stamp_messages(messages, self.token)

    def on_deliver(self, wid: int, message: Message, now: float) -> None:
        """Channel recording: late messages without the token belong to the
        pre-snapshot state and are added to the checkpoint."""
        if self.snapshot is None:
            return
        if message.token == self.token:
            return
        if wid in self._recorded:
            with self._lock:
                self.snapshot.channel_messages.setdefault(
                    wid, []).append(message)

    # ------------------------------------------------------------------
    def recorded(self, wid: int) -> bool:
        """True once worker ``wid`` holds the token (has self-recorded)."""
        return wid in self._recorded

    @property
    def num_recorded(self) -> int:
        return len(self._recorded)

    def record_live(self, wid: int, context,
                    buffered: Iterable[Message]) -> None:
        """A live worker records itself upon first seeing the token.

        Must be called between rounds (the context is stable) with the
        worker's buffer lock held, so the recorded state and the recorded
        channel messages form one consistent cut.
        """
        self.record_state(wid, copy.deepcopy(context.values),
                          copy.deepcopy(context.scratch), buffered)

    def record_state(self, wid: int, values: Dict, scratch: Dict,
                     buffered: Iterable[Message] = ()) -> None:
        """Record an already-extracted worker state (multiprocess master)."""
        with self._lock:
            if wid in self._recorded:
                return
            if self.snapshot is None:
                self.snapshot = GlobalSnapshot(token=self.token)
            self.snapshot.worker_states[wid] = WorkerSnapshot(
                wid=wid, values=values, scratch=scratch)
            for msg in buffered:
                self.snapshot.channel_messages.setdefault(
                    wid, []).append(msg)
            self._recorded.add(wid)

    def _record_worker(self, runtime, wid: int) -> None:
        if wid in self._recorded:
            return
        ctx = runtime.engine.contexts[wid]
        # messages already buffered at snapshot time are channel state;
        # peek() inspects them without consuming (and without reaching
        # into the buffer's private storage)
        self.record_state(wid, copy.deepcopy(ctx.values),
                          copy.deepcopy(ctx.scratch),
                          runtime.workers[wid].buffer.peek())
        # so are messages produced by the currently running round but not
        # yet shipped: the recorded values already reflect that round, and
        # once shipped these messages will carry the token (i.e. they are
        # counted exactly once, here)
        with self._lock:
            for msg in runtime._held[wid]:
                self.snapshot.channel_messages.setdefault(
                    msg.dst, []).append(msg)

    def finalize(self) -> GlobalSnapshot:
        """Validate and return the snapshot after the run drained."""
        if self.snapshot is None:
            raise SnapshotError("no snapshot was initiated")
        if self._runtime is not None:
            expected = self._runtime.engine.num_workers
            if self.snapshot.num_workers_recorded != expected:
                recorded = self.snapshot.num_workers_recorded
                raise SnapshotError(
                    f"snapshot incomplete: {recorded}"
                    f"/{expected} workers recorded")
        self.snapshot.complete = True
        return self.snapshot


class LiveCheckpointer:
    """Periodic Chandy-Lamport checkpoints over a live runtime.

    The master polls :meth:`maybe_start` / :meth:`maybe_complete`; workers
    read :attr:`current` to self-record and stamp.  Only one epoch is in
    flight at a time; the previous complete snapshot stays available in
    :attr:`last` for rollback.  An epoch completes once every worker has
    recorded *and* no un-tokened message can still be in flight (the
    caller passes its in-flight count), so the cut is consistent.
    """

    def __init__(self, interval: float, num_workers: int):
        if interval <= 0:
            raise SnapshotError(
                f"checkpoint interval must be positive, got {interval!r}")
        self.interval = interval
        self.num_workers = num_workers
        #: the last complete snapshot (rollback target), or None
        self.last: Optional[GlobalSnapshot] = None
        #: the in-progress epoch's coordinator, or None between epochs
        self.current: Optional[ChandyLamportCoordinator] = None
        self.completed = 0
        self._next_token = 1
        self._last_epoch_end = 0.0

    def maybe_start(self, now: float) -> Optional[ChandyLamportCoordinator]:
        """Open a new epoch when the interval elapsed; returns it if so."""
        if self.current is not None:
            return None
        if now - self._last_epoch_end < self.interval:
            return None
        coord = ChandyLamportCoordinator(token=self._next_token)
        self._next_token += 1
        coord.begin()
        self.current = coord
        return coord

    def abort_current(self, now: float) -> bool:
        """Abandon the in-flight epoch (a recorder died mid-cut).

        A takeover invalidates the open epoch: the dead incarnation can
        never record, and its counted un-tokened traffic would leave the
        conservation residual permanently non-zero.  The epoch clock
        restarts from ``now`` so the next cut begins against the post-
        takeover fleet.  Returns True when an epoch was actually open.
        """
        if self.current is None:
            return False
        self.current = None
        self._last_epoch_end = now
        return True

    def maybe_complete(self, now: float,
                       in_flight: int) -> Optional[GlobalSnapshot]:
        """Finalize the open epoch once every worker recorded and the wire
        is quiet; returns the fresh snapshot if it completed."""
        coord = self.current
        if coord is None or coord.num_recorded < self.num_workers:
            return None
        if in_flight > 0:
            return None
        snap = coord.snapshot
        snap.complete = True
        self.last = snap
        self.current = None
        self.completed += 1
        self._last_epoch_end = now
        return snap
