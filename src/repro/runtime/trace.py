"""Execution traces and ASCII timing diagrams (the paper's Fig. 1 / Fig. 7).

The simulator records one :class:`Interval` per round; :func:`ascii_gantt`
renders the per-worker timelines so runs under BSP/AP/SSP/AAP can be compared
visually, exactly like the paper's timing-diagram figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Interval:
    """One contiguous activity of one worker."""

    wid: int
    start: float
    end: float
    kind: str  # "peval" | "inceval" | "suspended"
    round: int

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceRecorder:
    """Collects intervals during a run."""

    __slots__ = ("intervals", "enabled")

    def __init__(self, enabled: bool = True):
        self.intervals: List[Interval] = []
        self.enabled = enabled

    def record(self, wid: int, start: float, end: float, kind: str,
               round_no: int) -> None:
        if self.enabled and end > start:
            self.intervals.append(Interval(wid, start, end, kind, round_no))

    def by_worker(self) -> Dict[int, List[Interval]]:
        out: Dict[int, List[Interval]] = {}
        for iv in self.intervals:
            out.setdefault(iv.wid, []).append(iv)
        for ivs in out.values():
            ivs.sort(key=lambda iv: iv.start)
        return out

    def makespan(self) -> float:
        return max((iv.end for iv in self.intervals), default=0.0)

    def busy_time(self, wid: int) -> float:
        return sum(iv.duration for iv in self.intervals
                   if iv.wid == wid and iv.kind in ("peval", "inceval"))

    def rounds(self, wid: int) -> int:
        return sum(1 for iv in self.intervals
                   if iv.wid == wid and iv.kind in ("peval", "inceval"))


_KIND_CHAR = {"peval": "P", "inceval": "#", "suspended": "."}


def ascii_gantt(trace: TraceRecorder, width: int = 78,
                makespan: Optional[float] = None,
                label: str = "") -> str:
    """Render worker timelines as text.

    ``#`` marks computation, ``.`` marks a delay-stretch suspension, spaces
    mark idle/inactive periods.  One row per worker, time left to right.
    """
    span = makespan if makespan is not None else trace.makespan()
    if span <= 0:
        return f"{label} (empty trace)"
    lines = []
    if label:
        lines.append(f"{label}  (0 .. {span:.2f} time units)")
    per_worker = trace.by_worker()
    for wid in sorted(per_worker):
        row = [" "] * width
        for iv in per_worker[wid]:
            lo = int(iv.start / span * (width - 1))
            hi = max(int(iv.end / span * (width - 1)), lo)
            ch = _KIND_CHAR.get(iv.kind, "?")
            for i in range(lo, min(hi + 1, width)):
                if row[i] == " " or ch == "#" or ch == "P":
                    row[i] = ch
        lines.append(f"P{wid:<3d}|{''.join(row)}|")
    return "\n".join(lines)
