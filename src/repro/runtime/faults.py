"""Failure injection and checkpoint recovery.

Reproduces the fault-tolerance behaviour of Section 6: a checkpoint is taken
mid-run with Chandy-Lamport; on worker failure the computation rolls back to
the checkpointed global state and resumes.  With a monotone PIE program the
recovered run converges to the same answer (Theorem 2 applies from any
consistent intermediate state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.delay import DelayPolicy
from repro.core.engine import Engine
from repro.core.result import RunResult
from repro.errors import SnapshotError
from repro.runtime.costmodel import CostModel
from repro.runtime.simulator import SimulatedRuntime
from repro.runtime.snapshot import ChandyLamportCoordinator, GlobalSnapshot


@dataclass
class RecoveryReport:
    """Outcome of a failure/recovery experiment."""

    result: RunResult
    snapshot: GlobalSnapshot
    checkpoint_time: float
    failed: bool
    recovery_runs: int


def run_with_checkpoint(engine_factory: Callable[[], Engine],
                        policy_factory: Callable[[], DelayPolicy],
                        checkpoint_time: float,
                        cost_model_factory: Optional[Callable[[], CostModel]]
                        = None) -> RecoveryReport:
    """Run to completion while taking a checkpoint at ``checkpoint_time``."""
    coord = ChandyLamportCoordinator()
    cm = cost_model_factory() if cost_model_factory else None
    runtime = SimulatedRuntime(engine_factory(), policy_factory(),
                               cost_model=cm, snapshot_coordinator=coord)
    coord.request_at(runtime, time=checkpoint_time)
    result = runtime.run()
    snapshot = coord.finalize()
    return RecoveryReport(result=result, snapshot=snapshot,
                          checkpoint_time=checkpoint_time, failed=False,
                          recovery_runs=0)


def recover_from_snapshot(engine_factory: Callable[[], Engine],
                          policy_factory: Callable[[], DelayPolicy],
                          snapshot: GlobalSnapshot,
                          cost_model_factory: Optional[
                              Callable[[], CostModel]] = None) -> RunResult:
    """Restore a fresh runtime from ``snapshot`` and run to fixpoint.

    Models recovery after a failure: all workers roll back to the consistent
    checkpoint (states + in-channel messages) and the incremental phase
    resumes from there.
    """
    if not snapshot.worker_states:
        raise SnapshotError("cannot recover from an empty snapshot")
    cm = cost_model_factory() if cost_model_factory else None
    runtime = SimulatedRuntime(engine_factory(), policy_factory(),
                               cost_model=cm)
    runtime.seed_from_snapshot(snapshot)
    return runtime.run()


def run_with_failure(engine_factory: Callable[[], Engine],
                     policy_factory: Callable[[], DelayPolicy],
                     checkpoint_time: float,
                     cost_model_factory: Optional[Callable[[], CostModel]]
                     = None) -> RecoveryReport:
    """Checkpoint mid-run, then simulate a crash-and-recover cycle.

    The first run provides the checkpoint (its post-checkpoint progress is
    discarded, as a crash would); a second runtime restores the checkpoint
    and completes the computation.  The returned result is the recovered
    run's answer.
    """
    report = run_with_checkpoint(engine_factory, policy_factory,
                                 checkpoint_time, cost_model_factory)
    recovered = recover_from_snapshot(engine_factory, policy_factory,
                                      report.snapshot, cost_model_factory)
    return RecoveryReport(result=recovered, snapshot=report.snapshot,
                          checkpoint_time=checkpoint_time, failed=True,
                          recovery_runs=1)
