"""Multiprocessing runtime: true parallel execution across processes.

Python's GIL prevents the threaded runtime from showing real speed-ups on
compute-heavy workloads, so this runtime places each virtual worker in its
own OS process (the repro band's "needs multiprocessing" note).  Fragments,
program and query are shipped once at start; designated messages travel
through per-worker ``multiprocessing.Queue``s; the master process runs the
paper's termination protocol (inactive flags, in-flight accounting, and an
explicit probe/ack round — the ``terminate``/``ack``-or-``wait`` exchange).

All five parallel models are supported:

- ``"AP"``  — fully asynchronous; a worker runs whenever its inbox is
  non-empty.
- ``"BSP"`` — master-coordinated supersteps (a real distributed barrier).
- ``"SSP"`` — bounded staleness: a worker holds its drained batch while
  ``r_i > r_min + c``, where ``r_min`` comes from the master's fleet
  broadcasts (computed over *active* workers, so a finished worker never
  pins the bound — the same deadlock-freedom rule as the other runtimes).
- ``"AAP"`` — asynchronous with delay stretches computed from the local
  predictors plus *fleet state broadcasts* from the master (round bounds
  and arrival rates are slightly stale, which is faithful: the paper's
  workers also learn ``r_min``/``r_max`` through status exchange).
- ``"Hsync"`` — the master runs the :class:`~repro.core.delay.HsyncPolicy`
  switching heuristic over the workers' round reports and broadcasts the
  current global mode; workers gate like BSP while it says so, run free in
  AP phases, and pay the switch cost once per switch.

Everything shipped must be picklable (the built-in PIE programs are).

Transport (data plane vs control plane)
---------------------------------------
By default (``transport="shm"``) packed :class:`MessageBatch` traffic
travels through per-``(src, dst)`` shared-memory ring buffers
(:mod:`repro.runtime.slab`): a send is an array write plus a 64-byte
record header, and the receiver reconstructs numpy views without copying
or pickling.  Control traffic — heartbeats, fleet/``rmin`` broadcasts,
``ds`` decisions, the termination probe, checkpoint state — stays on the
``ctx.Queue`` control plane, as do messages the rings cannot carry
(generic unpacked :class:`Message` objects, exotic payload dtypes,
ring-full overflow): the queue path is always the correctness fallback.
``transport="queue"`` (or ``REPRO_MP_TRANSPORT=queue``) restores the
pure pickled-queue data plane.  Both planes share the same seams: the
fault injector judges messages before they reach either, the termination
ledger counts logical entries identically, and snapshot tokens ride the
ring record header.

Fault tolerance (paper, Section 6) mirrors the threaded runtime's and is
off by default: a :class:`~repro.runtime.faultplan.FaultPlan` injects
deterministic chaos inside each worker process (an injected crash is a real
``os._exit`` — the process dies without a goodbye), workers heartbeat over
the control channel, and the master combines heartbeat ages with
``Process.is_alive()`` so a dead worker raises
:class:`~repro.errors.WorkerCrashedError` in O(heartbeat timeout).
Periodic Chandy-Lamport checkpoints run over the command/control channels:
the master broadcasts ``("checkpoint", token)``, each worker snapshots its
state before its next send and ships it back, late un-tokened messages are
added to the snapshot they logically precede.

Surgical recovery (``respawn_budget > 0``) upgrades a detected death from
"abandon the run" to an in-place repair: the master quarantines the dead
worker (survivors take a final drain, fence its slab rings, and park
traffic bound for it), settles the per-channel termination ledger, resets
the rings under a bumped generation number, respawns a replacement process
seeded from the last complete checkpoint's fragment state, and rejoins it
— surviving peers re-ship their full border through the normal transport
seam, which is safe exactly when the program's aggregation is idempotent
(:attr:`~repro.core.pie.PIEProgram.reship_capable`).  Surviving workers
never stop in the asynchronous modes and only pause at the next barrier in
BSP.  When the rung is unavailable (budget spent, accumulative program,
single worker, or a protocol step times out) the failure degrades to
:class:`~repro.errors.WorkerCrashedError` and the recovery ladder in
:mod:`repro.runtime.recovery` takes over.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import queue as queue_mod
import select
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.delay import AAPPolicy, HsyncPolicy, WorkerView
from repro.core.engine import Engine
from repro.core.pie import PIEProgram
from repro.core.result import RunResult
from repro.errors import (RuntimeConfigError, SnapshotError,
                          TerminationError, WorkerCrashedError)
from repro.obs import events as obs_events
from repro.partition.fragment import PartitionedGraph
from repro.runtime.detection import FailureDetector, FailureEvent
from repro.runtime.faultplan import FaultPlan
from repro.runtime.metrics import (RunMetrics, WorkerMetrics,
                                   registry_from_workers)
from repro.runtime.slab import (ShmMessageBatch, SlabArena, SlabPool,
                                to_owned)
from repro.runtime.snapshot import (GlobalSnapshot, LiveCheckpointer,
                                    apply_snapshot_values, stamp_messages)

_MODES = ("AP", "BSP", "SSP", "AAP", "Hsync")
_TRANSPORTS = ("shm", "queue")
#: idle backoff of the slab-polling receive loop (seconds); short enough
#: to keep round latency low, long enough to yield the CPU between polls
_POLL_IDLE = 0.0003
#: batch-fattening cap (seconds): after the first message lands, keep
#: polling until a poll comes back empty or this much time has passed.
#: Consolidating several peers' updates into one round cuts redundant
#: recomputation (label-correcting programs re-relax a node once per
#: arriving improvement) and halves the control-plane chatter per entry.
_ACCUM_MAX = 0.002
#: consecutive empty receive polls before a worker is "deep idle" and
#: falls back to blocking on the queue plane instead of fast polling
_IDLE_POLLS = 10


@dataclass
class _FTConfig:
    """Per-worker fault-tolerance config shipped at fork time.

    ``None`` (the default everywhere) keeps the worker loop on the exact
    legacy path: no injector, no heartbeats, no checkpoint handling.
    """

    fault_plan: Optional[FaultPlan] = None
    heartbeat_interval: float = 0.02
    seed_values: Optional[Any] = None
    seed_scratch: Optional[Dict[str, Any]] = None
    seed_messages: List[Any] = field(default_factory=list)
    #: which incarnation of this worker slot the process is; heartbeats
    #: and ledger reports carry it so the master can reject the dead
    #: incarnation's backlog after a takeover
    incarnation: int = 0
    #: checkpoint-conservation counter bases for a replacement worker:
    #: the master seeds them from its channel ledger so cumulative
    #: sent/recv accounting stays balanced across incarnations
    sent_base: int = 0
    recv_base: int = 0

    @property
    def seeded(self) -> bool:
        return self.seed_values is not None


@dataclass
class _WorkerReport:
    """Final statistics a worker ships back to the master."""

    wid: int
    rounds: int
    work: int
    messages_sent: int
    bytes_sent: int
    values: Dict[Any, Any]
    scratch: Dict[str, Any]
    #: observability records collected in the worker process, as
    #: (type, absolute-monotonic-time, wid, round, payload) tuples
    events: List[Tuple] = field(default_factory=list)
    #: data-plane accounting: batches/bytes that rode the shared-memory
    #: rings, and batches that fell back to the pickled queue path
    shm_batches: int = 0
    shm_bytes: int = 0
    shm_fallbacks: int = 0


class _SingleFragmentEngine:
    """Engine restricted to the one fragment living in this process."""

    def __init__(self, program: PIEProgram, pg: PartitionedGraph,
                 query: Any, wid: int, vectorized: bool = False):
        # Engine builds contexts for every fragment; acceptable at these
        # scales and keeps the shipping path identical to the other
        # runtimes.  Only contexts[wid] is ever touched in this process.
        self._engine = Engine(program, pg, query, vectorized=vectorized)
        self.wid = wid

    def peval(self):
        return self._engine.run_peval(self.wid)

    def inceval(self, batches, round_no):
        return self._engine.run_inceval(self.wid, batches,
                                        round_no=round_no)

    def reship(self, dst, round_no):
        """Full border re-ship to a respawned peer (surgical recovery)."""
        return self._engine.derive_reship(self.wid, dst, round_no)

    @property
    def context(self):
        return self._engine.contexts[self.wid]


class _CommandPipe:
    """Master -> worker command channel over a raw ``mp.Pipe``.

    The command channel is strictly single-producer/single-consumer, so
    a full ``mp.Queue`` (a pipe plus two semaphores plus a feeder thread
    per producing process, ~2ms to build) buys nothing over a bare pipe.
    With one pipe per worker this trims ~8ms of fixed setup per run and
    four feeder threads' worth of context switches on small machines.

    ``put`` blocks if the pipe buffer is full — safe for the rare
    correctness commands (probe/stop/superstep/checkpoint) because the
    worker drains the channel on every loop iteration, but periodic
    fleet telemetry must use ``put_nowait_drop`` instead: dropping one
    broadcast is harmless (the next comes within 20ms) while blocking
    the master on a stalled worker is not.
    """

    def __init__(self, ctx):
        self._rx, self._tx = ctx.Pipe(duplex=False)

    def put(self, item) -> None:
        try:
            self._tx.send(item)
        except (BrokenPipeError, OSError):
            pass  # receiver already exited (stopped or crashed worker)

    def put_nowait_drop(self, item) -> None:
        """Send iff the pipe is writable right now; else drop silently."""
        try:
            _, writable, _ = select.select([], [self._tx], [], 0)
            if writable:
                self._tx.send(item)
        except (BrokenPipeError, OSError, ValueError):
            pass

    def get_nowait(self):
        try:
            if not self._rx.poll():
                raise queue_mod.Empty
            return self._rx.recv()
        except (EOFError, OSError):
            raise queue_mod.Empty from None

    # Queue-API compat for the shared teardown sweep
    def cancel_join_thread(self) -> None:
        pass

    def close(self) -> None:
        for conn in (self._rx, self._tx):
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass


def _drain(inbox: mp.Queue, first=None, wait: float = 0.0) -> List[Any]:
    """Collect everything currently in ``inbox`` (plus ``first``)."""
    batch = [] if first is None else [first]
    if wait > 0 and not batch:
        try:
            batch.append(inbox.get(timeout=wait))
        except queue_mod.Empty:
            return batch
    while True:
        try:
            batch.append(inbox.get_nowait())
        except queue_mod.Empty:
            return batch


def _worker_main(wid: int, mode: str, program: PIEProgram,
                 pg: PartitionedGraph, query: Any,
                 inboxes: List[mp.Queue], control: mp.Queue,
                 command: "_CommandPipe", time_scale: float,
                 observe: bool = False,
                 ft: Optional[_FTConfig] = None,
                 vectorized: bool = False,
                 policy_conf: Optional[Dict[str, Any]] = None,
                 run_id: Optional[str] = None) -> None:
    """Entry point of one worker process."""
    try:
        _worker_loop(wid, mode, program, pg, query, inboxes, control,
                     command, time_scale, observe, ft, vectorized,
                     policy_conf, run_id)
    except Exception as exc:  # pragma: no cover - surfaced by master
        # ship the formatted traceback too: the master re-raises it, and
        # "worker 3 crashed: KeyError(5)" alone is undebuggable
        control.put(("error", wid, repr(exc), traceback.format_exc()))


def _by_dst(messages) -> Dict[int, int]:
    """Logical-entry counts per destination, for the channel ledger."""
    out: Dict[int, int] = {}
    for m in messages:
        out[m.dst] = out.get(m.dst, 0) + len(m)
    return out


def _send_all(wid: int, messages, put, control: mp.Queue,
              stats: Dict[str, int], emit=None, round_no: int = 0,
              incarnation: int = 0) -> None:
    if messages:
        # announce before the messages become receivable, so the master's
        # in-flight counter can only over-estimate, never under-estimate.
        # The ledger counts *logical entries* (len of a Message or a
        # packed MessageBatch) per directed channel, so batching doesn't
        # skew termination and a takeover can settle exactly the dead
        # worker's channels.
        control.put(("sent", wid, _by_dst(messages), incarnation))
    for msg in messages:
        if emit is not None:
            emit(obs_events.MSG_SEND, round_no, dst=msg.dst,
                 bytes=msg.size_bytes, seq=msg.seq, entries=len(msg))
        put(msg)
        stats["messages"] += 1
        stats["entries"] += len(msg)
        stats["bytes"] += msg.size_bytes


def _worker_loop(wid, mode, program, pg, query, inboxes, control, command,
                 time_scale, observe=False, ft=None,
                 vectorized=False, policy_conf=None, run_id=None) -> None:
    engine = _SingleFragmentEngine(program, pg, query, wid,
                                   vectorized=vectorized)
    inbox = inboxes[wid]
    # zero-copy data plane: attach this worker's slab rings (the master
    # created them before forking).  ``pool is None`` keeps the legacy
    # pure-queue path byte-for-byte.
    pool = (SlabPool(run_id, wid, pg.num_fragments)
            if run_id is not None else None)
    #: consecutive empty receive polls, for the escalating idle backoff
    idle_polls = [0]

    def put_msg(msg) -> None:
        """Data-plane send: slab ring when it fits, queue otherwise."""
        if pool is None or not pool.try_send(msg):
            inboxes[msg.dst].put(msg)

    def recv(wait: float = 0.0) -> List[Any]:
        """Drain both planes; on the slab path, poll-sleep-poll instead
        of blocking on the queue (the rings have no wakeup primitive).

        When the first poll finds data, one further micro-sleep + poll
        accumulates stragglers from peers mid-publish: marginally later
        rounds, but fatter batches — fewer rounds, fewer control
        messages, fewer context switches (the dominant cost when workers
        outnumber cores).
        """
        if pool is None:
            return _drain(inbox, wait=wait)
        # deep-idle fallback: a worker whose polls keep coming up empty
        # (a long convergence tail, or a generic-path run whose traffic
        # is all on the queue plane) reverts to the legacy blocking
        # queue get so idle pollers don't steal CPU from the workers
        # doing the computing on oversubscribed machines
        deep_idle = wait > 0 and idle_polls[0] >= _IDLE_POLLS
        fresh = _drain(inbox, wait=wait if deep_idle else 0.0)
        fresh.extend(pool.poll())
        if not fresh and wait > 0 and not deep_idle:
            time.sleep(_POLL_IDLE)
            fresh = pool.poll()
            fresh.extend(_drain(inbox))
        if not fresh:
            idle_polls[0] += 1
            return fresh
        idle_polls[0] = 0
        grow_until = time.monotonic() + _ACCUM_MAX
        while time.monotonic() < grow_until:
            time.sleep(_POLL_IDLE)
            more = pool.poll()
            more.extend(_drain(inbox))
            if not more:
                break
            fresh.extend(more)
        return fresh
    stats = {"messages": 0, "entries": 0, "bytes": 0, "work": 0}
    # round/rate reports feed the master's fleet broadcasts (AAP/SSP/
    # Hsync) and the Hsync switching policy; AP and BSP consume neither,
    # so skipping the per-round control message there removes one feeder
    # -thread wake per round per worker
    report_rounds = mode in ("AAP", "SSP", "Hsync")
    rounds = 0
    policy = AAPPolicy() if mode == "AAP" else None
    policy_conf = policy_conf or {}
    #: SSP staleness bound c / Hsync switch cost (ignored by other modes)
    ssp_bound = policy_conf.get("staleness_bound", 1)
    switch_cost = policy_conf.get("switch_cost", 1.0)
    paid_switches = 0
    fleet: Dict[str, Any] = {"rmin": 0, "rmax": 0, "avg_rate": 0.0,
                             "avg_round": 1e-3, "hmode": "AP",
                             "switches": 0}
    last_round_dur = 1e-4
    last_arrival = None
    rate = 0.0
    events: List[Tuple] = []

    # worker-local observability hook: records are collected here and
    # shipped back to the master in the final report (timestamps are
    # absolute monotonic; the master normalises them to run-relative)
    emit = None
    if observe:
        def emit(type_, round_no, **payload):
            events.append((type_, time.monotonic(), wid, round_no, payload))

    def status_change(frm, to, round_no) -> None:
        if emit is not None:
            emit(obs_events.STATUS_CHANGE, round_no, frm=frm, to=to)

    # --- fault-tolerance state (all inert when ft is None) ------------
    injector = (ft.fault_plan.injector()
                if ft is not None and ft.fault_plan is not None else None)
    hb_interval = ft.heartbeat_interval if ft is not None else 0.0
    incarnation = ft.incarnation if ft is not None else 0
    sent_base = ft.sent_base if ft is not None else 0
    recv_base = ft.recv_base if ft is not None else 0
    last_hb = 0.0
    ckpt_token = None  # the checkpoint token this worker currently holds
    #: (due, msg, round_no): announced and counted, held until due
    delayed: List[Tuple[float, Any, int]] = []
    carry: List[Any] = []  # drained-but-unprocessed messages
    #: drained AND observed messages held back by SSP/Hsync gating; kept
    #: separate from ``carry`` so they are never double-observed
    held: List[Any] = []
    #: peers currently under master quarantine (dead, not yet respawned)
    quarantined: set = set()
    #: messages produced for a quarantined peer: kept out of the wire and
    #: the ledger; discarded at rejoin (the full border re-ship that
    #: accompanies rejoin dominates them under monotone aggregation)
    parked: Dict[int, List[Any]] = {}

    def beat() -> None:
        nonlocal last_hb
        if hb_interval <= 0:
            return
        now = time.monotonic()
        if now - last_hb >= hb_interval:
            control.put(("heartbeat", wid, incarnation))
            last_hb = now

    def crash_if_due() -> None:
        if injector is not None and injector.crash_due(wid, rounds):
            if emit is not None:
                emit(obs_events.FAULT_INJECTED, rounds, fault="crash",
                     detail=f"round={rounds}")
            # a real hard death: no error report, no done report — the
            # master's failure detector must notice on its own
            os._exit(17)

    def flush_delayed() -> None:
        if not delayed:
            return
        now = time.monotonic()
        due = [x for x in delayed if x[0] <= now]
        if due:
            delayed[:] = [x for x in delayed if x[0] > now]
            for _, m, r in due:
                # the MSG_SEND record is emitted here, when the message
                # actually reaches the wire — its stats were counted at
                # injection time, but omitting the event undercounted
                # wire_bytes against stats["bytes"]
                if emit is not None:
                    emit(obs_events.MSG_SEND, r, dst=m.dst,
                         bytes=m.size_bytes, seq=m.seq, entries=len(m))
                put_msg(m)

    def ship(messages, round_no) -> None:
        """The transport seam: park, stamp, inject, announce, put."""
        if not messages:
            return
        if quarantined:
            # park before stamping/injection/announce: parked traffic
            # never touches the ledger or the stats, so discarding it at
            # rejoin is accounting-neutral
            kept = []
            for m in messages:
                if m.dst in quarantined:
                    parked.setdefault(m.dst, []).append(m)
                else:
                    kept.append(m)
            messages = kept
            if not messages:
                return
        if ckpt_token is not None:
            messages = stamp_messages(messages, ckpt_token)
        if injector is None or not injector.message_faults:
            _send_all(wid, messages, put_msg, control, stats, emit,
                      round_no, incarnation)
            return
        now_ship: List[Any] = []
        later: List[Tuple[float, Any, int]] = []
        for msg in messages:
            deliveries = injector.on_send(msg)
            if emit is not None and (not deliveries or len(deliveries) > 1
                                     or deliveries[0][1] > 0):
                fault = ("drop" if not deliveries else
                         "duplicate" if len(deliveries) > 1 else "delay")
                emit(obs_events.FAULT_INJECTED, round_no, fault=fault,
                     detail=f"dst={msg.dst} seq={msg.seq}")
            for m, d in deliveries:
                stats["messages"] += 1
                stats["entries"] += len(m)
                stats["bytes"] += m.size_bytes
                if d <= 0:
                    now_ship.append(m)
                else:
                    later.append((time.monotonic() + d, m, round_no))
        wire = _by_dst(now_ship)
        for _, m, _ in later:
            wire[m.dst] = wire.get(m.dst, 0) + len(m)
        if wire:
            # announce everything (including held messages) before any
            # becomes receivable: in-flight may only over-estimate
            control.put(("sent", wid, wire, incarnation))
        for m in now_ship:
            if emit is not None:
                emit(obs_events.MSG_SEND, round_no, dst=m.dst,
                     bytes=m.size_bytes, seq=m.seq, entries=len(m))
            put_msg(m)
        delayed.extend(later)

    recv_total = 0
    recv_by_token: Dict[Any, int] = {}

    def count_recv(batch) -> None:
        # per-token receive accounting feeds the master's flush check:
        # an epoch is only complete when every pre-record message is
        # accounted for on the receive side (message conservation)
        nonlocal recv_total
        if ft is None or not batch:
            return
        for m in batch:
            recv_total += len(m)
            tok = getattr(m, "token", None)
            if tok is not None:
                recv_by_token[tok] = recv_by_token.get(tok, 0) + len(m)

    def report_late(batch) -> None:
        """Un-tokened arrivals after our record: channel state of the
        snapshot (the master adds them to the matching one)."""
        if ckpt_token is None:
            return
        for m in batch:
            if getattr(m, "token", None) != ckpt_token:
                control.put(("ckpt_late", wid, ckpt_token, m))

    def drain_in(wait: float = 0.0) -> List[Any]:
        """Receive from both planes and credit the channel ledger.

        The ``drained`` report is the receive-side half of the master's
        per-channel conservation books: it fires when the messages leave
        the wire (not when a round consumes them), so in-flight reflects
        transport occupancy exactly and a takeover can settle the dead
        worker's channels without guessing what its peers had buffered.
        """
        fresh = recv(wait=wait)
        if fresh:
            by_src: Dict[int, int] = {}
            for m in fresh:
                by_src[m.src] = by_src.get(m.src, 0) + len(m)
            control.put(("drained", wid, by_src, incarnation))
            count_recv(fresh)
            report_late(fresh)
        return fresh

    def take_checkpoint(token) -> None:
        """Paper, Section 6: snapshot local state before any further send.

        Messages already drained (or sitting in the inbox) that do *not*
        carry the token belong to the pre-snapshot channel state; they are
        both recorded and kept for normal processing.  The report carries
        this worker's cumulative un-tokened send/receive counts (offset by
        the incarnation bases a replacement inherits) so the master can
        tell when the cut's channels have fully flushed.
        """
        nonlocal ckpt_token
        if ckpt_token == token:
            return  # already held: ignore the request
        carry.extend(drain_in())
        pre = [m for m in carry if getattr(m, "token", None) != token]
        ctx = engine.context
        # dense contexts record one contiguous array instead of a
        # per-node dict — same fast path as the final report
        values = (("__dense__", ctx.export_state())
                  if hasattr(ctx, "export_state") else dict(ctx.values))
        control.put(("ckpt_state", wid, token, values,
                     dict(ctx.scratch), list(pre),
                     sent_base + stats["entries"],
                     recv_base + recv_total
                     - recv_by_token.get(token, 0)))
        ckpt_token = token

    if ft is not None and ft.seeded:
        # rollback/respawn restart: restore state, skip PEval (it
        # logically ran before the checkpoint), treat the snapshot's
        # channel messages as a local carry batch.  The carry never
        # touches the ledger: it was never on the wire this run, and
        # crediting is drain-time, so un-announced local replay is
        # conservation-neutral.
        apply_snapshot_values(engine.context, ft.seed_values,
                              ft.seed_scratch)
        rounds = 1
        carry.extend(ft.seed_messages)
        if report_rounds:
            control.put(("round", wid, rounds, last_round_dur, rate, 0))
    else:
        crash_if_due()  # at_round <= 0 means die before PEval
        started0 = time.monotonic()
        if emit is not None:
            emit(obs_events.ROUND_START, 0, kind="peval", batches=0)
        out = engine.peval()
        rounds += 1
        stats["work"] += out.work
        if emit is not None:
            emit(obs_events.ROUND_END, 0, kind="peval",
                 duration=time.monotonic() - started0,
                 messages=len(out.messages))
        ship(out.messages, 0)
        if report_rounds:
            control.put(("round", wid, rounds, last_round_dur, rate, 0))

    def run_round(batch) -> None:
        nonlocal rounds, last_round_dur
        started = time.monotonic()
        if emit is not None:
            emit(obs_events.ROUND_START, rounds, kind="inceval",
                 batches=len(batch))
        result = engine.inceval(batch, round_no=rounds)
        rounds += 1
        last_round_dur = max(time.monotonic() - started, 1e-6)
        if injector is not None:
            # straggler fault: stretch the round before results ship
            extra = injector.round_slowdown(wid, last_round_dur)
            if extra > 0:
                time.sleep(min(extra, 0.05))
        stats["work"] += result.work
        if emit is not None:
            emit(obs_events.ROUND_END, rounds - 1, kind="inceval",
                 duration=last_round_dur, messages=len(result.messages))
        ship(result.messages, rounds - 1)
        if pool is not None:
            # the engine copied what it needed (concatenate/materialise);
            # the ring space behind the processed views can be reclaimed
            pool.release(batch)
        # eta (batches consumed) rides along for the master's Hsync policy
        if report_rounds:
            control.put(("round", wid, rounds, last_round_dur, rate,
                         len(batch)))

    def observe_arrivals(batch) -> None:
        nonlocal last_arrival, rate
        now = time.monotonic()
        for depth, msg in enumerate(batch):
            if last_arrival is not None:
                gap = max(now - last_arrival, 1e-9)
                rate = 0.5 * rate + 0.5 * (1.0 / gap) if rate else 1.0 / gap
            last_arrival = now
            if emit is not None:
                emit(obs_events.MSG_DELIVER, rounds, src=msg.src,
                     bytes=msg.size_bytes, seq=msg.seq, depth=depth + 1)

    inactive_reported = False
    while True:
        if ft is not None:
            beat()
            crash_if_due()
            flush_delayed()
        # master commands take priority (probe/fleet/superstep/stop)
        try:
            cmd = command.get_nowait()
        except queue_mod.Empty:
            cmd = None
        if cmd is not None:
            kind = cmd[0]
            if kind == "stop":
                break
            if kind == "fleet":
                fleet = cmd[1]
                continue
            if kind == "checkpoint":
                take_checkpoint(cmd[1])
                continue
            if kind == "probe":
                # the paper's terminate broadcast: ack iff still inactive
                # (both planes: queue inbox AND unparsed ring records),
                # and nothing parked for a quarantined peer
                empty = (inbox.empty() and not carry and not held
                         and not any(parked.values())
                         and (pool is None or pool.drained))
                control.put(("ack" if empty else "wait", wid))
                continue
            if kind == "superstep":
                batch = carry + drain_in()
                carry.clear()
                observe_arrivals(batch)
                if batch:
                    run_round(batch)
                control.put(("step-done", wid, len(batch)))
                continue
            if kind == "quarantine":
                # a peer died: take one final drain of everything already
                # on the wire, then fence its rings.  The dead peer's
                # held-back delayed traffic is discarded — the border
                # re-ship at rejoin dominates those stale values under
                # monotone aggregation (and the master's channel
                # equalization settles their announce).
                qw = cmd[1]
                delayed[:] = [x for x in delayed if x[1].dst != qw]
                while True:
                    fresh = drain_in()
                    if not fresh:
                        break
                    carry.extend(fresh)
                if pool is not None:
                    last = pool.quarantine_peer(qw)
                    if last:
                        control.put(("drained", wid,
                                     {qw: sum(len(m) for m in last)},
                                     incarnation))
                        count_recv(last)
                        report_late(last)
                        carry.extend(last)
                    # own every drained-but-unprocessed view of the dead
                    # incarnation's ring bytes: the master is about to
                    # reset that ring and the replacement will overwrite
                    # the slab behind the views
                    for buf in (carry, held):
                        for i, msg in enumerate(buf):
                            if (isinstance(msg, ShmMessageBatch)
                                    and msg.src == qw):
                                owned = to_owned(msg)
                                pool.release([msg])
                                buf[i] = owned
                quarantined.add(qw)
                # flush marker: FIFO-per-producer means once the master
                # sees it, no earlier message of ours can still surface
                # in the dead worker's inbox
                inboxes[qw].put(("__qflush__", wid))
                control.put(("quarantined", wid, qw))
                continue
            if kind == "rejoin":
                # the replacement is up behind reset rings: rebind our
                # endpoints, drop traffic parked during quarantine, and
                # re-ship our full border through the normal seam
                qw = cmd[1]
                quarantined.discard(qw)
                parked.pop(qw, None)
                if pool is not None:
                    pool.rejoin_peer(qw)
                ship(engine.reship(qw, rounds), rounds)
                continue
        if mode == "BSP":
            time.sleep(0.0005)
            continue

        fresh = drain_in(wait=0.002)
        if carry:
            fresh = carry + fresh
            carry.clear()
        if not fresh and not held:
            if not inactive_reported:
                control.put(("inactive", wid))
                inactive_reported = True
                status_change("running", "inactive", rounds)
            continue
        observe_arrivals(fresh)
        batch = held + fresh
        held.clear()
        if inactive_reported:
            control.put(("active", wid))
            inactive_reported = False
            status_change("inactive", "running", rounds)
        # SSP / Hsync-BSP gating against the broadcast fleet bound: hold
        # the (already observed) batch and re-check when fresh fleet
        # state or messages arrive.  The r_min worker itself is never
        # gated, so some active worker can always advance the bound.
        gate = None
        if mode == "SSP":
            gate = fleet["rmin"] + ssp_bound
        elif mode == "Hsync" and fleet.get("hmode") == "BSP":
            gate = fleet["rmin"]
        if gate is not None and rounds > gate:
            held.extend(batch)
            time.sleep(0.0005)
            continue
        if mode == "Hsync" and fleet.get("switches", 0) != paid_switches:
            # pay the mode-switch cost once per global switch, scaled the
            # same way AAP's delay stretches are
            paid_switches = fleet.get("switches", 0)
            time.sleep(min(switch_cost * time_scale, 0.01))
        if mode == "AAP" and policy is not None:
            view = WorkerView(
                wid=wid, round=rounds, eta=len(batch),
                rmin=fleet["rmin"], rmax=fleet["rmax"],
                idle_time=0.0, now=time.monotonic(),
                t_pred=last_round_dur, s_pred=rate,
                fleet_avg_rate=fleet["avg_rate"],
                num_workers=pg.num_fragments,
                num_peers=len(pg.fragments[wid].peer_fragments()),
                fleet_avg_round_time=fleet["avg_round"])
            if emit is None:
                ds = policy.delay(view)
            else:
                ds, why = policy.decide(view)
                action = ("start" if ds <= 0 else
                          "suspend" if math.isinf(ds) else "wake_scheduled")
                emit(obs_events.DS_DECISION, rounds, ds=ds, action=action,
                     eta=view.eta, t_pred=view.t_pred, s_pred=view.s_pred,
                     rmin=view.rmin, rmax=view.rmax,
                     t_idle=view.idle_time,
                     reason=why.pop("reason", ""), **why)
            if ds > 0 and not math.isinf(ds):
                time.sleep(min(ds * time_scale, 0.01))
                accumulated = drain_in()
                observe_arrivals(accumulated)
                batch.extend(accumulated)
        run_round(batch)

    ctx = engine.context
    # dense contexts ship their state as one contiguous array: pickling a
    # node -> scalar dict costs a Python-level lookup per node on both
    # ends, which dominated the run tail at bench sizes
    final_values = (("__dense__", ctx.export_state())
                    if hasattr(ctx, "export_state") else dict(ctx.values))
    control.put(("done", wid, _WorkerReport(
        wid=wid, rounds=rounds, work=stats["work"],
        messages_sent=stats["messages"], bytes_sent=stats["bytes"],
        values=final_values, scratch=dict(ctx.scratch),
        events=events,
        shm_batches=pool.sent_batches if pool is not None else 0,
        shm_bytes=pool.sent_bytes if pool is not None else 0,
        shm_fallbacks=pool.fallbacks if pool is not None else 0)))
    # no pool.close() here: numpy views into the slabs may still be alive
    # (closing would raise BufferError); process exit unmaps, and the
    # master's arena sweep owns the unlink


class MultiprocessRuntime:
    """Run a PIE program across real OS processes.

    The fault-tolerance keyword arguments mirror
    :class:`~repro.runtime.threaded.ThreadedRuntime`; all default to off,
    leaving the legacy path untouched.  ``snapshot`` (or
    :meth:`seed_from_snapshot`) starts the run from a consistent
    Chandy-Lamport checkpoint instead of PEval.
    """

    def __init__(self, program: PIEProgram, pg: PartitionedGraph, query: Any,
                 mode: str = "AP", timeout: float = 120.0,
                 time_scale: float = 0.001,
                 observer: Optional[Any] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 checkpoint_interval: Optional[float] = None,
                 heartbeat_interval: float = 0.02,
                 heartbeat_timeout: float = 1.0,
                 detect_failures: Optional[bool] = None,
                 snapshot: Optional[GlobalSnapshot] = None,
                 vectorized: bool = False,
                 staleness_bound: Optional[int] = None,
                 hsync_policy: Optional[HsyncPolicy] = None,
                 transport: Optional[str] = None,
                 slab_bytes: int = 1 << 20,
                 respawn_budget: int = 0):
        if mode not in _MODES:
            raise RuntimeConfigError(
                f"multiprocess runtime supports {_MODES}, got {mode!r}")
        if transport is None:
            transport = os.environ.get("REPRO_MP_TRANSPORT", "shm")
        if transport not in _TRANSPORTS:
            raise RuntimeConfigError(
                f"multiprocess transport must be one of {_TRANSPORTS}, "
                f"got {transport!r}")
        #: requested data plane; :attr:`transport_used` reports what the
        #: last run actually got (shm falls back to queue where
        #: shared memory is unavailable)
        self.transport = transport
        self.slab_bytes = slab_bytes
        self.transport_used: Optional[str] = None
        #: SSP bound c (same default as make_policy) and the master-side
        #: Hsync switching heuristic; both inert for the other modes
        self.staleness_bound = 1 if staleness_bound is None \
            else staleness_bound
        self.hsync = (hsync_policy if hsync_policy is not None
                      else HsyncPolicy()) if mode == "Hsync" else None
        self.program = program
        self.pg = pg
        self.query = query
        self.mode = mode
        self.vectorized = vectorized
        self.timeout = timeout
        self.time_scale = time_scale
        self.obs = observer
        self._started = 0.0
        self.fault_plan = fault_plan
        if detect_failures is None:
            detect_failures = (fault_plan is not None
                               or checkpoint_interval is not None)
        self.detect_failures = detect_failures
        self.checkpoint_interval = checkpoint_interval
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self._ft = (fault_plan is not None or detect_failures
                    or checkpoint_interval is not None)
        #: structured failure log (heartbeat misses, detected deaths)
        self.failures: List[FailureEvent] = []
        #: the most recent complete live checkpoint, or None
        self.last_checkpoint: Optional[GlobalSnapshot] = None
        #: surgical-recovery rung 1: how many in-place respawns each
        #: worker slot may spend before a death degrades to whole-run
        #: rollback.  0 (the default) disables the rung entirely.
        self.respawn_budget = respawn_budget
        #: one record per successful in-place respawn of the last run
        self.respawns: List[Dict[str, Any]] = []
        self._snapshot: Optional[GlobalSnapshot] = None
        if snapshot is not None:
            self.seed_from_snapshot(snapshot)

    def seed_from_snapshot(self, snapshot: GlobalSnapshot) -> None:
        """Start the next :meth:`run` from a consistent checkpoint."""
        if snapshot.num_workers_recorded != self.pg.num_fragments:
            raise SnapshotError(
                f"snapshot covers {snapshot.num_workers_recorded} workers, "
                f"runtime has {self.pg.num_fragments}")
        self._snapshot = snapshot

    def _ft_config(self, wid: int) -> Optional[_FTConfig]:
        if not self._ft and self._snapshot is None:
            return None
        cfg = _FTConfig(fault_plan=self.fault_plan,
                        heartbeat_interval=(self.heartbeat_interval
                                            if self.detect_failures else 0.0))
        if self._snapshot is not None:
            state = self._snapshot.worker_states[wid]
            cfg.seed_values = state.values
            cfg.seed_scratch = state.scratch
            cfg.seed_messages = self._snapshot.buffered_messages(wid)
        return cfg

    def _respawn_config(self, wid: int, incarnation: int,
                        plan: Optional[FaultPlan], sent_base: int,
                        recv_base: int) -> _FTConfig:
        """Config for an in-place replacement of a dead worker.

        Seeds the fragment from the last *complete* checkpoint when one
        recorded this worker (the fast path); otherwise the replacement
        re-runs PEval from scratch — correct either way under monotone
        IncEval, because the surviving peers re-ship their full border at
        rejoin (Theorem 2: any consistent cut restarts any subset).
        """
        cfg = _FTConfig(fault_plan=plan,
                        heartbeat_interval=(self.heartbeat_interval
                                            if self.detect_failures
                                            else 0.0),
                        incarnation=incarnation,
                        sent_base=sent_base, recv_base=recv_base)
        snap = self.last_checkpoint
        if (snap is not None and snap.complete
                and wid in snap.worker_states):
            state = snap.fragment_state(wid)
            cfg.seed_values = state.values
            cfg.seed_scratch = state.scratch
            cfg.seed_messages = snap.buffered_messages(wid)
        return cfg

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        m = self.pg.num_fragments
        ctx = mp.get_context("fork") if hasattr(mp, "get_context") else mp
        inboxes = [ctx.Queue() for _ in range(m)]
        control = ctx.Queue()
        commands = [_CommandPipe(ctx) for _ in range(m)]
        # data plane: pre-create the full channel mesh before forking, so
        # worker attachment can never race slab creation.  Any failure
        # (no /dev/shm, exhausted segments) falls back to the queue plane.
        arena = None
        if self.transport == "shm" and m > 1:
            try:
                arena = SlabArena(m, self.slab_bytes)
            except Exception:  # pragma: no cover - platform-dependent
                arena = None
        self.transport_used = "shm" if arena is not None else "queue"
        run_id = arena.run_id if arena is not None else None
        policy_conf = {"staleness_bound": self.staleness_bound,
                       "switch_cost": (self.hsync.switch_cost
                                       if self.hsync is not None else 1.0)}
        self.respawns = []
        procs = [ctx.Process(
            target=_worker_main,
            args=(wid, self.mode, self.program, self.pg, self.query,
                  inboxes, control, commands[wid], self.time_scale,
                  self.obs is not None, self._ft_config(wid),
                  self.vectorized, policy_conf, run_id),
            daemon=True) for wid in range(m)]

        def spawn_replacement(wid: int, incarnation: int,
                              plan: Optional[FaultPlan],
                              sent_base: int, recv_base: int) -> None:
            # a fresh command pipe: the dead incarnation's pipe may hold
            # undelivered commands the replacement must never see
            commands[wid].close()
            commands[wid] = _CommandPipe(ctx)
            cfg = self._respawn_config(wid, incarnation, plan,
                                       sent_base, recv_base)
            p = ctx.Process(
                target=_worker_main,
                args=(wid, self.mode, self.program, self.pg, self.query,
                      inboxes, control, commands[wid], self.time_scale,
                      self.obs is not None, cfg, self.vectorized,
                      policy_conf, run_id),
                daemon=True)
            p.start()
            procs[wid] = p

        started = time.monotonic()
        self._started = started
        for p in procs:
            p.start()
        try:
            reports = self._master_loop(m, control, commands, procs,
                                        inboxes=inboxes, arena=arena,
                                        spawn=spawn_replacement)
        finally:
            for cq in commands:
                try:
                    cq.put(("stop",))
                except Exception:  # pragma: no cover
                    pass
            for p in procs:
                p.join(timeout=5.0)
            for p in procs:
                if p.is_alive():  # pragma: no cover - defensive
                    p.terminate()
                    p.join(timeout=1.0)
                if p.is_alive() and hasattr(p, "kill"):  # pragma: no cover
                    p.kill()
                    p.join(timeout=1.0)
            # drop the queues' feeder threads without blocking on buffered
            # items, so an aborted run leaks neither threads nor zombies
            for q in [*inboxes, control, *commands]:
                try:
                    q.cancel_join_thread()
                    q.close()
                except Exception:  # pragma: no cover
                    pass
            # unlink every slab on both the clean path and the
            # terminate/crash path — runs after the workers are joined or
            # killed, so no /dev/shm segment outlives the run
            if arena is not None:
                arena.unlink_all()
        makespan = time.monotonic() - started
        return self._assemble(reports, makespan)

    def _emit_master(self, type_: str, **payload) -> None:
        """Master-side observability record (barrier / terminate probe)."""
        if self.obs is not None:
            self.obs.log.emit(type_, time.monotonic() - self._started,
                              **payload)

    # ------------------------------------------------------------------
    def _master_loop(self, m: int, control: mp.Queue,
                     commands: List["_CommandPipe"],
                     procs: Optional[List] = None,
                     inboxes: Optional[List] = None,
                     arena: Optional[SlabArena] = None,
                     spawn=None) -> Dict[int, _WorkerReport]:
        deadline = time.monotonic() + self.timeout
        # termination ledger v3: per-directed-channel conservation books.
        # ``sent[(s, d)]`` counts logical entries announced by s for d,
        # ``recv[(s, d)]`` entries d reported drained from s.  Channel
        # granularity is what makes surgical recovery possible: a takeover
        # settles exactly the dead worker's channels and leaves everyone
        # else's accounting untouched.
        sent: Dict[Tuple[int, int], int] = {}
        recv: Dict[Tuple[int, int], int] = {}
        #: current incarnation per worker slot; ledger reports from an
        #: older incarnation arrive late and are dropped (their channels
        #: were already equalized at takeover)
        era = [0] * m
        inactive = [False] * m
        rounds = [1] * m
        rates = [0.0] * m
        durations = [1e-3] * m
        reports: Dict[int, _WorkerReport] = {}
        acks_pending = 0
        ack_count = 0
        got_wait = False
        #: BSP barrier membership: which workers answered the current
        #: superstep (a set, not a counter, so a takeover can enrol the
        #: replacement without double-counting the dead incarnation)
        steppers = set(range(m))  # PEval counts as the 0th superstep
        step_activity = True
        step_no = 0
        budget = [self.respawn_budget] * m
        plan_now = self.fault_plan
        qacks: set = set()
        qtarget = [-1]
        detector = (FailureDetector(m, self.heartbeat_interval,
                                    self.heartbeat_timeout,
                                    now=time.monotonic())
                    if self.detect_failures else None)
        ckpt = (LiveCheckpointer(self.checkpoint_interval, m)
                if self.checkpoint_interval is not None else None)
        last_ft_check = 0.0
        # per-epoch channel accounting: the cut is flushed only when every
        # un-tokened (pre-record) message has been received or amended
        ckpt_sent: Dict[int, int] = {}
        ckpt_recv: Dict[int, int] = {}
        ckpt_amend = [0]

        def in_flight() -> int:
            total = 0
            for chan, n in sent.items():
                d = n - recv.get(chan, 0)
                if d > 0:
                    # clamped per channel: a post-takeover drain race can
                    # over-credit one channel, which must not hide real
                    # in-flight traffic elsewhere
                    total += d
            return total

        def broadcast(msg) -> None:
            for cq in commands:
                cq.put(msg)

        def collect_reports() -> Dict[int, _WorkerReport]:
            while len(reports) < m:
                try:
                    evt = control.get(timeout=5.0)
                except queue_mod.Empty:
                    missing = [w for w in range(m) if w not in reports]
                    raise TerminationError(
                        f"workers {missing} never reported back after the "
                        f"stop broadcast") from None
                if evt[0] == "done":
                    reports[evt[1]] = evt[2]
            return reports

        def accept_late(wid: int, token: int, msg) -> None:
            # paper: "messages that arrive late without the token are
            # added to the last snapshot" — match by the receiver's token
            current_snap = (ckpt.current.snapshot
                            if ckpt.current is not None else None)
            for coord_snap in (current_snap, ckpt.last):
                if coord_snap is not None and coord_snap.token == token:
                    coord_snap.channel_messages.setdefault(
                        wid, []).append(msg)
                    if coord_snap is current_snap:
                        # conservation is counted in logical entries,
                        # matching the workers' sent/recv counters
                        ckpt_amend[0] += len(msg)
                    return

        def handle(evt) -> str:
            """Dispatch one control event; shared by the main loop and
            the takeover pump so no event class is ever starved."""
            nonlocal ack_count, got_wait, step_activity
            kind = evt[0]
            if kind == "sent":
                if len(evt) > 3 and evt[3] != era[evt[1]]:
                    return kind  # dead incarnation's backlog: settled
                for dst, n in evt[2].items():
                    key = (evt[1], dst)
                    sent[key] = sent.get(key, 0) + n
            elif kind == "drained":
                if len(evt) > 3 and evt[3] != era[evt[1]]:
                    return kind
                for src, n in evt[2].items():
                    key = (src, evt[1])
                    recv[key] = recv.get(key, 0) + n
            elif kind == "quarantined":
                if evt[2] == qtarget[0]:
                    qacks.add(evt[1])
            elif kind == "inactive":
                inactive[evt[1]] = True
            elif kind == "active":
                inactive[evt[1]] = False
                got_wait = True
            elif kind == "round":
                _, wid, r, dur, rate, eta = evt
                rounds[wid] = r
                durations[wid] = dur
                rates[wid] = rate
                if self.hsync is not None:
                    # feed the switching heuristic; only eta and the
                    # duration matter to on_round_complete
                    self.hsync.on_round_complete(WorkerView(
                        wid=wid, round=r, eta=eta, rmin=min(rounds),
                        rmax=max(rounds), idle_time=0.0,
                        now=time.monotonic() - self._started,
                        t_pred=dur, s_pred=rate, fleet_avg_rate=0.0,
                        num_workers=m), dur)
            elif kind == "heartbeat":
                if detector is not None:
                    detector.beat(evt[1], time.monotonic(),
                                  evt[2] if len(evt) > 2 else 0)
            elif kind == "ckpt_state":
                _, wid, token, values, scratch, pre, sent_n, recv_n = evt
                if (ckpt is not None and ckpt.current is not None
                        and ckpt.current.token == token):
                    ckpt.current.record_state(wid, values, scratch, pre)
                    ckpt_sent[wid] = sent_n
                    # the recorded buffer contents count as received
                    ckpt_recv[wid] = recv_n
            elif kind == "ckpt_late":
                if ckpt is not None:
                    accept_late(evt[1], evt[2], evt[3])
            elif kind == "ack":
                ack_count += 1
            elif kind == "wait":
                got_wait = True
                ack_count += 1
            elif kind == "error":
                detail = f"worker {evt[1]} crashed: {evt[2]}"
                if len(evt) > 3 and evt[3]:
                    detail += ("\n--- worker traceback ---\n"
                               + str(evt[3]).rstrip())
                raise TerminationError(detail)
            elif kind == "step-done":
                steppers.add(evt[1])
                if evt[2] > 0:
                    step_activity = True
            elif kind == "done":
                reports[evt[1]] = evt[2]
            return kind

        def pump(timeout_s: float, until) -> bool:
            """Drain control events until ``until()`` holds (True) or the
            takeover-step timeout expires (False)."""
            end = time.monotonic() + timeout_s
            while not until():
                if time.monotonic() > deadline:
                    raise TerminationError(
                        f"multiprocess run exceeded {self.timeout}s "
                        f"(mode={self.mode}, during takeover)")
                if time.monotonic() > end:
                    return False
                try:
                    evt = control.get(timeout=0.005)
                except queue_mod.Empty:
                    continue
                handle(evt)
            return True

        def try_takeover(s) -> bool:
            """Degradation-ladder rung 1: in-place respawn with fragment
            takeover.  Returns True when the replacement is running and
            rejoined; False hands the failure to the next rung (whole-run
            rollback via WorkerCrashedError)."""
            nonlocal acks_pending, ack_count, got_wait, plan_now
            w = s.wid
            t0 = time.monotonic()
            t = t0 - self._started

            def degrade(reason: str) -> bool:
                self._emit_master(obs_events.DEGRADE, wid=w,
                                  frm="respawn", to="rollback",
                                  reason=reason)
                return False

            if spawn is None or inboxes is None:
                return False  # respawn machinery not plumbed in
            if budget[w] <= 0:
                if self.respawn_budget > 0:
                    return degrade("respawn budget exhausted")
                return False  # rung disabled: no DEGRADE noise
            if not getattr(self.program, "reship_capable", True):
                return degrade("program aggregation is not idempotent")
            if m == 1:
                return degrade("no surviving peers to re-ship from")
            # 1. make sure the dead incarnation is really gone: its slab
            # cursors and queue feeder must never touch the wire again
            if procs is not None:
                p = procs[w]
                if p.is_alive():
                    p.terminate()
                    p.join(1.0)
                    if p.is_alive() and hasattr(p, "kill"):
                        p.kill()
                        p.join(1.0)
                    if p.is_alive():  # pragma: no cover - defensive
                        return degrade("old incarnation would not die")
            # 2. quarantine: survivors take a final drain of everything
            # the dead worker got onto the wire, fence its rings, and
            # mark their queue lane with a flush sentinel.  Only *live*
            # peers owe an acknowledgement — and one may die mid-pump
            # (its own scheduled crash, a cascading fault): it can never
            # ack, so stop waiting for it rather than timing the whole
            # takeover out.  Its own takeover runs next, as soon as the
            # failure detector notices; channel bookkeeping stays sound
            # because step 5 equalizes the dead pair's channels again.
            peers = [d for d in range(m) if d != w]
            qacks.clear()
            qtarget[0] = w
            live = {d for d in peers
                    if procs is None or procs[d].is_alive()}
            for d in live:
                commands[d].put(("quarantine", w))

            def acked_or_dead() -> bool:
                if procs is not None:
                    for d in list(live - qacks):
                        if not procs[d].is_alive():
                            live.discard(d)
                return live <= qacks

            ok = pump(5.0, acked_or_dead)
            qtarget[0] = -1
            if not ok:
                return degrade("quarantine acknowledgement timed out "
                               f"(missing {sorted(live - qacks)})")
            # 3. reconcile the queue plane: drain the dead inbox until
            # every live survivor's sentinel arrived (mp.Queue is FIFO
            # per producer, so the sentinel proves no earlier message
            # from that survivor can surface later), crediting the books
            # for every data message the dead worker never drained.  A
            # survivor that dies after acking is dropped here too — its
            # feeder thread died with it, so its lane can produce
            # nothing further and the sentinel may simply never arrive.
            pending = set(live)
            end = time.monotonic() + 5.0
            while pending and time.monotonic() < end:
                if procs is not None:
                    for d in list(pending):
                        if not procs[d].is_alive():
                            pending.discard(d)
                try:
                    msg = inboxes[w].get(timeout=0.01)
                except queue_mod.Empty:
                    continue
                if (isinstance(msg, tuple) and len(msg) == 2
                        and msg[0] == "__qflush__"):
                    pending.discard(msg[1])
                else:
                    key = (msg.src, w)
                    recv[key] = recv.get(key, 0) + len(msg)
            if pending:
                return degrade("queue-plane flush timed out")
            # 4. retire the dead incarnation's rings: the generation bump
            # makes any torn or stale endpoint state unreadable
            if arena is not None:
                arena.reset_worker(w)
            # 5. equalize the ledger.  Outbound (w, d): lower sent to
            # what was actually drained — announced-but-lost traffic died
            # with the worker.  Inbound (d, w): raise recv to sent — the
            # survivors' announced traffic was drained above, discarded
            # with the rings, or forgone with the delayed queue; either
            # way it is off the wire.  The post-equalize sums seed the
            # replacement's cumulative checkpoint counters so epoch
            # conservation still balances across incarnations.
            for d in peers:
                recv[(d, w)] = sent.get((d, w), 0)
                sent[(w, d)] = recv.get((w, d), 0)
            sent_base = sum(sent.get((w, d), 0) for d in peers)
            recv_base = sum(recv.get((d, w), 0) for d in peers)
            # 6. an open checkpoint epoch can never complete (the dead
            # worker will never record); abort it, keep the last one
            if ckpt is not None:
                ckpt.abort_current(time.monotonic())
                ckpt_sent.clear()
                ckpt_recv.clear()
                ckpt_amend[0] = 0
            # 7. respawn: disarm only the crash that fired, bump the
            # incarnation, seed from the last complete checkpoint
            budget[w] -= 1
            if plan_now is not None:
                plan_now = plan_now.without_crash(w)
            incarnation = (detector.respawn(w, time.monotonic())
                           if detector is not None else era[w] + 1)
            era[w] = incarnation
            snap = self.last_checkpoint
            seeded = (snap is not None and snap.complete
                      and w in snap.worker_states)
            spawn(w, incarnation, plan_now, sent_base, recv_base)
            # 8. master bookkeeping: the replacement starts fresh
            inactive[w] = False
            rounds[w] = 1
            durations[w] = 1e-3
            rates[w] = 0.0
            steppers.add(w)  # BSP: it joins at the next barrier
            acks_pending = 0
            ack_count = 0
            got_wait = False
            # 9. rejoin: live survivors rebind the reset rings and
            # re-ship their full border through the normal transport
            # seam — everything the replacement's checkpoint state (or
            # fresh PEval) cannot re-derive on its own.  A peer that
            # died mid-takeover re-ships nothing here; when its own
            # takeover runs, both replacements restart from the same
            # consistent cut (or both from PEval, whose output is the
            # full border), which is exactly the Theorem 2 condition.
            for d in live:
                commands[d].put(("rejoin", w))
            duration = time.monotonic() - t0
            self.respawns.append({
                "wid": w, "incarnation": incarnation, "seeded": seeded,
                "token": snap.token if seeded else None, "takeover": True,
                "t": t, "duration": duration, "budget_left": budget[w]})
            self._emit_master(obs_events.WORKER_RESPAWN, wid=w,
                              incarnation=incarnation, seeded=seeded,
                              token=snap.token if seeded else None,
                              budget_left=budget[w])
            self._emit_master(obs_events.FRAGMENT_TAKEOVER, wid=w,
                              incarnation=incarnation,
                              reshipped=len(live),
                              duration=duration)
            return True

        def ft_check() -> None:
            nonlocal last_ft_check
            now = time.monotonic()
            if now - last_ft_check < 0.005:
                return
            last_ft_check = now
            t = now - self._started
            if ckpt is not None:
                coord = ckpt.maybe_start(now)
                if coord is not None:
                    ckpt_sent.clear()
                    ckpt_recv.clear()
                    ckpt_amend[0] = 0
                    broadcast(("checkpoint", coord.token))
                # the cut is usable once every pre-record message is on
                # the receive side (in a recorded buffer, a reported
                # late amendment, or a processed round) — the master's
                # raw in_flight counter would rarely be zero mid-run.
                # Clamped at zero: a post-takeover drain race can only
                # over-credit the receive side, and a genuinely late
                # message still lands in the snapshot via ckpt_late.
                residual = (max(sum(ckpt_sent.values())
                                - sum(ckpt_recv.values()) - ckpt_amend[0],
                                0)
                            if len(ckpt_sent) == m else 1)
                snap = ckpt.maybe_complete(now, residual)
                if snap is not None:
                    self.last_checkpoint = snap
                    self._emit_master(
                        obs_events.CHECKPOINT, token=snap.token,
                        workers=snap.num_workers_recorded,
                        channel_messages=snap.num_channel_messages)
            if detector is None:
                return
            alive = (None if procs is None
                     else lambda i: procs[i].is_alive())
            for s in detector.check(now, alive=alive):
                event = FailureEvent(t=t, kind=s.kind, wid=s.wid,
                                     detail=f"age={s.age:.3f}s")
                self.failures.append(event)
                if not s.fatal:
                    self._emit_master(obs_events.HEARTBEAT_MISS,
                                      wid=s.wid, age=s.age)
                    continue
                self._emit_master(obs_events.FAILURE_DETECTED, wid=s.wid,
                                  reason=s.kind, age=s.age)
                # degradation ladder, rung 1: try an in-place respawn
                # with fragment takeover before surfacing the crash
                if not try_takeover(s):
                    raise WorkerCrashedError(
                        wid=s.wid, reason=s.kind, detected_at=t,
                        checkpoint=ckpt.last if ckpt is not None else None,
                        failures=self.failures, detection_latency=s.age)

        def start_superstep() -> None:
            nonlocal step_activity, step_no
            steppers.clear()
            step_activity = False
            step_no += 1
            self._emit_master(obs_events.BARRIER, step=step_no)
            broadcast(("superstep",))

        def broadcast_fleet() -> None:
            live_rates = [r for r in rates if r > 0]
            # bounds over *active* workers: a finished worker must not pin
            # r_min, or an SSP/Hsync-gated worker would deadlock waiting
            # for rounds that will never come (same rule as WorkerState.
            # pending in the other runtimes)
            active = [rounds[i] for i in range(m) if not inactive[i]]
            base = active if active else rounds
            fleet = {"rmin": min(base), "rmax": max(base),
                     "avg_rate": (sum(live_rates) / len(live_rates)
                                  if live_rates else 0.0),
                     "avg_round": sum(durations) / len(durations)}
            if self.hsync is not None:
                fleet["hmode"] = self.hsync.mode
                fleet["switches"] = self.hsync.switches
            # telemetry, not protocol: skip a worker whose pipe is full
            # rather than block the master behind a stalled consumer
            for cq in commands:
                cq.put_nowait_drop(("fleet", fleet))

        last_fleet = 0.0
        while True:
            if time.monotonic() > deadline:
                raise TerminationError(
                    f"multiprocess run exceeded {self.timeout}s "
                    f"(mode={self.mode})")
            if self._ft:
                ft_check()
            try:
                # poll faster once every worker looks inactive: the
                # remaining traffic is the probe/ack dance, and a 10ms
                # block per hop would dominate short runs' tails
                evt = control.get(
                    timeout=0.002 if all(inactive) else 0.01)
            except queue_mod.Empty:
                evt = None
            if evt is not None:
                kind = handle(evt)
                if kind == "done" and len(reports) == m:
                    return reports
                if kind not in ("heartbeat", "ckpt_state", "ckpt_late"):
                    # keep draining control before deciding anything --
                    # but pure fault-tolerance telemetry must fall
                    # through, or a steady heartbeat stream (one event
                    # every few ms) keeps the queue non-empty forever
                    # and starves the termination probe below
                    continue

            if self.mode == "BSP":
                if acks_pending:
                    if ack_count == acks_pending:
                        acks_pending = 0
                        self._emit_master(
                            obs_events.TERMINATE_PROBE,
                            result="ack" if not got_wait else "wait")
                        if not got_wait and in_flight() == 0:
                            broadcast(("stop",))
                            return collect_reports()
                        start_superstep()
                elif len(steppers) == m:
                    if not step_activity and in_flight() == 0:
                        # a quiet barrier is necessary but no longer
                        # sufficient: drain-time crediting means a
                        # checkpoint drain may have parked messages in a
                        # worker's carry after it answered an empty
                        # superstep — probe before stopping
                        ack_count = 0
                        got_wait = False
                        acks_pending = m
                        broadcast(("probe",))
                    else:
                        start_superstep()
                continue

            # async modes that consult fleet state get periodic broadcasts
            if (self.mode in ("AAP", "SSP", "Hsync")
                    and time.monotonic() - last_fleet > 0.02):
                broadcast_fleet()
                last_fleet = time.monotonic()

            if acks_pending:
                if ack_count == acks_pending:
                    acks_pending = 0
                    self._emit_master(
                        obs_events.TERMINATE_PROBE,
                        result="ack" if not got_wait else "wait")
                    if not got_wait and in_flight() == 0 \
                            and all(inactive):
                        broadcast(("stop",))
                        return collect_reports()
                continue

            if all(inactive) and in_flight() == 0:
                # the paper's terminate broadcast: probe every worker
                ack_count = 0
                got_wait = False
                acks_pending = m
                broadcast(("probe",))

    # ------------------------------------------------------------------
    def _assemble(self, reports: Dict[int, _WorkerReport],
                  makespan: float) -> RunResult:
        # rebuild contexts in the master and inject the workers' states
        engine = Engine(self.program, self.pg, self.query,
                        vectorized=self.vectorized)
        for wid, report in reports.items():
            vals = report.values
            if (isinstance(vals, tuple) and len(vals) == 2
                    and vals[0] == "__dense__"):
                engine.contexts[wid].import_state(vals[1])
            else:
                engine.contexts[wid].values = vals
            engine.contexts[wid].scratch = report.scratch
            engine.contexts[wid].changed = set()
        answer = engine.assemble()
        workers = [WorkerMetrics(
            wid=wid, rounds=rep.rounds, messages_sent=rep.messages_sent,
            bytes_sent=rep.bytes_sent, work_done=rep.work)
            for wid, rep in sorted(reports.items())]
        extras: Dict[str, Any] = {"transport": {
            "kind": self.transport_used or self.transport,
            "shm_batches": sum(r.shm_batches for r in reports.values()),
            "shm_bytes": sum(r.shm_bytes for r in reports.values()),
            "queue_fallbacks": sum(r.shm_fallbacks
                                   for r in reports.values())}}
        if self.respawns:
            extras["respawns"] = [dict(r) for r in self.respawns]
        if self.obs is not None:
            self._merge_observations(reports)
            registry_from_workers(workers, into=self.obs.metrics)
            metrics = RunMetrics.from_registry(self.obs.metrics,
                                               makespan=makespan)
            extras["obs"] = self.obs
        else:
            metrics = RunMetrics.from_workers(workers, makespan=makespan)
        return RunResult(answer=answer, mode=f"{self.mode}-multiprocess",
                         metrics=metrics,
                         rounds=[reports[w].rounds for w in range(
                             self.pg.num_fragments)],
                         extras=extras)

    def _merge_observations(self, reports: Dict[int, _WorkerReport]) -> None:
        """Fold worker-process event records into the master's observer.

        Worker timestamps are absolute monotonic readings (fork shares the
        clock), normalised here to run-relative time; the merged log is
        re-sorted so records from different processes interleave by time.
        """
        reg = self.obs.metrics
        for _, report in sorted(reports.items()):
            for type_, t_abs, wid, round_no, payload in report.events:
                t = max(t_abs - self._started, 0.0)
                self.obs.log.emit(type_, t, wid=wid, round=round_no,
                                  **payload)
                if type_ == obs_events.ROUND_END:
                    reg.histogram("round_duration", wid).observe(
                        payload.get("duration", 0.0))
                elif type_ == obs_events.ROUND_START:
                    if payload.get("kind") == "inceval":
                        reg.histogram("eta_at_drain", wid).observe(
                            payload.get("batches", 0))
                elif type_ == obs_events.MSG_SEND:
                    reg.counter("wire_bytes").inc(payload.get("bytes", 0))
                elif type_ == obs_events.MSG_DELIVER:
                    reg.histogram("buffer_depth", wid).observe(
                        payload.get("depth", 0))
                elif type_ == obs_events.DS_DECISION:
                    ds = payload.get("ds", 0.0)
                    if math.isinf(ds):
                        reg.counter("ds_suspend", wid).inc()
                    else:
                        reg.histogram("ds_chosen", wid).observe(ds)
        self.obs.log.sort()
