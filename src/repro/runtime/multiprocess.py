"""Multiprocessing runtime: true parallel execution across processes.

Python's GIL prevents the threaded runtime from showing real speed-ups on
compute-heavy workloads, so this runtime places each virtual worker in its
own OS process (the repro band's "needs multiprocessing" note).  Fragments,
program and query are shipped once at start; designated messages travel
through per-worker ``multiprocessing.Queue``s; the master process runs the
paper's termination protocol (inactive flags, in-flight accounting, and an
explicit probe/ack round — the ``terminate``/``ack``-or-``wait`` exchange).

Three modes are supported:

- ``"AP"``  — fully asynchronous; a worker runs whenever its inbox is
  non-empty.
- ``"BSP"`` — master-coordinated supersteps (a real distributed barrier).
- ``"AAP"`` — asynchronous with delay stretches computed from the local
  predictors plus *fleet state broadcasts* from the master (round bounds
  and arrival rates are slightly stale, which is faithful: the paper's
  workers also learn ``r_min``/``r_max`` through status exchange).

Everything shipped must be picklable (the built-in PIE programs are).
"""

from __future__ import annotations

import math
import multiprocessing as mp
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.delay import AAPPolicy, WorkerView
from repro.core.engine import Engine
from repro.core.pie import PIEProgram
from repro.core.result import RunResult
from repro.errors import RuntimeConfigError, TerminationError
from repro.obs import events as obs_events
from repro.partition.fragment import PartitionedGraph
from repro.runtime.metrics import (RunMetrics, WorkerMetrics,
                                   registry_from_workers)

_MODES = ("AP", "BSP", "AAP")


@dataclass
class _WorkerReport:
    """Final statistics a worker ships back to the master."""

    wid: int
    rounds: int
    work: int
    messages_sent: int
    bytes_sent: int
    values: Dict[Any, Any]
    scratch: Dict[str, Any]
    #: observability records collected in the worker process, as
    #: (type, absolute-monotonic-time, wid, round, payload) tuples
    events: List[Tuple] = field(default_factory=list)


class _SingleFragmentEngine:
    """Engine restricted to the one fragment living in this process."""

    def __init__(self, program: PIEProgram, pg: PartitionedGraph,
                 query: Any, wid: int):
        # Engine builds contexts for every fragment; acceptable at these
        # scales and keeps the shipping path identical to the other
        # runtimes.  Only contexts[wid] is ever touched in this process.
        self._engine = Engine(program, pg, query)
        self.wid = wid

    def peval(self):
        return self._engine.run_peval(self.wid)

    def inceval(self, batches, round_no):
        return self._engine.run_inceval(self.wid, batches,
                                        round_no=round_no)

    @property
    def context(self):
        return self._engine.contexts[self.wid]


def _drain(inbox: mp.Queue, first=None, wait: float = 0.0) -> List[Any]:
    """Collect everything currently in ``inbox`` (plus ``first``)."""
    batch = [] if first is None else [first]
    if wait > 0 and not batch:
        try:
            batch.append(inbox.get(timeout=wait))
        except queue_mod.Empty:
            return batch
    while True:
        try:
            batch.append(inbox.get_nowait())
        except queue_mod.Empty:
            return batch


def _worker_main(wid: int, mode: str, program: PIEProgram,
                 pg: PartitionedGraph, query: Any,
                 inboxes: List[mp.Queue], control: mp.Queue,
                 command: mp.Queue, time_scale: float,
                 observe: bool = False) -> None:
    """Entry point of one worker process."""
    try:
        _worker_loop(wid, mode, program, pg, query, inboxes, control,
                     command, time_scale, observe)
    except Exception as exc:  # pragma: no cover - surfaced by master
        control.put(("error", wid, repr(exc)))


def _send_all(wid: int, messages, inboxes: List[mp.Queue],
              control: mp.Queue, stats: Dict[str, int],
              emit=None, round_no: int = 0) -> None:
    if messages:
        # announce before the messages become receivable, so the master's
        # in-flight counter can only over-estimate, never under-estimate
        control.put(("sent", wid, len(messages)))
    for msg in messages:
        if emit is not None:
            emit(obs_events.MSG_SEND, round_no, dst=msg.dst,
                 bytes=msg.size_bytes, seq=msg.seq)
        inboxes[msg.dst].put(msg)
        stats["messages"] += 1
        stats["bytes"] += msg.size_bytes


def _worker_loop(wid, mode, program, pg, query, inboxes, control, command,
                 time_scale, observe=False) -> None:
    engine = _SingleFragmentEngine(program, pg, query, wid)
    inbox = inboxes[wid]
    stats = {"messages": 0, "bytes": 0, "work": 0}
    rounds = 0
    policy = AAPPolicy() if mode == "AAP" else None
    fleet: Dict[str, Any] = {"rmin": 0, "rmax": 0, "avg_rate": 0.0,
                             "avg_round": 1e-3}
    last_round_dur = 1e-4
    last_arrival = None
    rate = 0.0
    events: List[Tuple] = []

    # worker-local observability hook: records are collected here and
    # shipped back to the master in the final report (timestamps are
    # absolute monotonic; the master normalises them to run-relative)
    emit = None
    if observe:
        def emit(type_, round_no, **payload):
            events.append((type_, time.monotonic(), wid, round_no, payload))

    def status_change(frm, to, round_no) -> None:
        if emit is not None:
            emit(obs_events.STATUS_CHANGE, round_no, frm=frm, to=to)

    started0 = time.monotonic()
    if emit is not None:
        emit(obs_events.ROUND_START, 0, kind="peval", batches=0)
    out = engine.peval()
    rounds += 1
    stats["work"] += out.work
    if emit is not None:
        emit(obs_events.ROUND_END, 0, kind="peval",
             duration=time.monotonic() - started0, messages=len(out.messages))
    _send_all(wid, out.messages, inboxes, control, stats, emit, 0)
    control.put(("round", wid, rounds, last_round_dur, rate))

    def run_round(batch) -> None:
        nonlocal rounds, last_round_dur
        started = time.monotonic()
        if emit is not None:
            emit(obs_events.ROUND_START, rounds, kind="inceval",
                 batches=len(batch))
        result = engine.inceval(batch, round_no=rounds)
        rounds += 1
        last_round_dur = max(time.monotonic() - started, 1e-6)
        stats["work"] += result.work
        if emit is not None:
            emit(obs_events.ROUND_END, rounds - 1, kind="inceval",
                 duration=last_round_dur, messages=len(result.messages))
        control.put(("delivered", wid, len(batch)))
        _send_all(wid, result.messages, inboxes, control, stats,
                  emit, rounds - 1)
        control.put(("round", wid, rounds, last_round_dur, rate))

    def observe_arrivals(batch) -> None:
        nonlocal last_arrival, rate
        now = time.monotonic()
        for depth, msg in enumerate(batch):
            if last_arrival is not None:
                gap = max(now - last_arrival, 1e-9)
                rate = 0.5 * rate + 0.5 * (1.0 / gap) if rate else 1.0 / gap
            last_arrival = now
            if emit is not None:
                emit(obs_events.MSG_DELIVER, rounds, src=msg.src,
                     bytes=msg.size_bytes, seq=msg.seq, depth=depth + 1)

    inactive_reported = False
    while True:
        # master commands take priority (probe/fleet/superstep/stop)
        try:
            cmd = command.get_nowait()
        except queue_mod.Empty:
            cmd = None
        if cmd is not None:
            kind = cmd[0]
            if kind == "stop":
                break
            if kind == "fleet":
                fleet = cmd[1]
                continue
            if kind == "probe":
                # the paper's terminate broadcast: ack iff still inactive
                empty = inbox.empty()
                control.put(("ack" if empty else "wait", wid))
                continue
            if kind == "superstep":
                batch = _drain(inbox)
                observe_arrivals(batch)
                if batch:
                    run_round(batch)
                else:
                    control.put(("delivered", wid, 0))
                control.put(("step-done", wid, len(batch)))
                continue
        if mode == "BSP":
            time.sleep(0.0005)
            continue

        batch = _drain(inbox, wait=0.002)
        if not batch:
            if not inactive_reported:
                control.put(("inactive", wid))
                inactive_reported = True
                status_change("running", "inactive", rounds)
            continue
        observe_arrivals(batch)
        if inactive_reported:
            control.put(("active", wid))
            inactive_reported = False
            status_change("inactive", "running", rounds)
        if mode == "AAP" and policy is not None:
            view = WorkerView(
                wid=wid, round=rounds, eta=len(batch),
                rmin=fleet["rmin"], rmax=fleet["rmax"],
                idle_time=0.0, now=time.monotonic(),
                t_pred=last_round_dur, s_pred=rate,
                fleet_avg_rate=fleet["avg_rate"],
                num_workers=pg.num_fragments,
                num_peers=len(pg.fragments[wid].peer_fragments()),
                fleet_avg_round_time=fleet["avg_round"])
            if emit is None:
                ds = policy.delay(view)
            else:
                ds, why = policy.decide(view)
                action = ("start" if ds <= 0 else
                          "suspend" if math.isinf(ds) else "wake_scheduled")
                emit(obs_events.DS_DECISION, rounds, ds=ds, action=action,
                     eta=view.eta, t_pred=view.t_pred, s_pred=view.s_pred,
                     rmin=view.rmin, rmax=view.rmax,
                     t_idle=view.idle_time,
                     reason=why.pop("reason", ""), **why)
            if ds > 0 and not math.isinf(ds):
                time.sleep(min(ds * time_scale, 0.01))
                accumulated = _drain(inbox)
                observe_arrivals(accumulated)
                batch.extend(accumulated)
        run_round(batch)

    ctx = engine.context
    control.put(("done", wid, _WorkerReport(
        wid=wid, rounds=rounds, work=stats["work"],
        messages_sent=stats["messages"], bytes_sent=stats["bytes"],
        values=dict(ctx.values), scratch=dict(ctx.scratch),
        events=events)))


class MultiprocessRuntime:
    """Run a PIE program across real OS processes."""

    def __init__(self, program: PIEProgram, pg: PartitionedGraph, query: Any,
                 mode: str = "AP", timeout: float = 120.0,
                 time_scale: float = 0.001,
                 observer: Optional[Any] = None):
        if mode not in _MODES:
            raise RuntimeConfigError(
                f"multiprocess runtime supports {_MODES}, got {mode!r}")
        self.program = program
        self.pg = pg
        self.query = query
        self.mode = mode
        self.timeout = timeout
        self.time_scale = time_scale
        self.obs = observer
        self._started = 0.0

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        m = self.pg.num_fragments
        ctx = mp.get_context("fork") if hasattr(mp, "get_context") else mp
        inboxes = [ctx.Queue() for _ in range(m)]
        control = ctx.Queue()
        commands = [ctx.Queue() for _ in range(m)]
        procs = [ctx.Process(
            target=_worker_main,
            args=(wid, self.mode, self.program, self.pg, self.query,
                  inboxes, control, commands[wid], self.time_scale,
                  self.obs is not None),
            daemon=True) for wid in range(m)]
        started = time.monotonic()
        self._started = started
        for p in procs:
            p.start()
        try:
            reports = self._master_loop(m, control, commands)
        finally:
            for cq in commands:
                try:
                    cq.put(("stop",))
                except Exception:  # pragma: no cover
                    pass
            for p in procs:
                p.join(timeout=5.0)
                if p.is_alive():  # pragma: no cover - defensive
                    p.terminate()
        makespan = time.monotonic() - started
        return self._assemble(reports, makespan)

    def _emit_master(self, type_: str, **payload) -> None:
        """Master-side observability record (barrier / terminate probe)."""
        if self.obs is not None:
            self.obs.log.emit(type_, time.monotonic() - self._started,
                              **payload)

    # ------------------------------------------------------------------
    def _master_loop(self, m: int, control: mp.Queue,
                     commands: List[mp.Queue]) -> Dict[int, _WorkerReport]:
        deadline = time.monotonic() + self.timeout
        in_flight = 0
        inactive = [False] * m
        rounds = [1] * m
        rates = [0.0] * m
        durations = [1e-3] * m
        reports: Dict[int, _WorkerReport] = {}
        acks_pending = 0
        ack_count = 0
        got_wait = False
        stepping = self.mode == "BSP"
        step_done = m  # PEval counts as the 0th superstep
        step_activity = True
        step_no = 0

        def broadcast(msg) -> None:
            for cq in commands:
                cq.put(msg)

        def broadcast_fleet() -> None:
            live_rates = [r for r in rates if r > 0]
            fleet = {"rmin": min(rounds), "rmax": max(rounds),
                     "avg_rate": (sum(live_rates) / len(live_rates)
                                  if live_rates else 0.0),
                     "avg_round": sum(durations) / len(durations)}
            broadcast(("fleet", fleet))

        last_fleet = 0.0
        while True:
            if time.monotonic() > deadline:
                raise TerminationError(
                    f"multiprocess run exceeded {self.timeout}s "
                    f"(mode={self.mode})")
            try:
                evt = control.get(timeout=0.01)
            except queue_mod.Empty:
                evt = None
            if evt is not None:
                kind = evt[0]
                if kind == "sent":
                    in_flight += evt[2]
                elif kind == "delivered":
                    in_flight -= evt[2]
                elif kind == "inactive":
                    inactive[evt[1]] = True
                elif kind == "active":
                    inactive[evt[1]] = False
                    got_wait = True
                elif kind == "round":
                    _, wid, r, dur, rate = evt
                    rounds[wid] = r
                    durations[wid] = dur
                    rates[wid] = rate
                elif kind == "ack":
                    ack_count += 1
                elif kind == "wait":
                    got_wait = True
                    ack_count += 1
                elif kind == "error":
                    raise TerminationError(
                        f"worker {evt[1]} crashed: {evt[2]}")
                elif kind == "step-done":
                    step_done += 1
                    if evt[2] > 0:
                        step_activity = True
                elif kind == "done":
                    reports[evt[1]] = evt[2]
                    if len(reports) == m:
                        return reports
                continue  # keep draining control before deciding anything

            if self.mode == "BSP":
                if step_done == m:
                    if not step_activity and in_flight == 0:
                        self._emit_master(obs_events.TERMINATE_PROBE,
                                          result="ack")
                        broadcast(("stop",))
                        while len(reports) < m:
                            evt = control.get(timeout=5.0)
                            if evt[0] == "done":
                                reports[evt[1]] = evt[2]
                        return reports
                    # messages may still be in OS pipes (in_flight > 0);
                    # the next superstep will pick them up
                    step_done = 0
                    step_activity = False
                    step_no += 1
                    self._emit_master(obs_events.BARRIER, step=step_no)
                    broadcast(("superstep",))
                continue

            # async modes: AAP gets periodic fleet-state broadcasts
            if self.mode == "AAP" and time.monotonic() - last_fleet > 0.02:
                broadcast_fleet()
                last_fleet = time.monotonic()

            if acks_pending:
                if ack_count == acks_pending:
                    acks_pending = 0
                    self._emit_master(
                        obs_events.TERMINATE_PROBE,
                        result="ack" if not got_wait else "wait")
                    if not got_wait and in_flight == 0 and all(inactive):
                        broadcast(("stop",))
                        while len(reports) < m:
                            evt = control.get(timeout=5.0)
                            if evt[0] == "done":
                                reports[evt[1]] = evt[2]
                        return reports
                continue

            if all(inactive) and in_flight == 0:
                # the paper's terminate broadcast: probe every worker
                ack_count = 0
                got_wait = False
                acks_pending = m
                broadcast(("probe",))

    # ------------------------------------------------------------------
    def _assemble(self, reports: Dict[int, _WorkerReport],
                  makespan: float) -> RunResult:
        # rebuild contexts in the master and inject the workers' states
        engine = Engine(self.program, self.pg, self.query)
        for wid, report in reports.items():
            engine.contexts[wid].values = report.values
            engine.contexts[wid].scratch = report.scratch
            engine.contexts[wid].changed = set()
        answer = engine.assemble()
        workers = [WorkerMetrics(
            wid=wid, rounds=rep.rounds, messages_sent=rep.messages_sent,
            bytes_sent=rep.bytes_sent, work_done=rep.work)
            for wid, rep in sorted(reports.items())]
        extras: Dict[str, Any] = {}
        if self.obs is not None:
            self._merge_observations(reports)
            registry_from_workers(workers, into=self.obs.metrics)
            metrics = RunMetrics.from_registry(self.obs.metrics,
                                               makespan=makespan)
            extras["obs"] = self.obs
        else:
            metrics = RunMetrics.from_workers(workers, makespan=makespan)
        return RunResult(answer=answer, mode=f"{self.mode}-multiprocess",
                         metrics=metrics,
                         rounds=[reports[w].rounds for w in range(
                             self.pg.num_fragments)],
                         extras=extras)

    def _merge_observations(self, reports: Dict[int, _WorkerReport]) -> None:
        """Fold worker-process event records into the master's observer.

        Worker timestamps are absolute monotonic readings (fork shares the
        clock), normalised here to run-relative time; the merged log is
        re-sorted so records from different processes interleave by time.
        """
        reg = self.obs.metrics
        for _, report in sorted(reports.items()):
            for type_, t_abs, wid, round_no, payload in report.events:
                t = max(t_abs - self._started, 0.0)
                self.obs.log.emit(type_, t, wid=wid, round=round_no,
                                  **payload)
                if type_ == obs_events.ROUND_END:
                    reg.histogram("round_duration", wid).observe(
                        payload.get("duration", 0.0))
                elif type_ == obs_events.ROUND_START:
                    if payload.get("kind") == "inceval":
                        reg.histogram("eta_at_drain", wid).observe(
                            payload.get("batches", 0))
                elif type_ == obs_events.MSG_SEND:
                    reg.counter("wire_bytes").inc(payload.get("bytes", 0))
                elif type_ == obs_events.MSG_DELIVER:
                    reg.histogram("buffer_depth", wid).observe(
                        payload.get("depth", 0))
                elif type_ == obs_events.DS_DECISION:
                    ds = payload.get("ds", 0.0)
                    if math.isinf(ds):
                        reg.counter("ds_suspend", wid).inc()
                    else:
                        reg.histogram("ds_chosen", wid).observe(ds)
        self.obs.log.sort()
